#!/bin/bash
# Runs every example binary (smoke check of the public API).
set -e
cd "$(dirname "$0")/.."
for ex in quickstart movie_catalog genealogy_workload adaptive_tuning \
          self_tuning_service save_load_index dump_datasets; do
  echo "=== $ex ==="
  cargo run -q -p apex-suite --example "$ex" --release
done
