#!/bin/bash
set -e
cd "$(dirname "$0")/.."
for exp in fig13 fig14 fig15 ablation; do
  echo "=== $exp (paper scale) ==="
  cargo run -p apex-bench --release --bin $exp -- --scale paper 2>&1 | tee results/${exp}_paper.txt
done
echo ALL_FIGS_DONE
