//! Cross-index result equivalence: every query processor must return the
//! same node sets as the naive graph evaluator, on every dataset family,
//! for every query type, at several `minSup` settings.
//!
//! This is the main correctness gate of the reproduction: APEX answers
//! are assembled from hash-tree lookups, extent unions and multi-way
//! joins; the DataGuide and 1-index answers from automaton products over
//! quotient graphs; the fabric's from trie traversal — all must agree
//! with direct evaluation over `G_XML`.

use apex_query::batch::QueryProcessor;
use apex_query::generator::GeneratorConfig;
use apex_query::naive::NaiveProcessor;
use apex_query::{apex_qp::ApexProcessor, fabric_qp::FabricProcessor, guide_qp::GuideProcessor};
use apex_suite::{small, Fixture};
use xmlgraph::paths::EnumLimits;
use xmlgraph::XmlGraph;

fn cfg(seed: u64) -> GeneratorConfig {
    GeneratorConfig {
        qtype1: 250,
        qtype2: 60,
        qtype3: 60,
        workload_fraction: 0.2,
        seed,
        limits: EnumLimits {
            max_len: 10,
            max_paths: 30_000,
        },
    }
}

fn check_dataset(g: XmlGraph, seed: u64) {
    let fx = Fixture::build(g, cfg(seed));
    let naive = NaiveProcessor::new(&fx.g, &fx.table);

    // Index variants under test — each must pass the full structural
    // validator before serving a single query.
    let apex_05 = fx.apex_at(0.05);
    let apex_005 = fx.apex_at(0.005);
    let apex_0005 = fx.apex_at(0.0005);
    for idx in [&fx.apex0, &apex_05, &apex_005, &apex_0005] {
        apex::validate::assert_valid(&fx.g, idx);
    }

    let processors: Vec<Box<dyn QueryProcessor + '_>> = vec![
        Box::new(ApexProcessor::new(&fx.g, &fx.apex0, &fx.table)),
        Box::new(ApexProcessor::new(&fx.g, &apex_05, &fx.table)),
        Box::new(ApexProcessor::new(&fx.g, &apex_005, &fx.table)),
        Box::new(ApexProcessor::new(&fx.g, &apex_0005, &fx.table)),
        Box::new(GuideProcessor::new(&fx.g, &fx.sdg, &fx.table)),
        Box::new(GuideProcessor::new(&fx.g, &fx.oneindex, &fx.table)),
    ];

    for (qi, q) in fx
        .queries
        .qtype1
        .iter()
        .chain(fx.queries.qtype2.iter())
        .chain(fx.queries.qtype3.iter())
        .enumerate()
    {
        let expect = naive.eval(q).nodes;
        for p in &processors {
            let got = p.eval(q).nodes;
            assert_eq!(
                got,
                expect,
                "query #{qi} {} differs on {}",
                q.render(&fx.g),
                p.name()
            );
        }
    }

    // Fabric: QTYPE3 only. On reference-dense graph data the fabric's
    // rooted-path enumeration is bounded (the original Index Fabric is
    // likewise lossy for graph data, §2) — there we only require
    // soundness; when enumeration completed, we require equality.
    let fab = FabricProcessor::new(&fx.g, &fx.fabric);
    for q in &fx.queries.qtype3 {
        let expect = naive.eval(q).nodes;
        let got = fab.eval(q).nodes;
        if fx.fabric.truncated {
            assert!(
                got.iter().all(|n| expect.binary_search(n).is_ok()),
                "fabric unsound on {}",
                q.render(&fx.g)
            );
            assert!(
                !got.is_empty(),
                "fabric missed all results on {}",
                q.render(&fx.g)
            );
        } else {
            assert_eq!(got, expect, "fabric differs on {}", q.render(&fx.g));
        }
    }
}

#[test]
fn play_family_equivalence() {
    check_dataset(small::play(), 11);
}

#[test]
fn flix_family_equivalence() {
    check_dataset(small::flix(), 22);
}

#[test]
fn ged_family_equivalence() {
    check_dataset(small::ged(), 33);
}

#[test]
fn moviedb_equivalence() {
    check_dataset(xmlgraph::builder::moviedb(), 44);
}

/// The q1 example of §4: `//actor/name` must return the two actor names
/// on every index.
#[test]
fn section4_q1_on_every_index() {
    let fx = Fixture::build(xmlgraph::builder::moviedb(), cfg(7));
    let q = apex_query::Query::PartialPath {
        labels: xmlgraph::LabelPath::parse(&fx.g, "actor.name").unwrap().0,
    };
    let expect = vec![xmlgraph::NodeId(3), xmlgraph::NodeId(5)];
    let apex = fx.apex_with(&apex::Workload::parse(&fx.g, &["actor.name"]).unwrap(), 0.5);
    assert_eq!(
        ApexProcessor::new(&fx.g, &apex, &fx.table).eval(&q).nodes,
        expect
    );
    assert_eq!(
        GuideProcessor::new(&fx.g, &fx.sdg, &fx.table)
            .eval(&q)
            .nodes,
        expect
    );
    assert_eq!(
        GuideProcessor::new(&fx.g, &fx.oneindex, &fx.table)
            .eval(&q)
            .nodes,
        expect
    );
}
