//! Crash-point fault-injection suite — the proof behind the durable
//! write path (`core::wal` + `core::recover`).
//!
//! A deterministic, single-threaded *life* replays the serving loop's
//! semantics (record → drain → refine → checkpoint) against a WAL
//! directory whose writer carries a [`CrashPlan`]: a seeded fault
//! budget that kills the simulated process after N charged bytes (mid
//! frame, mid checkpoint image) or at a named site (mid-fsync, between
//! temp-file write and rename, during recovery's own repair). After
//! the death, [`recover`] rebuilds the state and must agree with a
//! from-scratch oracle — the same directory replayed from
//! `Apex::build_initial` with snapshots ignored — on extents,
//! generation, and monitor state, while `wal::Stats` balances:
//!
//! ```text
//! appended == replayed + truncated_tail        (retain-all ⇒ pruned = 0)
//! ```
//!
//! The byte-offset sweeps alone kill at 270 distinct seeded points
//! (3 workload seeds × 90 offsets spanning the whole life's write
//! traffic: appends, checkpoint images, renames); the site tests add
//! every named [`CrashSite`] on top, including crash-during-recovery.
//!
//! Reuse: `run_life` + `verify_crash_point` are the harness later PRs
//! (sharding, replication) can copy — any subsystem that claims
//! durability should die at every offset of its write path and prove
//! convergence the same way.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use apex::recover::{encode_snapshot, recover, RecoverOptions, SnapshotReject};
use apex::wal::{CrashPlan, CrashSite, DurabilityConfig, Stats, Wal, WalError};
use apex::{extent_equivalent, Apex, MonitorState, RefreshPolicy, WorkloadMonitor};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xmlgraph::builder::moviedb;
use xmlgraph::{LabelPath, NodeId, XmlGraph};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "apex-crash-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&d);
    d
}

/// Random label paths that exist in `g` (random walks), same idiom as
/// the update-equivalence suite, so replayed queries exercise extents.
fn random_walk_paths(
    g: &XmlGraph,
    rng: &mut SmallRng,
    count: usize,
    max_len: usize,
) -> Vec<LabelPath> {
    let mut out = Vec::with_capacity(count);
    let mut attempts = 0usize;
    while out.len() < count && attempts < count * 20 {
        attempts += 1;
        let mut cur = NodeId(rng.gen_range(0..g.node_count() as u32));
        let mut labels = Vec::new();
        let len = rng.gen_range(1..=max_len);
        for _ in 0..len {
            let edges = g.out_edges(cur);
            if edges.is_empty() {
                break;
            }
            let e = &edges[rng.gen_range(0..edges.len())];
            labels.push(e.label);
            cur = e.to;
        }
        if !labels.is_empty() {
            out.push(LabelPath::new(labels));
        }
    }
    assert!(!out.is_empty(), "walk generation produced no paths");
    out
}

const CAPACITY: usize = 64;
const MIN_SUP: f64 = 0.25;

struct LifeConfig {
    queries: usize,
    refresh_every: usize,
    /// Checkpoint after this many published swaps (0 = never).
    checkpoint_swaps: u64,
}

impl Default for LifeConfig {
    fn default() -> LifeConfig {
        LifeConfig {
            queries: 150,
            refresh_every: 25,
            checkpoint_swaps: 2,
        }
    }
}

/// What the life left behind when it completed — or died.
struct LifeOutcome {
    stats: Stats,
    wedged: bool,
    /// Live in-memory state at the end (meaningful for comparison only
    /// when `!wedged`: a wedged life's memory is ahead of its log).
    index: Apex,
    generation: u64,
    state: MonitorState,
}

fn wal_config() -> DurabilityConfig {
    DurabilityConfig {
        group_commit: 4,
        checkpoint_every: 2,
        retain: 0, // keep everything: pruned = 0, the ISSUE's literal balance
    }
}

/// One checkpoint through the two-phase protocol, exactly as the
/// durable refresher does it (single-threaded here, so the
/// begin-under-the-monitor-lock requirement is trivially met).
fn checkpoint(
    wal: &Wal,
    generation: u64,
    index: &Apex,
    monitor: &WorkloadMonitor,
) -> Result<u64, WalError> {
    let token = wal.begin_checkpoint()?;
    let image = encode_snapshot(token.seq(), generation, index, &monitor.durable_state())
        .map_err(WalError::Io)?;
    wal.commit_checkpoint(token, &image)
}

/// Drives the scripted serve-update-refresh workload against `dir`
/// until completion or simulated death (the plan firing wedges the
/// writer; every later operation refuses, like a killed process).
fn run_life(g: &XmlGraph, dir: &Path, seed: u64, plan: CrashPlan, cfg: &LifeConfig) -> LifeOutcome {
    let wal = Arc::new(Wal::open(dir, wal_config(), plan).expect("open wal"));
    let mut monitor = WorkloadMonitor::new(CAPACITY, MIN_SUP, RefreshPolicy::Manual);
    monitor.attach_wal(Arc::clone(&wal));
    let mut index = Apex::build_initial(g);
    let mut generation = 0u64;
    let mut swaps_since = 0u64;
    let mut rng = SmallRng::seed_from_u64(seed);
    let pool = random_walk_paths(g, &mut rng, 10, 3);

    'life: for i in 0..cfg.queries {
        // Drift-weighted pick: the hot region slides across the pool.
        let hot = (i * pool.len()) / cfg.queries.max(1);
        let pick = if rng.gen_range(0..100) < 70 {
            hot % pool.len()
        } else {
            rng.gen_range(0..pool.len())
        };
        monitor.record(pool[pick].clone());
        if wal.is_wedged() {
            break 'life; // the append died: process is gone
        }
        if (i + 1) % cfg.refresh_every == 0 {
            let (wl, min_sup) = monitor.drain_for_refresh();
            if wal.is_wedged() {
                break 'life; // died logging the swap; the refine never "published"
            }
            if !wl.is_empty() {
                index.refine(g, &wl, min_sup);
                generation += 1;
                swaps_since += 1;
            }
            if cfg.checkpoint_swaps > 0 && swaps_since >= cfg.checkpoint_swaps {
                swaps_since = 0;
                if checkpoint(&wal, generation, &index, &monitor).is_err() {
                    break 'life; // died mid-checkpoint (tmp write, fsync or rename)
                }
            }
        }
    }
    let _ = wal.sync();
    LifeOutcome {
        stats: wal.stats(),
        wedged: wal.is_wedged(),
        index,
        generation,
        state: monitor.durable_state(),
    }
}

fn norm_opts() -> RecoverOptions {
    RecoverOptions {
        capacity: CAPACITY,
        min_sup: MIN_SUP,
        ..RecoverOptions::default()
    }
}

fn oracle_opts() -> RecoverOptions {
    RecoverOptions {
        use_snapshots: false,
        ..norm_opts()
    }
}

/// The full acceptance check for one crash point: recovery never
/// panics, agrees with the from-scratch oracle on extents, generation
/// and monitor state, and the writer/recovery stats balance.
fn verify_crash_point(g: &XmlGraph, dir: &Path, life: &LifeOutcome, what: &str) {
    let rec =
        recover(dir, g, &norm_opts()).unwrap_or_else(|e| panic!("{what}: recovery failed: {e}"));
    let oracle = recover(dir, g, &oracle_opts())
        .unwrap_or_else(|e| panic!("{what}: oracle recovery failed: {e}"));
    assert!(
        oracle.report.snapshot_seq.is_none(),
        "{what}: oracle must ignore snapshots"
    );
    if let Err(why) = extent_equivalent(g, &rec.index, &oracle.index) {
        panic!("{what}: recovered index diverged from oracle: {why}");
    }
    assert_eq!(rec.generation, oracle.generation, "{what}: generation");
    assert_eq!(
        rec.monitor.durable_state(),
        oracle.monitor.durable_state(),
        "{what}: monitor state"
    );
    let v = apex::validate::check(g, &rec.index);
    assert!(v.is_empty(), "{what}: recovered index invalid: {v:#?}");

    // Stats balance: every attempted append is accounted for — either
    // replayed from a complete frame or discarded as the torn tail.
    let merged = life.stats.clone().after_recovery(rec.report.replayed);
    assert_eq!(merged.pruned, 0, "{what}: retain-all must never prune");
    assert!(
        merged.balanced(),
        "{what}: stats do not balance: {merged:?}"
    );
    assert_eq!(
        life.stats.appended,
        rec.report.replayed + life.stats.truncated_tail,
        "{what}: appended == replayed + truncated_tail"
    );

    // A life that completed (the plan never fired) must recover to
    // exactly its final in-memory state — durability loses nothing on
    // a clean stop.
    if !life.wedged {
        if let Err(why) = extent_equivalent(g, &rec.index, &life.index) {
            panic!("{what}: clean life's recovery diverged from live state: {why}");
        }
        assert_eq!(rec.generation, life.generation, "{what}: clean generation");
        assert_eq!(
            rec.monitor.durable_state(),
            life.state,
            "{what}: clean monitor state"
        );
    }
}

/// Total bytes the plan would charge over a clean life: appended frame
/// bytes plus every checkpoint image (the temp-file writes charge too).
fn clean_life_charged_bytes(g: &XmlGraph, seed: u64, cfg: &LifeConfig) -> u64 {
    let dir = tmpdir(&format!("baseline-{seed}"));
    let life = run_life(g, &dir, seed, CrashPlan::none(), cfg);
    assert!(!life.wedged, "baseline must complete");
    let mut total = life.stats.bytes_appended;
    for (_, p) in apex::wal::list_snapshots(&dir).expect("list") {
        total += fs::metadata(&p).map(|m| m.len()).unwrap_or(0);
    }
    fs::remove_dir_all(&dir).expect("cleanup");
    assert!(total > 0, "baseline life wrote nothing");
    total
}

/// The headline sweep: kill the life at `points` byte offsets spread
/// over its entire write traffic (stagger by i % 3 so cuts land at
/// different positions inside frames), recover, verify.
fn byte_offset_sweep(seed: u64, points: u64) {
    let g = moviedb();
    let cfg = LifeConfig::default();
    let total = clean_life_charged_bytes(&g, seed, &cfg);
    let mut killed = 0u64;
    for i in 0..points {
        let offset = (i * total) / points + (i % 3);
        let dir = tmpdir(&format!("sweep-{seed}-{i}"));
        let life = run_life(&g, &dir, seed, CrashPlan::after_bytes(offset), &cfg);
        if life.wedged {
            killed += 1;
        }
        verify_crash_point(&g, &dir, &life, &format!("seed {seed} offset {offset}"));
        fs::remove_dir_all(&dir).expect("cleanup");
    }
    assert!(
        killed >= points * 8 / 10,
        "sweep must actually kill most runs ({killed}/{points} died)"
    );
}

// Three seed families × 90 offsets = 270 distinct seeded crash points
// across append / checkpoint-image / rename traffic.

#[test]
fn byte_offset_sweep_seed_a() {
    byte_offset_sweep(0xC4A5_0001, 90);
}

#[test]
fn byte_offset_sweep_seed_b() {
    byte_offset_sweep(0xC4A5_0002, 90);
}

#[test]
fn byte_offset_sweep_seed_c() {
    byte_offset_sweep(0xC4A5_0003, 90);
}

/// Named-site kills: mid-fsync, between temp write and rename, after
/// rename, before prune — the n-th occurrence of each, so the same
/// site is exercised at different phases of the life.
#[test]
fn site_crashes_cover_fsync_and_checkpoint_phases() {
    let g = moviedb();
    let cfg = LifeConfig::default();
    for site in CrashSite::ALL {
        for nth in 0..3u64 {
            let dir = tmpdir(&format!("site-{site:?}-{nth}"));
            let life = run_life(&g, &dir, 0x517E, CrashPlan::at_site(site, nth), &cfg);
            verify_crash_point(&g, &dir, &life, &format!("site {site:?} nth {nth}"));
            fs::remove_dir_all(&dir).expect("cleanup");
        }
    }
}

/// Crashing *during recovery's own repair* (tmp removal, tail
/// truncation) must leave a directory a second recovery handles — and
/// that second recovery converges to the same state.
#[test]
fn crash_during_recovery_repair_is_itself_recoverable() {
    let g = moviedb();
    let cfg = LifeConfig::default();
    for site in [
        CrashSite::BeforeTmpRemove,
        CrashSite::BeforeTruncate,
        CrashSite::AfterTruncate,
    ] {
        let dir = tmpdir(&format!("recrash-{site:?}"));
        // A life killed mid-frame leaves a torn tail; add a stale
        // checkpoint temp file on top so both repair paths have work.
        let life = run_life(&g, &dir, 0xDEAD_0001, CrashPlan::after_bytes(900), &cfg);
        assert!(life.wedged, "budget must kill this life");
        fs::write(dir.join("snap-000099.apex.tmp"), b"half-written junk").expect("tmp");

        let crashing = RecoverOptions {
            plan: CrashPlan::at_site(site, 0),
            ..norm_opts()
        };
        // The repairing recovery may die at the injected site — that is
        // the point — but it must never panic, and dying is the only
        // alternative to finishing.
        let first = recover(&dir, &g, &crashing);
        if let Err(e) = &first {
            assert!(
                matches!(e, apex::RecoverError::Crashed),
                "only the plan may stop recovery: {e}"
            );
        }
        // The next (clean) recovery converges regardless of where the
        // previous one died.
        verify_crash_point(&g, &dir, &life, &format!("re-crash at {site:?}"));
        // And repair is complete now: nothing left to truncate or remove.
        let again = recover(&dir, &g, &norm_opts()).expect("repaired recovery");
        assert_eq!(again.report.truncated_bytes, 0, "tail already repaired");
        assert_eq!(again.report.repaired_tmps, 0, "tmps already removed");
        fs::remove_dir_all(&dir).expect("cleanup");
    }
}

/// Golden snapshot corruption: a bit flip inside a section, a truncated
/// tail, a clobbered root hash, wrong magic. Recovery must reject the
/// bad snapshot with the *named* reason, fall back to the previous
/// generation, replay the longer tail, and still converge.
#[test]
fn corrupted_snapshots_fall_back_to_previous_generation() {
    let g = moviedb();
    let cfg = LifeConfig::default();

    type Corrupt = fn(&mut Vec<u8>);
    type Expect = fn(&SnapshotReject) -> bool;
    let cases: [(&str, Corrupt, Expect); 4] = [
        (
            "bit flip in a section",
            |b| {
                let n = b.len();
                b[n - 40] ^= 0x10;
            },
            |r| matches!(r, SnapshotReject::SectionHash { .. }),
        ),
        (
            "truncated tail",
            |b| {
                let n = b.len();
                b.truncate(n - 33);
            },
            |r| matches!(r, SnapshotReject::Truncated { .. }),
        ),
        (
            "clobbered table (root hash)",
            |b| b[8 + 4 + 8 + 8 + 4 + 5] ^= 0xFF,
            |r| matches!(r, SnapshotReject::RootHash),
        ),
        (
            "wrong magic",
            |b| b[0] = b'Z',
            |r| matches!(r, SnapshotReject::BadMagic),
        ),
    ];

    for (what, corrupt, expected) in cases {
        let dir = tmpdir(&format!("golden-{}", what.len()));
        let life = run_life(&g, &dir, 0x601D, CrashPlan::none(), &cfg);
        assert!(!life.wedged);
        let snaps = apex::wal::list_snapshots(&dir).expect("list");
        assert!(
            snaps.len() >= 2,
            "life must leave at least two snapshots to fall back through"
        );
        let (newest_seq, newest) = snaps.last().expect("newest").clone();
        let (prev_seq, _) = snaps[snaps.len() - 2];

        let clean = recover(&dir, &g, &norm_opts()).expect("clean recover");
        assert_eq!(clean.report.snapshot_seq, Some(newest_seq));

        let mut bytes = fs::read(&newest).expect("read snapshot");
        corrupt(&mut bytes);
        fs::write(&newest, &bytes).expect("write corrupted");

        let rec = recover(&dir, &g, &norm_opts()).expect("recover past corruption");
        // Named rejection of exactly the newest snapshot.
        assert_eq!(rec.report.rejected.len(), 1, "{what}: one rejection");
        let (rej_seq, why) = &rec.report.rejected[0];
        assert_eq!(*rej_seq, newest_seq, "{what}");
        assert!(expected(why), "{what}: wrong reject reason: {why}");
        // Fallback to the previous generation + a longer replay.
        assert_eq!(rec.report.snapshot_seq, Some(prev_seq), "{what}");
        assert!(
            rec.report.applied > clean.report.applied,
            "{what}: fallback must replay a longer tail ({} vs {})",
            rec.report.applied,
            clean.report.applied
        );
        // ... and converge to the same state regardless.
        if let Err(why) = extent_equivalent(&g, &rec.index, &clean.index) {
            panic!("{what}: fallback diverged: {why}");
        }
        assert_eq!(rec.generation, clean.generation, "{what}");
        fs::remove_dir_all(&dir).expect("cleanup");
    }
}

/// Clean shutdown through the real concurrent refresher: the final
/// checkpoint means recovery applies zero records from the log.
#[test]
fn clean_shutdown_needs_no_replay() {
    use apex::{IndexCell, Refresher};
    use std::sync::Mutex;

    let g = Arc::new(moviedb());
    let dir = tmpdir("clean");
    let wal = Arc::new(Wal::open(&dir, wal_config(), CrashPlan::none()).expect("open"));
    let monitor = Arc::new(Mutex::new(WorkloadMonitor::new(
        CAPACITY,
        MIN_SUP,
        RefreshPolicy::Manual,
    )));
    monitor.lock().unwrap().attach_wal(Arc::clone(&wal));
    let cell = Arc::new(IndexCell::new(Apex::build_initial(&g)));
    let refresher = Refresher::spawn_durable(
        Arc::clone(&g),
        Arc::clone(&cell),
        Arc::clone(&monitor),
        Arc::clone(&wal),
    )
    .expect("spawn");

    let mut rng = SmallRng::seed_from_u64(0xC1EA);
    let pool = random_walk_paths(&g, &mut rng, 8, 3);
    for round in 0..3 {
        for i in 0..20 {
            let p = pool[(round * 7 + i) % pool.len()].clone();
            monitor.lock().unwrap().record(p);
        }
        refresher.request_refresh();
        refresher.wait_idle();
    }
    let stats = refresher.shutdown();
    assert!(stats.refreshes >= 1);
    assert!(stats.checkpoints >= 1, "shutdown must checkpoint");
    assert_eq!(stats.checkpoint_errors, 0);

    let rec = recover(&dir, &g, &norm_opts()).expect("recover");
    assert_eq!(
        rec.report.applied, 0,
        "clean shutdown must replay zero records"
    );
    assert_eq!(rec.generation, cell.generation());
    if let Err(why) = extent_equivalent(&g, &rec.index, cell.snapshot().index()) {
        panic!("clean shutdown recovery diverged: {why}");
    }
    // The full log still balances even though none of it was applied.
    let merged = wal.stats().clone().after_recovery(rec.report.replayed);
    assert!(merged.balanced(), "{merged:?}");
    fs::remove_dir_all(&dir).expect("cleanup");
}
