//! Generation-vector consistency under live refresh churn: a 3-shard ×
//! 2-replica cluster serves concurrent router clients while each
//! shard's refresher is stepped through several barriered refresh
//! rounds. Asserts, per response: exactly one generation entry per
//! shard (a query never mixes two generations of one shard) — and per
//! client: the observed generation of every shard is non-decreasing
//! (the router's pins are monotone). Ends by checking that no request
//! was shed or lost anywhere: client side, router hops, and shard
//! servers all balance, and the clean-run cross-hop rollup matches the
//! shard servers' accepted totals exactly.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use apex_net::{Client, Status};
use apex_shard::{ClusterConfig, Router, RouterConfig, ShardCluster, ShardMap};
use apex_suite::small;

const SHARDS: u16 = 3;
const CLIENTS: usize = 3;
const REFRESH_ROUNDS: usize = 4;

#[test]
fn queries_never_mix_generations_and_all_ledgers_balance() {
    let g = Arc::new(small::flix());
    let queries: Vec<String> = g
        .labels()
        .iter()
        .map(|(_, s)| s)
        .filter(|s| !s.starts_with('@'))
        .take(4)
        .map(|s| format!("//{s}"))
        .collect();
    assert!(!queries.is_empty());

    let cluster = ShardCluster::start(
        Arc::clone(&g),
        ShardMap::new(SHARDS),
        ClusterConfig {
            replicas: 2,
            ..ClusterConfig::default()
        },
    )
    .expect("cluster");
    let mut router = Router::start(
        cluster.map(),
        &cluster.addrs(),
        RouterConfig::default(),
        "127.0.0.1:0",
    )
    .expect("router");
    let addr = router.local_addr();
    let stop = AtomicBool::new(false);

    // Each client thread verifies its own view inline and returns its
    // request count; any violated invariant panics the thread (and the
    // scope re-raises it).
    let total_requests: u64 = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for ci in 0..CLIENTS {
            let queries = &queries;
            let stop = &stop;
            handles.push(s.spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let mut last_gen = vec![0u64; usize::from(SHARDS)];
                let mut n = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    let q = &queries[(ci + n as usize) % queries.len()];
                    let resp = c.call(q, 0).expect("call");
                    assert_eq!(resp.status, Status::Ok, "client {ci} was shed: {q}");
                    // One generation entry per shard, covering them all:
                    // no query mixes or drops a shard's era.
                    let shards: BTreeSet<u16> = resp.gens.iter().map(|e| e.shard).collect();
                    assert_eq!(
                        shards.len(),
                        resp.gens.len(),
                        "client {ci}: duplicate shard entry in {:?}",
                        resp.gens
                    );
                    assert_eq!(
                        shards,
                        (0..SHARDS).collect::<BTreeSet<u16>>(),
                        "client {ci}: gens must cover every shard"
                    );
                    // Per-client monotonicity: a shard's generation
                    // never goes backwards across this connection.
                    for e in &resp.gens {
                        let slot = &mut last_gen[usize::from(e.shard)];
                        assert!(
                            e.generation >= *slot,
                            "client {ci}: shard {} went back from {} to {}",
                            e.shard,
                            *slot,
                            e.generation
                        );
                        *slot = e.generation;
                    }
                    n += 1;
                }
                n
            }));
        }

        // Barriered refresh rounds: wait for traffic, then step every
        // shard's refresher to the next generation (each step drains
        // that shard's recorded window and publishes a new snapshot
        // under the live sockets).
        for _ in 0..REFRESH_ROUNDS {
            std::thread::sleep(Duration::from_millis(20));
            for shard in 0..SHARDS {
                cluster.runtime(shard).expect("runtime").step_refresh();
            }
        }
        std::thread::sleep(Duration::from_millis(20));
        stop.store(true, Ordering::SeqCst);
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(n) => n,
                Err(p) => std::panic::resume_unwind(p),
            })
            .sum()
    });
    assert!(
        total_requests >= CLIENTS as u64,
        "the clients must actually have run"
    );

    // The barriered rounds published real generations under traffic.
    let gens = cluster.generations();
    assert!(
        gens.iter().all(|&g| g >= 1),
        "every shard must have refreshed at least once: {gens:?}"
    );
    assert!(
        router.pinned_generations().iter().all(|&p| p >= 1),
        "the router must have pinned the advanced generations"
    );

    let stats = router.drain();
    assert!(stats.balanced(), "router books: {stats}");
    assert_eq!(stats.accepted, total_requests);
    assert_eq!(stats.shed, 0, "no client request may be shed: {stats}");
    let cluster_stats = cluster.shutdown();
    assert!(
        cluster_stats.balanced(),
        "cluster books: {:?}",
        cluster_stats.net_total()
    );
    assert_eq!(
        stats.hop_delivered(),
        cluster_stats.net_total().accepted,
        "cross-hop rollup: every forwarded request is accounted on both sides"
    );
}
