//! Structural properties of the indexes across dataset families —
//! the qualitative claims behind Table 2 of the paper, checked on small
//! instances of each family.

use apex::Apex;
use apex_query::generator::GeneratorConfig;
use apex_suite::{small, Fixture};
use dataguide::DataGuide;
use xmlgraph::paths::EnumLimits;

fn cfg(seed: u64) -> GeneratorConfig {
    GeneratorConfig {
        qtype1: 400,
        qtype2: 0,
        qtype3: 0,
        workload_fraction: 0.2,
        seed,
        limits: EnumLimits {
            max_len: 10,
            max_paths: 30_000,
        },
    }
}

#[test]
fn apex0_is_most_compact() {
    // Table 2: "As expected from the definition of APEX⁰, it has the most
    // compact structure" — fewer nodes than the SDG and than refined APEX
    // at small minSup, on every family.
    for g in [small::play(), small::flix(), small::ged()] {
        let fx = Fixture::build(g, cfg(1));
        let apex_small_minsup = fx.apex_at(0.002);
        let n0 = fx.apex0.stats().nodes;
        assert!(n0 <= apex_small_minsup.stats().nodes);
        assert!(n0 <= fx.sdg.node_count());
    }
}

#[test]
fn apex0_nodes_is_labels_plus_root() {
    for g in [small::play(), small::flix(), small::ged()] {
        let apex0 = Apex::build_initial(&g);
        // One class per label that actually labels an edge, plus xroot.
        // (The root tag labels no edge; every other label does in our
        // generators.)
        let stats = apex0.stats();
        assert_eq!(
            stats.nodes,
            g.label_count() - 1 + 1,
            "dataset labels {}",
            g.label_count()
        );
    }
}

#[test]
fn minsup_monotonicity() {
    // Smaller minSup ⇒ more required paths ⇒ at least as many APEX nodes
    // (Table 2 columns 0.002 … 0.05).
    for g in [small::play(), small::flix(), small::ged()] {
        let fx = Fixture::build(g, cfg(2));
        let mut prev_nodes = usize::MAX;
        for ms in [0.002, 0.005, 0.01, 0.03, 0.05] {
            let apex = fx.apex_at(ms);
            let n = apex.stats().nodes;
            assert!(
                n <= prev_nodes,
                "nodes grew when minSup rose to {ms}: {n} > {prev_nodes}"
            );
            prev_nodes = n;
        }
    }
}

#[test]
fn high_minsup_collapses_to_apex0() {
    // "when the value of minSup is at least 0.05, the length of almost
    // every required path becomes one. Thus the structure of APEX in this
    // case becomes very close to that of the APEX⁰."
    for g in [small::play(), small::flix(), small::ged()] {
        let fx = Fixture::build(g, cfg(3));
        let apex = fx.apex_at(0.9); // extreme: nothing is frequent
        let s = apex.stats();
        let s0 = fx.apex0.stats();
        assert_eq!(s.nodes, s0.nodes);
        assert_eq!(s.edges, s0.edges);
    }
}

#[test]
fn sdg_blowup_grows_with_irregularity() {
    // Table 2's headline: SDG size relative to APEX⁰ explodes on
    // irregular data (Ged ≫ Flix ≫ Play). GedML's lineage clusters need
    // a few hundred individuals before reference-path diversity kicks
    // in, so this comparison uses Ged01-scale data.
    let ratios: Vec<f64> = [
        datagen::shakespeare(2, 7),
        datagen::flixml(200, 7),
        datagen::gedml(360, 7),
    ]
    .into_iter()
    .map(|g| {
        let sdg = DataGuide::build(&g);
        let apex0 = Apex::build_initial(&g);
        sdg.node_count() as f64 / apex0.stats().nodes as f64
    })
    .collect();
    assert!(
        ratios[0] < ratios[1],
        "play {} !< flix {}",
        ratios[0],
        ratios[1]
    );
    assert!(
        ratios[1] < ratios[2],
        "flix {} !< ged {}",
        ratios[1],
        ratios[2]
    );
}

#[test]
fn sdg_on_tree_equals_distinct_paths() {
    // On tree data the strong DataGuide has one node per distinct rooted
    // label path (+root).
    let g = small::play();
    let sdg = DataGuide::build(&g);
    let paths = xmlgraph::paths::rooted_label_paths(
        &g,
        EnumLimits {
            max_len: 64,
            max_paths: 10_000_000,
        },
    );
    assert_eq!(sdg.node_count(), paths.len() + 1);
}

#[test]
fn refined_apex_keeps_theorems_on_all_families() {
    for g in [small::play(), small::flix(), small::ged()] {
        let fx = Fixture::build(g, cfg(4));
        let apex = fx.apex_at(0.01);
        // Theorem 1: simulation (spot-check by walking every data edge
        // from matched states).
        let mut stack = vec![(fx.g.root(), apex.xroot())];
        let mut seen = std::collections::HashSet::new();
        while let Some((v, x)) = stack.pop() {
            if !seen.insert((v, x)) {
                continue;
            }
            for e in fx.g.out_edges(v) {
                let child = apex
                    .out_edges(x)
                    .iter()
                    .find(|(l, _)| *l == e.label)
                    .map(|(_, t)| *t)
                    .expect("Theorem 1 violated: unsimulated data edge");
                stack.push((e.to, child));
            }
        }
        // Theorem 2: every length-2 index path exists in the data.
        let mut data_pairs = std::collections::HashSet::new();
        for (_, l1, mid) in fx.g.edges() {
            for e in fx.g.out_edges(mid) {
                data_pairs.insert((l1, e.label));
            }
        }
        for x in apex.graph().reachable(apex.xroot()) {
            let Some(inc) = apex.incoming_label(x) else {
                continue;
            };
            for &(l2, _) in apex.out_edges(x) {
                assert!(data_pairs.contains(&(inc, l2)), "Theorem 2 violated");
            }
        }
    }
}

#[test]
fn workload_simple_fraction_documented() {
    // The paper observed ~25 % simple path expressions; our generator on
    // a real play lands in the same region.
    let fx = Fixture::build(small::play(), cfg(5));
    assert!(
        fx.queries.simple_fraction > 0.10 && fx.queries.simple_fraction < 0.45,
        "simple fraction {}",
        fx.queries.simple_fraction
    );
}

#[test]
fn extent_pairs_bounded_by_required_paths() {
    // Extents partition-ish the edge set per class; total stored pairs
    // must stay within (#required classes) × edges and at least edges.
    let fx = Fixture::build(small::flix(), cfg(6));
    let apex = fx.apex_at(0.01);
    let s = apex.stats();
    assert!(s.extent_pairs >= fx.g.edge_count());
    assert!(s.extent_pairs <= fx.g.edge_count() * s.max_required_len);
}
