//! Serialization fidelity: generated datasets written to XML text and
//! re-parsed must produce structurally identical graphs, and indexes
//! built over the re-parsed graphs must behave identically.

use apex::Apex;
use xmlgraph::parser::{parse_with, ParserConfig};
use xmlgraph::writer::{is_writable, write_xml};
use xmlgraph::XmlGraph;

/// Parser config matching the generators' reference attribute names.
fn cfg() -> ParserConfig {
    ParserConfig {
        id_attrs: vec!["id".into()],
        idref_attrs: vec![
            // FlixML
            "sequel".into(),
            "remakeof".into(),
            "related".into(),
            // GedML
            "husb".into(),
            "wife".into(),
            "chil".into(),
            "famc".into(),
            "fams".into(),
            "alia".into(),
            "asso".into(),
            "subm".into(),
            "sour".into(),
            "note".into(),
            "obje".into(),
            "repo".into(),
            "anci".into(),
            "desi".into(),
        ],
    }
}

fn roundtrip(g: &XmlGraph) -> XmlGraph {
    assert!(is_writable(g), "generated data must be writable");
    let xml = write_xml(g);
    parse_with(&xml, &cfg()).expect("round trip parse")
}

/// Nid-independent structural comparison (the writer emits attributes
/// before element children, so nids may be permuted after a round trip).
fn assert_structurally_equal(a: &XmlGraph, b: &XmlGraph) {
    assert_eq!(a.node_count(), b.node_count(), "node counts differ");
    assert_eq!(a.edge_count(), b.edge_count(), "edge counts differ");
    assert_eq!(a.label_count(), b.label_count(), "label counts differ");
    assert_eq!(
        a.idref_labels().len(),
        b.idref_labels().len(),
        "idref label counts differ"
    );
    // Multiset of (tag, value) pairs.
    let values = |g: &XmlGraph| {
        let mut v: Vec<(String, String)> = g
            .nodes()
            .filter_map(|n| {
                g.value(n)
                    .map(|val| (g.label_str(g.tag(n)).to_string(), val.to_string()))
            })
            .collect();
        v.sort();
        v
    };
    assert_eq!(values(a), values(b), "value multisets differ");
    // Multiset of (source tag, edge label) pairs.
    let shape = |g: &XmlGraph| {
        let mut v: Vec<(String, String)> = g
            .edges()
            .map(|(f, l, _)| {
                (
                    g.label_str(g.tag(f)).to_string(),
                    g.label_str(l).to_string(),
                )
            })
            .collect();
        v.sort();
        v
    };
    assert_eq!(shape(a), shape(b), "edge shapes differ");
    // Distinct rooted label paths agree (bounded).
    let limits = xmlgraph::paths::EnumLimits {
        max_len: 6,
        max_paths: 50_000,
    };
    let paths = |g: &XmlGraph| {
        let mut v: Vec<String> = xmlgraph::paths::rooted_label_paths(g, limits)
            .iter()
            .map(|p| p.render(g))
            .collect();
        v.sort();
        v
    };
    assert_eq!(paths(a), paths(b), "rooted path sets differ");
}

/// write ∘ parse ∘ write is a fixpoint (up to the synthetic ids the
/// second write regenerates, which depend only on the re-parsed nids —
/// so a third pass must reproduce the second exactly).
fn assert_write_stable(g2: &XmlGraph) {
    let xml2 = write_xml(g2);
    let g3 = parse_with(&xml2, &cfg()).expect("second parse");
    assert_eq!(write_xml(&g3), xml2, "writer not idempotent after parse");
}

#[test]
fn shakespeare_roundtrip() {
    let g = datagen::shakespeare(1, 99);
    let g2 = roundtrip(&g);
    assert_structurally_equal(&g, &g2);
}

#[test]
fn flixml_roundtrip() {
    let g = datagen::flixml(25, 99);
    let g2 = roundtrip(&g);
    assert_structurally_equal(&g, &g2);
}

#[test]
fn gedml_roundtrip() {
    let g = datagen::gedml(60, 99);
    let g2 = roundtrip(&g);
    assert_structurally_equal(&g, &g2);
}

#[test]
fn index_over_reparsed_graph_is_identical() {
    let g = datagen::flixml(20, 7);
    let g2 = roundtrip(&g);
    let a = Apex::build_initial(&g);
    let b = Apex::build_initial(&g2);
    let sa = a.stats();
    let sb = b.stats();
    assert_eq!(sa.nodes, sb.nodes);
    assert_eq!(sa.edges, sb.edges);
    assert_eq!(sa.extent_pairs, sb.extent_pairs);
}

#[test]
fn double_roundtrip_is_stable() {
    let g = datagen::gedml(40, 3);
    let g2 = roundtrip(&g);
    assert_write_stable(&g2);
}

/// Persistence fidelity under randomization: `persist::save` →
/// `persist::load` must preserve extents, the hash tree's required
/// paths, and the answers of every query — for arbitrary graphs,
/// workloads, and refinement thresholds.
mod persist_proptest {
    use apex::{extent_equivalent, persist, Apex, Workload};
    use apex_query::apex_qp::ApexProcessor;
    use apex_query::batch::QueryProcessor;
    use apex_query::Query;
    use apex_storage::{DataTable, PageModel};
    use proptest::prelude::*;
    use xmlgraph::builder::RawGraphBuilder;
    use xmlgraph::{LabelPath, XmlGraph};

    const ALPHABET: [&str; 5] = ["a", "b", "c", "d", "e"];

    #[derive(Debug, Clone)]
    struct RandGraph {
        parents: Vec<usize>,
        tags: Vec<usize>,
        extras: Vec<(usize, usize)>,
    }

    fn rand_graph(max_nodes: usize) -> impl Strategy<Value = RandGraph> {
        (2..max_nodes).prop_flat_map(|n| {
            let parents = (1..n).map(|i| (0..i).boxed()).collect::<Vec<_>>();
            let tags = proptest::collection::vec(0..ALPHABET.len(), n - 1);
            let extras = proptest::collection::vec((0..n, 1..n), 0..n / 2);
            (parents, tags, extras).prop_map(|(parents, tags, extras)| RandGraph {
                parents,
                tags,
                extras,
            })
        })
    }

    fn materialize(rg: &RandGraph) -> XmlGraph {
        let n = rg.parents.len() + 1;
        let mut b = RawGraphBuilder::new();
        b.node(0, "root", None, None);
        for i in 1..n {
            let tag = ALPHABET[rg.tags[i - 1]];
            b.node(i as u32, tag, Some(rg.parents[i - 1] as u32), None);
            b.edge(rg.parents[i - 1] as u32, tag, i as u32);
        }
        for &(from, to) in &rg.extras {
            if from == to {
                continue;
            }
            b.edge(from as u32, ALPHABET[rg.tags[to - 1]], to as u32);
        }
        b.finish(&[])
    }

    fn rand_paths(max_len: usize, count: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
        proptest::collection::vec(
            proptest::collection::vec(0..ALPHABET.len(), 1..=max_len),
            1..=count,
        )
    }

    fn to_label_path(g: &XmlGraph, idxs: &[usize]) -> Option<LabelPath> {
        let labels = idxs
            .iter()
            .map(|&i| g.label_id(ALPHABET[i]))
            .collect::<Option<Vec<_>>>()?;
        Some(LabelPath::new(labels))
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

        #[test]
        fn save_load_preserves_extents_required_paths_and_answers(
            rg in rand_graph(30),
            workload_paths in rand_paths(3, 6),
            query_paths in rand_paths(4, 10),
            min_sup in 0.05f64..0.9,
        ) {
            let g = materialize(&rg);
            let mut apex = Apex::build_initial(&g);
            let wl = Workload::from_paths(
                workload_paths.iter().filter_map(|p| to_label_path(&g, p)).collect(),
            );
            apex.refine(&g, &wl, min_sup);

            let mut bytes = Vec::new();
            persist::save(&apex, &mut bytes).expect("save");
            let loaded = persist::load(&mut bytes.as_slice()).expect("load");

            // Hash-tree required paths survive byte-exactly.
            prop_assert_eq!(apex.required_paths(&g), loaded.required_paths(&g));
            // Full extent-equivalence certification (extents, lookups,
            // reachable structure).
            if let Err(why) = extent_equivalent(&g, &apex, &loaded) {
                prop_assert!(false, "loaded index not extent-equivalent: {}", why);
            }
            // Query answers are identical through the full processor.
            let table = DataTable::build(&g, PageModel::default());
            let qp_a = ApexProcessor::new(&g, &apex, &table);
            let qp_b = ApexProcessor::new(&g, &loaded, &table);
            for qp in &query_paths {
                let Some(path) = to_label_path(&g, qp) else { continue };
                let q = Query::PartialPath { labels: path.0.clone() };
                prop_assert_eq!(qp_a.eval(&q).nodes, qp_b.eval(&q).nodes);
            }
        }
    }
}

#[test]
fn moviedb_roundtrip() {
    let g = xmlgraph::builder::moviedb();
    // moviedb's references use @movie/@actor/@director attrs; all its
    // non-tree edges are @-sourced, so it is writable.
    let cfg = ParserConfig {
        id_attrs: vec!["id".into()],
        idref_attrs: vec!["movie".into(), "actor".into(), "director".into()],
    };
    let xml = write_xml(&g);
    let g2 = parse_with(&xml, &cfg).expect("parse moviedb");
    assert_structurally_equal(&g, &g2);
}
