//! Sharding laws: the partitioner is a total, serialization-stable
//! function of the label path, and the router's scatter-gather merge
//! over a real socket cluster equals the single-process answer on all
//! three generated dataset families.
//!
//! The partitioner laws run under proptest (arbitrary shard counts,
//! seeds and label paths); the merge equivalence runs one in-process
//! 3-shard × 2-replica cluster per family and compares every merged
//! response — status, exact totals, and the sorted 64-row sample —
//! against a 1-shard runtime that owns the whole graph.

use std::collections::BTreeSet;
use std::sync::Arc;

use apex_net::{Client, Status};
use apex_shard::{
    ClusterConfig, Router, RouterConfig, RuntimeConfig, ShardCluster, ShardMap, ShardRuntime,
};
use apex_suite::small;
use proptest::prelude::*;
use xmlgraph::XmlGraph;

const ALPHABET: [&str; 8] = ["actor", "movie", "name", "title", "a", "b", "c", "d"];

proptest! {
    /// Totality + serialization stability: every path lands on exactly
    /// one shard below the shard count, and a map reloaded from its own
    /// bytes assigns identically.
    #[test]
    fn partitioner_is_total_and_stable_across_save_load(
        shards in 1u16..9,
        seed in 0u64..u64::MAX,
        paths in proptest::collection::vec(
            proptest::collection::vec(0..ALPHABET.len(), 0..6),
            1..20,
        ),
    ) {
        let map = ShardMap::with_seed(shards, seed);
        let loaded = ShardMap::from_bytes(&map.to_bytes()).expect("roundtrip");
        prop_assert_eq!(loaded, map);
        for p in &paths {
            let labels = || p.iter().map(|&i| ALPHABET[i]);
            let s = map.shard_of_path(labels());
            prop_assert!(s < shards.max(1), "shard {} out of range", s);
            prop_assert_eq!(s, loaded.shard_of_path(labels()), "reloaded map disagrees");
        }
    }

    /// Sibling paths that differ only in the final label may differ in
    /// owner, but the same path always re-hashes identically (pure
    /// function, no interner state).
    #[test]
    fn hashing_is_deterministic(
        shards in 1u16..9,
        seed in 0u64..u64::MAX,
        p in proptest::collection::vec(0..ALPHABET.len(), 0..8),
    ) {
        let map = ShardMap::with_seed(shards, seed);
        let labels = || p.iter().map(|&i| ALPHABET[i]);
        prop_assert_eq!(map.hash_path(labels()), map.hash_path(labels()));
        prop_assert_eq!(map.shard_of_path(labels()), map.shard_of_path(labels()));
    }
}

/// A dataset-independent query pool: every distinct element label as a
/// one-step query plus the first few distinct parent/child label pairs
/// as two-step queries.
fn derive_queries(g: &XmlGraph) -> Vec<String> {
    let mut out: BTreeSet<String> = g
        .labels()
        .iter()
        .map(|(_, s)| s)
        .filter(|s| !s.starts_with('@'))
        .take(4)
        .map(|s| format!("//{s}"))
        .collect();
    for nid in g.nodes() {
        if out.len() >= 10 {
            break;
        }
        let parent = g.tree_parent(nid);
        if parent.is_null() {
            continue;
        }
        out.insert(format!(
            "//{}/{}",
            g.label_str(g.tag(parent)),
            g.label_str(g.tag(nid))
        ));
    }
    out.into_iter().collect()
}

/// Scatter-gather over 3 shards must equal the 1-shard (whole-graph)
/// runtime exactly: same status, same totals, same sorted row sample.
fn merged_equals_single_process(g: XmlGraph) {
    let g = Arc::new(g);
    let queries = derive_queries(&g);
    assert!(queries.len() >= 4, "query pool too small: {queries:?}");
    let solo = ShardRuntime::start(
        0,
        &ShardMap::new(1),
        Arc::clone(&g),
        &RuntimeConfig::default(),
    )
    .expect("solo runtime");
    let cluster = ShardCluster::start(Arc::clone(&g), ShardMap::new(3), ClusterConfig::default())
        .expect("cluster");
    let mut router = Router::start(
        cluster.map(),
        &cluster.addrs(),
        RouterConfig::default(),
        "127.0.0.1:0",
    )
    .expect("router");

    let mut c = Client::connect(router.local_addr()).expect("connect");
    for q in &queries {
        let merged = c.call(q, 0).expect("merged call");
        let full = solo.eval_local(q);
        assert_eq!(merged.status, Status::Ok, "{q}");
        assert_eq!(full.status, Status::Ok, "{q}");
        assert_eq!(merged.total_rows, full.total_rows, "{q}: totals differ");
        assert_eq!(merged.rows, full.rows, "{q}: row samples differ");
        let shards: BTreeSet<u16> = merged.gens.iter().map(|e| e.shard).collect();
        assert_eq!(
            shards.len(),
            merged.gens.len(),
            "{q}: duplicate shard in gens"
        );
        assert_eq!(
            shards,
            BTreeSet::from([0, 1, 2]),
            "{q}: gens must cover every shard"
        );
    }
    drop(c);

    let stats = router.drain();
    assert!(stats.balanced(), "router books: {stats}");
    assert_eq!(stats.accepted, queries.len() as u64);
    assert_eq!(stats.shed, 0);
    let cluster_stats = cluster.shutdown();
    assert!(cluster_stats.balanced());
    assert_eq!(
        stats.hop_delivered(),
        cluster_stats.net_total().accepted,
        "clean-run cross-hop rollup must match the shard servers"
    );
    solo.shutdown();
}

#[test]
fn merged_extents_equal_single_process_on_play() {
    merged_equals_single_process(small::play());
}

#[test]
fn merged_extents_equal_single_process_on_flix() {
    merged_equals_single_process(small::flix());
}

#[test]
fn merged_extents_equal_single_process_on_ged() {
    merged_equals_single_process(small::ged());
}
