//! Socket-level equivalence of the sharded serving tier: a generated
//! mixed workload (QTYPE1 partial paths, QTYPE2 long paths, QTYPE3
//! value predicates) sent through the scatter-gather router over a
//! 3-shard × 2-replica cluster must return, query for query, exactly
//! what a single-process runtime owning the whole graph returns — same
//! status, same exact totals, same sorted 64-row sample. Parse errors
//! must agree too: a malformed query is refused identically on both
//! paths, never half-answered.

use std::sync::Arc;

use apex_net::{Client, Status};
use apex_query::generator::GeneratorConfig;
use apex_shard::{
    ClusterConfig, Router, RouterConfig, RuntimeConfig, ShardCluster, ShardMap, ShardRuntime,
};
use apex_suite::{small, Fixture};
use xmlgraph::paths::EnumLimits;
use xmlgraph::XmlGraph;

fn cfg(seed: u64) -> GeneratorConfig {
    GeneratorConfig {
        qtype1: 40,
        qtype2: 15,
        qtype3: 15,
        workload_fraction: 0.2,
        seed,
        limits: EnumLimits {
            max_len: 10,
            max_paths: 30_000,
        },
    }
}

fn check_dataset(g: XmlGraph, seed: u64) {
    let fx = Fixture::build(g, cfg(seed));
    let g = Arc::new(fx.g.clone());
    let solo = ShardRuntime::start(
        0,
        &ShardMap::new(1),
        Arc::clone(&g),
        &RuntimeConfig::default(),
    )
    .expect("solo runtime");
    let cluster = ShardCluster::start(
        Arc::clone(&g),
        ShardMap::new(3),
        ClusterConfig {
            replicas: 2,
            ..ClusterConfig::default()
        },
    )
    .expect("cluster");
    let mut router = Router::start(
        cluster.map(),
        &cluster.addrs(),
        RouterConfig::default(),
        "127.0.0.1:0",
    )
    .expect("router");

    let mixed: Vec<String> = fx
        .queries
        .qtype1
        .iter()
        .chain(fx.queries.qtype2.iter())
        .chain(fx.queries.qtype3.iter())
        .map(|q| q.render(&fx.g))
        .collect();
    assert!(!mixed.is_empty(), "no queries generated");

    let mut c = Client::connect(router.local_addr()).expect("connect");
    let mut ok = 0usize;
    for (qi, q) in mixed.iter().enumerate() {
        let merged = c.call(q, 0).expect("merged call");
        let full = solo.eval_local(q);
        assert_eq!(
            merged.status, full.status,
            "query #{qi} `{q}`: statuses diverge"
        );
        assert_eq!(
            merged.total_rows, full.total_rows,
            "query #{qi} `{q}`: totals diverge"
        );
        assert_eq!(
            merged.rows, full.rows,
            "query #{qi} `{q}`: row samples diverge"
        );
        if merged.status == Status::Ok {
            ok += 1;
        }
    }
    drop(c);
    assert!(
        ok * 2 > mixed.len(),
        "most generated queries must round-trip the wire syntax ({ok}/{})",
        mixed.len()
    );

    let stats = router.drain();
    assert!(stats.balanced(), "router books: {stats}");
    assert_eq!(stats.accepted, mixed.len() as u64);
    assert_eq!(stats.shed, 0);
    let cluster_stats = cluster.shutdown();
    assert!(cluster_stats.balanced());
    solo.shutdown();
}

#[test]
fn sharded_socket_answers_equal_single_process_on_play() {
    check_dataset(small::play(), 11);
}

#[test]
fn sharded_socket_answers_equal_single_process_on_flix() {
    check_dataset(small::flix(), 22);
}

#[test]
fn sharded_socket_answers_equal_single_process_on_ged() {
    check_dataset(small::ged(), 33);
}
