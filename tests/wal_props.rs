//! Property suite for WAL frames: arbitrary record sequences roundtrip
//! through the length-prefixed CRC framing, and *any* single-byte
//! corruption or truncation of a valid log never panics the decoder
//! and always yields a prefix of the original records — the exact
//! guarantee recovery's replay leans on when it truncates a torn tail.

use apex::wal::{decode_frames, Record, MAX_PAYLOAD};
use proptest::prelude::*;
use xmlgraph::{LabelId, LabelPath};

/// One arbitrary record: a query over synthetic label ids (the frame
/// codec never consults a graph) or a swap with a finite threshold.
fn record(kind: u32, labels: Vec<u32>, sup_milli: u64, window: u32) -> Record {
    if kind == 0 {
        Record::Swap {
            // milli-units keep the f64 finite and exactly representable
            // enough for PartialEq after a to_bits roundtrip
            min_sup: sup_milli as f64 / 1000.0,
            window,
        }
    } else {
        Record::Query(LabelPath::new(labels.into_iter().map(LabelId).collect()))
    }
}

fn records_strategy() -> impl Strategy<Value = Vec<Record>> {
    proptest::collection::vec(
        (
            0..4u32,
            proptest::collection::vec(0u32..60, 1..6),
            0u64..2000,
            0u32..500,
        ),
        0..40,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .map(|(kind, labels, sup, window)| record(kind, labels, sup, window))
            .collect()
    })
}

fn encode_log(records: &[Record]) -> Vec<u8> {
    let mut buf = Vec::new();
    for r in records {
        buf.extend_from_slice(&r.encode_frame());
    }
    buf
}

proptest! {
    #[test]
    fn roundtrip_arbitrary_record_sequences(records in records_strategy()) {
        let buf = encode_log(&records);
        let scan = decode_frames(&buf);
        prop_assert_eq!(&scan.records, &records);
        prop_assert_eq!(scan.consumed, buf.len() as u64);
        prop_assert_eq!(scan.torn_bytes, 0);
        for r in &records {
            let payload = r.encode_payload();
            prop_assert!(payload.len() as u32 <= MAX_PAYLOAD);
            let decoded = Record::decode_payload(&payload);
            prop_assert_eq!(decoded.as_ref(), Some(r));
        }
    }

    #[test]
    fn truncation_yields_a_prefix_never_a_panic(
        records in records_strategy(),
        cut_permille in 0u64..=1000,
    ) {
        let buf = encode_log(&records);
        let cut = (buf.len() as u64 * cut_permille / 1000) as usize;
        let scan = decode_frames(&buf[..cut]);
        prop_assert!(scan.records.len() <= records.len());
        prop_assert_eq!(&scan.records[..], &records[..scan.records.len()]);
        prop_assert_eq!(scan.consumed + scan.torn_bytes, cut as u64);
    }

    #[test]
    fn byte_corruption_yields_a_prefix_never_a_panic(
        records in records_strategy(),
        pos_permille in 0u64..1000,
        flip in 1u8..=255,
    ) {
        let buf = encode_log(&records);
        if buf.is_empty() {
            return Ok(());
        }
        let pos = (buf.len() as u64 * pos_permille / 1000) as usize;
        let mut bad = buf.clone();
        bad[pos] ^= flip;
        let scan = decode_frames(&bad);
        // The CRC (or the length/tag structure) must stop the decode at
        // or before the corrupted frame: everything decoded is an exact
        // prefix of the original sequence.
        prop_assert!(scan.records.len() <= records.len());
        prop_assert_eq!(&scan.records[..], &records[..scan.records.len()]);
        prop_assert_eq!(scan.consumed + scan.torn_bytes, bad.len() as u64);
    }
}

/// Exhaustive single-bit sweep over one concrete log — every bit of
/// every byte, not just sampled positions (cheap enough to afford).
#[test]
fn every_single_bit_flip_is_survivable() {
    let records = vec![
        record(1, vec![3, 1, 4], 0, 0),
        record(0, vec![], 250, 17),
        record(1, vec![1], 0, 0),
        record(1, vec![9, 2, 6, 5], 0, 0),
        record(0, vec![], 125, 42),
    ];
    let buf = encode_log(&records);
    for pos in 0..buf.len() {
        for bit in 0..8 {
            let mut bad = buf.clone();
            bad[pos] ^= 1 << bit;
            let scan = decode_frames(&bad);
            assert!(scan.records.len() <= records.len(), "pos {pos} bit {bit}");
            assert_eq!(
                &scan.records[..],
                &records[..scan.records.len()],
                "pos {pos} bit {bit}: not a prefix"
            );
        }
    }
}
