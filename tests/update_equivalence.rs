//! Update-equivalence suite (satellite of the serving layer): random
//! query-insert sequences over the three datagen families, applied
//! incrementally to a *live* index (periodic `refine` = extraction +
//! `updateAPEX` on the current structure), must converge to an index
//! extent-equivalent to a from-scratch build over the final recorded
//! state.
//!
//! This is the fixpoint property the paper's §5.3 incremental update
//! claims — and the property the concurrent serving layer leans on:
//! a refresher that repeatedly refines a private copy of the *current*
//! snapshot must land on the same index a cold rebuild would, or
//! generations would drift apart over a long-running service.

use apex::{extent_equivalent, Apex, RefreshPolicy, WorkloadMonitor};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xmlgraph::{LabelPath, NodeId, XmlGraph};

/// Random label paths that exist in `g` (random walks from random
/// nodes), so the recorded workload actually exercises extents.
fn random_walk_paths(
    g: &XmlGraph,
    rng: &mut SmallRng,
    count: usize,
    max_len: usize,
) -> Vec<LabelPath> {
    let mut out = Vec::with_capacity(count);
    let mut attempts = 0usize;
    while out.len() < count && attempts < count * 20 {
        attempts += 1;
        let mut cur = NodeId(rng.gen_range(0..g.node_count() as u32));
        let mut labels = Vec::new();
        let len = rng.gen_range(1..=max_len);
        for _ in 0..len {
            let edges = g.out_edges(cur);
            if edges.is_empty() {
                break;
            }
            let e = &edges[rng.gen_range(0..edges.len())];
            labels.push(e.label);
            cur = e.to;
        }
        if !labels.is_empty() {
            out.push(LabelPath::new(labels));
        }
    }
    assert!(!out.is_empty(), "walk generation produced no paths");
    out
}

/// Drives a random insert sequence with periodic live refreshes on one
/// index, then certifies extent-equivalence against a from-scratch
/// `build_initial` + single `refine` over the final window.
fn check_family(g: &XmlGraph, seed: u64, inserts: usize, refresh_every: usize, min_sup: f64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    // A pool of hot candidate paths; the insert sequence samples from it
    // with drifting weights, so paths become and stop being frequent
    // across refreshes (exercising both growth and pruning in
    // updateAPEX).
    let pool = random_walk_paths(g, &mut rng, 12, 3);

    let mut live = Apex::build_initial(g);
    let mut monitor = WorkloadMonitor::new(refresh_every, min_sup, RefreshPolicy::Manual);
    let mut refreshes = 0usize;
    for i in 0..inserts {
        // Drift: the hot region of the pool slides with i.
        let hot = (i * pool.len()) / inserts.max(1);
        let pick = if rng.gen_range(0..100) < 70 {
            hot % pool.len()
        } else {
            rng.gen_range(0..pool.len())
        };
        monitor.record(pool[pick].clone());
        if (i + 1) % refresh_every == 0 {
            monitor.refresh(g, &mut live);
            refreshes += 1;
        }
    }
    // Final refresh so the live index reflects exactly the final window.
    monitor.refresh(g, &mut live);
    refreshes += 1;
    assert!(refreshes >= 3, "sequence must exercise multiple refreshes");

    // From-scratch build over the final state: APEX⁰ + one refine with
    // the final window at the same threshold.
    let mut scratch = Apex::build_initial(g);
    scratch.refine(g, &monitor.workload(), monitor.min_sup());

    if let Err(why) = extent_equivalent(g, &live, &scratch) {
        panic!("live index diverged from from-scratch build (seed {seed}): {why}");
    }
    // Both must also pass the structural validator.
    let v = apex::validate::check(g, &live);
    assert!(v.is_empty(), "live index invalid: {v:#?}");
}

#[test]
fn shakespeare_insert_sequences_converge() {
    let g = apex_suite::small::play();
    for seed in [1u64, 2, 3] {
        check_family(&g, 0x5AE5_0000 + seed, 120, 30, 0.1);
    }
}

#[test]
fn flixml_insert_sequences_converge() {
    let g = apex_suite::small::flix();
    for seed in [1u64, 2, 3] {
        check_family(&g, 0xF11C_0000 + seed, 120, 30, 0.1);
    }
}

#[test]
fn gedml_insert_sequences_converge() {
    let g = apex_suite::small::ged();
    for seed in [1u64, 2, 3] {
        check_family(&g, 0x6ED0_0000 + seed, 120, 30, 0.08);
    }
}

#[test]
fn window_capacity_bounds_the_final_state() {
    // The window (not the full history) defines the final state: a
    // sequence twice the window long must equal a scratch build over
    // just the surviving window.
    let g = apex_suite::small::flix();
    let mut rng = SmallRng::seed_from_u64(0xCAFE);
    let pool = random_walk_paths(&g, &mut rng, 8, 3);
    let mut live = Apex::build_initial(&g);
    let mut monitor = WorkloadMonitor::new(40, 0.1, RefreshPolicy::Manual);
    for i in 0..80 {
        monitor.record(pool[i % pool.len()].clone());
        if (i + 1) % 20 == 0 {
            monitor.refresh(&g, &mut live);
        }
    }
    monitor.refresh(&g, &mut live);
    let mut scratch = Apex::build_initial(&g);
    scratch.refine(&g, &monitor.workload(), monitor.min_sup());
    extent_equivalent(&g, &live, &scratch).expect("windowed state must converge");
}
