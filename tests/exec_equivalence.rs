//! Execution-layer equivalence: a generated mixed workload (QTYPE1/2/3)
//! evaluated through the shared physical operators — all four processors
//! charging ONE cross-query buffer pool — must return exactly the naive
//! oracle's nodes, and the cost accounting must stay consistent:
//! per-operator attribution partitions every scalar counter, the shared
//! pool absorbs repeated I/O across processors, and parallel batches
//! over the shared pool reproduce sequential aggregate costs.
//!
//! Every semijoin here runs over the *succinct* extent path (rank/select
//! directory, sampled restarts, windowed decode) — the kernel-policy
//! sweep below therefore also proves each kernel's succinct
//! implementation equivalent to the naive oracle end to end.

use apex_query::batch::{run_batch, run_batch_parallel, QueryProcessor};
use apex_query::generator::GeneratorConfig;
use apex_query::naive::NaiveProcessor;
use apex_query::Query;
use apex_query::{apex_qp::ApexProcessor, fabric_qp::FabricProcessor, guide_qp::GuideProcessor};
use apex_storage::bufmgr::BufferHandle;
use apex_storage::{Cost, KernelPolicy, OpKind};
use apex_suite::{small, Fixture};
use xmlgraph::paths::EnumLimits;
use xmlgraph::XmlGraph;

fn cfg(seed: u64) -> GeneratorConfig {
    GeneratorConfig {
        qtype1: 120,
        qtype2: 40,
        qtype3: 40,
        workload_fraction: 0.2,
        seed,
        limits: EnumLimits {
            max_len: 10,
            max_paths: 30_000,
        },
    }
}

/// Every per-operator scalar column must sum to the query-total scalar:
/// the breakdown is a partition, not an estimate.
fn assert_partition(cost: &Cost, who: &str) {
    for (i, total) in cost.scalars().iter().enumerate() {
        let attributed: u64 = OpKind::ALL
            .iter()
            .map(|&k| cost.ops.get(k).scalars[i])
            .sum();
        assert_eq!(
            attributed, *total,
            "{who}: scalar #{i} not fully attributed"
        );
    }
}

fn check_dataset(g: XmlGraph, seed: u64) {
    let fx = Fixture::build(g, cfg(seed));
    let naive = NaiveProcessor::new(&fx.g, &fx.table);
    let apex = fx.apex_at(0.01);

    // ONE pool shared by every processor under test: extents live in
    // disjoint address spaces, so sharing must never corrupt results.
    let pool = BufferHandle::unbounded();
    let processors: Vec<Box<dyn QueryProcessor + '_>> = vec![
        Box::new(ApexProcessor::with_buffer(
            &fx.g,
            &fx.apex0,
            &fx.table,
            pool.clone(),
        )),
        Box::new(ApexProcessor::with_buffer(
            &fx.g,
            &apex,
            &fx.table,
            pool.clone(),
        )),
        Box::new(GuideProcessor::with_buffer(
            &fx.g,
            &fx.sdg,
            &fx.table,
            pool.clone(),
        )),
        Box::new(GuideProcessor::with_buffer(
            &fx.g,
            &fx.oneindex,
            &fx.table,
            pool.clone(),
        )),
        Box::new(FabricProcessor::with_buffer(
            &fx.g,
            &fx.fabric,
            pool.clone(),
        )),
    ];

    let mixed: Vec<&Query> = fx
        .queries
        .qtype1
        .iter()
        .chain(fx.queries.qtype2.iter())
        .chain(fx.queries.qtype3.iter())
        .collect();

    let mut summed = Cost::new();
    for (qi, q) in mixed.iter().enumerate() {
        let expect = naive.eval(q).nodes;
        for p in &processors {
            // The fabric only serves QTYPE3 (and, being bounded on
            // reference-dense graphs, is correctness-checked separately
            // in `equivalence.rs`); here it participates to exercise
            // pool sharing.
            if p.name() == "Fabric" {
                if matches!(q, Query::ValuePath { .. }) {
                    let _ = p.eval(q);
                }
                continue;
            }
            let out = p.eval(q);
            assert_eq!(
                out.nodes,
                expect,
                "query #{qi} {} differs on {}",
                q.render(&fx.g),
                p.name()
            );
            assert_partition(&out.cost, p.name());
            summed += out.cost;
        }
    }
    assert_partition(&summed, "summed");

    // The pool outlived every query and processor: repeats hit it.
    let s = pool.stats();
    assert!(
        s.hits > 0,
        "shared pool saw no hits over {} queries",
        mixed.len()
    );
    assert!(s.misses > 0);
    assert_eq!(s.evictions, 0, "unbounded pool must not evict");
    // Every processor exposes the same shared pool.
    for p in &processors {
        assert_eq!(p.buffer().expect("exec-layer processor").stats(), s);
    }
}

#[test]
fn mixed_workload_on_play() {
    check_dataset(small::play(), 0xE1);
}

#[test]
fn mixed_workload_on_flix() {
    check_dataset(small::flix(), 0xE2);
}

#[test]
fn mixed_workload_on_ged() {
    check_dataset(small::ged(), 0xE3);
}

/// The kernel policy must never change results: the same mixed workload
/// through APEX under every fixed kernel and the adaptive default
/// returns the naive oracle's nodes, with attribution still a partition
/// — and identical logical join output across policies. The join order
/// is pinned to forward so only the kernel varies: under the planned
/// default a forced kernel policy shifts the planner's cost estimates
/// and can legitimately flip the join order (order equivalence is
/// `every_join_order_is_equivalent`'s concern).
#[test]
fn every_kernel_policy_is_equivalent() {
    let fx = Fixture::build(small::flix(), cfg(0xE5));
    let naive = NaiveProcessor::new(&fx.g, &fx.table);
    let apex = fx.apex_at(0.01);
    let mixed: Vec<&Query> = fx
        .queries
        .qtype1
        .iter()
        .chain(fx.queries.qtype2.iter())
        .chain(fx.queries.qtype3.iter())
        .collect();
    let expect: Vec<Vec<xmlgraph::NodeId>> = mixed.iter().map(|q| naive.eval(q).nodes).collect();
    let mut join_output: Option<u64> = None;
    for policy in KernelPolicy::ALL {
        let p = ApexProcessor::new(&fx.g, &apex, &fx.table)
            .with_kernel_policy(policy)
            .with_join_order(apex_query::JoinOrderPolicy::ForceForward);
        let mut total = Cost::new();
        for (qi, q) in mixed.iter().enumerate() {
            let out = p.eval(q);
            assert_eq!(
                out.nodes,
                expect[qi],
                "policy {} differs on {}",
                policy.name(),
                q.render(&fx.g)
            );
            assert_partition(&out.cost, policy.name());
            total += out.cost;
        }
        // Whatever kernel runs, the same pairs flow.
        match join_output {
            None => join_output = Some(total.join_output),
            Some(j) => assert_eq!(total.join_output, j, "policy {}", policy.name()),
        }
    }
}

/// The cost-based planner's join order must never change results: the
/// same mixed workload through APEX under the planned default and both
/// forced orders returns the naive oracle's nodes, attribution stays a
/// partition, and every evaluated query carries a plan report whose
/// per-operator actuals are bounded by (and, for pure path queries,
/// exactly partition) the query's total cost.
#[test]
fn every_join_order_is_equivalent() {
    use apex_query::JoinOrderPolicy;
    let fx = Fixture::build(small::ged(), cfg(0xE6));
    let naive = NaiveProcessor::new(&fx.g, &fx.table);
    let apex = fx.apex_at(0.01);
    let mixed: Vec<&Query> = fx
        .queries
        .qtype1
        .iter()
        .chain(fx.queries.qtype2.iter())
        .chain(fx.queries.qtype3.iter())
        .collect();
    let expect: Vec<Vec<xmlgraph::NodeId>> = mixed.iter().map(|q| naive.eval(q).nodes).collect();
    for order in [
        JoinOrderPolicy::Planned,
        JoinOrderPolicy::ForceForward,
        JoinOrderPolicy::ForceBackward,
    ] {
        let p = ApexProcessor::new(&fx.g, &apex, &fx.table).with_join_order(order);
        for (qi, q) in mixed.iter().enumerate() {
            let out = p.eval(q);
            assert_eq!(
                out.nodes,
                expect[qi],
                "order {} differs on {}",
                order.name(),
                q.render(&fx.g)
            );
            assert_partition(&out.cost, order.name());
            let rep = out.plan.expect("apex reports a plan for every query");
            let actual: u64 = rep
                .forecasts
                .iter()
                .map(|f| f.actual_work + f.actual_pages)
                .sum();
            assert!(
                actual <= out.cost.total(),
                "plan actuals exceed the query cost on {}",
                q.render(&fx.g)
            );
            if matches!(q, Query::PartialPath { .. }) {
                assert_eq!(
                    actual,
                    out.cost.total(),
                    "order {}: plan actuals must partition the cost of {}",
                    order.name(),
                    q.render(&fx.g)
                );
            }
        }
    }
}

/// `run_batch_parallel` over one shared pool: with an unbounded pool
/// every distinct page misses exactly once regardless of thread
/// schedule, so aggregate scalars, logical per-operator counters, and
/// pool deltas must equal a sequential run over an identically fresh
/// pool. Only the per-operator *page* split may differ — which
/// operator first touches a shared page is schedule-dependent.
#[test]
fn parallel_batch_shares_pool_without_races() {
    let fx = Fixture::build(small::flix(), cfg(0xE4));
    let queries: Vec<Query> = fx
        .queries
        .qtype1
        .iter()
        .chain(fx.queries.qtype2.iter())
        .chain(fx.queries.qtype3.iter())
        .cloned()
        .collect();
    let apex = fx.apex_at(0.01);

    let seq = run_batch(&ApexProcessor::new(&fx.g, &apex, &fx.table), &queries);
    let par = run_batch_parallel(&ApexProcessor::new(&fx.g, &apex, &fx.table), &queries, 4);
    assert_eq!(seq.queries, par.queries);
    assert_eq!(seq.result_nodes, par.result_nodes);
    assert_eq!(seq.empty_results, par.empty_results);
    assert_eq!(seq.cost.scalars(), par.cost.scalars(), "aggregate scalars");
    const PAGES: usize = 5; // pages_read: attribution is schedule-dependent
    for &k in OpKind::ALL.iter() {
        let (s, p) = (seq.cost.ops.get(k), par.cost.ops.get(k));
        assert_eq!(s.invocations, p.invocations, "{} invocations", k.name());
        for i in (0..s.scalars.len()).filter(|&i| i != PAGES) {
            assert_eq!(s.scalars[i], p.scalars[i], "{} scalar #{i}", k.name());
        }
    }
    let (sb, pb) = (seq.buf.expect("pool delta"), par.buf.expect("pool delta"));
    assert_eq!(sb.misses, pb.misses);
    assert_eq!(sb.hits, pb.hits);
    assert!(pb.hits > 0);
}
