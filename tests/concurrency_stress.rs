//! Deterministic concurrency stress for the serving layer: N query
//! workers read through an [`IndexCell`] while a publisher swaps in M
//! new index generations underneath them.
//!
//! Determinism: every index version, every query, and every expected
//! answer is precomputed before a single thread starts; the run is
//! stepped with [`std::sync::Barrier`]s (no sleeps), so each round has
//! exactly one publish racing the workers' reads and nothing else is
//! timing-dependent. Workers assert, per snapshot taken:
//!
//! * **no torn snapshots** — the snapshot's generation selects a
//!   precomputed fingerprint (index stats + required-path set) that
//!   must match the snapshot's index exactly; a reader that ever saw
//!   generation k paired with generation j's structure fails here;
//! * **answer consistency** — query answers through the snapshot equal
//!   the answers precomputed for that generation single-threaded;
//! * **bounded staleness** — in round r the observed generation is r or
//!   r + 1 (the one publish of the round either landed or didn't).
//!
//! After joining, the per-worker scoped [`BufferStats`] deltas must sum
//! to exactly the pool-level delta: every page touch is attributed to
//! one worker, across all snapshot swaps (generation-tagged object ids
//! keep the shared pool coherent between versions).

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};

use apex::{Apex, IndexCell, IndexStats, RefreshPolicy, Refresher, Workload, WorkloadMonitor};
use apex_query::apex_qp::ApexProcessor;
use apex_query::batch::QueryProcessor;
use apex_query::Query;
use apex_storage::bufmgr::BufferHandle;
use apex_storage::{BufferStats, DataTable, PageModel};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xmlgraph::{LabelPath, NodeId, XmlGraph};

const WORKERS: usize = 4;
const PUBLISHES: usize = 6;
const QUERIES_PER_ROUND: usize = 16;

/// What a reader can check about an index without ambiguity: stats are
/// `PartialEq` and required paths are a set of rendered strings.
#[derive(Debug, Clone, PartialEq)]
struct Fingerprint {
    stats: IndexStats,
    required: BTreeSet<String>,
}

fn fingerprint(g: &XmlGraph, index: &Apex) -> Fingerprint {
    Fingerprint {
        stats: index.stats(),
        required: index.required_paths(g).into_iter().collect(),
    }
}

/// Random existing label paths via random walks (seeded, so the whole
/// stress run is reproducible from constants in this file).
fn random_walk_paths(
    g: &XmlGraph,
    rng: &mut SmallRng,
    count: usize,
    max_len: usize,
) -> Vec<LabelPath> {
    let mut out = Vec::new();
    let mut attempts = 0;
    while out.len() < count && attempts < count * 30 {
        attempts += 1;
        let mut cur = NodeId(rng.gen_range(0..g.node_count() as u32));
        let mut labels = Vec::new();
        for _ in 0..rng.gen_range(1..=max_len) {
            let edges = g.out_edges(cur);
            if edges.is_empty() {
                break;
            }
            let e = &edges[rng.gen_range(0..edges.len())];
            labels.push(e.label);
            cur = e.to;
        }
        if !labels.is_empty() {
            out.push(LabelPath::new(labels));
        }
    }
    assert!(out.len() == count, "could not generate {count} walk paths");
    out
}

#[test]
fn workers_never_observe_torn_snapshots_and_buffer_deltas_partition() {
    let g = apex_suite::small::flix();
    let table = DataTable::build(&g, PageModel::default());
    let mut rng = SmallRng::seed_from_u64(0x57E5_5001);

    // Pre-build the version chain exactly as a refresher would produce
    // it: each version is the previous one refined with a fresh window.
    let mut versions: Vec<Apex> = vec![Apex::build_initial(&g)];
    for v in 0..PUBLISHES {
        let window = random_walk_paths(&g, &mut rng, 10, 3);
        let wl = Workload::from_paths(window);
        let mut next = versions[v].clone();
        next.refine(&g, &wl, 0.05);
        versions.push(next);
    }
    let fingerprints: Vec<Fingerprint> = versions.iter().map(|v| fingerprint(&g, v)).collect();
    // Distinct fingerprints make the torn-snapshot check decisive: a
    // generation paired with any other version's structure is caught.
    for i in 0..fingerprints.len() {
        for j in i + 1..fingerprints.len() {
            assert_ne!(
                fingerprints[i], fingerprints[j],
                "versions {i} and {j} are indistinguishable; widen the workloads"
            );
        }
    }

    // Fixed query set + per-generation expected answers, single-threaded.
    let queries: Vec<Query> = random_walk_paths(&g, &mut rng, QUERIES_PER_ROUND, 4)
        .into_iter()
        .map(|p| Query::PartialPath { labels: p.0 })
        .collect();
    let expected: Vec<Vec<Vec<NodeId>>> = versions
        .iter()
        .map(|v| {
            let qp = ApexProcessor::new(&g, v, &table);
            queries.iter().map(|q| qp.eval(q).nodes).collect()
        })
        .collect();

    let cell = IndexCell::new(versions[0].clone());
    let buf = BufferHandle::unbounded();
    let pool_before = buf.stats();
    // Barrier over workers + the publisher: two waits per round bracket
    // the window in which exactly one publish races the reads.
    let barrier = Barrier::new(WORKERS + 1);
    let max_gen_seen = AtomicU64::new(0);

    let worker_deltas: Vec<BufferStats> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..WORKERS {
            let scoped = buf.scoped();
            let (g, table, cell, barrier) = (&g, &table, &cell, &barrier);
            let (fingerprints, queries, expected) = (&fingerprints, &queries, &expected);
            let max_gen_seen = &max_gen_seen;
            handles.push(scope.spawn(move || {
                let mut last_gen = 0u64;
                for round in 0..PUBLISHES {
                    barrier.wait();
                    let snap = cell.snapshot();
                    let gen = snap.generation();
                    // Bounded staleness: the round's single publish
                    // either landed before our snapshot or it didn't.
                    assert!(
                        gen == round as u64 || gen == round as u64 + 1,
                        "worker {w} round {round}: impossible generation {gen}"
                    );
                    // Monotonic per reader.
                    assert!(gen >= last_gen, "worker {w}: generation went backwards");
                    last_gen = gen;
                    // Torn-snapshot check: generation and structure must
                    // belong together.
                    assert_eq!(
                        fingerprint(g, snap.index()),
                        fingerprints[gen as usize],
                        "worker {w} round {round}: snapshot torn at generation {gen}"
                    );
                    let qp = ApexProcessor::with_buffer_tagged(
                        g,
                        snap.index(),
                        table,
                        scoped.clone(),
                        gen,
                    );
                    for (qi, q) in queries.iter().enumerate() {
                        assert_eq!(
                            qp.eval(q).nodes,
                            expected[gen as usize][qi],
                            "worker {w} round {round} query {qi}: wrong answer at generation {gen}"
                        );
                    }
                    max_gen_seen.fetch_max(gen, Ordering::Relaxed);
                    barrier.wait();
                }
                scoped.scoped_stats()
            }));
        }
        // Publisher: one swap per round, concurrent with the reads.
        for round in 0..PUBLISHES {
            barrier.wait();
            let published = cell.publish(versions[round + 1].clone());
            assert_eq!(published, round as u64 + 1);
            barrier.wait();
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });

    assert_eq!(cell.generation(), PUBLISHES as u64);
    assert!(
        max_gen_seen.load(Ordering::Relaxed) >= 1,
        "no worker ever saw a swap"
    );

    // Attribution invariant: every pool counter movement belongs to
    // exactly one worker, across all generations and swaps.
    let pool_delta = buf.stats() - pool_before;
    let summed = worker_deltas
        .iter()
        .fold(BufferStats::default(), |acc, d| acc + *d);
    assert_eq!(
        summed, pool_delta,
        "per-worker scoped deltas do not partition the pool delta"
    );
    assert!(
        pool_delta.pages_read > 0,
        "stress run never touched the pool"
    );
}

#[test]
fn refresher_publishes_while_workers_record_and_read() {
    // End-to-end with the real background refresher instead of a
    // scripted publisher: workers record paths into the shared monitor
    // and read snapshots; between barrier-stepped phases the main
    // thread requests a refresh and waits for it to publish. Every
    // phase records a non-empty window, so the generation count equals
    // the phase count exactly — deterministically, with no sleeps.
    let g = Arc::new(xmlgraph::builder::moviedb());
    let cell = Arc::new(IndexCell::new(Apex::build_initial(&g)));
    let monitor = Arc::new(Mutex::new(WorkloadMonitor::new(
        64,
        0.1,
        RefreshPolicy::Manual,
    )));
    let refresher =
        Refresher::spawn(Arc::clone(&g), Arc::clone(&cell), Arc::clone(&monitor)).expect("spawn");

    const PHASES: usize = 3;
    let phase_paths = ["actor.name", "movie.title", "director.movie"];
    let barrier = Barrier::new(WORKERS + 1);
    let held_at_start = cell.snapshot();
    let stats_at_start = held_at_start.index().stats();

    std::thread::scope(|scope| {
        for _ in 0..WORKERS {
            let (g, cell, monitor, barrier) = (&g, &cell, &monitor, &barrier);
            scope.spawn(move || {
                for phase_path in phase_paths.iter().take(PHASES) {
                    barrier.wait();
                    let p = LabelPath::parse(g, phase_path).expect("path");
                    for _ in 0..8 {
                        monitor
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .record(p.clone());
                        // Reads interleave with recording; the snapshot
                        // is always a complete, queryable index.
                        let snap = cell.snapshot();
                        let lk = snap.index().lookup(p.labels());
                        assert!(lk.matched_len >= 1);
                    }
                    barrier.wait();
                }
            });
        }
        for phase in 0..PHASES {
            barrier.wait();
            barrier.wait(); // all workers recorded this phase's window
            assert!(refresher.request_refresh());
            refresher.wait_idle();
            assert_eq!(cell.generation(), phase as u64 + 1);
        }
    });

    let stats = refresher.shutdown();
    assert_eq!(stats.refreshes, PHASES as u64);
    assert_eq!(stats.empty_windows, 0);
    // The snapshot held since before the first publish is untouched.
    assert_eq!(held_at_start.generation(), 0);
    assert_eq!(held_at_start.index().stats(), stats_at_start);
    // The final index is structurally valid after three live refreshes.
    let v = apex::validate::check(&g, cell.snapshot().index());
    assert!(v.is_empty(), "final index invalid: {v:#?}");
}
