//! Property-based differential tests: random graphs × random workloads ×
//! random queries. APEX (refined arbitrarily) and the DataGuide must
//! always agree with direct graph evaluation, and the index invariants
//! (Theorems 1 and 2, hash-tree/remainder consistency) must hold.

use apex::{Apex, Workload};
use apex_query::batch::QueryProcessor;
use apex_query::naive::NaiveProcessor;
use apex_query::{apex_qp::ApexProcessor, guide_qp::GuideProcessor};
use apex_storage::{DataTable, PageModel};
use dataguide::DataGuide;
use proptest::prelude::*;
use xmlgraph::builder::RawGraphBuilder;
use xmlgraph::{LabelPath, XmlGraph};

/// Strategy parameters for a random labeled digraph: a random tree over
/// `n` nodes with labels from a small alphabet, plus `extra` reference
/// edges labeled with their target's tag (the §3 encoding invariant).
#[derive(Debug, Clone)]
struct RandGraph {
    /// parent[i] < i for node i+1.
    parents: Vec<usize>,
    /// Tag index (into alphabet) per non-root node.
    tags: Vec<usize>,
    /// Extra edges (from, to) by node index.
    extras: Vec<(usize, usize)>,
    /// Values on some leaves.
    values: Vec<(usize, u8)>,
}

const ALPHABET: [&str; 6] = ["a", "b", "c", "d", "e", "f"];

fn rand_graph(max_nodes: usize) -> impl Strategy<Value = RandGraph> {
    (2..max_nodes).prop_flat_map(|n| {
        let parents = (1..n).map(|i| (0..i).boxed()).collect::<Vec<_>>();
        let tags = proptest::collection::vec(0..ALPHABET.len(), n - 1);
        let extras = proptest::collection::vec((0..n, 1..n), 0..n / 2);
        let values = proptest::collection::vec((1..n, 0u8..5), 0..n / 2);
        (parents, tags, extras, values).prop_map(|(parents, tags, extras, values)| RandGraph {
            parents,
            tags,
            extras,
            values,
        })
    })
}

fn materialize(rg: &RandGraph) -> XmlGraph {
    let n = rg.parents.len() + 1;
    let mut b = RawGraphBuilder::new();
    b.node(0, "root", None, None);
    for i in 1..n {
        let tag = ALPHABET[rg.tags[i - 1]];
        let value = rg
            .values
            .iter()
            .find(|(node, _)| *node == i)
            .map(|(_, v)| format!("v{v}"));
        b.node(
            i as u32,
            tag,
            Some(rg.parents[i - 1] as u32),
            value.as_deref(),
        );
    }
    // Tree edges (label = child's tag).
    for i in 1..n {
        let tag = ALPHABET[rg.tags[i - 1]];
        b.edge(rg.parents[i - 1] as u32, tag, i as u32);
    }
    // Extra edges labeled with the target's tag (may create cycles and
    // multi-parents, like IDREF references).
    for &(from, to) in &rg.extras {
        if from == to {
            continue;
        }
        let tag = ALPHABET[rg.tags[to - 1]];
        b.edge(from as u32, tag, to as u32);
    }
    b.finish(&[])
}

/// Random label paths over the alphabet (some matching, some not).
fn rand_paths(max_len: usize, count: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    proptest::collection::vec(
        proptest::collection::vec(0..ALPHABET.len(), 1..=max_len),
        1..=count,
    )
}

fn to_label_path(g: &XmlGraph, idxs: &[usize]) -> Option<LabelPath> {
    let labels = idxs
        .iter()
        .map(|&i| g.label_id(ALPHABET[i]))
        .collect::<Option<Vec<_>>>()?;
    Some(LabelPath::new(labels))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

    /// QTYPE1 equivalence: APEX⁰, workload-refined APEX and the SDG all
    /// agree with naive evaluation on arbitrary graphs and queries.
    #[test]
    fn qtype1_equivalence(
        rg in rand_graph(40),
        workload_paths in rand_paths(3, 6),
        query_paths in rand_paths(4, 12),
        min_sup in 0.05f64..0.9,
    ) {
        let g = materialize(&rg);
        let table = DataTable::build(&g, PageModel::default());
        let naive = NaiveProcessor::new(&g, &table);
        let sdg = DataGuide::build(&g);

        let mut apex = Apex::build_initial(&g);
        let wl_paths: Vec<LabelPath> = workload_paths
            .iter()
            .filter_map(|p| to_label_path(&g, p))
            .collect();
        let wl = Workload::from_paths(wl_paths);
        apex.refine(&g, &wl, min_sup);

        let ap = ApexProcessor::new(&g, &apex, &table);
        let gp = GuideProcessor::new(&g, &sdg, &table);

        for qp in &query_paths {
            let Some(path) = to_label_path(&g, qp) else { continue };
            let q = apex_query::Query::PartialPath { labels: path.0.clone() };
            let expect = naive.eval(&q).nodes;
            prop_assert_eq!(&ap.eval(&q).nodes, &expect, "APEX on {}", q.render(&g));
            prop_assert_eq!(&gp.eval(&q).nodes, &expect, "SDG on {}", q.render(&g));
        }
    }

    /// QTYPE2 equivalence on random graphs.
    #[test]
    fn qtype2_equivalence(
        rg in rand_graph(30),
        pairs in proptest::collection::vec((0..ALPHABET.len(), 0..ALPHABET.len()), 1..8),
        min_sup in 0.05f64..0.9,
    ) {
        let g = materialize(&rg);
        let table = DataTable::build(&g, PageModel::default());
        let naive = NaiveProcessor::new(&g, &table);
        let sdg = DataGuide::build(&g);
        let mut apex = Apex::build_initial(&g);
        let wl = Workload::from_paths(vec![]);
        apex.refine(&g, &wl, min_sup);
        let ap = ApexProcessor::new(&g, &apex, &table);
        let gp = GuideProcessor::new(&g, &sdg, &table);
        for &(a, b) in &pairs {
            let (Some(first), Some(last)) =
                (g.label_id(ALPHABET[a]), g.label_id(ALPHABET[b])) else { continue };
            let q = apex_query::Query::AncestorDescendant { first, last };
            let expect = naive.eval(&q).nodes;
            prop_assert_eq!(&ap.eval(&q).nodes, &expect, "APEX on {}", q.render(&g));
            prop_assert_eq!(&gp.eval(&q).nodes, &expect, "SDG on {}", q.render(&g));
        }
    }

    /// Theorems 1 & 2 hold for arbitrary graphs and workloads.
    #[test]
    fn theorems_hold(
        rg in rand_graph(35),
        workload_paths in rand_paths(3, 8),
        min_sup in 0.01f64..0.9,
    ) {
        let g = materialize(&rg);
        let mut apex = Apex::build_initial(&g);
        let wl = Workload::from_paths(
            workload_paths.iter().filter_map(|p| to_label_path(&g, p)).collect(),
        );
        apex.refine(&g, &wl, min_sup);

        // Theorem 1: simulation from G_XML to G_APEX.
        let mut stack = vec![(g.root(), apex.xroot())];
        let mut seen = std::collections::HashSet::new();
        while let Some((v, x)) = stack.pop() {
            if !seen.insert((v, x)) {
                continue;
            }
            for e in g.out_edges(v) {
                let child = apex
                    .out_edges(x)
                    .iter()
                    .find(|(l, _)| *l == e.label)
                    .map(|(_, t)| *t);
                prop_assert!(child.is_some(), "unsimulated edge label {}", g.label_str(e.label));
                stack.push((e.to, child.unwrap()));
            }
        }

        // Theorem 2: index length-2 paths exist in data.
        let mut data_pairs = std::collections::HashSet::new();
        for (_, l1, mid) in g.edges() {
            for e in g.out_edges(mid) {
                data_pairs.insert((l1, e.label));
            }
        }
        for x in apex.graph().reachable(apex.xroot()) {
            if let Some(inc) = apex.incoming_label(x) {
                for &(l2, _) in apex.out_edges(x) {
                    prop_assert!(data_pairs.contains(&(inc, l2)));
                }
            }
        }

        // Full structural validator (entry exclusivity, extent labeling,
        // label coverage, determinism, …).
        let violations = apex::validate::check(&g, &apex);
        prop_assert!(violations.is_empty(), "validator: {violations:#?}");
    }

    /// The one-scan subpath counting in H_APEX agrees with the reference
    /// support definition.
    #[test]
    fn support_counting_correct(
        rg in rand_graph(25),
        workload_paths in rand_paths(4, 10),
        min_sup in 0.1f64..0.9,
    ) {
        let g = materialize(&rg);
        let mut apex = Apex::build_initial(&g);
        let wl = Workload::from_paths(
            workload_paths.iter().filter_map(|p| to_label_path(&g, p)).collect(),
        );
        apex.refine(&g, &wl, min_sup);
        let required = apex.required_paths(&g);

        // Every multi-label required path must have support >= minSup;
        // conversely every subpath of a workload query with support >=
        // minSup must be required.
        for r in &required {
            if !r.contains('.') {
                continue;
            }
            let p = LabelPath::parse(&g, r).unwrap();
            prop_assert!(
                wl.support(&p) * (wl.len() as f64) >= min_sup * (wl.len() as f64) - 1e-9,
                "required {} has support {}", r, wl.support(&p)
            );
        }
        for q in wl.iter() {
            for sub in q.subpaths() {
                if sub.len() < 2 {
                    continue;
                }
                if wl.support(&sub) >= min_sup {
                    let rendered = sub.render(&g);
                    prop_assert!(
                        required.contains(&rendered),
                        "frequent {} missing from required set", rendered
                    );
                }
            }
        }
    }
}

/// Algebraic laws of the extent edge-set kernels (the join machinery all
/// query processors rely on).
mod edgeset_laws {
    use apex_storage::{EdgePair, EdgeSet};
    use proptest::prelude::*;
    use xmlgraph::NodeId;

    fn pairs(max: u32, count: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
        proptest::collection::vec((0..max, 0..max), 0..count)
    }

    fn set(v: &[(u32, u32)]) -> EdgeSet {
        EdgeSet::from_raw(v)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

        #[test]
        fn union_is_commutative_and_idempotent(a in pairs(40, 30), b in pairs(40, 30)) {
            let (sa, sb) = (set(&a), set(&b));
            prop_assert_eq!(sa.union(&sb), sb.union(&sa));
            prop_assert_eq!(sa.union(&sa), sa.clone());
        }

        #[test]
        fn difference_union_partition(a in pairs(40, 30), b in pairs(40, 30)) {
            // (a \ b) ∪ (a ∩ b) == a, where a ∩ b = a \ (a \ b).
            let (sa, sb) = (set(&a), set(&b));
            let diff = sa.difference(&sb);
            let inter = sa.difference(&diff);
            prop_assert_eq!(diff.union(&inter), sa.clone());
            prop_assert!(diff.is_subset_of(&sa));
            prop_assert!(inter.is_subset_of(&sb));
        }

        #[test]
        fn union_in_place_matches_union(a in pairs(40, 30), b in pairs(40, 30)) {
            let (mut sa, sb) = (set(&a), set(&b));
            let expect = sa.union(&sb);
            let mut scratch = Vec::new();
            sa.union_in_place(&sb, &mut scratch);
            prop_assert_eq!(sa, expect);
        }

        #[test]
        fn semijoin_variants_agree(a in pairs(40, 30), b in pairs(40, 30)) {
            let (sa, sb) = (set(&a), set(&b));
            let ends = sa.end_nodes();
            let (scan, _) = sa.semijoin_next(&sb);
            let (merge, _) = sb.semijoin_ends(ends.into());
            let (probe, _) = sb.probe_by_parents(ends.into());
            prop_assert_eq!(&scan, &merge);
            prop_assert_eq!(&scan, &probe);
            // …and through the plain-slice face of the `Ends` view.
            let ends_v: Vec<NodeId> = ends.to_vec();
            let (merge_s, _) = sb.semijoin_ends((&ends_v[..]).into());
            prop_assert_eq!(&scan, &merge_s);
            // Reference semantics: pairs of b whose parent is an end of a.
            let expect: Vec<EdgePair> = sb
                .iter()
                .filter(|p| ends_v.binary_search(&p.parent).is_ok())
                .collect();
            prop_assert_eq!(scan.pairs().to_vec(), expect);
        }

        #[test]
        fn end_nodes_sorted_distinct(a in pairs(40, 60)) {
            let s = set(&a);
            let ends = s.end_nodes().to_vec();
            prop_assert_eq!(ends.len(), s.end_nodes().len());
            prop_assert!(ends.windows(2).all(|w| w[0] < w[1]));
            for e in &ends {
                prop_assert!(a.iter().any(|&(_, n)| NodeId(n) == *e));
            }
        }
    }
}

/// Laws of the shared execution layer: the adaptive semijoin operator
/// returns the same pairs whichever access path it picks, every scalar
/// an operator moves is attributed to exactly one operator, and the
/// cross-query pool makes re-execution I/O-free without changing
/// results.
mod exec_laws {
    use apex_query::exec::{self, ExecContext, ExtentScan, ExtentUnion};
    use apex_storage::bufmgr::{BufferHandle, Space};
    use apex_storage::{EdgePair, EdgeSet, OpKind};
    use proptest::prelude::*;

    fn pairs(max: u32, count: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
        proptest::collection::vec((0..max, 0..max), 0..count)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

        #[test]
        fn adaptive_semijoin_matches_reference(a in pairs(60, 40), b in pairs(60, 40)) {
            let (sa, sb) = (EdgeSet::from_raw(&a), EdgeSet::from_raw(&b));
            let ends = sa.end_nodes();
            let buf = BufferHandle::unbounded();
            let mut ctx = ExecContext::new(&buf);
            let hit = exec::semijoin(&mut ctx, ends.into(), Space::ApexExtent, 0, &sb);
            let ends_vec = ends.to_vec();
            let expect: Vec<EdgePair> = sb
                .iter()
                .filter(|p| ends_vec.binary_search(&p.parent).is_ok())
                .collect();
            prop_assert_eq!(hit.pairs().to_vec(), expect);
            // Exactly one semijoin kernel ran.
            let cost = ctx.finish();
            let semijoins: u64 = [
                OpKind::SemijoinMerge,
                OpKind::SemijoinGallop,
                OpKind::SemijoinSkip,
            ]
            .iter()
            .map(|&k| cost.ops.get(k).invocations)
            .sum();
            prop_assert_eq!(semijoins, 1);
        }

        #[test]
        fn attribution_is_a_partition(a in pairs(60, 40), b in pairs(60, 40)) {
            let (sa, sb) = (EdgeSet::from_raw(&a), EdgeSet::from_raw(&b));
            let buf = BufferHandle::unbounded();
            let mut ctx = ExecContext::new(&buf);
            ExtentScan::pairs(Space::ApexExtent, 0, &sa).run(&mut ctx);
            let u = ExtentUnion {
                sources: vec![(0, &sa), (1, &sb)],
                space: Space::ApexExtent,
            }
            .run(&mut ctx);
            let ends = u.end_nodes();
            let _ = exec::semijoin(&mut ctx, ends.into(), Space::ApexExtent, 2, &sb);
            let cost = ctx.finish();
            // Per-operator scalars sum exactly to the query totals.
            for (i, total) in cost.scalars().iter().enumerate() {
                let attributed: u64 =
                    OpKind::ALL.iter().map(|&k| cost.ops.get(k).scalars[i]).sum();
                prop_assert_eq!(attributed, *total, "scalar #{}", i);
            }
        }

        #[test]
        fn warm_rerun_is_io_free(a in pairs(60, 40), b in pairs(60, 40)) {
            let (sa, sb) = (EdgeSet::from_raw(&a), EdgeSet::from_raw(&b));
            let buf = BufferHandle::unbounded();
            let run = |buf: &BufferHandle| {
                let mut ctx = ExecContext::new(buf);
                let u = ExtentUnion {
                    sources: vec![(0, &sa), (1, &sb)],
                    space: Space::ApexExtent,
                }
                .run(&mut ctx);
                let ends = u.end_nodes();
                let hit = exec::semijoin(&mut ctx, ends.into(), Space::ApexExtent, 2, &sb);
                (hit, ctx.finish())
            };
            let (cold_hit, cold) = run(&buf);
            let (warm_hit, warm) = run(&buf);
            prop_assert_eq!(cold_hit, warm_hit);
            prop_assert_eq!(warm.pages_read, 0);
            // Only I/O changes between runs; logical work is identical.
            prop_assert_eq!(warm.extent_pairs, cold.extent_pairs);
            prop_assert_eq!(warm.join_work, cold.join_work);
            prop_assert_eq!(warm.join_output, cold.join_output);
        }
    }
}

/// Laws of the cost-based planner's feedback: on arbitrary graphs,
/// workload refinements and path queries, every join order returns the
/// oracle's nodes, and the executed plan's per-operator actuals
/// reproduce the attributed cost breakdown exactly — work + pages over
/// the report's rows is an exact partition of the query's total cost,
/// never an estimate.
mod plan_laws {
    use super::{materialize, rand_graph, rand_paths, to_label_path};
    use apex::{Apex, Workload};
    use apex_query::batch::QueryProcessor;
    use apex_query::naive::NaiveProcessor;
    use apex_query::{apex_qp::ApexProcessor, JoinOrderPolicy, Query};
    use apex_storage::{DataTable, PageModel};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

        #[test]
        fn plan_actuals_partition_query_cost(
            rg in rand_graph(35),
            workload_paths in rand_paths(3, 6),
            query_paths in rand_paths(4, 10),
            min_sup in 0.05f64..0.9,
        ) {
            let g = materialize(&rg);
            let table = DataTable::build(&g, PageModel::default());
            let naive = NaiveProcessor::new(&g, &table);
            let mut apex = Apex::build_initial(&g);
            let wl = Workload::from_paths(
                workload_paths.iter().filter_map(|p| to_label_path(&g, p)).collect(),
            );
            apex.refine(&g, &wl, min_sup);
            for order in [
                JoinOrderPolicy::Planned,
                JoinOrderPolicy::ForceForward,
                JoinOrderPolicy::ForceBackward,
            ] {
                let ap = ApexProcessor::new(&g, &apex, &table).with_join_order(order);
                for qp in &query_paths {
                    let Some(path) = to_label_path(&g, qp) else { continue };
                    let q = Query::PartialPath { labels: path.0.clone() };
                    let expect = naive.eval(&q).nodes;
                    let out = ap.eval(&q);
                    prop_assert_eq!(
                        &out.nodes, &expect,
                        "{} on {}", order.name(), q.render(&g)
                    );
                    let rep = out.plan.as_ref().expect("path queries always plan");
                    // Each row's actuals are the operator's attributed
                    // scalars: work = every non-page scalar, pages = the
                    // page scalar.
                    let mut act_work = 0u64;
                    let mut act_pages = 0u64;
                    for f in &rep.forecasts {
                        let op = out.cost.ops.get(f.kind);
                        let w: u64 = (0..8).filter(|&i| i != 5).map(|i| op.scalars[i]).sum();
                        prop_assert_eq!(f.actual_work, w, "{} work", f.kind.name());
                        prop_assert_eq!(f.actual_pages, op.scalars[5], "{} pages", f.kind.name());
                        act_work += f.actual_work;
                        act_pages += f.actual_pages;
                    }
                    // Summed over rows they are exactly the query total.
                    prop_assert_eq!(
                        act_work + act_pages,
                        out.cost.total(),
                        "partition under {} on {}", order.name(), q.render(&g)
                    );
                }
            }
        }
    }
}

/// Laws of the block storage format and the semijoin kernels: every
/// edge set survives encode → decode (in memory and through the byte
/// image), and all three kernels — plus whatever the adaptive policy
/// picks — return exactly the pairs a naive scan selects.
mod block_kernel_laws {
    use apex_storage::kernels::{self, Kernel, KernelPolicy, SemijoinScratch};
    use apex_storage::{BlockExtent, EdgePair, EdgeSet};
    use proptest::prelude::*;
    use xmlgraph::NodeId;

    fn pairs(max: u32, count: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
        proptest::collection::vec((0..max, 0..max), 0..count)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

        #[test]
        fn encode_decode_roundtrips(a in pairs(100_000, 120)) {
            let s = EdgeSet::from_raw(&a);
            let bx = BlockExtent::encode(s.pairs());
            prop_assert_eq!(bx.num_pairs(), s.len());
            prop_assert_eq!(bx.decode().unwrap(), s.pairs().to_vec());
            // …and through the serialized image.
            let img = bx.to_bytes();
            let back = BlockExtent::from_bytes(&img).unwrap();
            prop_assert_eq!(back.decode().unwrap(), s.pairs().to_vec());
            prop_assert_eq!(back.encoded_bytes(), bx.encoded_bytes());
        }

        #[test]
        fn kernels_match_naive_scan(a in pairs(400, 60), b in pairs(400, 80)) {
            let extent = EdgeSet::from_raw(&b);
            let ends: Vec<NodeId> = EdgeSet::from_raw(&a).end_nodes().to_vec();
            let expect: Vec<EdgePair> = extent
                .iter()
                .filter(|p| ends.binary_search(&p.parent).is_ok())
                .collect();
            let mut scratch = SemijoinScratch::new();
            for kernel in [Kernel::Merge, Kernel::Gallop, Kernel::BlockSkip] {
                kernels::semijoin_into(kernel, &extent, (&ends[..]).into(), &mut scratch);
                prop_assert_eq!(&scratch.out, &expect, "kernel {}", kernel.name());
            }
            let picked = KernelPolicy::Adaptive.choose(ends.len(), &extent);
            kernels::semijoin_into(picked, &extent, (&ends[..]).into(), &mut scratch);
            prop_assert_eq!(&scratch.out, &expect, "adaptive -> {}", picked.name());
        }
    }
}

/// Laws of the succinct extent representation: the rank/select
/// directory agrees with linear scans over the skip headers, the
/// batched branch-free decoder reproduces `decode_block_into` exactly,
/// the packed end-node index round-trips, and every succinct kernel
/// equals the decoded-slice baseline on arbitrary inputs.
mod succinct_laws {
    use apex_storage::kernels::{self, decoded, Kernel, SemijoinScratch};
    use apex_storage::{EdgePair, EdgeSet, EndIndex};
    use proptest::prelude::*;
    use xmlgraph::NodeId;

    fn pairs(max: u32, count: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
        proptest::collection::vec((0..max, 0..max), 0..count)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

        /// select ∘ rank identity plus header-search ≡ linear-scan: the
        /// bit-packed directory answers exactly what a walk over the
        /// raw block headers would.
        #[test]
        fn directory_rank_select_laws(a in pairs(200_000, 300)) {
            let s = EdgeSet::from_raw(&a);
            let succ = s.succinct();
            let dir = succ.directory();
            let headers = succ.image().headers();
            prop_assert_eq!(dir.num_blocks(), headers.len());
            for (k, h) in headers.iter().enumerate() {
                prop_assert_eq!(dir.count(k), h.count as usize);
                // Select inverts rank across the whole block.
                for i in [dir.pairs_before(k), dir.pairs_before(k) + h.count as usize - 1] {
                    prop_assert_eq!(dir.block_of_pair(i), k);
                }
            }
            prop_assert_eq!(dir.pairs_before(dir.num_blocks()), s.len());
            // Header search against the linear reference, probing every
            // distinct parent plus off-by-one neighbours.
            for &(p, _) in &a {
                for probe in [p.saturating_sub(1), p, p.saturating_add(1)] {
                    let linear = headers
                        .iter()
                        .position(|h| {
                            let hi = if h.max_parent == u32::MAX { u32::MAX } else { h.max_parent };
                            hi >= probe
                        })
                        .unwrap_or(headers.len());
                    prop_assert_eq!(dir.first_block_reaching(probe), linear, "probe {}", probe);
                }
            }
        }

        /// The batched branch-free window decoder materializes exactly
        /// the pairs `decode_block_into` produces, block by block.
        #[test]
        fn windowed_decoder_matches_block_decode(a in pairs(150_000, 400)) {
            let s = EdgeSet::from_raw(&a);
            let succ = s.succinct();
            let mut window = Vec::new();
            for k in 0..succ.num_blocks() {
                let mut want = Vec::new();
                succ.image().decode_block_into(k, &mut want).unwrap();
                let mut got: Vec<EdgePair> = Vec::new();
                let mut bc = succ.block_cursor(k);
                loop {
                    let n = bc.fill(&mut window);
                    if n == 0 {
                        break;
                    }
                    prop_assert_eq!(window.len(), n);
                    got.extend_from_slice(&window);
                }
                prop_assert_eq!(got, want, "block {}", k);
            }
        }

        /// The packed end-node index is a faithful sorted-set view:
        /// round-trip, order, and sample-jump skipping all agree with
        /// the plain vector.
        #[test]
        fn end_index_matches_vec(a in pairs(100_000, 300), t in 0u32..100_000) {
            let mut vals: Vec<NodeId> = a.iter().map(|&(_, n)| NodeId(n)).collect();
            vals.sort_unstable();
            vals.dedup();
            let idx = EndIndex::from_sorted(&vals);
            prop_assert_eq!(idx.len(), vals.len());
            prop_assert_eq!(idx.to_vec(), vals.clone());
            prop_assert_eq!(idx.first(), vals.first().copied());
            prop_assert_eq!(idx.last(), vals.last().copied());
            // skip_below lands on the same element as a linear scan.
            let mut cur = apex_storage::Ends::from(&idx).cursor();
            cur.skip_below(t);
            let want = vals.iter().copied().find(|&v| v >= NodeId(t));
            prop_assert_eq!(cur.peek(), want);
        }

        /// Every kernel over the succinct compressed form returns the
        /// decoded-slice baseline's pairs, with identical comparison
        /// counts for the merge kernel (same work semantics) and a
        /// decode volume never exceeding the full pair count.
        #[test]
        fn succinct_kernels_equal_decoded_baseline(a in pairs(50_000, 120), b in pairs(50_000, 400)) {
            let extent = EdgeSet::from_raw(&b);
            let ends: Vec<NodeId> = EdgeSet::from_raw(&a).end_nodes().to_vec();
            let full = extent.pairs().to_vec();
            let bx = extent.blocks();
            let mut s1 = SemijoinScratch::new();
            let mut s2 = SemijoinScratch::new();
            for kernel in [Kernel::Merge, Kernel::Gallop, Kernel::BlockSkip] {
                let r1 = kernels::semijoin_into(kernel, &extent, (&ends[..]).into(), &mut s1);
                let r2 = decoded::semijoin_into(kernel, &full, bx, &ends, &mut s2);
                prop_assert_eq!(&s1.out, &s2.out, "kernel {}", kernel.name());
                prop_assert_eq!(&s1.blocks, &s2.blocks, "kernel {} blocks", kernel.name());
                prop_assert_eq!(r1.pairs_read, r2.pairs_read, "kernel {}", kernel.name());
                prop_assert!(r1.decoded <= extent.len(), "kernel {}", kernel.name());
                // The packed end view changes nothing.
                let idx = EndIndex::from_sorted(&ends);
                let r3 = kernels::semijoin_into(kernel, &extent, (&idx).into(), &mut s2);
                prop_assert_eq!(&s1.out, &s2.out, "kernel {} packed", kernel.name());
                prop_assert_eq!(r1.work, r3.work, "kernel {} packed work", kernel.name());
            }
        }
    }
}

/// LRU buffer-manager laws: hits + misses partition the touches, the
/// resident set respects capacity, and an unbounded pool never evicts.
mod bufmgr_laws {
    use apex_storage::bufmgr::{BufferManager, ObjectId, Space};
    use apex_storage::PageModel;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

        #[test]
        fn capacity_and_counter_invariants(
            capacity in 1u64..12,
            touches in proptest::collection::vec((0u64..16, 0usize..40_000), 1..120),
        ) {
            let mut pool = BufferManager::new(PageModel::default(), capacity);
            let mut max_obj = 0u64;
            for &(id, bytes) in &touches {
                pool.touch(ObjectId::new(Space::Raw, id), bytes);
                // A just-missed object is never evicted, so residency may
                // exceed capacity only when one object is itself larger
                // than the pool.
                max_obj = max_obj.max(pool.model().pages_for_bytes(bytes).max(1));
                prop_assert!(pool.resident_pages() <= capacity.max(max_obj));
            }
            let s = pool.stats();
            prop_assert_eq!(s.hits + s.misses, touches.len() as u64);
            prop_assert_eq!(s.pages_read > 0, s.misses > 0);
        }

        #[test]
        fn unbounded_pool_never_evicts_and_rereads(
            touches in proptest::collection::vec((0u64..16, 0usize..40_000), 1..120),
        ) {
            let mut pool = BufferManager::unbounded(PageModel::default());
            for &(id, bytes) in &touches {
                pool.touch(ObjectId::new(Space::Raw, id), bytes);
            }
            let distinct: std::collections::HashSet<u64> =
                touches.iter().map(|&(id, _)| id).collect();
            let s = pool.stats();
            prop_assert_eq!(s.evictions, 0);
            // Every distinct object misses exactly once.
            prop_assert_eq!(s.misses, distinct.len() as u64);
            prop_assert_eq!(pool.objects(), distinct.len());
        }
    }
}

/// Persistence: saving and loading any refined index preserves lookups.
mod persist_roundtrip {
    use super::{materialize, rand_graph, rand_paths, to_label_path};
    use apex::{persist, Apex, Workload};
    use proptest::prelude::*;
    use xmlgraph::LabelPath;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

        #[test]
        fn save_load_preserves_lookups(
            rg in rand_graph(30),
            workload_paths in rand_paths(3, 6),
            queries in rand_paths(3, 10),
            min_sup in 0.05f64..0.9,
        ) {
            let g = materialize(&rg);
            let mut apex = Apex::build_initial(&g);
            let wl = Workload::from_paths(
                workload_paths.iter().filter_map(|p| to_label_path(&g, p)).collect(),
            );
            apex.refine(&g, &wl, min_sup);

            let mut buf = Vec::new();
            persist::save(&apex, &mut buf).expect("save");
            let loaded = persist::load(&mut buf.as_slice()).expect("load");

            prop_assert_eq!(apex.stats(), loaded.stats());
            for q in &queries {
                let Some(path) = to_label_path(&g, q) else { continue };
                let a = apex.lookup(path.labels());
                let b = loaded.lookup(path.labels());
                prop_assert_eq!(a.matched_len, b.matched_len);
                let ea = a.xnode.map(|x| apex.extent(x).pairs().to_vec());
                let eb = b.xnode.map(|x| loaded.extent(x).pairs().to_vec());
                prop_assert_eq!(ea, eb);
            }
            // keep LabelPath import used
            let _ = LabelPath::new(vec![]);
        }
    }
}

/// The textual query syntax round-trips through parse/render.
mod query_syntax {
    use super::{materialize, rand_graph};
    use apex_query::Query;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

        #[test]
        fn parse_render_fixpoint(rg in rand_graph(20), idxs in proptest::collection::vec(0..6usize, 1..5)) {
            let g = materialize(&rg);
            let labels: Vec<&str> = idxs.iter().map(|&i| super::ALPHABET[i]).collect();
            // Build a //a/b/c string; skip if any label unused by g.
            if labels.iter().any(|l| g.label_id(l).is_none()) {
                return Ok(());
            }
            let text = format!("//{}", labels.join("/"));
            let q = Query::parse(&g, &text).expect("valid syntax");
            prop_assert_eq!(q.render(&g), text);
        }
    }
}
