//! The paper's worked examples, asserted end-to-end:
//! Figure 1 (MovieDB data), Figure 2 (the APEX instance), Figure 3
//! (strong DataGuide / 1-index comparison), §4's q1 cost argument, and
//! the Figure 7 / Figure 12 workload-drift walkthrough.

use apex::{Apex, Workload};
use apex_query::batch::QueryProcessor;
use apex_query::{apex_qp::ApexProcessor, guide_qp::GuideProcessor};
use apex_storage::{DataTable, EdgeSet, PageModel};
use dataguide::DataGuide;
use oneindex::OneIndex;
use xmlgraph::builder::moviedb;
use xmlgraph::{LabelPath, NodeId};

fn pairs(e: &EdgeSet) -> Vec<(u32, u32)> {
    e.iter().map(|p| (p.parent.0, p.node.0)).collect()
}

/// Figure 2: APEX with required paths = A ∪ {director.movie,
/// @movie.movie, actor.name}.
fn figure2_apex() -> (xmlgraph::XmlGraph, Apex) {
    let g = moviedb();
    let mut idx = Apex::build_initial(&g);
    let wl = Workload::parse(&g, &["director.movie", "@movie.movie", "actor.name"]).unwrap();
    idx.refine(&g, &wl, 0.1);
    (g, idx)
}

#[test]
fn figure3_sdg_is_larger_than_apex() {
    // §4: "the strong DataGuide is larger than the original data" for
    // Figure 1, and larger than APEX. Our reconstruction of Figure 1 is
    // graph-shaped, so the subset construction blows up relative to the
    // 18-node data.
    let g = moviedb();
    let sdg = DataGuide::build(&g);
    let (_, apex) = figure2_apex();
    let stats = apex.stats();
    assert!(
        sdg.node_count() > stats.nodes,
        "SDG {} !> APEX {}",
        sdg.node_count(),
        stats.nodes
    );
}

#[test]
fn figure3_oneindex_at_most_data_size() {
    // §2: the 1-index is at most linear in the data.
    let g = moviedb();
    let oi = OneIndex::build(&g);
    assert!(oi.node_count() <= g.node_count());
}

#[test]
fn section4_q1_cheaper_on_apex_than_sdg() {
    // q1: //actor/name. "the edge lookup occurs 14 times on the index
    // structure" for the SDG; APEX "just looks up the hash tree".
    let (g, apex) = figure2_apex();
    let table = DataTable::build(&g, PageModel::default());
    let sdg = DataGuide::build(&g);
    let q = apex_query::Query::PartialPath {
        labels: LabelPath::parse(&g, "actor.name").unwrap().0,
    };
    let ap = ApexProcessor::new(&g, &apex, &table);
    let gp = GuideProcessor::new(&g, &sdg, &table);
    let a = ap.eval(&q);
    let s = gp.eval(&q);
    assert_eq!(a.nodes, s.nodes);
    assert_eq!(a.nodes, vec![NodeId(3), NodeId(5)]);
    // APEX: no index-graph navigation at all, only hash lookups.
    assert_eq!(a.cost.index_edges, 0);
    assert!(a.cost.hash_lookups <= 4);
    // SDG: must navigate its edges exhaustively.
    assert!(
        s.cost.index_edges >= 14,
        "sdg visited {} edges",
        s.cost.index_edges
    );
}

#[test]
fn definition9_remainder_extents() {
    // T^R(actor.name) = T(actor.name); T^R(name) = {<7,11>, <12,13>}.
    let (g, apex) = figure2_apex();
    let an = LabelPath::parse(&g, "actor.name").unwrap();
    let x = apex.lookup(an.labels()).xnode.unwrap();
    assert_eq!(pairs(apex.extent(x)), vec![(2, 3), (4, 5)]);
    // Lookup of any non-required path ending in `name` hits the
    // remainder class.
    let dn = LabelPath::parse(&g, "director.name").unwrap();
    let hit = apex.lookup(dn.labels());
    assert_eq!(hit.matched_len, 1);
    assert_eq!(
        pairs(apex.extent(hit.xnode.unwrap())),
        vec![(7, 11), (12, 13)]
    );
}

#[test]
fn theorem1_simulation_on_figure2() {
    // Every rooted data path must be traversable in G_APEX.
    let (g, apex) = figure2_apex();
    let mut stack = vec![(g.root(), apex.xroot())];
    let mut seen = std::collections::HashSet::new();
    while let Some((v, x)) = stack.pop() {
        if !seen.insert((v, x)) {
            continue;
        }
        for e in g.out_edges(v) {
            let child = apex
                .out_edges(x)
                .iter()
                .find(|(l, _)| *l == e.label)
                .map(|(_, t)| *t)
                .unwrap_or_else(|| {
                    panic!(
                        "no simulating edge for {} -{}-> {}",
                        v.0,
                        g.label_str(e.label),
                        e.to.0
                    )
                });
            stack.push((e.to, child));
        }
    }
}

#[test]
fn theorem2_no_phantom_length2_paths() {
    let (g, apex) = figure2_apex();
    let mut data_pairs = std::collections::HashSet::new();
    for (_, l1, mid) in g.edges() {
        for e in g.out_edges(mid) {
            data_pairs.insert((l1, e.label));
        }
    }
    for x in apex.graph().reachable(apex.xroot()) {
        let Some(inc) = apex.incoming_label(x) else {
            continue;
        };
        for &(l2, _) in apex.out_edges(x) {
            assert!(data_pairs.contains(&(inc, l2)));
        }
    }
}

#[test]
fn figure7_figure12_workload_drift() {
    // Start with required {…, B.D}-analogue, shift the workload so a new
    // two-label path becomes hot and the old one dies; the index must
    // follow and queries stay correct throughout.
    let g = moviedb();
    let table = DataTable::build(&g, PageModel::default());
    let naive = apex_query::naive::NaiveProcessor::new(&g, &table);
    let mut idx = Apex::build_initial(&g);

    // Round 1: actor.name hot.
    let wl1 = Workload::parse(&g, &["actor.name", "actor.name", "movie.title"]).unwrap();
    idx.refine(&g, &wl1, 0.5);
    assert!(idx.required_paths(&g).contains(&"actor.name".to_string()));

    // Round 2: drift — director.movie hot, actor.name cold.
    let wl2 = Workload::parse(
        &g,
        &[
            "director.movie",
            "director.movie",
            "director.movie",
            "actor.name",
        ],
    )
    .unwrap();
    let steps = idx.refine(&g, &wl2, 0.5);
    assert!(steps > 0);
    let req = idx.required_paths(&g);
    assert!(req.contains(&"director.movie".to_string()));
    assert!(!req.contains(&"actor.name".to_string()), "{req:?}");

    // Queries remain correct after the drift.
    let ap = ApexProcessor::new(&g, &idx, &table);
    for p in ["actor.name", "director.movie", "name", "movie.title"] {
        let q = apex_query::Query::PartialPath {
            labels: LabelPath::parse(&g, p).unwrap().0,
        };
        assert_eq!(ap.eval(&q).nodes, naive.eval(&q).nodes, "after drift: {p}");
    }
}

#[test]
fn incremental_update_equals_rebuild() {
    // Refining APEX⁰→W1→W2 must produce the same query behaviour as
    // building fresh and refining straight to W2 (§5.3's promise that the
    // incremental path is only an optimization).
    let g = moviedb();
    let wl1 = Workload::parse(&g, &["actor.name", "@movie.movie"]).unwrap();
    let wl2 = Workload::parse(&g, &["director.movie", "movie.title"]).unwrap();

    let mut incremental = Apex::build_initial(&g);
    incremental.refine(&g, &wl1, 0.1);
    incremental.refine(&g, &wl2, 0.1);

    let mut fresh = Apex::build_initial(&g);
    fresh.refine(&g, &wl2, 0.1);

    assert_eq!(incremental.required_paths(&g), fresh.required_paths(&g));
    // Same extents for every required path (compare via lookup).
    for p in ["director.movie", "movie.title", "name", "movie", "title"] {
        let path = LabelPath::parse(&g, p).unwrap();
        let a = incremental.lookup(path.labels());
        let b = fresh.lookup(path.labels());
        assert_eq!(a.matched_len, b.matched_len, "{p}");
        let ea = a.xnode.map(|x| pairs(incremental.extent(x)));
        let eb = b.xnode.map(|x| pairs(fresh.extent(x)));
        assert_eq!(ea, eb, "extent mismatch for {p}");
    }
}
