//! Movie-catalog scenario: a FlixML-like corpus queried by a front-end
//! whose users mostly ask for cast names and titles. Shows how `minSup`
//! trades index size against query cost (the Figure 13(b) story).
//!
//! ```bash
//! cargo run -p apex-suite --example movie_catalog --release
//! ```

use apex::{Apex, Workload};
use apex_query::apex_qp::ApexProcessor;
use apex_query::batch::run_batch;
use apex_query::guide_qp::GuideProcessor;
use apex_query::Query;
use apex_storage::{DataTable, PageModel};
use dataguide::DataGuide;
use xmlgraph::LabelPath;

fn main() {
    let g = datagen::flixml(120, 2026);
    println!(
        "FlixML corpus: {} nodes, {} edges, {} labels",
        g.node_count(),
        g.edge_count(),
        g.label_count()
    );
    let table = DataTable::build(&g, PageModel::default());

    // The front-end's hot paths.
    let hot = [
        "leadcast.male.name",
        "leadcast.female.name",
        "review.title",
        "crew.director.name",
        "cast.leadcast",
    ];
    let mut workload = Workload::new();
    for _ in 0..20 {
        for p in &hot {
            workload.push(LabelPath::parse(&g, p).expect("hot path exists"));
        }
    }
    // Plus a long tail of one-off queries.
    for p in ["genre.primarygenre", "video.color", "audio.audioformat"] {
        workload.push(LabelPath::parse(&g, p).unwrap());
    }

    // The query mix replays the workload shape.
    let queries: Vec<Query> = workload
        .iter()
        .map(|p| Query::PartialPath {
            labels: p.labels().to_vec(),
        })
        .collect();

    let sdg = DataGuide::build(&g);
    println!(
        "\n{:<14} {:>7} {:>7} {:>10} {:>10} {:>9}",
        "index", "nodes", "edges", "hash", "idx-edges", "pages"
    );
    let tsdg = run_batch(&GuideProcessor::new(&g, &sdg, &table), &queries);
    println!(
        "{:<14} {:>7} {:>7} {:>10} {:>10} {:>9}",
        "SDG",
        sdg.node_count(),
        sdg.edge_count(),
        tsdg.cost.hash_lookups,
        tsdg.cost.index_edges,
        tsdg.cost.pages_read
    );

    for min_sup in [1.1, 0.05, 0.01, 0.002] {
        let mut apex = Apex::build_initial(&g);
        apex.refine(&g, &workload, min_sup);
        let stats = apex.stats();
        let t = run_batch(&ApexProcessor::new(&g, &apex, &table), &queries);
        let name = if min_sup > 1.0 {
            "APEX0".to_string()
        } else {
            format!("APEX({min_sup})")
        };
        println!(
            "{:<14} {:>7} {:>7} {:>10} {:>10} {:>9}",
            name,
            stats.nodes,
            stats.edges,
            t.cost.hash_lookups,
            t.cost.index_edges,
            t.cost.pages_read
        );
    }

    println!("\nLower minSup materializes the hot paths: the workload is");
    println!("answered from extents with fewer joins and fewer pages.");
}
