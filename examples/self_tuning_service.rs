//! A self-tuning query service: the full Figure 4 loop running online.
//!
//! Queries stream in; a [`WorkloadMonitor`] records them in a sliding
//! window and re-runs extraction + incremental update when drift is
//! detected. The example simulates three workload phases over a FlixML
//! corpus and prints when the monitor fires, what became required, and
//! how the per-phase query cost responds.
//!
//! ```bash
//! cargo run -p apex-suite --example self_tuning_service --release
//! ```

use apex::{Apex, RefreshPolicy, WorkloadMonitor};
use apex_query::apex_qp::ApexProcessor;
use apex_query::batch::QueryProcessor;
use apex_query::explain::explain_apex;
use apex_query::Query;
use apex_storage::{Cost, DataTable, PageModel};
use xmlgraph::LabelPath;

fn main() {
    let g = datagen::flixml(80, 4242);
    let table = DataTable::build(&g, PageModel::default());
    let mut index = Apex::build_initial(&g);
    let mut monitor = WorkloadMonitor::new(60, 0.3, RefreshPolicy::OnDrift { slack: 1.1 });

    // Three phases of user behaviour.
    let phases: [(&str, &[&str]); 3] = [
        (
            "casting dept",
            &[
                "//leadcast/male/name",
                "//leadcast/female/name",
                "//cast/leadcast",
            ],
        ),
        (
            "critics",
            &["//review/title", "//plotsummary/paragraph", "//review/bees"],
        ),
        (
            "archivists",
            &[
                "//genre/primarygenre",
                "//review/releaseyear",
                "//video/color",
            ],
        ),
    ];

    for (phase, queries) in phases {
        println!("\n== phase: {phase} ==");
        let parsed: Vec<Query> = queries
            .iter()
            .map(|s| Query::parse(&g, s).expect("valid query"))
            .collect();

        let mut phase_cost = Cost::new();
        let mut refreshes = 0;
        for round in 0..25 {
            for (q, src) in parsed.iter().zip(queries) {
                let qp = ApexProcessor::new(&g, &index, &table);
                let out = qp.eval(q);
                phase_cost += out.cost;
                // Feed the monitor (QTYPE1 label paths only).
                if let Some(labels) = q.labels() {
                    monitor.record(LabelPath::new(labels.to_vec()));
                }
                if round == 24 {
                    let plan = explain_apex(&index, q);
                    println!(
                        "  {src:<28} direct={} results={}",
                        plan.is_direct(),
                        out.nodes.len()
                    );
                }
            }
            if let Some(steps) = monitor.maybe_refresh(&g, &mut index) {
                refreshes += 1;
                println!(
                    "  [monitor] drift detected at round {round}: refreshed in {steps} steps; \
                     required multi-paths: {:?}",
                    index
                        .required_paths(&g)
                        .iter()
                        .filter(|p| p.contains('.'))
                        .collect::<Vec<_>>()
                );
            }
        }
        println!(
            "  phase totals: pages={} join_work={} refreshes={refreshes}",
            phase_cost.pages_read, phase_cost.join_work
        );
    }

    println!("\nThe hot paths of each phase end up answered directly (direct=true),");
    println!("and each phase change triggers exactly the refreshes the drift policy allows.");
}
