//! Genealogy scenario: highly irregular GedML data with reference
//! cycles, where partial-matching ancestor/descendant queries
//! (`//fam//plac`, `//indi//date`, …) dominate — the workload where the
//! paper's Figure 14 shows the largest APEX wins.
//!
//! ```bash
//! cargo run -p apex-suite --example genealogy_workload --release
//! ```

use apex::Apex;
use apex_query::apex_qp::ApexProcessor;
use apex_query::batch::{run_batch, QueryProcessor};
use apex_query::guide_qp::GuideProcessor;
use apex_query::naive::NaiveProcessor;
use apex_query::Query;
use apex_storage::{DataTable, PageModel};
use dataguide::DataGuide;
use oneindex::OneIndex;

fn main() {
    let g = datagen::gedml(150, 77);
    println!(
        "GedML corpus: {} nodes, {} edges, {} labels ({} IDREF)",
        g.node_count(),
        g.edge_count(),
        g.label_count(),
        g.idref_labels().len()
    );
    let table = DataTable::build(&g, PageModel::default());

    // Ancestor/descendant questions a genealogy UI asks.
    let pairs = [
        ("fam", "plac"),
        ("indi", "date"),
        ("fam", "givn"),
        ("indi", "city"),
        ("fam", "surn"),
        ("birt", "plac"),
    ];
    let queries: Vec<Query> = pairs
        .iter()
        .filter_map(|(a, b)| {
            Some(Query::AncestorDescendant {
                first: g.label_id(a)?,
                last: g.label_id(b)?,
            })
        })
        .collect();

    let apex = Apex::build_initial(&g); // QTYPE2 needs no tuning: all singles
    let sdg = DataGuide::build(&g);
    let oneidx = OneIndex::build(&g);
    let naive = NaiveProcessor::new(&g, &table);

    println!(
        "\n{:<10} {:>8} {:>12} {:>10} {:>9}  (index nodes / edges traversed / joins / pages)",
        "index", "nodes", "idx-edges", "join-work", "pages"
    );
    let a = run_batch(&ApexProcessor::new(&g, &apex, &table), &queries);
    println!(
        "{:<10} {:>8} {:>12} {:>10} {:>9}",
        "APEX",
        apex.stats().nodes,
        a.cost.index_edges,
        a.cost.join_work,
        a.cost.pages_read
    );
    let s = run_batch(&GuideProcessor::new(&g, &sdg, &table), &queries);
    println!(
        "{:<10} {:>8} {:>12} {:>10} {:>9}",
        "SDG",
        sdg.node_count(),
        s.cost.index_edges,
        s.cost.join_work,
        s.cost.pages_read
    );
    let o = run_batch(&GuideProcessor::new(&g, &oneidx, &table), &queries);
    println!(
        "{:<10} {:>8} {:>12} {:>10} {:>9}",
        "1-index",
        oneidx.node_count(),
        o.cost.index_edges,
        o.cost.join_work,
        o.cost.pages_read
    );

    // Sanity: everyone agrees with direct evaluation.
    for q in &queries {
        let expect = naive.eval(q).nodes;
        assert_eq!(ApexProcessor::new(&g, &apex, &table).eval(q).nodes, expect);
        assert_eq!(GuideProcessor::new(&g, &sdg, &table).eval(q).nodes, expect);
        assert_eq!(
            GuideProcessor::new(&g, &oneidx, &table).eval(q).nodes,
            expect
        );
        println!("{:<18} -> {} nodes", q.render(&g), expect.len());
    }
    println!("\nAPEX starts its traversal at the G_APEX classes matching the first label;");
    println!("the rooted indexes must navigate from their root through the whole index.");
}
