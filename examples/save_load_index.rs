//! Index persistence: build + refine an APEX index, save it to disk,
//! load it back, and verify lookups and extents survive the round trip.
//!
//! ```bash
//! cargo run -p apex-suite --example save_load_index --release
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};

use apex::{persist, Apex, Workload};
use xmlgraph::LabelPath;

fn main() {
    let g = datagen::gedml(120, 7);
    let mut index = Apex::build_initial(&g);
    let wl = Workload::parse(&g, &["indi.birt.date", "fam.marr.plac", "indi.name.surn"])
        .expect("labels exist");
    index.refine(&g, &wl, 0.2);
    let stats = index.stats();
    println!("built: {stats:?}");

    let mut path = std::env::temp_dir();
    path.push(format!("apex-demo-{}.idx", std::process::id()));

    // Save.
    let mut w = BufWriter::new(File::create(&path).expect("create index file"));
    persist::save(&index, &mut w).expect("save index");
    drop(w);
    let bytes = std::fs::metadata(&path).expect("stat").len();
    println!("saved {} bytes to {}", bytes, path.display());

    // Load.
    let mut r = BufReader::new(File::open(&path).expect("open index file"));
    let loaded = persist::load(&mut r).expect("load index");
    println!("loaded: {:?}", loaded.stats());

    assert_eq!(index.stats(), loaded.stats());
    for p in [
        "indi.birt.date",
        "fam.marr.plac",
        "indi.name.surn",
        "date",
        "plac",
    ] {
        let path = LabelPath::parse(&g, p).expect("path");
        let a = index.lookup(path.labels());
        let b = loaded.lookup(path.labels());
        assert_eq!(a.matched_len, b.matched_len);
        assert_eq!(
            a.xnode.map(|x| index.extent(x).len()),
            b.xnode.map(|x| loaded.extent(x).len())
        );
        println!("  lookup {p:<18} matched {} label(s) ✓", a.matched_len);
    }

    let _ = std::fs::remove_file(&path);
    println!("round trip verified ✓");
}
