//! Writes (small versions of) the paper's datasets to XML files and
//! re-parses them, demonstrating file-level interchange with the
//! from-scratch parser/writer.
//!
//! ```bash
//! cargo run -p apex-suite --example dump_datasets --release -- [out_dir]
//! ```

use std::path::PathBuf;

use xmlgraph::parser::{parse_with, ParserConfig};
use xmlgraph::writer::write_xml;

fn main() {
    let out_dir: PathBuf = std::env::args()
        .nth(1)
        .map(Into::into)
        .unwrap_or_else(std::env::temp_dir);

    let cfg = ParserConfig {
        id_attrs: vec!["id".into()],
        idref_attrs: vec![
            "sequel".into(),
            "remakeof".into(),
            "related".into(),
            "husb".into(),
            "wife".into(),
            "chil".into(),
            "famc".into(),
            "fams".into(),
            "alia".into(),
            "asso".into(),
            "subm".into(),
            "sour".into(),
            "note".into(),
            "obje".into(),
            "repo".into(),
            "anci".into(),
            "desi".into(),
        ],
    };

    let sets: [(&str, xmlgraph::XmlGraph); 3] = [
        ("mini_shakes.xml", datagen::shakespeare(1, 1)),
        ("mini_flix.xml", datagen::flixml(25, 1)),
        ("mini_ged.xml", datagen::gedml(60, 1)),
    ];

    for (name, g) in sets {
        let path = out_dir.join(name);
        let xml = write_xml(&g);
        std::fs::write(&path, &xml).expect("write dataset file");
        let reparsed = parse_with(&xml, &cfg).expect("re-parse dataset");
        println!(
            "{:<18} {:>8} bytes  {:>6} nodes -> reparsed {:>6} nodes, {:>3} labels ✓  ({})",
            name,
            xml.len(),
            g.node_count(),
            reparsed.node_count(),
            reparsed.label_count(),
            path.display()
        );
        assert_eq!(g.node_count(), reparsed.node_count());
        assert_eq!(g.edge_count(), reparsed.edge_count());
    }
    println!("\nAll datasets round-trip through the XML parser/writer.");
}
