//! Quickstart: build APEX over the paper's MovieDB example, adapt it to a
//! workload, and run the three query types.
//!
//! ```bash
//! cargo run -p apex-suite --example quickstart
//! ```

use apex::{Apex, Workload};
use apex_query::apex_qp::ApexProcessor;
use apex_query::batch::QueryProcessor;
use apex_query::Query;
use apex_storage::{DataTable, PageModel};
use xmlgraph::LabelPath;

fn main() {
    // 1. The data: Figure 1 of the paper (MovieDB with ID/IDREF edges).
    let g = xmlgraph::builder::moviedb();
    println!(
        "data: {} nodes, {} edges, {} labels ({} IDREF)",
        g.node_count(),
        g.edge_count(),
        g.label_count(),
        g.idref_labels().len()
    );

    // 2. APEX⁰ — the workload-free seed (Figure 6).
    let mut index = Apex::build_initial(&g);
    println!("APEX0: {:?}", index.stats());

    // 3. Adapt to a workload where //actor/name and //director/movie are
    //    hot (Figures 8 + 11).
    let workload = Workload::parse(
        &g,
        &["actor.name", "actor.name", "director.movie", "movie.title"],
    )
    .expect("labels exist");
    let steps = index.refine(&g, &workload, 0.4);
    println!("refined in {steps} update steps: {:?}", index.stats());
    println!("required paths: {:?}", index.required_paths(&g));

    // 4. Query it.
    let table = DataTable::build(&g, PageModel::default());
    let qp = ApexProcessor::new(&g, &index, &table);

    let q1 = Query::PartialPath {
        labels: LabelPath::parse(&g, "actor.name").unwrap().0,
    };
    let out = qp.eval(&q1);
    println!("\n{} -> nodes {:?}", q1.render(&g), out.nodes);
    println!("   values: {:?}", values(&g, &out.nodes));
    println!("   cost: {}", out.cost);

    let q2 = Query::AncestorDescendant {
        first: g.label_id("movie").unwrap(),
        last: g.label_id("name").unwrap(),
    };
    let out = qp.eval(&q2);
    println!("\n{} -> nodes {:?}", q2.render(&g), out.nodes);
    println!("   values: {:?}", values(&g, &out.nodes));

    let q3 = Query::ValuePath {
        labels: LabelPath::parse(&g, "title").unwrap().0,
        value: "Star Wars".into(),
    };
    let out = qp.eval(&q3);
    println!("\n{} -> nodes {:?}", q3.render(&g), out.nodes);
}

fn values(g: &xmlgraph::XmlGraph, nodes: &[xmlgraph::NodeId]) -> Vec<String> {
    nodes
        .iter()
        .filter_map(|&n| g.value(n).map(str::to_string))
        .collect()
}
