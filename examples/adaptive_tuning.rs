//! Adaptive tuning under workload drift: the defining APEX capability
//! (§5's incremental update). A Shakespeare corpus first serves a
//! "scholar" workload (speech/speaker lookups), then drifts to a "stage
//! manager" workload (stage directions, scene titles). The index follows
//! incrementally; queries stay correct and the hot paths stay cheap.
//!
//! ```bash
//! cargo run -p apex-suite --example adaptive_tuning --release
//! ```

use apex::{Apex, Workload};
use apex_query::apex_qp::ApexProcessor;
use apex_query::batch::{run_batch, QueryProcessor};
use apex_query::naive::NaiveProcessor;
use apex_query::Query;
use apex_storage::{DataTable, PageModel};
use xmlgraph::LabelPath;

fn workload(g: &xmlgraph::XmlGraph, paths: &[&str], reps: usize) -> Workload {
    let mut wl = Workload::new();
    for _ in 0..reps {
        for p in paths {
            wl.push(LabelPath::parse(g, p).expect("path exists"));
        }
    }
    wl
}

fn queries_of(wl: &Workload) -> Vec<Query> {
    wl.iter()
        .map(|p| Query::PartialPath {
            labels: p.labels().to_vec(),
        })
        .collect()
}

fn main() {
    let g = datagen::shakespeare(3, 1601);
    let table = DataTable::build(&g, PageModel::default());
    let naive = NaiveProcessor::new(&g, &table);
    println!(
        "corpus: {} nodes, {} labels",
        g.node_count(),
        g.label_count()
    );

    let scholar = workload(
        &g,
        &["SPEECH.SPEAKER", "SPEECH.LINE", "ACT.SCENE.SPEECH"],
        10,
    );
    let stage = workload(
        &g,
        &["SCENE.STAGEDIR", "SCENE.TITLE", "SPEECH.STAGEDIR"],
        10,
    );

    let mut apex = Apex::build_initial(&g);
    println!("\nphase 0 (APEX0):          {:?}", apex.stats());

    // Phase 1: scholar workload arrives.
    let steps = apex.refine(&g, &scholar, 0.2);
    println!(
        "phase 1 (scholar, {steps:>4} update steps): {:?}",
        apex.stats()
    );
    let t = run_batch(
        &ApexProcessor::new(&g, &apex, &table),
        &queries_of(&scholar),
    );
    println!("  scholar queries: {}", t.summary());
    let t = run_batch(&ApexProcessor::new(&g, &apex, &table), &queries_of(&stage));
    println!("  stage queries:   {}", t.summary());

    // Phase 2: drift to the stage-manager workload. The update is
    // incremental: far fewer steps than a full rebuild would take.
    let steps = apex.refine(&g, &stage, 0.2);
    println!(
        "\nphase 2 (stage,   {steps:>4} update steps): {:?}",
        apex.stats()
    );
    let t = run_batch(&ApexProcessor::new(&g, &apex, &table), &queries_of(&stage));
    println!("  stage queries:   {}", t.summary());
    println!(
        "  required paths now: {:?}",
        apex.required_paths(&g)
            .iter()
            .filter(|p| p.contains('.'))
            .collect::<Vec<_>>()
    );

    // Correctness after two refinements.
    for q in queries_of(&scholar).iter().chain(queries_of(&stage).iter()) {
        assert_eq!(
            ApexProcessor::new(&g, &apex, &table).eval(q).nodes,
            naive.eval(q).nodes,
            "drifted index wrong on {}",
            q.render(&g)
        );
    }
    println!("\nall queries verified against direct graph evaluation ✓");
}
