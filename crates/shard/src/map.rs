//! The partitioner: a stable hash of label paths → shard ids.
//!
//! A [`ShardMap`] assigns every node of an [`XmlGraph`] to exactly one
//! shard by hashing the node's *rooted tree label path* — the sequence
//! of label **strings** from the root down to the node. Hashing strings
//! (not interned `LabelId`s) makes the assignment independent of
//! interner order, so a router and its shards agree as long as they
//! hold byte-identical `ShardMap`s — which is what the serializer
//! ([`ShardMap::to_bytes`] / [`ShardMap::from_bytes`]) guarantees.
//!
//! Partitioning by label path follows the path-partitioning literature
//! (see PAPERS.md): nodes reached by the same downward label sequence
//! cluster on one shard, so a shard's workload monitor sees coherent
//! per-path traffic and its APEX index adapts to *its* slice. Because
//! the assignment is a total function of the tree position, the owned
//! sets of an `n`-shard map tile the node space exactly — the
//! disjointness the scatter-gather merge relies on.

use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;

use xmlgraph::XmlGraph;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Serialized form: magic, format version, shard count, seed, FNV
/// checksum of everything before it.
const MAGIC: &[u8; 8] = b"APXSHMAP";
const FORMAT_VERSION: u16 = 1;

/// Label-path hash partitioner; cheap to copy, stable to serialize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    shards: u16,
    seed: u64,
}

/// Why a serialized map failed to load.
#[derive(Debug)]
pub enum ShardMapError {
    /// Transport failure.
    Io(io::Error),
    /// Structurally invalid bytes (bad magic, version, checksum, size).
    Malformed(&'static str),
}

impl fmt::Display for ShardMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardMapError::Io(e) => write!(f, "i/o: {e}"),
            ShardMapError::Malformed(why) => write!(f, "malformed shard map: {why}"),
        }
    }
}

impl std::error::Error for ShardMapError {}

impl From<io::Error> for ShardMapError {
    fn from(e: io::Error) -> ShardMapError {
        ShardMapError::Io(e)
    }
}

/// Extends a running path hash by one label: FNV-1a over the label's
/// bytes, then a `/` separator byte so `["ab","c"]` and `["a","bc"]`
/// hash apart.
fn step(h: u64, label: &str) -> u64 {
    let mut h = h;
    for &b in label.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    (h ^ u64::from(b'/')).wrapping_mul(FNV_PRIME)
}

impl ShardMap {
    /// A map over `shards` shards (clamped to ≥ 1) with the default
    /// seed.
    pub fn new(shards: u16) -> ShardMap {
        ShardMap::with_seed(shards, FNV_OFFSET)
    }

    /// A map with an explicit seed — two maps agree iff shard count
    /// and seed agree.
    pub fn with_seed(shards: u16, seed: u64) -> ShardMap {
        ShardMap {
            shards: shards.max(1),
            seed,
        }
    }

    /// Number of shards this map partitions into.
    pub fn shards(&self) -> u16 {
        self.shards
    }

    /// The stable hash of a label path (over label strings, so it is
    /// independent of any graph's interner).
    pub fn hash_path<'a>(&self, labels: impl IntoIterator<Item = &'a str>) -> u64 {
        let mut h = self.seed;
        for l in labels {
            h = step(h, l);
        }
        h
    }

    /// Shard owning an already-computed path hash.
    pub fn shard_of_hash(&self, h: u64) -> u16 {
        (h % u64::from(self.shards)) as u16
    }

    /// Shard owning a label path. Total: every path maps to exactly one
    /// shard, including the empty path.
    pub fn shard_of_path<'a>(&self, labels: impl IntoIterator<Item = &'a str>) -> u16 {
        self.shard_of_hash(self.hash_path(labels))
    }

    /// Owner shard of every node of `g`, indexed by node id. Each
    /// node's path hash extends its tree parent's; hashes are memoized
    /// by climbing to the nearest already-hashed ancestor and unwinding
    /// (node ids are *not* assumed to be topologically ordered), so the
    /// whole pass is O(nodes).
    pub fn owners(&self, g: &XmlGraph) -> Vec<u16> {
        let n = g.node_count();
        let mut hash: Vec<Option<u64>> = vec![None; n];
        let mut chain: Vec<xmlgraph::NodeId> = Vec::new();
        for nid in g.nodes() {
            if hash.get(nid.0 as usize).is_some_and(Option::is_some) {
                continue;
            }
            chain.clear();
            let mut cur = nid;
            let mut base = self.seed;
            while !cur.is_null() {
                if let Some(&Some(h)) = hash.get(cur.0 as usize) {
                    base = h;
                    break;
                }
                chain.push(cur);
                cur = g.tree_parent(cur);
            }
            while let Some(node) = chain.pop() {
                base = step(base, g.label_str(g.tag(node)));
                if let Some(slot) = hash.get_mut(node.0 as usize) {
                    *slot = Some(base);
                }
            }
        }
        hash.iter()
            .map(|h| self.shard_of_hash(h.unwrap_or(self.seed)))
            .collect()
    }

    /// The sorted node ids shard `shard` owns in `g`.
    pub fn owned_nodes(&self, g: &XmlGraph, shard: u16) -> Vec<u32> {
        self.owners(g)
            .iter()
            .enumerate()
            .filter(|&(_, &o)| o == shard)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Serializes to the `APXSHMAP` byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(28);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.shards.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        let mut sum = FNV_OFFSET;
        for &b in &out {
            sum = (sum ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Parses the `APXSHMAP` byte format. Total: every malformed input
    /// maps to a [`ShardMapError`].
    pub fn from_bytes(bytes: &[u8]) -> Result<ShardMap, ShardMapError> {
        if bytes.len() != 28 {
            return Err(ShardMapError::Malformed("wrong length"));
        }
        let (body, sum_bytes) = bytes.split_at(20);
        let Some(magic) = body.get(..8) else {
            return Err(ShardMapError::Malformed("short magic"));
        };
        if magic != MAGIC {
            return Err(ShardMapError::Malformed("bad magic"));
        }
        let mut sum = FNV_OFFSET;
        for &b in body {
            sum = (sum ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        let want: [u8; 8] = sum_bytes
            .try_into()
            .map_err(|_| ShardMapError::Malformed("short checksum"))?;
        if u64::from_le_bytes(want) != sum {
            return Err(ShardMapError::Malformed("checksum mismatch"));
        }
        let version: [u8; 2] = body
            .get(8..10)
            .and_then(|b| b.try_into().ok())
            .ok_or(ShardMapError::Malformed("short version"))?;
        if u16::from_le_bytes(version) != FORMAT_VERSION {
            return Err(ShardMapError::Malformed("unknown format version"));
        }
        let shards: [u8; 2] = body
            .get(10..12)
            .and_then(|b| b.try_into().ok())
            .ok_or(ShardMapError::Malformed("short shard count"))?;
        let shards = u16::from_le_bytes(shards);
        if shards == 0 {
            return Err(ShardMapError::Malformed("zero shards"));
        }
        let seed: [u8; 8] = body
            .get(12..20)
            .and_then(|b| b.try_into().ok())
            .ok_or(ShardMapError::Malformed("short seed"))?;
        Ok(ShardMap {
            shards,
            seed: u64::from_le_bytes(seed),
        })
    }

    /// Writes the serialized map to `path` (atomically enough for a
    /// config file: write then rename is overkill here — the file is
    /// checksummed, so a torn write is detected at load).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(&self.to_bytes())?;
        f.sync_all()
    }

    /// Loads a map previously [`ShardMap::save`]d.
    pub fn load(path: &Path) -> Result<ShardMap, ShardMapError> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        ShardMap::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlgraph::builder::moviedb;

    #[test]
    fn partitioner_is_total_and_tiles_the_node_space() {
        let g = moviedb();
        for shards in [1u16, 2, 3, 5] {
            let map = ShardMap::new(shards);
            let owners = map.owners(&g);
            assert_eq!(owners.len(), g.node_count());
            assert!(owners.iter().all(|&o| o < shards));
            let total: usize = (0..shards).map(|s| map.owned_nodes(&g, s).len()).sum();
            assert_eq!(total, g.node_count(), "owned sets must tile exactly");
        }
    }

    #[test]
    fn owners_hash_label_strings_not_ids() {
        // Same tree shape, same strings → same owners, independent of
        // the interner's id assignment order.
        let g = moviedb();
        let map = ShardMap::new(4);
        let owners = map.owners(&g);
        for nid in g.nodes() {
            // Recompute the rooted path by walking up, then hash the
            // strings directly.
            let mut labels = Vec::new();
            let mut cur = nid;
            while !cur.is_null() {
                labels.push(g.label_str(g.tag(cur)).to_string());
                cur = g.tree_parent(cur);
            }
            labels.reverse();
            let want = map.shard_of_path(labels.iter().map(|s| s.as_str()));
            assert_eq!(owners[nid.0 as usize], want, "node {}", nid.0);
        }
    }

    #[test]
    fn bytes_roundtrip_and_reject_corruption() {
        let map = ShardMap::with_seed(7, 0xDEAD_BEEF);
        let bytes = map.to_bytes();
        assert_eq!(ShardMap::from_bytes(&bytes).expect("roundtrip"), map);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                ShardMap::from_bytes(&bad).is_err(),
                "flip at {i} must be detected"
            );
        }
        assert!(ShardMap::from_bytes(&bytes[..20]).is_err());
        assert!(ShardMap::from_bytes(&[]).is_err());
    }

    #[test]
    fn save_load_roundtrips_via_the_filesystem() {
        let dir = std::env::temp_dir().join(format!("apex-shardmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("shardmap.bin");
        let map = ShardMap::new(3);
        map.save(&path).expect("save");
        let loaded = ShardMap::load(&path).expect("load");
        assert_eq!(loaded, map);
        // Stability across save/load: identical assignments.
        let g = moviedb();
        assert_eq!(loaded.owners(&g), map.owners(&g));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
