//! One shard's serving state: a full APEX runtime plus its owned slice.
//!
//! Every shard holds the complete graph and its own adaptively-refined
//! index, and answers any query — but filters results to the node set
//! the [`ShardMap`](crate::ShardMap) assigns it. That makes per-shard
//! answers disjoint by construction, so a router's union of them is
//! exactly the single-process answer (the equivalence the suite's
//! `shard_laws` and `shard_equivalence` tests pin down).
//!
//! Replicas of a shard are *listeners*, not copies: every replica's
//! [`Engine`] shares this one runtime's index cell, monitor and
//! refresher, so all replicas always serve the same generation and the
//! shard's adaptation survives any single replica draining for a
//! rolling swap. The refresher is shut down by the runtime, last.

use std::io;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use apex::{
    Apex, CrashPlan, DurabilityConfig, IndexCell, RefreshPolicy, Refresher, ServeStats, Wal,
    WorkloadMonitor,
};
use apex_net::{Engine, ExecOutcome};
use apex_storage::{DataTable, PageModel};
use xmlgraph::XmlGraph;

use crate::map::ShardMap;

/// Knobs for one shard's runtime.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Workload-monitor window capacity.
    pub monitor_capacity: usize,
    /// APEX `minSup` threshold driving refinement.
    pub min_sup: f64,
    /// When the monitor declares a refresh due.
    pub policy: RefreshPolicy,
    /// When set, the shard logs its workload to a WAL in this directory
    /// and the refresher checkpoints through it (log-before-ack, same
    /// as the single-process durable path).
    pub wal_dir: Option<PathBuf>,
}

impl Default for RuntimeConfig {
    fn default() -> RuntimeConfig {
        RuntimeConfig {
            monitor_capacity: 256,
            min_sup: 0.3,
            policy: RefreshPolicy::Manual,
            wal_dir: None,
        }
    }
}

/// A live shard: index cell, monitor, shared refresher, owned node set.
#[derive(Debug)]
pub struct ShardRuntime {
    shard: u16,
    cell: Arc<IndexCell>,
    refresher: Arc<Refresher>,
    engine: Engine,
}

impl ShardRuntime {
    /// Builds shard `shard` of `map` over the (shared) graph and spawns
    /// its refresher. Each shard builds its own index and data table —
    /// shards adapt independently to the slice of the workload whose
    /// answers they own.
    pub fn start(
        shard: u16,
        map: &ShardMap,
        g: Arc<XmlGraph>,
        cfg: &RuntimeConfig,
    ) -> io::Result<ShardRuntime> {
        let owned = Arc::new(map.owned_nodes(&g, shard));
        let table = Arc::new(DataTable::build(&g, PageModel::default()));
        let cell = Arc::new(IndexCell::new(Apex::build_initial(&g)));
        let mut monitor = WorkloadMonitor::new(cfg.monitor_capacity, cfg.min_sup, cfg.policy);
        let wal = match &cfg.wal_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                let wal = Arc::new(Wal::open(
                    dir,
                    DurabilityConfig::default(),
                    CrashPlan::none(),
                )?);
                monitor.attach_wal(Arc::clone(&wal));
                Some(wal)
            }
            None => None,
        };
        let monitor = Arc::new(Mutex::new(monitor));
        let refresher = Arc::new(match wal {
            Some(wal) => Refresher::spawn_durable(
                Arc::clone(&g),
                Arc::clone(&cell),
                Arc::clone(&monitor),
                wal,
            )?,
            None => Refresher::spawn(Arc::clone(&g), Arc::clone(&cell), Arc::clone(&monitor))?,
        });
        let engine = Engine::new(g, table, Arc::clone(&cell), monitor)
            .with_shared_refresher(Arc::clone(&refresher))
            .with_shard_tag(shard)
            .with_owned_nodes(owned);
        Ok(ShardRuntime {
            shard,
            cell,
            refresher,
            engine,
        })
    }

    /// This shard's id in the map.
    pub fn shard(&self) -> u16 {
        self.shard
    }

    /// The engine replicas serve through. Clones share all state — a
    /// new listener on this shard is `Server::start(rt.engine(), …)`.
    pub fn engine(&self) -> Engine {
        self.engine.clone()
    }

    /// The currently published index generation.
    pub fn generation(&self) -> u64 {
        self.cell.generation()
    }

    /// Runs one refresh cycle synchronously: request, then wait until
    /// the refresher is idle again. Deterministic tests step shards
    /// with this instead of sleeping; the generation advances iff the
    /// monitor's window had recorded traffic.
    pub fn step_refresh(&self) {
        self.refresher.request_refresh();
        self.refresher.wait_idle();
    }

    /// Evaluates one query in-process through this shard's engine —
    /// exactly what a replica would serve, minus the socket. The law
    /// tests compare the union of these across shards to a
    /// single-process run.
    pub fn eval_local(&self, query: &str) -> ExecOutcome {
        self.engine.execute(query, None)
    }

    /// Stops the refresher and returns its stats. Call after every
    /// replica server of this shard has been drained *and dropped*;
    /// while an engine clone is still alive the refresher handle is
    /// shared, so this falls back to signalling shutdown without
    /// joining.
    pub fn shutdown(self) -> ServeStats {
        let ShardRuntime {
            refresher, engine, ..
        } = self;
        drop(engine); // releases the engine's shared-refresher handle
        match Arc::try_unwrap(refresher) {
            Ok(r) => r.shutdown(),
            Err(r) => {
                // A replica still holds the engine; don't block — the
                // refresher thread exits when the last handle drops.
                r.begin_shutdown();
                ServeStats::default()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_net::Status;
    use xmlgraph::builder::moviedb;

    #[test]
    fn shard_runtimes_tile_the_single_process_answer() {
        let g = Arc::new(moviedb());
        let map = ShardMap::new(3);
        let cfg = RuntimeConfig::default();
        let runtimes: Vec<ShardRuntime> = (0..3)
            .map(|s| ShardRuntime::start(s, &map, Arc::clone(&g), &cfg).expect("start"))
            .collect();

        // Single-process baseline: shard the same graph 1-way.
        let solo_map = ShardMap::new(1);
        let solo = ShardRuntime::start(0, &solo_map, Arc::clone(&g), &cfg).expect("solo");
        for q in ["//actor/name", "//movie/title", "//director/movie/title"] {
            let full = solo.eval_local(q);
            assert_eq!(full.status, Status::Ok);
            let parts: Vec<_> = runtimes.iter().map(|rt| rt.eval_local(q)).collect();
            let total: u32 = parts.iter().map(|p| p.total_rows).sum();
            assert_eq!(total, full.total_rows, "{q}: shards must tile the total");
            let mut union: Vec<u32> = parts.iter().flat_map(|p| p.rows.iter().copied()).collect();
            union.sort_unstable();
            union.truncate(full.rows.len());
            assert_eq!(union, full.rows, "{q}: shard rows must tile the sample");
        }
        for rt in runtimes {
            rt.shutdown();
        }
        solo.shutdown();
    }

    #[test]
    fn step_refresh_advances_the_generation_under_traffic() {
        let g = Arc::new(moviedb());
        let map = ShardMap::new(2);
        let rt = ShardRuntime::start(0, &map, g, &RuntimeConfig::default()).expect("start");
        assert_eq!(rt.generation(), 0);
        rt.eval_local("//actor/name");
        rt.eval_local("//movie/title");
        rt.step_refresh();
        assert_eq!(rt.generation(), 1, "recorded traffic must publish a swap");
        let stats = rt.shutdown();
        assert_eq!(stats.refreshes, 1);
    }
}
