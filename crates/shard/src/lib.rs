//! # apex-shard — sharded, replicated serving over the APEX index
//!
//! The paper serves one APEX index from one process. This crate scales
//! that out: a cluster of **shards**, each a full serving runtime
//! (graph + index + workload monitor + background refresher + optional
//! WAL) exposed through one or more replicated `apex-net` listeners,
//! fronted by a **scatter-gather router** that speaks the same wire
//! protocol on both sides — clients cannot tell a router from a single
//! server.
//!
//! ```text
//!                      ┌────────────────────────┐
//!        clients ────► │  shard::Router          │  apex-net protocol
//!                      │  scatter │ gather+merge │  (front side)
//!                      └─────┬────┴─────┬────────┘
//!            apex-net protocol (hop side)
//!            ┌───────────────┼───────────────┐
//!        ┌───▼───┐       ┌───▼───┐       ┌───▼───┐
//!        │shard 0│       │shard 1│       │shard 2│    each shard:
//!        │ r0 r1 │       │ r0 r1 │       │ r0 r1 │    replicas share ONE
//!        └───────┘       └───────┘       └───────┘    runtime (cell+refresher)
//! ```
//!
//! * [`ShardMap`] — the partitioner: a stable FNV hash of rooted label
//!   paths assigns every node to exactly one shard; serializable so
//!   router and shards provably agree.
//! * [`ShardRuntime`] / [`ShardCluster`] — per-shard serving state and
//!   the in-process harness that runs `shards × replicas` real TCP
//!   listeners over it, with rolling replica swaps.
//! * [`Router`] — accepts client connections, fans each query out to
//!   one replica per shard, merges the per-shard sorted extents with
//!   the storage layer's k-way merge kernel, and enforces the
//!   **generation-vector invariant**: every response carries one
//!   `(shard, generation)` entry per shard, and per client the
//!   generation observed for a shard never goes backwards (the router
//!   pins the highest generation seen and retries stale replies).
//! * [`rolling_swap`] — the zero-downtime rollout: drain → swap →
//!   readmit one replica at a time while the sibling absorbs traffic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod map;
pub mod router;
pub mod runtime;

pub use cluster::{rolling_swap, ClusterConfig, ClusterStats, RolloutReport, ShardCluster};
pub use map::{ShardMap, ShardMapError};
pub use router::{Router, RouterConfig, RouterStats, ShardHopStats};
pub use runtime::{RuntimeConfig, ShardRuntime};
