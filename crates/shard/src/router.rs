//! The scatter-gather router: one apex-net endpoint over many shards.
//!
//! The router speaks the `net::wire` protocol on **both** sides. A
//! client connects and sends ordinary requests; per request the router
//! fans the query out to one replica of every shard (pipelined sends,
//! then gathers in shard order), merges the per-shard answers, and
//! replies on the same connection — indistinguishable from a single
//! `net::Server`, except the response's generation vector carries one
//! `(shard, generation)` entry per shard.
//!
//! **Merge semantics.** Shard answers are disjoint by construction
//! (each shard filters to its owned nodes), so: row samples are
//! k-way-merged with the storage layer's [`merge_sorted_into`] kernel
//! and re-truncated; totals, pages and join work are summed; the
//! status is the worst across shards (`DeadlineExceeded` ≻
//! `ParseError` ≻ `Ok`). A shard that cannot produce a definitive
//! answer inside the bounded retry budget makes the whole query an
//! explicit `Overloaded` shed — a partial answer is never passed off
//! as complete.
//!
//! **Generation consistency.** The router pins, per shard, the highest
//! generation it has returned ([`Router::pinned_generations`]). A
//! reply older than the pin is counted as a `stale_retry` and re-asked
//! (preferring a different replica); only a reply at or above the pin
//! advances it and is returned. Per client the observed generation of
//! any shard is therefore non-decreasing, and within one response each
//! shard contributes exactly one generation — queries never mix two
//! generations of the same shard. The retry budget is bounded: if
//! every attempt comes back stale the best (highest-generation) reply
//! is returned rather than looping forever.
//!
//! **Routing and health.** Replica choice is deterministic:
//! connection-affine (`conn_id % replicas`) so caches stay warm, and
//! rotated on retry so failures and `Draining` sheds land on a
//! sibling. Unreachable replicas are marked down and routed around; a
//! background prober re-admits them once they accept connections
//! again. [`Router::set_admit`] / [`Router::set_replica_addr`] are the
//! rollout hooks: un-admit a replica, drain and swap it in the
//! cluster, then hand the router the successor's address (which bumps
//! the slot's epoch so cached connections are re-dialed).
//!
//! **Accounting.** The client-facing side mirrors `NetStats`
//! (`accepted == served + shed + timed_out`); each hop mirrors it per
//! shard: `forwarded == ok + parse_error + timed_out + shed +
//! io_error`, where `forwarded` counts sends on an established
//! connection and `io_error` the sends whose response never arrived.
//! [`RouterStats::balanced`] checks both, so no request is silently
//! dropped on either side of the router.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use apex_net::wire::{write_message, DEFAULT_MAX_FRAME, MAX_ROW_SAMPLE};
use apex_net::{Client, Message, Request, Response, ShardGen, Status};
use apex_storage::{merge_sorted_into, MergeScratch};

use crate::map::ShardMap;

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Per-frame payload cap on the client side.
    pub max_frame: usize,
    /// Client-side reader poll interval (drain latency bound).
    pub poll: Duration,
    /// Bound on one client-side response write.
    pub write_timeout: Duration,
    /// Bound on waiting for one shard reply; a gather that trips it
    /// counts as an `io_error` on that hop and retries elsewhere.
    pub gather_timeout: Duration,
    /// Per-shard attempt budget per request (first try included).
    pub retry_attempts: u32,
    /// Base backoff before re-asking a shard that shed; doubles per
    /// retry up to `backoff_cap`, jittered.
    pub backoff: Duration,
    /// Cap on one backoff sleep.
    pub backoff_cap: Duration,
    /// How often the health prober re-tests down replicas.
    pub probe_interval: Duration,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            max_frame: DEFAULT_MAX_FRAME,
            poll: Duration::from_millis(20),
            write_timeout: Duration::from_secs(5),
            gather_timeout: Duration::from_secs(10),
            retry_attempts: 6,
            backoff: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(20),
            probe_interval: Duration::from_millis(50),
        }
    }
}

/// One shard hop's accounting (see the module docs for the balance
/// equation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardHopStats {
    /// Requests sent to a replica of this shard (per attempt).
    pub forwarded: u64,
    /// Replies with `Status::Ok`.
    pub ok: u64,
    /// Replies with `Status::ParseError`.
    pub parse_error: u64,
    /// Replies with `Status::DeadlineExceeded`.
    pub timed_out: u64,
    /// Replies with `Status::Overloaded` / `Status::Draining`.
    pub shed: u64,
    /// Sends whose reply never arrived (broken pipe, EOF, gather
    /// timeout); the replica is marked down and the attempt retried.
    pub io_error: u64,
    /// Shed replies absorbed by a backoff-and-retry.
    pub retried_sheds: u64,
    /// Replies below this shard's generation pin, re-asked.
    pub stale_retries: u64,
    /// Hop connections opened (first dials and re-dials alike).
    pub connects: u64,
}

impl ShardHopStats {
    /// Every forwarded request got exactly one outcome.
    pub fn balanced(&self) -> bool {
        self.forwarded == self.ok + self.parse_error + self.timed_out + self.shed + self.io_error
    }

    /// Replies actually delivered by the shard (any status) — on clean
    /// runs this equals the shard's servers' `accepted` total.
    pub fn delivered(&self) -> u64 {
        self.ok + self.parse_error + self.timed_out + self.shed
    }
}

/// Point-in-time router accounting: client side plus one hop per shard.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Client connections accepted.
    pub connections: u64,
    /// Client requests read (every one gets a merged response).
    pub accepted: u64,
    /// Merged responses with `Ok` / `ParseError`.
    pub served: u64,
    /// Merged responses shed (`Overloaded` — some shard was exhausted).
    pub shed: u64,
    /// Merged responses with `DeadlineExceeded`.
    pub timed_out: u64,
    /// Per-shard hop accounting, indexed by shard id.
    pub hops: Vec<ShardHopStats>,
}

impl RouterStats {
    /// No silent drops on either side of the router.
    pub fn balanced(&self) -> bool {
        self.accepted == self.served + self.shed + self.timed_out
            && self.hops.iter().all(ShardHopStats::balanced)
    }

    /// Total replies delivered across all hops.
    pub fn hop_delivered(&self) -> u64 {
        self.hops.iter().map(ShardHopStats::delivered).sum()
    }
}

impl std::fmt::Display for RouterStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "conns {}  accepted {}  served {}  shed {}  timed-out {}",
            self.connections, self.accepted, self.served, self.shed, self.timed_out
        )?;
        for (s, h) in self.hops.iter().enumerate() {
            write!(
                f,
                "\n  shard {s}: forwarded {}  ok {}  shed {}  io {}  retried {}  stale {}",
                h.forwarded, h.ok, h.shed, h.io_error, h.retried_sheds, h.stale_retries
            )?;
        }
        Ok(())
    }
}

/// One replica endpoint as the router sees it.
struct Slot {
    /// Where the replica listens; replaced by a rollout swap.
    addr: Mutex<SocketAddr>,
    /// Manually routable (rollouts un-admit a replica before draining
    /// it so no new traffic races the drain).
    admit: AtomicBool,
    /// Observed-unreachable; set on connect/IO failure, cleared by the
    /// prober or by a successful address swap.
    down: AtomicBool,
    /// Bumped on address change so cached connections re-dial.
    epoch: AtomicU64,
}

#[derive(Default)]
struct HopCounters {
    forwarded: AtomicU64,
    ok: AtomicU64,
    parse_error: AtomicU64,
    timed_out: AtomicU64,
    shed: AtomicU64,
    io_error: AtomicU64,
    retried_sheds: AtomicU64,
    stale_retries: AtomicU64,
    connects: AtomicU64,
}

impl HopCounters {
    fn snapshot(&self) -> ShardHopStats {
        ShardHopStats {
            forwarded: self.forwarded.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            parse_error: self.parse_error.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            io_error: self.io_error.load(Ordering::Relaxed),
            retried_sheds: self.retried_sheds.load(Ordering::Relaxed),
            stale_retries: self.stale_retries.load(Ordering::Relaxed),
            connects: self.connects.load(Ordering::Relaxed),
        }
    }
}

struct RouterState {
    map: ShardMap,
    cfg: RouterConfig,
    /// `[shard][replica]` endpoints.
    slots: Vec<Vec<Slot>>,
    /// Highest generation returned per shard — the consistency pins.
    pins: Vec<AtomicU64>,
    hops: Vec<HopCounters>,
    connections: AtomicU64,
    accepted: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    timed_out: AtomicU64,
    closing: AtomicBool,
    /// Prober parking lot, notified at drain for a prompt exit.
    parked: Mutex<()>,
    wake: Condvar,
}

/// A cached hop connection, valid for one slot epoch.
struct CachedConn {
    epoch: u64,
    client: Client,
}

type ConnCache = Vec<Vec<Option<CachedConn>>>;

/// The running router. [`Router::drain`] is the intended exit; `Drop`
/// drains too.
pub struct Router {
    state: Arc<RouterState>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    prober: Option<JoinHandle<()>>,
}

impl Router {
    /// Binds `addr` and starts routing over `replicas[shard][replica]`
    /// endpoints. `map` must be byte-identical to the cluster's (load
    /// it from the cluster's persisted `shardmap.bin` when crossing a
    /// process boundary); the topology must cover every shard with at
    /// least one replica.
    pub fn start(
        map: ShardMap,
        replicas: &[Vec<SocketAddr>],
        cfg: RouterConfig,
        addr: impl ToSocketAddrs,
    ) -> io::Result<Router> {
        if replicas.len() != map.shards() as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "topology must list every shard exactly once",
            ));
        }
        if replicas.iter().any(Vec::is_empty) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "every shard needs at least one replica",
            ));
        }
        let slots: Vec<Vec<Slot>> = replicas
            .iter()
            .map(|reps| {
                reps.iter()
                    .map(|&a| Slot {
                        addr: Mutex::new(a),
                        admit: AtomicBool::new(true),
                        down: AtomicBool::new(false),
                        epoch: AtomicU64::new(0),
                    })
                    .collect()
            })
            .collect();
        let n = slots.len();
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let state = Arc::new(RouterState {
            map,
            cfg,
            slots,
            pins: (0..n).map(|_| AtomicU64::new(0)).collect(),
            hops: (0..n).map(|_| HopCounters::default()).collect(),
            connections: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            closing: AtomicBool::new(false),
            parked: Mutex::new(()),
            wake: Condvar::new(),
        });
        let conns = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let s = Arc::clone(&state);
            let c = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("apex-shard-acceptor".into())
                .spawn(move || accept_loop(&listener, &s, &c))?
        };
        let prober = {
            let s = Arc::clone(&state);
            std::thread::Builder::new()
                .name("apex-shard-prober".into())
                .spawn(move || probe_loop(&s))?
        };
        Ok(Router {
            state,
            local_addr,
            acceptor: Some(acceptor),
            conns,
            prober: Some(prober),
        })
    }

    /// The bound client-facing address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The partitioner this router routes under.
    pub fn map(&self) -> ShardMap {
        self.state.map
    }

    /// Live accounting, both sides.
    pub fn stats(&self) -> RouterStats {
        RouterStats {
            connections: self.state.connections.load(Ordering::Relaxed),
            accepted: self.state.accepted.load(Ordering::Relaxed),
            served: self.state.served.load(Ordering::Relaxed),
            shed: self.state.shed.load(Ordering::Relaxed),
            timed_out: self.state.timed_out.load(Ordering::Relaxed),
            hops: self.state.hops.iter().map(HopCounters::snapshot).collect(),
        }
    }

    /// The per-shard generation pins: the highest generation any
    /// client has been shown, per shard. Monotonically non-decreasing.
    pub fn pinned_generations(&self) -> Vec<u64> {
        self.state
            .pins
            .iter()
            .map(|p| p.load(Ordering::SeqCst))
            .collect()
    }

    /// Manually includes/excludes a replica from routing. Rollouts
    /// un-admit the replica about to drain so no new query races it.
    pub fn set_admit(&self, shard: u16, replica: usize, admit: bool) {
        if let Some(slot) = self.slot(shard, replica) {
            slot.admit.store(admit, Ordering::SeqCst);
        }
    }

    /// Points a replica slot at its successor: swaps the address, bumps
    /// the epoch (cached connections re-dial), clears `down` and
    /// re-admits. The readmission step of a rolling swap.
    pub fn set_replica_addr(&self, shard: u16, replica: usize, addr: SocketAddr) {
        if let Some(slot) = self.slot(shard, replica) {
            {
                let mut a = slot.addr.lock().unwrap_or_else(|p| p.into_inner());
                *a = addr;
            }
            slot.epoch.fetch_add(1, Ordering::SeqCst);
            slot.down.store(false, Ordering::SeqCst);
            slot.admit.store(true, Ordering::SeqCst);
        }
    }

    fn slot(&self, shard: u16, replica: usize) -> Option<&Slot> {
        self.state
            .slots
            .get(usize::from(shard))
            .and_then(|reps| reps.get(replica))
    }

    /// Stops accepting, finishes in-flight merges, joins every thread,
    /// returns the final accounting. Draining twice is a no-op.
    pub fn drain(&mut self) -> RouterStats {
        self.drain_in_place();
        self.stats()
    }

    fn drain_in_place(&mut self) {
        self.state.closing.store(true, Ordering::SeqCst);
        self.state.wake.notify_all();
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.acceptor.take() {
            join_thread(h);
        }
        let conns = {
            let mut c = self.conns.lock().unwrap_or_else(|p| p.into_inner());
            std::mem::take(&mut *c)
        };
        for h in conns {
            join_thread(h);
        }
        if let Some(h) = self.prober.take() {
            join_thread(h);
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        if self.acceptor.is_some() || self.prober.is_some() {
            self.drain_in_place();
        }
    }
}

fn join_thread(h: JoinHandle<()>) {
    if let Err(e) = h.join() {
        std::panic::resume_unwind(e);
    }
}

fn accept_loop(
    listener: &TcpListener,
    state: &Arc<RouterState>,
    conns: &Mutex<Vec<JoinHandle<()>>>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                if state.closing.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if state.closing.load(Ordering::SeqCst) {
            return;
        }
        if stream.set_read_timeout(Some(state.cfg.poll)).is_err()
            || stream
                .set_write_timeout(Some(state.cfg.write_timeout))
                .is_err()
        {
            continue;
        }
        let conn_id = state.connections.fetch_add(1, Ordering::Relaxed);
        let s = Arc::clone(state);
        let spawned = std::thread::Builder::new()
            .name("apex-shard-conn".into())
            .spawn(move || conn_loop(stream, conn_id as usize, &s));
        if let Ok(h) = spawned {
            let mut c = conns.lock().unwrap_or_else(|p| p.into_inner());
            c.push(h);
        }
    }
}

/// Periodically re-tests replicas marked down; a successful TCP
/// connect readmits them to the routing pool.
fn probe_loop(state: &Arc<RouterState>) {
    loop {
        {
            let guard = state.parked.lock().unwrap_or_else(|p| p.into_inner());
            let _ = state
                .wake
                .wait_timeout(guard, state.cfg.probe_interval)
                .unwrap_or_else(|p| p.into_inner());
        }
        if state.closing.load(Ordering::SeqCst) {
            return;
        }
        for reps in &state.slots {
            for slot in reps {
                if !slot.down.load(Ordering::SeqCst) {
                    continue;
                }
                let addr = *slot.addr.lock().unwrap_or_else(|p| p.into_inner());
                if TcpStream::connect_timeout(&addr, Duration::from_millis(50)).is_ok() {
                    slot.down.store(false, Ordering::SeqCst);
                }
            }
        }
    }
}

/// What one polling client-side read produced.
enum Frame {
    Message(Message),
    Done,
}

/// Reads one client frame, tolerating read-timeout polls so drain is
/// noticed within `cfg.poll` on idle connections. Mirrors the server's
/// reader: a partial frame interrupted by drain is dropped un-counted.
fn read_frame(stream: &mut TcpStream, state: &RouterState) -> Frame {
    let mut buf: Vec<u8> = Vec::new();
    let mut need = 4usize;
    let mut have_len = false;
    loop {
        if buf.len() >= need {
            if !have_len {
                let head: [u8; 4] = match buf.get(..4).and_then(|b| b.try_into().ok()) {
                    Some(h) => h,
                    None => return Frame::Done, // can't occur: buf.len() >= need == 4
                };
                let len = u32::from_le_bytes(head) as usize;
                if len > state.cfg.max_frame {
                    return Frame::Done;
                }
                need = 4 + len;
                have_len = true;
                continue;
            }
            let Some(body) = buf.get(4..need) else {
                return Frame::Done; // can't occur: buf.len() >= need
            };
            return match Message::decode(body) {
                Ok(msg) => Frame::Message(msg),
                Err(_) => Frame::Done,
            };
        }
        let mut chunk = [0u8; 4096];
        let want = (need - buf.len()).min(chunk.len());
        let Some(dst) = chunk.get_mut(..want) else {
            return Frame::Done; // can't occur: want ≤ chunk.len()
        };
        match io::Read::read(stream, dst) {
            Ok(0) => return Frame::Done,
            Ok(n) => match chunk.get(..n) {
                Some(read) => buf.extend_from_slice(read),
                None => return Frame::Done, // can't occur: n ≤ want
            },
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if state.closing.load(Ordering::SeqCst) {
                    return Frame::Done;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Frame::Done,
        }
    }
}

fn conn_loop(mut stream: TcpStream, conn_id: usize, state: &Arc<RouterState>) {
    let mut cache: ConnCache = state
        .slots
        .iter()
        .map(|reps| reps.iter().map(|_| None).collect())
        .collect();
    let mut scratch = MergeScratch::new();
    // Conn-local jitter seed: decorrelates backoff sleeps across
    // concurrent client connections.
    let mut jitter = 0x9E37_79B9_7F4A_7C15u64 ^ ((conn_id as u64) << 17) | 1;
    loop {
        let req = match read_frame(&mut stream, state) {
            Frame::Message(Message::Request(req)) => req,
            Frame::Message(Message::Response(_)) | Frame::Done => return,
        };
        state.accepted.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        let mut resp = scatter_gather(state, &mut cache, conn_id, &req, &mut scratch, &mut jitter);
        resp.server_us = resp
            .server_us
            .max((start.elapsed().as_micros()).min(u128::from(u64::MAX)) as u64);
        match resp.status {
            Status::Ok | Status::ParseError => &state.served,
            Status::Overloaded | Status::Draining => &state.shed,
            Status::DeadlineExceeded => &state.timed_out,
        }
        .fetch_add(1, Ordering::Relaxed);
        let _ = write_message(&mut stream, &Message::Response(resp));
    }
}

fn hop_add(state: &RouterState, shard: usize, pick: fn(&HopCounters) -> &AtomicU64) {
    if let Some(h) = state.hops.get(shard) {
        pick(h).fetch_add(1, Ordering::Relaxed);
    }
}

fn count_status(state: &RouterState, shard: usize, status: Status) {
    let pick: fn(&HopCounters) -> &AtomicU64 = match status {
        Status::Ok => |h| &h.ok,
        Status::ParseError => |h| &h.parse_error,
        Status::DeadlineExceeded => |h| &h.timed_out,
        Status::Overloaded | Status::Draining => |h| &h.shed,
    };
    hop_add(state, shard, pick);
}

fn mark_down(state: &RouterState, cache: &mut ConnCache, shard: usize, replica: usize) {
    if let Some(slot) = state.slots.get(shard).and_then(|reps| reps.get(replica)) {
        slot.down.store(true, Ordering::SeqCst);
    }
    if let Some(entry) = cache.get_mut(shard).and_then(|c| c.get_mut(replica)) {
        *entry = None;
    }
}

/// Deterministic replica choice: among admissible (admitted, not-down)
/// replicas, index by `rotation` — connection-affine on the first try,
/// rotated to a sibling on retries. Falls back to admitted-but-down
/// (the prober may lag a recovery), then to any replica.
fn pick_replica(state: &RouterState, shard: usize, rotation: usize) -> Option<usize> {
    let slots = state.slots.get(shard)?;
    let mut pool: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter(|(_, s)| s.admit.load(Ordering::SeqCst) && !s.down.load(Ordering::SeqCst))
        .map(|(i, _)| i)
        .collect();
    if pool.is_empty() {
        pool = slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.admit.load(Ordering::SeqCst))
            .map(|(i, _)| i)
            .collect();
    }
    if pool.is_empty() {
        pool = (0..slots.len()).collect();
    }
    let n = pool.len();
    if n == 0 {
        return None;
    }
    pool.get(rotation % n).copied()
}

/// Returns a connected client for `(shard, replica)`, re-dialing when
/// the cached connection's epoch is stale. A failed dial marks the
/// replica down.
fn ensure_conn<'a>(
    state: &RouterState,
    cache: &'a mut ConnCache,
    shard: usize,
    replica: usize,
) -> Option<&'a mut Client> {
    let slot = state.slots.get(shard)?.get(replica)?;
    let epoch = slot.epoch.load(Ordering::SeqCst);
    let entry = cache.get_mut(shard)?.get_mut(replica)?;
    if entry.as_ref().is_some_and(|c| c.epoch != epoch) {
        *entry = None;
    }
    if entry.is_none() {
        let addr = *slot.addr.lock().unwrap_or_else(|p| p.into_inner());
        match Client::connect(addr) {
            Ok(client) => {
                let _ = client.set_read_timeout(Some(state.cfg.gather_timeout));
                if let Some(h) = state.hops.get(shard) {
                    h.connects.fetch_add(1, Ordering::Relaxed);
                }
                *entry = Some(CachedConn { epoch, client });
            }
            Err(_) => {
                slot.down.store(true, Ordering::SeqCst);
                return None;
            }
        }
    }
    entry.as_mut().map(|c| &mut c.client)
}

/// Sends the query to one replica of `shard` (probing siblings on
/// failure); returns the replica index and the hop request id.
fn send_to_shard(
    state: &RouterState,
    cache: &mut ConnCache,
    shard: usize,
    rotation: usize,
    req: &Request,
) -> Option<(usize, u64)> {
    let n_repl = state.slots.get(shard).map_or(0, Vec::len).max(1);
    for probe in 0..n_repl {
        let replica = pick_replica(state, shard, rotation + probe)?;
        let sent = match ensure_conn(state, cache, shard, replica) {
            Some(client) => {
                hop_add(state, shard, |h| &h.forwarded);
                client.send(&req.query, req.deadline_ms)
            }
            None => continue,
        };
        match sent {
            Ok(id) => return Some((replica, id)),
            Err(_) => {
                hop_add(state, shard, |h| &h.io_error);
                mark_down(state, cache, shard, replica);
            }
        }
    }
    None
}

/// Blocks for the reply to hop request `id` on the cached connection.
/// Any transport failure (EOF, broken pipe, gather timeout) marks the
/// replica down and counts `io_error` for the outstanding send.
fn recv_from(
    state: &RouterState,
    cache: &mut ConnCache,
    shard: usize,
    replica: usize,
    id: u64,
) -> Option<Response> {
    loop {
        let step = match cache
            .get_mut(shard)
            .and_then(|c| c.get_mut(replica))
            .and_then(|e| e.as_mut())
        {
            Some(entry) => entry.client.recv(),
            None => return None,
        };
        match step {
            Ok(Some(resp)) if resp.id == id => return Some(resp),
            Ok(Some(_)) => {} // stray reply from an abandoned exchange
            Ok(None) | Err(_) => {
                hop_add(state, shard, |h| &h.io_error);
                mark_down(state, cache, shard, replica);
                return None;
            }
        }
    }
}

/// The generation `resp` reports for `shard` (falling back to the
/// scalar generation for untagged single-process peers).
fn gen_of(resp: &Response, shard: usize) -> u64 {
    resp.gens
        .iter()
        .find(|g| usize::from(g.shard) == shard)
        .map_or(resp.generation, |g| g.generation)
}

/// Keeps the more useful of two fallback replies: definitive beats
/// shed; among equals, the higher generation.
fn pick_better(best: Option<Response>, cand: Response) -> Option<Response> {
    match best {
        None => Some(cand),
        Some(b) => {
            let cand_wins = (b.status.is_shed() && !cand.status.is_shed())
                || (b.status.is_shed() == cand.status.is_shed() && cand.generation >= b.generation);
            Some(if cand_wins { cand } else { b })
        }
    }
}

/// A sleep between `d/2` and `d` (capped) from a conn-local xorshift.
fn jittered(seed: &mut u64, d: Duration, cap: Duration) -> Duration {
    let mut x = *seed;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *seed = x;
    let d = d.min(cap);
    let half = d / 2;
    let span = half.as_micros().min(u128::from(u64::MAX)) as u64;
    let extra = if span == 0 { 0 } else { x % (span + 1) };
    half + Duration::from_micros(extra)
}

/// Gets one definitive, pin-consistent reply from `shard`, retrying
/// transport failures, sheds and stale generations within the attempt
/// budget. `first` is the phase-1 pipelined send, if one succeeded.
fn gather_shard(
    state: &RouterState,
    cache: &mut ConnCache,
    shard: usize,
    conn_id: usize,
    first: Option<(usize, u64)>,
    req: &Request,
    jitter: &mut u64,
) -> Option<Response> {
    let attempts = state.cfg.retry_attempts.max(1);
    let mut best: Option<Response> = None;
    let mut backoff = state.cfg.backoff;
    let mut pending = first;
    for attempt in 0..attempts {
        let got = match pending.take() {
            Some((replica, id)) => recv_from(state, cache, shard, replica, id),
            None => {
                // Retry rotation starts at the sibling of the affine
                // first choice, so failures don't re-land on the
                // replica that just failed or shed.
                match send_to_shard(state, cache, shard, conn_id + attempt as usize, req) {
                    Some((replica, id)) => recv_from(state, cache, shard, replica, id),
                    None => None,
                }
            }
        };
        let Some(resp) = got else {
            continue; // transport failure: the next attempt rotates
        };
        count_status(state, shard, resp.status);
        if resp.status.is_shed() {
            if attempt + 1 < attempts {
                hop_add(state, shard, |h| &h.retried_sheds);
                std::thread::sleep(jittered(jitter, backoff, state.cfg.backoff_cap));
                backoff = backoff.saturating_mul(2).min(state.cfg.backoff_cap);
            }
            best = pick_better(best, resp);
            continue;
        }
        let gen = gen_of(&resp, shard);
        let pin = state
            .pins
            .get(shard)
            .map_or(0, |p| p.load(Ordering::SeqCst));
        if gen < pin {
            // An older generation than this shard has already shown a
            // client: re-ask rather than let one query's shards mix
            // eras. Bounded — after the budget the best reply wins
            // (liveness over a perfect pin when every replica is
            // behind, which a real refresh resolves in one swap).
            hop_add(state, shard, |h| &h.stale_retries);
            best = pick_better(best, resp);
            continue;
        }
        if let Some(p) = state.pins.get(shard) {
            p.fetch_max(gen, Ordering::SeqCst);
        }
        return Some(resp);
    }
    best
}

/// An explicit whole-query refusal (some shard was exhausted).
fn overloaded(id: u64) -> Response {
    Response {
        id,
        status: Status::Overloaded,
        generation: 0,
        total_rows: 0,
        rows: Vec::new(),
        pages_read: 0,
        join_work: 0,
        server_us: 0,
        plan_digest: 0,
        gens: Vec::new(),
    }
}

/// Merges per-shard replies into the client's single response. See the
/// module docs for the exact semantics.
fn merge_responses(id: u64, finals: Vec<Option<Response>>, scratch: &mut MergeScratch) -> Response {
    let mut parts: Vec<(u16, Response)> = Vec::with_capacity(finals.len());
    for (s, f) in finals.into_iter().enumerate() {
        match f {
            Some(resp) if !resp.status.is_shed() => parts.push((s as u16, resp)),
            // No definitive answer from this shard inside the budget:
            // shed the whole query explicitly — never a partial union.
            _ => return overloaded(id),
        }
    }
    let mut status = Status::Ok;
    if parts
        .iter()
        .any(|(_, r)| r.status == Status::DeadlineExceeded)
    {
        status = Status::DeadlineExceeded;
    } else if parts.iter().any(|(_, r)| r.status == Status::ParseError) {
        status = Status::ParseError;
    }
    let lists: Vec<&[u32]> = parts.iter().map(|(_, r)| r.rows.as_slice()).collect();
    let mut rows: Vec<u32> = Vec::new();
    let mut work = 0usize;
    merge_sorted_into(&lists, scratch, &mut rows, &mut work);
    rows.truncate(MAX_ROW_SAMPLE);
    let mut out = overloaded(id);
    out.status = status;
    out.rows = rows;
    for (s, r) in &parts {
        out.total_rows = out.total_rows.saturating_add(r.total_rows);
        // apex-lint: allow(cost-io-writes): sums the shards' already-attributed wire counters into the merged response; no new I/O is charged here
        out.pages_read = out.pages_read.saturating_add(r.pages_read);
        out.join_work = out.join_work.saturating_add(r.join_work);
        out.server_us = out.server_us.max(r.server_us);
        out.plan_digest ^= r.plan_digest;
        out.generation = out.generation.max(gen_of(r, usize::from(*s)));
        out.gens.push(ShardGen {
            shard: *s,
            generation: gen_of(r, usize::from(*s)),
        });
    }
    out
}

/// One request end to end: pipelined scatter (send to every shard's
/// first-choice replica), then gather-with-retries in shard order, then
/// merge.
fn scatter_gather(
    state: &RouterState,
    cache: &mut ConnCache,
    conn_id: usize,
    req: &Request,
    scratch: &mut MergeScratch,
    jitter: &mut u64,
) -> Response {
    let n = state.slots.len();
    let mut pending: Vec<Option<(usize, u64)>> = Vec::with_capacity(n);
    for s in 0..n {
        pending.push(send_to_shard(state, cache, s, conn_id, req));
    }
    let mut finals: Vec<Option<Response>> = Vec::with_capacity(n);
    for (s, first) in pending.into_iter().enumerate() {
        finals.push(gather_shard(state, cache, s, conn_id, first, req, jitter));
    }
    merge_responses(req.id, finals, scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{rolling_swap, ClusterConfig, ShardCluster};
    use crate::runtime::{RuntimeConfig, ShardRuntime};
    use apex_net::{Server, ServerConfig};
    use std::sync::Arc;
    use xmlgraph::builder::moviedb;

    fn start_router(cluster: &ShardCluster) -> Router {
        Router::start(
            cluster.map(),
            &cluster.addrs(),
            RouterConfig::default(),
            "127.0.0.1:0",
        )
        .expect("router")
    }

    #[test]
    fn merged_answers_equal_the_single_process_run() {
        let g = Arc::new(moviedb());
        let cluster =
            ShardCluster::start(Arc::clone(&g), ShardMap::new(3), ClusterConfig::default())
                .expect("cluster");
        let mut router = start_router(&cluster);
        let solo =
            ShardRuntime::start(0, &ShardMap::new(1), g, &RuntimeConfig::default()).expect("solo");

        let mut c = Client::connect(router.local_addr()).expect("connect");
        for q in ["//actor/name", "//movie/title", "//director/movie/title"] {
            let merged = c.call(q, 0).expect("call");
            let full = solo.eval_local(q);
            assert_eq!(merged.status, Status::Ok, "{q}");
            assert_eq!(merged.total_rows, full.total_rows, "{q}: totals");
            assert_eq!(merged.rows, full.rows, "{q}: row sample");
            assert!(merged.pages_read > 0);
            let mut shards: Vec<u16> = merged.gens.iter().map(|e| e.shard).collect();
            shards.sort_unstable();
            assert_eq!(shards, vec![0, 1, 2], "one gens entry per shard");
        }
        let bad = c.call("actor", 0).expect("call");
        assert_eq!(bad.status, Status::ParseError, "parse errors merge as-is");
        drop(c);

        let stats = router.drain();
        assert!(stats.balanced(), "{stats}");
        assert_eq!(stats.accepted, 4);
        assert_eq!(stats.served, 4);
        // Every hop delivered a reply for every request on this clean
        // run: cross-hop rollup matches the shard servers exactly.
        let cluster_stats = cluster.shutdown();
        assert_eq!(stats.hop_delivered(), cluster_stats.net_total().accepted);
        assert!(cluster_stats.balanced());
    }

    #[test]
    fn routes_around_a_dead_replica() {
        let g = Arc::new(moviedb());
        let mut cluster =
            ShardCluster::start(g, ShardMap::new(2), ClusterConfig::default()).expect("cluster");
        let mut router = start_router(&cluster);
        let mut c = Client::connect(router.local_addr()).expect("connect");
        assert_eq!(c.call("//actor/name", 0).expect("warm").status, Status::Ok);
        // Kill the first-choice replica of shard 0 behind the router's
        // back (swap it in the cluster but never tell the router).
        cluster.swap_replica(0, 0).expect("swap");
        for _ in 0..5 {
            let r = c.call("//actor/name", 0).expect("call");
            assert_eq!(r.status, Status::Ok, "sibling must absorb the traffic");
        }
        drop(c);
        let stats = router.drain();
        assert!(stats.balanced(), "{stats}");
        assert_eq!(stats.served, 6);
        assert_eq!(stats.shed, 0, "client never sees the dead replica");
        let h0 = stats.hops.first().copied().unwrap_or_default();
        assert!(
            h0.io_error >= 1,
            "the cached connection's death must be observed: {stats}"
        );
        cluster.shutdown();
    }

    #[test]
    fn rolling_swap_is_invisible_to_the_client() {
        let g = Arc::new(moviedb());
        let mut cluster =
            ShardCluster::start(g, ShardMap::new(2), ClusterConfig::default()).expect("cluster");
        let mut router = start_router(&cluster);
        let mut c = Client::connect(router.local_addr()).expect("connect");
        assert_eq!(c.call("//actor/name", 0).expect("pre").status, Status::Ok);
        let report = rolling_swap(&mut cluster, &router).expect("rollout");
        assert_eq!(report.swapped, 4, "2 shards × 2 replicas");
        for _ in 0..3 {
            let r = c.call("//movie/title", 0).expect("post");
            assert_eq!(r.status, Status::Ok, "successors must serve");
        }
        drop(c);
        let stats = router.drain();
        assert!(stats.balanced(), "{stats}");
        assert_eq!(stats.shed, 0, "rollout must shed nothing client-side");
        let cluster_stats = cluster.shutdown();
        assert_eq!(cluster_stats.retired.len(), 4);
        assert!(cluster_stats.balanced());
    }

    #[test]
    fn stale_generations_are_retried_and_pins_are_monotonic() {
        // Two *independent* runtimes posing as replicas of one shard —
        // the only way to fabricate generation skew in-process, since
        // real replicas share their shard's cell.
        let g = Arc::new(moviedb());
        let map = ShardMap::new(1);
        let cfg = RuntimeConfig::default();
        let behind = ShardRuntime::start(0, &map, Arc::clone(&g), &cfg).expect("behind");
        let ahead = ShardRuntime::start(0, &map, Arc::clone(&g), &cfg).expect("ahead");
        ahead.eval_local("//actor/name");
        ahead.eval_local("//movie/title");
        ahead.step_refresh();
        assert_eq!(ahead.generation(), 1);
        assert_eq!(behind.generation(), 0);
        let mut servers = [
            Server::start(behind.engine(), ServerConfig::default(), "127.0.0.1:0").expect("b"),
            Server::start(ahead.engine(), ServerConfig::default(), "127.0.0.1:0").expect("a"),
        ];
        let topo = vec![vec![servers[0].local_addr(), servers[1].local_addr()]];
        let mut router =
            Router::start(map, &topo, RouterConfig::default(), "127.0.0.1:0").expect("router");
        let mut c = Client::connect(router.local_addr()).expect("connect");

        // conn 0's affine pick is replica 0 (behind, gen 0): pin = 0.
        let r1 = c.call("//actor/name", 0).expect("r1");
        assert_eq!(gen_of(&r1, 0), 0);
        // Force the pin forward through the ahead replica.
        router.set_admit(0, 0, false);
        let r2 = c.call("//actor/name", 0).expect("r2");
        assert_eq!(gen_of(&r2, 0), 1);
        assert_eq!(router.pinned_generations(), vec![1]);
        // Readmit the stale replica: its gen-0 reply must be rejected
        // and re-asked until the ahead replica answers.
        router.set_admit(0, 0, true);
        let r3 = c.call("//actor/name", 0).expect("r3");
        assert_eq!(
            gen_of(&r3, 0),
            1,
            "a generation below the pin must never be returned"
        );
        drop(c);
        let stats = router.drain();
        assert!(stats.balanced(), "{stats}");
        let h0 = stats.hops.first().copied().unwrap_or_default();
        assert!(
            h0.stale_retries >= 1,
            "the stale reply was retried: {stats}"
        );
        for s in &mut servers {
            s.drain();
        }
        drop(servers);
        behind.shutdown();
        ahead.shutdown();
    }
}
