//! The in-process cluster harness: `shards × replicas` real listeners.
//!
//! A [`ShardCluster`] owns one [`ShardRuntime`] per shard and runs
//! `replicas` independent TCP servers over each — the `net::server`
//! admission/drain machinery verbatim, just constructed with a
//! shard-tagged, owned-filtered engine. Replica swaps reuse the
//! server's graceful drain: every request a draining replica accepted
//! is answered (served or explicitly shed) before its listener dies,
//! and its final [`NetStats`] is retained so cluster-wide accounting
//! keeps balancing across swaps.
//!
//! [`rolling_swap`] is the rollout choreography the CLI and the bench
//! drive: for each replica in turn, stop routing to it, drain and
//! replace it, then point the router at the successor. With ≥ 2
//! replicas per shard the sibling absorbs the traffic, so a client of
//! the router sees zero sheds end to end.

use std::io;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;

use apex::ServeStats;
use apex_net::{NetStats, Server, ServerConfig};
use xmlgraph::XmlGraph;

use crate::map::ShardMap;
use crate::router::Router;
use crate::runtime::{RuntimeConfig, ShardRuntime};

/// Shape and tuning of one cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Listeners per shard; rolling swaps need ≥ 2 for zero shed.
    pub replicas: usize,
    /// Worker threads per replica server.
    pub workers: usize,
    /// Per-replica admission queue capacity.
    pub queue_cap: usize,
    /// When set, shard `s` logs its workload durably under
    /// `wal_root/shard-s/` and the serialized [`ShardMap`] is persisted
    /// as `wal_root/shardmap.bin` so an out-of-process router can load
    /// the byte-identical partitioner.
    pub wal_root: Option<PathBuf>,
    /// Per-shard runtime knobs (monitor window, `minSup`, policy).
    pub runtime: RuntimeConfig,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            replicas: 2,
            workers: 2,
            queue_cap: 64,
            wal_root: None,
            runtime: RuntimeConfig::default(),
        }
    }
}

/// Final accounting of a shut-down cluster.
#[derive(Debug)]
pub struct ClusterStats {
    /// Drain stats of the replicas live at shutdown, `[shard][replica]`.
    pub shard_nets: Vec<Vec<NetStats>>,
    /// Drain stats of replicas retired by earlier swaps, in swap order.
    pub retired: Vec<NetStats>,
    /// Per-shard refresher stats, by shard id.
    pub serve: Vec<ServeStats>,
}

impl ClusterStats {
    /// Field-wise total over live and retired replicas: the cluster's
    /// whole serving history, swaps included.
    pub fn net_total(&self) -> NetStats {
        let mut t = NetStats::default();
        for s in self.shard_nets.iter().flatten().chain(self.retired.iter()) {
            t.connections += s.connections;
            t.accepted += s.accepted;
            t.served += s.served;
            t.shed += s.shed;
            t.timed_out += s.timed_out;
            t.queue_hwm = t.queue_hwm.max(s.queue_hwm);
        }
        t
    }

    /// No-silent-drops across the whole cluster history.
    pub fn balanced(&self) -> bool {
        self.net_total().balanced()
    }
}

/// A running cluster: one runtime per shard, `replicas` servers each.
pub struct ShardCluster {
    map: ShardMap,
    cfg: ClusterConfig,
    runtimes: Vec<ShardRuntime>,
    servers: Vec<Vec<Server>>,
    retired: Vec<NetStats>,
}

impl ShardCluster {
    /// Partitions `g` by `map` and starts every runtime and replica
    /// listener (all on ephemeral loopback ports — read them back with
    /// [`ShardCluster::addrs`]).
    pub fn start(g: Arc<XmlGraph>, map: ShardMap, cfg: ClusterConfig) -> io::Result<ShardCluster> {
        if let Some(root) = &cfg.wal_root {
            std::fs::create_dir_all(root)?;
            map.save(&root.join("shardmap.bin"))?;
        }
        let mut runtimes = Vec::with_capacity(map.shards() as usize);
        let mut servers = Vec::with_capacity(map.shards() as usize);
        for s in 0..map.shards() {
            let rt_cfg = RuntimeConfig {
                wal_dir: cfg
                    .wal_root
                    .as_ref()
                    .map(|root| root.join(format!("shard-{s}"))),
                ..cfg.runtime.clone()
            };
            let rt = ShardRuntime::start(s, &map, Arc::clone(&g), &rt_cfg)?;
            let mut reps = Vec::with_capacity(cfg.replicas.max(1));
            for _ in 0..cfg.replicas.max(1) {
                reps.push(Server::start(
                    rt.engine(),
                    Self::server_cfg(&cfg),
                    "127.0.0.1:0",
                )?);
            }
            runtimes.push(rt);
            servers.push(reps);
        }
        Ok(ShardCluster {
            map,
            cfg,
            runtimes,
            servers,
            retired: Vec::new(),
        })
    }

    fn server_cfg(cfg: &ClusterConfig) -> ServerConfig {
        ServerConfig {
            workers: cfg.workers.max(1),
            queue_cap: cfg.queue_cap,
            ..ServerConfig::default()
        }
    }

    /// The partitioner this cluster serves under.
    pub fn map(&self) -> ShardMap {
        self.map
    }

    /// Live replica addresses, `[shard][replica]` — the router's
    /// bootstrap topology.
    pub fn addrs(&self) -> Vec<Vec<SocketAddr>> {
        self.servers
            .iter()
            .map(|reps| reps.iter().map(|s| s.local_addr()).collect())
            .collect()
    }

    /// The runtime behind shard `shard`, for deterministic stepping.
    pub fn runtime(&self, shard: u16) -> Option<&ShardRuntime> {
        self.runtimes.get(shard as usize)
    }

    /// Current published generation of every shard, by shard id.
    pub fn generations(&self) -> Vec<u64> {
        self.runtimes.iter().map(|rt| rt.generation()).collect()
    }

    /// Live per-replica accounting, `[shard][replica]`.
    pub fn net_stats(&self) -> Vec<Vec<NetStats>> {
        self.servers
            .iter()
            .map(|reps| reps.iter().map(|s| s.stats()).collect())
            .collect()
    }

    /// Drains replica `(shard, replica)` gracefully — every accepted
    /// request answered, final stats retained in the retired ledger —
    /// and starts a fresh listener over the same runtime on a new
    /// ephemeral port, returning its address. The shard's refresher
    /// keeps running throughout (it is shared, owned by the runtime).
    pub fn swap_replica(&mut self, shard: u16, replica: usize) -> io::Result<SocketAddr> {
        let rt = self.runtimes.get(shard as usize).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, format!("no shard {shard}"))
        })?;
        let fresh = Server::start(rt.engine(), Self::server_cfg(&self.cfg), "127.0.0.1:0")?;
        let addr = fresh.local_addr();
        let slot = self
            .servers
            .get_mut(shard as usize)
            .and_then(|reps| reps.get_mut(replica))
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("no replica {replica} of shard {shard}"),
                )
            })?;
        let mut old = std::mem::replace(slot, fresh);
        self.retired.push(old.drain());
        Ok(addr)
    }

    /// Drains every replica, stops every runtime, returns the full
    /// accounting (live, retired and refresher stats).
    pub fn shutdown(self) -> ClusterStats {
        let ShardCluster {
            runtimes,
            servers,
            retired,
            ..
        } = self;
        let mut shard_nets = Vec::with_capacity(servers.len());
        for reps in servers {
            let mut row = Vec::with_capacity(reps.len());
            for mut server in reps {
                row.push(server.drain());
            }
            shard_nets.push(row);
        }
        let serve = runtimes.into_iter().map(|rt| rt.shutdown()).collect();
        ClusterStats {
            shard_nets,
            retired,
            serve,
        }
    }
}

/// What one rolling swap did.
#[derive(Debug, Clone, Default)]
pub struct RolloutReport {
    /// Replicas drained and replaced, in order of `(shard, replica)`.
    pub swapped: usize,
    /// Requests the retired replicas shed while draining (absorbed by
    /// sibling retries — a router client still sees zero sheds).
    pub drained_sheds: u64,
}

/// Replaces every replica of every shard, one at a time, while the
/// cluster serves: un-admit the replica at the router → gracefully
/// drain and restart it → hand the router the successor's address
/// (which readmits it). The sibling replica carries the shard while
/// its peer is out, so with `replicas ≥ 2` no router client observes
/// a shed — the zero-downtime invariant the rollout bench asserts.
pub fn rolling_swap(cluster: &mut ShardCluster, router: &Router) -> io::Result<RolloutReport> {
    let mut report = RolloutReport::default();
    let before: u64 = cluster.retired.iter().map(|s| s.shed).sum();
    for shard in 0..cluster.map.shards() {
        for replica in 0..cluster.cfg.replicas.max(1) {
            router.set_admit(shard, replica, false);
            let addr = cluster.swap_replica(shard, replica)?;
            router.set_replica_addr(shard, replica, addr);
            report.swapped += 1;
        }
    }
    let after: u64 = cluster.retired.iter().map(|s| s.shed).sum();
    report.drained_sheds = after - before;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_net::{Client, Status};
    use xmlgraph::builder::moviedb;

    #[test]
    fn cluster_serves_each_shard_over_real_sockets() {
        let g = Arc::new(moviedb());
        let map = ShardMap::new(2);
        let cluster = ShardCluster::start(g, map, ClusterConfig::default()).expect("start");
        let addrs = cluster.addrs();
        assert_eq!(addrs.len(), 2);
        assert!(addrs.iter().all(|reps| reps.len() == 2));
        // Both replicas of a shard serve the same filtered answer.
        let mut totals = Vec::new();
        for reps in &addrs {
            let mut per_replica = Vec::new();
            for addr in reps {
                let mut c = Client::connect(addr).expect("connect");
                let r = c.call("//actor/name", 0).expect("call");
                assert_eq!(r.status, Status::Ok);
                assert_eq!(r.gens.len(), 1, "shard replicas stamp one gens entry");
                per_replica.push(r.total_rows);
            }
            assert_eq!(per_replica[0], per_replica[1]);
            totals.push(per_replica[0]);
        }
        let stats = cluster.shutdown();
        assert!(stats.balanced(), "{:?}", stats.net_total());
        assert_eq!(stats.net_total().accepted, 4);
    }

    #[test]
    fn swap_replica_retires_cleanly_and_successor_serves() {
        let g = Arc::new(moviedb());
        let map = ShardMap::new(1);
        let mut cluster = ShardCluster::start(g, map, ClusterConfig::default()).expect("start");
        let old = cluster.addrs()[0][0];
        let mut c = Client::connect(old).expect("connect");
        assert_eq!(c.call("//movie/title", 0).expect("call").status, Status::Ok);
        drop(c);
        let fresh = cluster.swap_replica(0, 0).expect("swap");
        assert_ne!(fresh, old);
        let mut c = Client::connect(fresh).expect("connect successor");
        assert_eq!(c.call("//movie/title", 0).expect("call").status, Status::Ok);
        drop(c);
        let stats = cluster.shutdown();
        assert_eq!(stats.retired.len(), 1);
        assert_eq!(stats.retired[0].accepted, 1);
        assert!(stats.balanced());
    }

    #[test]
    fn wal_root_persists_the_shard_map() {
        let dir = std::env::temp_dir().join(format!("apex-cluster-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let g = Arc::new(moviedb());
        let map = ShardMap::with_seed(2, 0xFEED);
        let cfg = ClusterConfig {
            wal_root: Some(dir.clone()),
            ..ClusterConfig::default()
        };
        let cluster = ShardCluster::start(g, map, cfg).expect("start");
        let loaded = ShardMap::load(&dir.join("shardmap.bin")).expect("load");
        assert_eq!(loaded, map, "router-side load must agree bytewise");
        assert!(dir.join("shard-0").is_dir(), "durable shard WAL dir");
        cluster.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
