//! The shared physical execution layer.
//!
//! Every query processor used in the Figure 13–15 comparison (APEX,
//! strong DataGuide, 1-index, Index Fabric, naive) evaluates QTYPE1/2/3
//! through the operators in this module, so extent access, buffer-pool
//! charging and cost accounting are implemented exactly once and the
//! cross-index comparison stays fair by construction.
//!
//! [`ExecContext`] carries the per-query [`Cost`], the
//! [`KernelPolicy`] deciding each semijoin's kernel, reusable scratch
//! buffers, and a handle to the *cross-query* [`BufferHandle`] pool;
//! operators route every page touch through the pool and attribute the
//! counters they move to their [`OpKind`] (by diffing scalar snapshots
//! around the operator body, so nested composites never double-count).
//!
//! Pair extents are charged at *block* granularity: each page-sized
//! compressed block of an extent (see `apex_storage::block`) is its own
//! pool object, so a kernel that skips a block via the skip index never
//! faults its page, and `pages_read` reflects both the compression and
//! the skipping.
//!
//! | operator | paper role |
//! |---|---|
//! | [`ExtentScan`] | read one stored extent |
//! | [`ExtentUnion`] | union the extents of one `H_APEX` segment |
//! | [`Semijoin`] | one join step (merge / gallop / block-skip kernel) |
//! | [`MultiwayJoin`] | the §6.1 QTYPE1 chain: seed union + join steps |
//! | [`DataProbe`] | QTYPE3 data-table value test |
//! | [`IndexNav`] | index-graph navigation I/O (page-packed records) |
//! | [`TrieSearch`] | Index Fabric key search / traversal |

use apex_storage::bufmgr::{BufferHandle, ObjectId, Space};
use apex_storage::kernels::{self, Kernel, KernelPolicy, SemijoinScratch};
use apex_storage::{Cost, DataTable, EdgePair, EdgeSet, Ends, OpKind};
use fabric::IndexFabric;
use xmlgraph::{LabelId, NodeId};

/// Reusable per-context buffers: operators borrow these instead of
/// allocating per invocation.
#[derive(Debug, Default)]
pub(crate) struct ExecScratch {
    pub(crate) semi: SemijoinScratch,
    pub(crate) union: Vec<EdgePair>,
}

/// Per-query execution state: the cost being accumulated, the kernel
/// policy, scratch buffers, plus the shared buffer pool every operator
/// charges against.
pub struct ExecContext<'a> {
    buf: &'a BufferHandle,
    policy: KernelPolicy,
    scratch: ExecScratch,
    /// Absolute deadline for this query, if any: composite operators
    /// poll [`ExecContext::checkpoint`] at stage boundaries and stop
    /// early once it passes (cooperative cancellation — the unit of
    /// non-preemptible work is one operator stage, never a whole query).
    deadline: Option<std::time::Instant>,
    /// Sticky flag: a checkpoint observed the deadline in the past.
    interrupted: bool,
    /// The counters this query has accumulated so far.
    pub cost: Cost,
}

impl<'a> ExecContext<'a> {
    /// A fresh context over a shared pool, with the adaptive kernel
    /// policy.
    pub fn new(buf: &'a BufferHandle) -> Self {
        Self::with_policy(buf, KernelPolicy::Adaptive)
    }

    /// A fresh context with an explicit kernel policy (tests and
    /// benches force single kernels through this).
    pub fn with_policy(buf: &'a BufferHandle, policy: KernelPolicy) -> Self {
        ExecContext {
            buf,
            policy,
            scratch: ExecScratch::default(),
            deadline: None,
            interrupted: false,
            cost: Cost::new(),
        }
    }

    /// Arms a deadline: once `deadline` passes, [`checkpoint`] calls
    /// return `false` and operators unwind with whatever partial result
    /// they hold. [`interrupted`] reports whether that happened.
    ///
    /// [`checkpoint`]: ExecContext::checkpoint
    /// [`interrupted`]: ExecContext::interrupted
    pub fn set_deadline(&mut self, deadline: std::time::Instant) {
        self.deadline = Some(deadline);
    }

    /// True once a checkpoint has tripped the armed deadline.
    pub fn interrupted(&self) -> bool {
        self.interrupted
    }

    /// Deadline checkpoint: `true` means keep going. Called by composite
    /// operators between stages (join steps, fixpoint rounds, probe
    /// loops) — cheap enough for per-stage use, and deliberately not per
    /// pair, so kernels stay branch-free.
    pub fn checkpoint(&mut self) -> bool {
        if self.interrupted {
            return false;
        }
        if let Some(d) = self.deadline {
            if std::time::Instant::now() >= d {
                self.interrupted = true;
                return false;
            }
        }
        true
    }

    /// The kernel policy governing this context's semijoins.
    pub fn policy(&self) -> KernelPolicy {
        self.policy
    }

    /// The buffer pool behind this context.
    pub fn buffer(&self) -> &'a BufferHandle {
        self.buf
    }

    /// Consumes the context, yielding the accumulated cost.
    pub fn finish(self) -> Cost {
        self.cost
    }

    /// Runs `body` and attributes every scalar counter it moves to
    /// `kind`, counting one invocation. Shared with the planner's
    /// executor ([`crate::plan`]), which runs its backward pass through
    /// the same attribution discipline as the built-in operators.
    pub(crate) fn attributed<T>(
        &mut self,
        kind: OpKind,
        body: impl FnOnce(&mut Cost, &BufferHandle, &mut ExecScratch) -> T,
    ) -> T {
        let before = self.cost.scalars();
        let out = body(&mut self.cost, self.buf, &mut self.scratch);
        let after = self.cost.scalars();
        let mut delta = [0u64; 8];
        for (d, (a, b)) in delta.iter_mut().zip(after.iter().zip(before)) {
            *d = a - b;
        }
        self.cost.ops.record(kind, true, delta);
        out
    }

    /// Records `n` hash-table lookups (H_APEX / hash-tree probes),
    /// attributed to [`OpKind::IndexNav`] without counting an
    /// invocation.
    pub fn note_hash_lookups(&mut self, n: u64) {
        self.cost.hash_lookups += n;
        self.cost
            .ops
            .record(OpKind::IndexNav, false, [0, n, 0, 0, 0, 0, 0, 0]);
    }

    /// Records `n` result pairs accumulated by a dataflow fixpoint
    /// step, attributed to [`OpKind::IndexNav`] without counting an
    /// invocation.
    pub fn note_fixpoint_output(&mut self, n: u64) {
        self.cost.join_output += n;
        self.cost
            .ops
            .record(OpKind::IndexNav, false, [0, 0, 0, 0, n, 0, 0, 0]);
    }

    /// Records `n` index-graph edges traversed, attributed to
    /// [`OpKind::IndexNav`] without counting an invocation.
    pub fn nav_edges(&mut self, n: u64) {
        self.cost.index_edges += n;
        self.cost
            .ops
            .record(OpKind::IndexNav, false, [n, 0, 0, 0, 0, 0, 0, 0]);
    }
}

/// Buffer-pool identity of block `k` of pair extent `id`: the extent id
/// shifted into the high bits with the block index below it. Extent ids
/// must stay below 2⁴⁸ — they are `(generation_tag << 32) | xnode`, so
/// this bounds generation tags to 2¹⁶ (snapshot swap counts, far
/// below).
#[inline]
pub(crate) fn block_oid(space: Space, id: u64, k: u32) -> ObjectId {
    debug_assert!(id < 1 << 48, "extent id {id:#x} overflows block ids");
    ObjectId::new(space, (id << 16) | k as u64)
}

/// Charges every block of `set` (a full scan), returning pages read.
fn charge_all_blocks(buf: &BufferHandle, space: Space, id: u64, set: &EdgeSet) -> u64 {
    let bx = set.blocks();
    let mut pages = 0;
    for k in 0..bx.num_blocks() {
        pages += buf.touch(block_oid(space, id, k as u32), bx.block_bytes(k));
    }
    pages
}

/// What an [`ExtentScan`] reads: a pair extent in block storage, a
/// separately stored object, or a byte range of a page-packed array
/// (posting lists, adjacency lists).
#[derive(Debug, Clone)]
enum ScanTarget<'a> {
    Blocks {
        space: Space,
        id: u64,
        set: &'a EdgeSet,
    },
    Object {
        id: ObjectId,
        bytes: usize,
    },
    Packed {
        space: Space,
        bytes: std::ops::Range<u64>,
    },
}

/// Materializes one stored extent through the buffer pool: charges the
/// elements read plus the pages a miss costs. Covers pair extents
/// (APEX, block-compressed, charged per block), node-list extents
/// (guide/1-index, 4 bytes/node) and page-packed ranges (naive
/// posting/adjacency scans) via the constructors.
#[derive(Debug, Clone)]
pub struct ExtentScan<'a> {
    target: ScanTarget<'a>,
    len: usize,
}

impl<'a> ExtentScan<'a> {
    /// Scan of an edge-pair extent, stored as compressed blocks: every
    /// block is faulted (it's a full scan) at its encoded size.
    pub fn pairs(space: Space, id: u64, set: &'a EdgeSet) -> Self {
        ExtentScan {
            target: ScanTarget::Blocks { space, id, set },
            len: set.len(),
        }
    }

    /// Scan of a node-list extent (4 bytes per node id).
    pub fn nodes(space: Space, id: u64, nodes: &[NodeId]) -> Self {
        ExtentScan {
            target: ScanTarget::Object {
                id: ObjectId::new(space, id),
                bytes: nodes.len() * 4,
            },
            len: nodes.len(),
        }
    }

    /// Scan of `len` elements packed at `bytes` of a page-packed array.
    pub fn packed(space: Space, bytes: std::ops::Range<u64>, len: usize) -> Self {
        ExtentScan {
            target: ScanTarget::Packed { space, bytes },
            len,
        }
    }

    /// Charges the scan. The caller keeps the data (extents live in the
    /// index structures; this operator models their I/O).
    pub fn run(self, ctx: &mut ExecContext<'_>) {
        ctx.attributed(OpKind::ExtentScan, |cost, buf, _| {
            cost.extent_pairs += self.len as u64;
            cost.pages_read += match self.target {
                ScanTarget::Blocks { space, id, set } => charge_all_blocks(buf, space, id, set),
                ScanTarget::Object { id, bytes } => buf.touch(id, bytes),
                ScanTarget::Packed { space, bytes } => buf.touch_byte_range(space, bytes),
            };
        })
    }
}

/// Scans several extents and merges them into one edge set — the seed
/// of a QTYPE1 plan (the exact segment's class extents).
#[derive(Debug)]
pub struct ExtentUnion<'a> {
    /// `(buffer id, extent)` sources, scanned in order.
    pub sources: Vec<(u64, &'a EdgeSet)>,
    /// The address space the ids live in.
    pub space: Space,
}

impl ExtentUnion<'_> {
    /// Scans and merges every source.
    pub fn run(self, ctx: &mut ExecContext<'_>) -> EdgeSet {
        ctx.attributed(OpKind::ExtentUnion, |cost, buf, scratch| {
            let mut out = EdgeSet::new();
            for (id, set) in &self.sources {
                cost.extent_pairs += set.len() as u64;
                cost.pages_read += charge_all_blocks(buf, self.space, *id, set);
                out.union_in_place(set, &mut scratch.union);
            }
            out
        })
    }
}

/// One semijoin step: keeps the pairs of `extent` whose parent is one
/// of the sorted, distinct `ends`, using the given [`Kernel`]. Faults
/// only the blocks the kernel reads — a skipped block is never charged.
/// Use [`semijoin`] to let the context's policy pick the kernel.
#[derive(Debug)]
pub struct Semijoin<'a> {
    /// Sorted, distinct end nodes driving the join — either a plain
    /// slice or a succinct [`apex_storage::EndIndex`] view.
    pub ends: Ends<'a>,
    /// The address space of the extent.
    pub space: Space,
    /// Buffer id of the extent (block ids derive from it).
    pub id: u64,
    /// The joined extent.
    pub extent: &'a EdgeSet,
    /// The kernel to run.
    pub kernel: Kernel,
}

impl Semijoin<'_> {
    /// Runs the kernel, returning the matched pairs. Attributes to
    /// [`OpKind::SemijoinMerge`] / [`OpKind::SemijoinGallop`] /
    /// [`OpKind::SemijoinSkip`] according to the kernel that ran.
    pub fn run(self, ctx: &mut ExecContext<'_>) -> EdgeSet {
        let kind = match self.kernel {
            Kernel::Merge => OpKind::SemijoinMerge,
            Kernel::Gallop => OpKind::SemijoinGallop,
            Kernel::BlockSkip => OpKind::SemijoinSkip,
        };
        ctx.attributed(kind, |cost, buf, scratch| {
            let report =
                kernels::semijoin_into(self.kernel, self.extent, self.ends, &mut scratch.semi);
            let bx = self.extent.blocks();
            for &k in &scratch.semi.blocks {
                cost.pages_read += buf.touch(
                    block_oid(self.space, self.id, k),
                    bx.block_bytes(k as usize),
                );
            }
            cost.extent_pairs += report.pairs_read as u64;
            cost.join_work += report.work as u64;
            cost.join_output += scratch.semi.out.len() as u64;
            // apex-lint: allow(hot-path-alloc): one copy per run hands the caller an owned result without dropping the scratch buffer's capacity
            EdgeSet::from_sorted(scratch.semi.out.clone())
        })
    }
}

/// Adaptive semijoin: the context's [`KernelPolicy`] picks the kernel
/// from the size ratio of the two sides (the access-path choice every
/// processor previously hand-rolled).
pub fn semijoin(
    ctx: &mut ExecContext<'_>,
    ends: Ends<'_>,
    space: Space,
    id: u64,
    extent: &EdgeSet,
) -> EdgeSet {
    let kernel = ctx.policy.choose(ends.len(), extent);
    Semijoin {
        ends,
        space,
        id,
        extent,
        kernel,
    }
    .run(ctx)
}

/// The §6.1 QTYPE1 chain: union the exact segment's extents, then
/// semijoin forward through the remaining segments. Composite — the
/// union and semijoin work attributes to those operators; this one only
/// counts its invocation.
#[derive(Debug)]
pub struct MultiwayJoin<'a> {
    /// The exact segment's `(id, extent)` sources.
    pub seed: Vec<(u64, &'a EdgeSet)>,
    /// One entry per later segment: the class extents semijoined
    /// against the running result.
    pub stages: Vec<Vec<(u64, &'a EdgeSet)>>,
    /// The address space of every id.
    pub space: Space,
}

impl MultiwayJoin<'_> {
    /// Executes the chain.
    pub fn run(self, ctx: &mut ExecContext<'_>) -> EdgeSet {
        ctx.cost.ops.record(OpKind::MultiwayJoin, true, [0; 8]);
        let mut cur = ExtentUnion {
            sources: self.seed,
            space: self.space,
        }
        .run(ctx);
        // Borrow the context's union scratch for the stage merges (the
        // semijoins inside the loop need `ctx` whole).
        let mut scratch = std::mem::take(&mut ctx.scratch.union);
        for stage in self.stages {
            if cur.is_empty() || !ctx.checkpoint() {
                break;
            }
            let mut next = EdgeSet::new();
            for (id, extent) in stage {
                let hit = semijoin(ctx, cur.end_nodes().into(), self.space, id, extent);
                next.union_in_place(&hit, &mut scratch);
            }
            cur = next;
        }
        ctx.scratch.union = scratch;
        cur
    }
}

/// One QTYPE3 data-table value test through the buffer pool.
#[derive(Debug)]
pub struct DataProbe<'a> {
    /// The `nid → value` table.
    pub table: &'a DataTable,
    /// The node whose value is tested.
    pub nid: NodeId,
    /// The expected value.
    pub value: &'a str,
}

impl DataProbe<'_> {
    /// Probes; true when `nid` carries exactly `value`.
    pub fn run(self, ctx: &mut ExecContext<'_>) -> bool {
        ctx.attributed(OpKind::DataProbe, |cost, buf, _| {
            self.table.probe_buffered(buf, cost, self.nid, self.value)
        })
    }
}

/// Navigation I/O over page-packed index-node records: touches every
/// page overlapping the byte range of the visited record.
#[derive(Debug)]
pub struct IndexNav {
    /// The record space (e.g. [`Space::GuideNode`]).
    pub space: Space,
    /// Byte range of the visited record(s) in the packed layout.
    pub bytes: std::ops::Range<u64>,
}

impl IndexNav {
    /// Charges the record pages.
    pub fn run(self, ctx: &mut ExecContext<'_>) {
        ctx.attributed(OpKind::IndexNav, |cost, buf, _| {
            cost.pages_read += buf.touch_byte_range(self.space, self.bytes);
        })
    }
}

/// An Index Fabric key search: exact (single descent) or partial
/// (whole-trie traversal with suffix validation).
#[derive(Debug)]
pub struct TrieSearch<'a> {
    /// The fabric searched.
    pub fabric: &'a IndexFabric,
    /// Query label suffix.
    pub labels: &'a [LabelId],
    /// The value predicate.
    pub value: &'a str,
    /// True for a single exact-key descent; false traverses the trie
    /// (partial matching).
    pub exact: bool,
}

impl TrieSearch<'_> {
    /// Runs the search, returning matching nodes (unsorted).
    pub fn run(self, ctx: &mut ExecContext<'_>) -> Vec<NodeId> {
        ctx.attributed(OpKind::TrieSearch, |cost, buf, _| {
            if self.exact {
                self.fabric
                    .search_exact_buffered(buf, self.labels, self.value, cost)
            } else {
                self.fabric
                    .search_partial_buffered(buf, self.labels, self.value, cost)
            }
        })
    }
}

/// Prefix byte offsets of page-packed variable-size records: record `i`
/// occupies `offsets[i]..offsets[i+1]`. Used by processors to lay out
/// index-node records (16 bytes header + 8 per edge) once, then touch
/// ranges through [`IndexNav`].
pub fn record_layout(record_bytes: impl Iterator<Item = usize>) -> Vec<u64> {
    let mut offsets = vec![0u64];
    let mut acc = 0u64;
    for b in record_bytes {
        acc += b as u64;
        offsets.push(acc);
    }
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_storage::PageModel;

    #[test]
    fn extent_scan_charges_pairs_and_attributes() {
        let buf = BufferHandle::unbounded();
        let set = EdgeSet::from_raw(&[(1, 2), (3, 4)]);
        let mut ctx = ExecContext::new(&buf);
        ExtentScan::pairs(Space::ApexExtent, 7, &set).run(&mut ctx);
        ExtentScan::pairs(Space::ApexExtent, 7, &set).run(&mut ctx);
        let cost = ctx.finish();
        assert_eq!(cost.extent_pairs, 4);
        assert_eq!(cost.pages_read, 1, "second scan hits the pool");
        let op = cost.ops.get(OpKind::ExtentScan);
        assert_eq!(op.invocations, 2);
        assert_eq!(op.pages_read(), 1);
        assert_eq!(op.extent_pairs(), 4);
    }

    #[test]
    fn union_merges_and_semijoin_adapts() {
        let buf = BufferHandle::unbounded();
        let a = EdgeSet::from_raw(&[(1, 2)]);
        let b = EdgeSet::from_raw(&[(3, 4)]);
        let mut ctx = ExecContext::new(&buf);
        let u = ExtentUnion {
            sources: vec![(0, &a), (1, &b)],
            space: Space::ApexExtent,
        }
        .run(&mut ctx);
        assert_eq!(u, EdgeSet::from_raw(&[(1, 2), (3, 4)]));
        // 2 ends vs a 3-pair extent: same order, so the merge kernel runs.
        let next = EdgeSet::from_raw(&[(2, 7), (4, 9), (5, 5)]);
        let hit = semijoin(&mut ctx, u.end_nodes().into(), Space::ApexExtent, 2, &next);
        assert_eq!(hit, EdgeSet::from_raw(&[(2, 7), (4, 9)]));
        let cost = ctx.finish();
        assert_eq!(cost.ops.get(OpKind::SemijoinMerge).invocations, 1);
        assert_eq!(cost.ops.get(OpKind::SemijoinGallop).invocations, 0);
        assert!(cost.join_work > 0);
        assert_eq!(cost.join_output, 2);
    }

    #[test]
    fn forced_policies_agree_and_attribute_their_kind() {
        let buf = BufferHandle::unbounded();
        let extent = EdgeSet::from_pairs(
            (0..5_000u32)
                .map(|i| EdgePair::new(NodeId(2 * i), NodeId(2 * i + 1)))
                .collect(),
        );
        let ends = [NodeId(10), NodeId(4_000)];
        let adaptive_kind = match KernelPolicy::Adaptive.choose(ends.len(), &extent) {
            Kernel::Merge => OpKind::SemijoinMerge,
            Kernel::Gallop => OpKind::SemijoinGallop,
            Kernel::BlockSkip => OpKind::SemijoinSkip,
        };
        assert_ne!(
            adaptive_kind,
            OpKind::SemijoinMerge,
            "searching must win here"
        );
        let mut want = None;
        for (policy, kind) in [
            (KernelPolicy::Merge, OpKind::SemijoinMerge),
            (KernelPolicy::Gallop, OpKind::SemijoinGallop),
            (KernelPolicy::BlockSkip, OpKind::SemijoinSkip),
            (KernelPolicy::Adaptive, adaptive_kind),
        ] {
            let mut ctx = ExecContext::with_policy(&buf, policy);
            let hit = semijoin(&mut ctx, (&ends[..]).into(), Space::ApexExtent, 9, &extent);
            let cost = ctx.finish();
            assert_eq!(cost.ops.get(kind).invocations, 1, "{}", policy.name());
            match &want {
                None => want = Some(hit),
                Some(w) => assert_eq!(&hit, w, "{}", policy.name()),
            }
        }
    }

    #[test]
    fn skipped_blocks_are_never_faulted() {
        let buf = BufferHandle::unbounded();
        // Multi-block extent; probe only its first parents.
        let extent = EdgeSet::from_pairs(
            (0..40_000u32)
                .map(|i| EdgePair::new(NodeId(i), NodeId(i + 1)))
                .collect(),
        );
        let blocks = extent.blocks().num_blocks() as u64;
        assert!(blocks > 2);
        let mut ctx = ExecContext::new(&buf);
        let hit = semijoin(
            &mut ctx,
            (&[NodeId(1)][..]).into(),
            Space::ApexExtent,
            3,
            &extent,
        );
        assert_eq!(hit.len(), 1);
        let probe_pages = ctx.cost.pages_read;
        assert!(
            probe_pages < blocks,
            "a point probe must not fault all {blocks} blocks"
        );
        // A full scan faults the remaining blocks.
        ExtentScan::pairs(Space::ApexExtent, 3, &extent).run(&mut ctx);
        assert_eq!(ctx.finish().pages_read, blocks);
    }

    #[test]
    fn multiway_join_attributes_to_inner_operators() {
        let buf = BufferHandle::unbounded();
        let seed = EdgeSet::from_raw(&[(0, 1), (0, 2)]);
        let s1 = EdgeSet::from_raw(&[(1, 10), (2, 11), (9, 9)]);
        let mut ctx = ExecContext::new(&buf);
        let out = MultiwayJoin {
            seed: vec![(0, &seed)],
            stages: vec![vec![(1, &s1)]],
            space: Space::ApexExtent,
        }
        .run(&mut ctx);
        assert_eq!(out, EdgeSet::from_raw(&[(1, 10), (2, 11)]));
        let cost = ctx.finish();
        let mj = cost.ops.get(OpKind::MultiwayJoin);
        assert_eq!(mj.invocations, 1);
        // Composite: the pages/pairs live on the inner operators.
        assert_eq!(mj.pages_read() + mj.extent_pairs(), 0);
        assert_eq!(cost.ops.get(OpKind::ExtentUnion).invocations, 1);
        let semijoins: u64 = [
            OpKind::SemijoinMerge,
            OpKind::SemijoinGallop,
            OpKind::SemijoinSkip,
        ]
        .iter()
        .map(|&k| cost.ops.get(k).invocations)
        .sum();
        assert_eq!(semijoins, 1);
        // Scalar totals equal the sum of the per-op attributions.
        let attributed: u64 = OpKind::ALL
            .iter()
            .map(|&k| cost.ops.get(k).pages_read())
            .sum();
        assert_eq!(attributed, cost.pages_read);
    }

    #[test]
    fn empty_seed_short_circuits_stages() {
        let buf = BufferHandle::unbounded();
        let s1 = EdgeSet::from_raw(&[(1, 10)]);
        let mut ctx = ExecContext::new(&buf);
        let out = MultiwayJoin {
            seed: vec![],
            stages: vec![vec![(1, &s1)]],
            space: Space::ApexExtent,
        }
        .run(&mut ctx);
        assert!(out.is_empty());
        let cost = ctx.finish();
        assert_eq!(cost.ops.get(OpKind::SemijoinMerge).invocations, 0);
        assert_eq!(cost.extent_pairs, 0);
    }

    #[test]
    fn index_nav_touches_record_pages_once() {
        let buf = BufferHandle::unbounded();
        let psz = PageModel::default().page_size as u64;
        let offsets = record_layout([16usize, 24, 8192, 40].into_iter());
        assert_eq!(offsets, vec![0, 16, 40, 8232, 8272]);
        let mut ctx = ExecContext::new(&buf);
        IndexNav {
            space: Space::GuideNode,
            bytes: offsets[0]..offsets[1],
        }
        .run(&mut ctx);
        IndexNav {
            space: Space::GuideNode,
            bytes: offsets[1]..offsets[2],
        }
        .run(&mut ctx);
        // Records 0 and 1 share page 0.
        assert_eq!(ctx.cost.pages_read, 1);
        IndexNav {
            space: Space::GuideNode,
            bytes: offsets[2]..offsets[3],
        }
        .run(&mut ctx);
        // Record 2 spans pages 0 and 1; only page 1 is new.
        assert_eq!(ctx.cost.pages_read, 2);
        assert!(offsets[3] > psz);
        let cost = ctx.finish();
        assert_eq!(cost.ops.get(OpKind::IndexNav).pages_read(), 2);
    }

    #[test]
    fn nav_edges_attribute_without_invocations() {
        let buf = BufferHandle::unbounded();
        let mut ctx = ExecContext::new(&buf);
        ctx.nav_edges(5);
        ctx.nav_edges(2);
        let cost = ctx.finish();
        assert_eq!(cost.index_edges, 7);
        let nav = cost.ops.get(OpKind::IndexNav);
        assert_eq!(nav.scalars[0], 7);
        assert_eq!(nav.invocations, 0);
    }
}
