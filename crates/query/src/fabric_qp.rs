//! The Index Fabric query processor (QTYPE3 only — the fabric indexes
//! path+value keys and "is not effective" for QTYPE1/QTYPE2, §2).

use apex_storage::bufmgr::BufferHandle;

use fabric::IndexFabric;
use xmlgraph::XmlGraph;

use apex_storage::OpKind;

use crate::ast::Query;
use crate::batch::{QueryOutput, QueryProcessor};
use crate::exec::{ExecContext, TrieSearch};
use crate::plan;

/// Query processor over an [`IndexFabric`].
pub struct FabricProcessor<'a> {
    g: &'a XmlGraph,
    fabric: &'a IndexFabric,
    buf: BufferHandle,
}

impl<'a> FabricProcessor<'a> {
    /// Creates a processor with a private (unbounded) buffer pool.
    pub fn new(g: &'a XmlGraph, fabric: &'a IndexFabric) -> Self {
        Self::with_buffer(g, fabric, BufferHandle::unbounded())
    }

    /// Creates a processor charging against a shared buffer pool.
    pub fn with_buffer(g: &'a XmlGraph, fabric: &'a IndexFabric, buf: BufferHandle) -> Self {
        FabricProcessor { g, fabric, buf }
    }
}

impl QueryProcessor for FabricProcessor<'_> {
    fn name(&self) -> &'static str {
        "Fabric"
    }

    /// QTYPE3 queries are answered from the trie alone: partial-matching
    /// expressions traverse the whole trie (a [`TrieSearch`] operator)
    /// and validate keys. QTYPE1 and QTYPE2 return empty with zero cost —
    /// callers exclude the fabric from those experiments, as the paper
    /// does.
    fn eval(&self, q: &Query) -> QueryOutput {
        let mut ctx = ExecContext::new(&self.buf);
        let (nodes, report) = match q {
            Query::ValuePath { labels, value } => {
                // The fabric's only strategy is a whole-trie partial
                // search, so the forecast is the trie itself: every
                // node visited, every block faulted.
                let before = ctx.cost.ops;
                let predicted = [(
                    OpKind::TrieSearch,
                    self.fabric.trie_nodes() as u64,
                    self.fabric.block_count() as u64,
                )];
                let mut nodes = TrieSearch {
                    fabric: self.fabric,
                    labels,
                    value,
                    exact: false,
                }
                .run(&mut ctx);
                self.g.sort_doc_order(&mut nodes);
                let report = plan::build_report(
                    self.fabric.trie_nodes() as u64,
                    "trie",
                    &predicted,
                    &before,
                    &ctx.cost.ops,
                );
                (nodes, Some(report))
            }
            _ => (Vec::new(), None),
        };
        QueryOutput {
            nodes,
            cost: ctx.finish(),
            interrupted: false,
            plan: report,
        }
    }

    fn buffer(&self) -> Option<&BufferHandle> {
        Some(&self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveProcessor;
    use apex_storage::{DataTable, OpKind, PageModel};
    use xmlgraph::builder::moviedb;
    use xmlgraph::LabelPath;

    #[test]
    fn qtype3_matches_naive() {
        let g = moviedb();
        let f = IndexFabric::build(&g);
        let t = DataTable::build(&g, PageModel::default());
        let fp = FabricProcessor::new(&g, &f);
        let nv = NaiveProcessor::new(&g, &t);
        for (p, v) in [
            ("title", "Star Wars"),
            ("movie.title", "The Empire Strikes Back"),
            ("actor.name", "Mark Hamill"),
            ("name", "George Lucas"),
            ("title", "nope"),
        ] {
            let q = Query::ValuePath {
                labels: LabelPath::parse(&g, p).unwrap().0,
                value: v.into(),
            };
            assert_eq!(fp.eval(&q).nodes, nv.eval(&q).nodes, "//{p}[text()={v}]");
        }
    }

    #[test]
    fn non_value_queries_unsupported() {
        let g = moviedb();
        let f = IndexFabric::build(&g);
        let fp = FabricProcessor::new(&g, &f);
        let q = Query::PartialPath {
            labels: LabelPath::parse(&g, "title").unwrap().0,
        };
        assert!(fp.eval(&q).nodes.is_empty());
    }

    #[test]
    fn trie_blocks_are_pooled_across_queries() {
        let g = moviedb();
        let f = IndexFabric::build(&g);
        let fp = FabricProcessor::new(&g, &f);
        let q = Query::ValuePath {
            labels: LabelPath::parse(&g, "title").unwrap().0,
            value: "Star Wars".into(),
        };
        let cold = fp.eval(&q);
        assert!(cold.cost.pages_read >= 1);
        assert_eq!(cold.cost.ops.get(OpKind::TrieSearch).invocations, 1);
        let warm = fp.eval(&q);
        assert_eq!(warm.cost.pages_read, 0, "blocks stay resident");
        assert_eq!(warm.cost.trie_nodes, cold.cost.trie_nodes);
    }
}
