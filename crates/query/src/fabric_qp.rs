//! The Index Fabric query processor (QTYPE3 only — the fabric indexes
//! path+value keys and "is not effective" for QTYPE1/QTYPE2, §2).

use apex_storage::Cost;
use fabric::IndexFabric;
use xmlgraph::XmlGraph;

use crate::ast::Query;
use crate::batch::{QueryOutput, QueryProcessor};

/// Query processor over an [`IndexFabric`].
pub struct FabricProcessor<'a> {
    g: &'a XmlGraph,
    fabric: &'a IndexFabric,
}

impl<'a> FabricProcessor<'a> {
    /// Creates a processor.
    pub fn new(g: &'a XmlGraph, fabric: &'a IndexFabric) -> Self {
        FabricProcessor { g, fabric }
    }
}

impl QueryProcessor for FabricProcessor<'_> {
    fn name(&self) -> &'static str {
        "Fabric"
    }

    /// QTYPE3 queries are answered from the trie alone: partial-matching
    /// expressions traverse the whole trie and validate keys. QTYPE1 and
    /// QTYPE2 return empty with zero cost — callers exclude the fabric
    /// from those experiments, as the paper does.
    fn eval(&self, q: &Query) -> QueryOutput {
        let mut cost = Cost::new();
        let nodes = match q {
            Query::ValuePath { labels, value } => {
                let mut nodes = self.fabric.search_partial(labels, value, &mut cost);
                self.g.sort_doc_order(&mut nodes);
                nodes
            }
            _ => Vec::new(),
        };
        QueryOutput { nodes, cost }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveProcessor;
    use apex_storage::{DataTable, PageModel};
    use xmlgraph::builder::moviedb;
    use xmlgraph::LabelPath;

    #[test]
    fn qtype3_matches_naive() {
        let g = moviedb();
        let f = IndexFabric::build(&g);
        let t = DataTable::build(&g, PageModel::default());
        let fp = FabricProcessor::new(&g, &f);
        let nv = NaiveProcessor::new(&g, &t);
        for (p, v) in [
            ("title", "Star Wars"),
            ("movie.title", "The Empire Strikes Back"),
            ("actor.name", "Mark Hamill"),
            ("name", "George Lucas"),
            ("title", "nope"),
        ] {
            let q = Query::ValuePath {
                labels: LabelPath::parse(&g, p).unwrap().0,
                value: v.into(),
            };
            assert_eq!(fp.eval(&q).nodes, nv.eval(&q).nodes, "//{p}[text()={v}]");
        }
    }

    #[test]
    fn non_value_queries_unsupported() {
        let g = moviedb();
        let f = IndexFabric::build(&g);
        let fp = FabricProcessor::new(&g, &f);
        let q = Query::PartialPath {
            labels: LabelPath::parse(&g, "title").unwrap().0,
        };
        assert!(fp.eval(&q).nodes.is_empty());
    }
}
