//! Cost-based query planning over live statistics.
//!
//! The planner sits between parsing and [`crate::exec`]: instead of the
//! fixed left-to-right §6.1 pipeline, a QTYPE1/3 segment chain is first
//! *planned* against a [`PlanStats`] snapshot (or, absent one, the same
//! numbers read through the `EdgeSet` cheap accessors), then executed.
//!
//! The plan space is deliberately small and fully enumerable:
//!
//! * [`JoinOrder::Forward`] — the existing seed-union + forward
//!   semijoin chain (delegates to [`MultiwayJoin`], so a forward plan is
//!   *bit-for-bit* the legacy execution);
//! * [`JoinOrder::BackwardThenForward`] — a Yannakakis-style reduction:
//!   the last `reduce` stage boundaries are semijoined *backward*
//!   (`reverse_semijoin_into`, each stage keeping only pairs whose node
//!   parents something downstream), then the usual forward pass runs
//!   with the reduced stages resident in memory. `reduce = k` is the
//!   classic full right-to-left reduction.
//!
//! For every candidate the planner predicts per-operator work and pages
//! from extent cardinalities, block counts, distinct-end hints and
//! parent/node interval overlap — the same statistics the kernels'
//! adaptive policy consults at run time — and picks the cheapest
//! (ties and near-ties go forward, the legacy order). A stage with an
//! exactly-zero cardinality short-circuits planning entirely: the plan
//! is *statically empty* and executes for free.
//!
//! Execution records a [`PlanReport`]: the predicted per-operator cost
//! column next to the actual one (diffed from the [`OpBreakdown`]
//! around execution), a stable digest of the chosen shape, and the
//! mispredict ratio `Σ|predicted − actual| / Σactual` that the
//! feedback layer pushes back into the workload monitor.

use apex::{Apex, PlanStats, XNodeId};
use apex_storage::bufmgr::Space;
use apex_storage::kernels::reverse_semijoin_into;
use apex_storage::{EdgeSet, Kernel, KernelPolicy, OpBreakdown, OpKind};
use xmlgraph::{LabelId, NodeId};

use crate::exec::{self, ExecContext, ExtentScan, ExtentUnion, MultiwayJoin};

/// How a planned QTYPE1 chain is ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinOrder {
    /// Seed union, then semijoin forward — the legacy §6.1 pipeline.
    Forward,
    /// Reduce the last `reduce` stage boundaries backward first, then
    /// run the forward pass over the reduced (in-memory) stages.
    BackwardThenForward {
        /// Number of stages reduced, from the next-to-last towards the
        /// seed (`1..=k` for a chain of `k` joins; `k` reduces the seed
        /// too — the classic full right-to-left pass).
        reduce: usize,
    },
}

impl JoinOrder {
    /// Human-readable label (`forward` / `backward(r)`).
    pub fn label(&self) -> String {
        match self {
            JoinOrder::Forward => "forward".into(),
            JoinOrder::BackwardThenForward { reduce } => format!("backward({reduce})"),
        }
    }
}

/// Join-order selection policy: let the planner pick, or force one
/// order (benches compare the fixed orders against the planner).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinOrderPolicy {
    /// Cost-based choice over the enumerated orders.
    #[default]
    Planned,
    /// Always the legacy forward order.
    ForceForward,
    /// Always the full backward reduction (`reduce = k`).
    ForceBackward,
}

impl JoinOrderPolicy {
    /// Stable name (`planned` / `forward` / `backward`).
    pub fn name(self) -> &'static str {
        match self {
            JoinOrderPolicy::Planned => "planned",
            JoinOrderPolicy::ForceForward => "forward",
            JoinOrderPolicy::ForceBackward => "backward",
        }
    }

    /// Parses [`JoinOrderPolicy::name`] output.
    pub fn parse(s: &str) -> Option<JoinOrderPolicy> {
        match s {
            "planned" => Some(JoinOrderPolicy::Planned),
            "forward" => Some(JoinOrderPolicy::ForceForward),
            "backward" => Some(JoinOrderPolicy::ForceBackward),
            _ => None,
        }
    }
}

/// One operator's predicted-vs-actual row in a [`PlanReport`].
#[derive(Debug, Clone, Copy)]
pub struct OpForecast {
    /// The operator.
    pub kind: OpKind,
    /// Predicted non-page work units (pairs read + comparisons +
    /// output, i.e. every scalar counter except pages).
    pub predicted_work: u64,
    /// Predicted pages read.
    pub predicted_pages: u64,
    /// Actual non-page work units, diffed around execution.
    pub actual_work: u64,
    /// Actual pages read.
    pub actual_pages: u64,
}

/// What a plan predicted and what its execution actually cost — the
/// feedback layer's unit of exchange. Carried on every
/// [`QueryOutput`](crate::batch::QueryOutput) evaluated through the
/// planner and folded back into the workload monitor.
#[derive(Debug, Clone, Default)]
pub struct PlanReport {
    /// Stable digest of the chosen plan shape (order, stage sizes,
    /// kernels) — the net tier carries this so tail latency can be
    /// attributed to planning choices.
    pub digest: u64,
    /// Human-readable order label (`forward`, `backward(2)`, …).
    pub order: String,
    /// Per-operator predicted and actual costs (active rows only).
    pub forecasts: Vec<OpForecast>,
}

impl PlanReport {
    /// `Σ|predicted − actual| / max(1, Σactual)` over work + pages —
    /// 0.0 means the cost model was exact.
    pub fn mispredict_ratio(&self) -> f64 {
        let mut err = 0u64;
        let mut act = 0u64;
        for f in &self.forecasts {
            let p = f.predicted_work + f.predicted_pages;
            let a = f.actual_work + f.actual_pages;
            err += p.abs_diff(a);
            act += a;
        }
        err as f64 / act.max(1) as f64
    }

    /// Flattens to `(op, predicted, actual)` rows for
    /// [`WorkloadMonitor::record_plan`](apex::WorkloadMonitor::record_plan).
    pub fn feedback(&self) -> impl Iterator<Item = (OpKind, u64, u64)> + '_ {
        self.forecasts.iter().map(|f| {
            (
                f.kind,
                f.predicted_work + f.predicted_pages,
                f.actual_work + f.actual_pages,
            )
        })
    }

    /// Renders the predicted/actual table (the `explain` tail).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "plan {:#018x} order={}", self.digest, self.order);
        let _ = writeln!(
            s,
            "  {:<16} {:>10} {:>8} {:>10} {:>8}",
            "op", "pred.work", "pages", "act.work", "pages"
        );
        for f in &self.forecasts {
            let _ = writeln!(
                s,
                "  {:<16} {:>10} {:>8} {:>10} {:>8}",
                f.kind.name(),
                f.predicted_work,
                f.predicted_pages,
                f.actual_work,
                f.actual_pages
            );
        }
        let _ = writeln!(s, "  mispredict ratio = {:.3}", self.mispredict_ratio());
        s
    }
}

/// Builds a [`PlanReport`] from a predicted table plus the
/// [`OpBreakdown`] snapshots taken around execution. Rows where both
/// columns are zero are dropped. Used by the planner itself and by the
/// navigation-style processors (guide / 1-index / fabric), whose
/// "plans" are single-strategy forecasts.
pub fn build_report(
    digest: u64,
    order: impl Into<String>,
    predicted: &[(OpKind, u64, u64)],
    before: &OpBreakdown,
    after: &OpBreakdown,
) -> PlanReport {
    let mut forecasts = Vec::new();
    for &kind in OpKind::ALL.iter() {
        let (pw, pp) = predicted
            .iter()
            .filter(|e| e.0 == kind)
            .fold((0u64, 0u64), |(w, p), e| (w + e.1, p + e.2));
        let b = before.get(kind);
        let a = after.get(kind);
        let (mut aw, mut ap) = (0u64, 0u64);
        for (i, (&av, &bv)) in a.scalars.iter().zip(&b.scalars).enumerate() {
            if i == 5 {
                ap = av - bv; // slot 5 is pages_read: pages, not work
            } else {
                aw += av - bv;
            }
        }
        if pw | pp | aw | ap != 0 {
            forecasts.push(OpForecast {
                kind,
                predicted_work: pw,
                predicted_pages: pp,
                actual_work: aw,
                actual_pages: ap,
            });
        }
    }
    PlanReport {
        digest,
        order: order.into(),
        forecasts,
    }
}

/// FNV-1a fold of `bytes` into `h`.
fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

/// Cheap summary of one stage (the union of its class extents).
#[derive(Debug, Clone, Copy, Default)]
struct StageEst {
    pairs: u64,
    blocks: u64,
    ends: u64,
    parent_bounds: Option<(NodeId, NodeId)>,
    node_bounds: Option<(NodeId, NodeId)>,
}

/// Fraction of an interval `span` overlapped by `within` (both
/// inclusive), 0.0 when either is absent or they are disjoint.
fn overlap_frac(span: Option<(NodeId, NodeId)>, within: Option<(NodeId, NodeId)>) -> f64 {
    let (Some((alo, ahi)), Some((blo, bhi))) = (span, within) else {
        return 0.0;
    };
    let width = ahi.0.saturating_sub(alo.0) as f64 + 1.0;
    let lo = alo.0.max(blo.0);
    let hi = ahi.0.min(bhi.0);
    if lo > hi {
        return 0.0;
    }
    ((hi - lo) as f64 + 1.0) / width
}

fn merge_bounds(
    a: Option<(NodeId, NodeId)>,
    b: Option<(NodeId, NodeId)>,
) -> Option<(NodeId, NodeId)> {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some((alo, ahi)), Some((blo, bhi))) => Some((alo.min(blo), ahi.max(bhi))),
    }
}

/// Predicted pairs of a stage whose parent falls in the frontier's
/// node bounds — the interval-overlap selectivity estimate.
fn est_matched(frontier_pairs: u64, frontier_nb: Option<(NodeId, NodeId)>, st: &StageEst) -> u64 {
    if frontier_pairs == 0 {
        return 0;
    }
    let frac = overlap_frac(st.parent_bounds, frontier_nb);
    ((st.pairs as f64 * frac).ceil() as u64).min(st.pairs)
}

/// Accumulates predicted `(work, pages)` per op kind.
#[derive(Debug, Default, Clone)]
struct Forecast {
    rows: Vec<(OpKind, u64, u64)>,
}

impl Forecast {
    fn add(&mut self, kind: OpKind, work: u64, pages: u64) {
        if let Some(r) = self.rows.iter_mut().find(|r| r.0 == kind) {
            r.1 += work;
            r.2 += pages;
        } else {
            self.rows.push((kind, work, pages));
        }
    }

    fn total(&self) -> u64 {
        self.rows.iter().map(|r| r.1 + r.2).sum()
    }
}

/// Mirror of the adaptive [`KernelPolicy::choose`] rule on statistics
/// alone (no extent touched, no block encode forced).
fn predict_kernel(ends: u64, pairs: u64, blocks: u64) -> Kernel {
    if pairs == 0 || ends == 0 {
        return Kernel::Merge;
    }
    let est_merge = pairs + ends;
    let gap_log = (64 - (pairs / ends).max(1).leading_zeros()) as u64;
    let est_search = ends * (2 * gap_log + 4);
    if est_merge <= est_search {
        return Kernel::Merge;
    }
    if blocks > 1 && ends >= blocks {
        Kernel::BlockSkip
    } else {
        Kernel::Gallop
    }
}

/// A typed, executable plan for one QTYPE1/3 segment chain.
#[derive(Debug, Clone)]
pub struct PathPlan {
    /// Class nodes per stage, evaluation order (seed first).
    pub stages: Vec<Vec<XNodeId>>,
    /// H_APEX lookups spent segmenting; charged at execution.
    pub hash_lookups: u64,
    /// The chosen order.
    pub order: JoinOrder,
    /// True when some stage has exactly zero pairs (or the path's first
    /// label is unknown): the answer is empty and execution is free.
    pub static_empty: bool,
    /// Stable digest of the plan shape.
    pub digest: u64,
    /// Predicted total (work + pages) of the chosen order.
    pub predicted_total: u64,
    /// Predicted kernel name per join boundary (`stages.len() - 1`
    /// entries; reduced boundaries show `"reverse"`). For `explain`.
    pub kernels: Vec<&'static str>,
    /// Per-op predicted `(work, pages)`.
    predicted: Vec<(OpKind, u64, u64)>,
}

/// The cost-based planner: borrows the index, an optional statistics
/// snapshot (falling back to the live cheap accessors per extent), the
/// kernel policy in force, and the generation tag that scopes buffer
/// identities.
pub struct Planner<'a> {
    apex: &'a Apex,
    stats: Option<&'a PlanStats>,
    policy: KernelPolicy,
    tag: u64,
}

impl<'a> Planner<'a> {
    /// A planner over `apex`, optionally reading `stats` instead of the
    /// live extents.
    pub fn new(
        apex: &'a Apex,
        stats: Option<&'a PlanStats>,
        policy: KernelPolicy,
        tag: u64,
    ) -> Self {
        Planner {
            apex,
            stats,
            policy,
            tag,
        }
    }

    /// `(buffer id, extent)` source for class node `x` under this
    /// planner's generation tag.
    fn source(&self, x: XNodeId) -> (u64, &'a EdgeSet) {
        let r = self.apex.extent_ref(x);
        ((self.tag << 32) | r.id, r.set)
    }

    /// Summarizes one stage from the snapshot, or (per missing extent)
    /// from the live cheap accessors — identical numbers either way.
    fn stage_est(&self, classes: &[XNodeId]) -> StageEst {
        let mut e = StageEst::default();
        for &x in classes {
            let (pairs, blocks, ends, pb, nb) = match self.stats.and_then(|s| s.extent(x.0)) {
                Some(st) => (
                    st.pairs,
                    st.blocks,
                    st.ends,
                    st.parent_bounds,
                    st.node_bounds,
                ),
                None => {
                    let set = self.apex.extent(x);
                    (
                        set.len(),
                        set.blocks_hint(),
                        set.ends_len_hint(),
                        set.parent_bounds(),
                        set.node_bounds(),
                    )
                }
            };
            e.pairs += pairs as u64;
            e.blocks += blocks as u64;
            e.ends += ends as u64;
            e.parent_bounds = merge_bounds(e.parent_bounds, pb);
            e.node_bounds = merge_bounds(e.node_bounds, nb);
        }
        e
    }

    /// Predicts one stored-stage semijoin: returns
    /// `(kernel, work, pages, matched)` given the frontier estimate.
    fn predict_semijoin(
        &self,
        frontier_pairs: u64,
        frontier_ends: u64,
        frontier_nb: Option<(NodeId, NodeId)>,
        st: &StageEst,
    ) -> (Kernel, u64, u64, u64) {
        let kernel = match self.policy {
            KernelPolicy::Merge => Kernel::Merge,
            KernelPolicy::Gallop => Kernel::Gallop,
            KernelPolicy::BlockSkip => Kernel::BlockSkip,
            KernelPolicy::Adaptive => predict_kernel(frontier_ends, st.pairs, st.blocks),
        };
        let matched = est_matched(frontier_pairs, frontier_nb, st);
        let n = frontier_ends.max(1);
        let m = st.pairs;
        let blocks = st.blocks.max(1);
        let gap_log = (64 - (m / n).max(1).leading_zeros()) as u64;
        let (work, pages) = match kernel {
            Kernel::Merge => (m + n + m, blocks),
            Kernel::Gallop => {
                let pages = blocks.min(n);
                let pairs_read = m * pages / blocks;
                (n * (2 * gap_log + 4) + pairs_read, pages)
            }
            Kernel::BlockSkip => {
                let pages = blocks.min(n);
                let pairs_read = m * pages / blocks;
                (blocks + n * (2 * gap_log + 4) + pairs_read, pages)
            }
        };
        (kernel, work + matched, pages, matched)
    }

    /// Predicts the forward order over `ests`.
    fn predict_forward(&self, ests: &[StageEst]) -> (Forecast, Vec<&'static str>) {
        let mut f = Forecast::default();
        let seed = &ests[0];
        f.add(OpKind::ExtentUnion, seed.pairs, seed.blocks);
        let mut fp = seed.pairs;
        let mut fe = seed.ends.min(seed.pairs);
        let mut fnb = seed.node_bounds;
        let mut kernels = Vec::new();
        for st in &ests[1..] {
            let (kernel, work, pages, matched) = self.predict_semijoin(fp, fe, fnb, st);
            let kind = match kernel {
                Kernel::Merge => OpKind::SemijoinMerge,
                Kernel::Gallop => OpKind::SemijoinGallop,
                Kernel::BlockSkip => OpKind::SemijoinSkip,
            };
            f.add(kind, work, pages);
            kernels.push(kernel.name());
            fp = matched;
            fe = matched.min(st.ends);
            fnb = if matched > 0 { st.node_bounds } else { None };
        }
        (f, kernels)
    }

    /// Predicts the backward order with `reduce = r` over `ests`.
    fn predict_backward(&self, ests: &[StageEst], r: usize) -> (Forecast, Vec<&'static str>) {
        let k = ests.len() - 1;
        let lo = k - r;
        let mut f = Forecast::default();
        // Gathering the last stage's distinct parents is a full scan.
        f.add(OpKind::ExtentScan, ests[k].pairs, ests[k].blocks);
        let mut parents = ests[k].pairs;
        let mut pb = ests[k].parent_bounds;
        // Reduced cardinality per stage (index = stage).
        let mut red = vec![0u64; k.max(1)];
        for i in (lo..k).rev() {
            let m = ests[i].pairs;
            let probe = (64 - parents.max(1).leading_zeros()) as u64 + 1;
            let frac = overlap_frac(ests[i].node_bounds, pb);
            let kept = if parents == 0 {
                0
            } else {
                ((m as f64 * frac).ceil() as u64).min(m)
            };
            f.add(
                OpKind::SemijoinReverse,
                m * probe + m + kept,
                ests[i].blocks,
            );
            red[i] = kept;
            parents = kept;
            pb = ests[i].parent_bounds;
        }
        // Forward pass over the (partly reduced) chain.
        let (mut fp, mut fe, mut fnb);
        if lo == 0 {
            fp = red[0];
            fe = red[0].min(ests[0].ends);
            fnb = ests[0].node_bounds;
        } else {
            f.add(OpKind::ExtentUnion, ests[0].pairs, ests[0].blocks);
            fp = ests[0].pairs;
            fe = ests[0].ends.min(ests[0].pairs);
            fnb = ests[0].node_bounds;
        }
        let mut kernels = Vec::new();
        for (i, st) in ests.iter().enumerate().skip(1) {
            if i >= lo && i < k {
                // In-memory reduced stage: merge or gallop, no pages.
                let m = red[i];
                let n = fe.max(1);
                let gap_log = (64 - (m / n).max(1).leading_zeros()) as u64;
                let (kind, work) = if m + n <= n * (2 * gap_log + 4) {
                    (OpKind::SemijoinMerge, m + n)
                } else {
                    (OpKind::SemijoinGallop, n * (2 * gap_log + 4))
                };
                let matched = est_matched(fp, fnb, st).min(m);
                f.add(kind, work + matched, 0);
                kernels.push("reverse");
                fp = matched;
                fe = matched.min(st.ends);
            } else {
                let (kernel, work, pages, matched) = self.predict_semijoin(fp, fe, fnb, st);
                let kind = match kernel {
                    Kernel::Merge => OpKind::SemijoinMerge,
                    Kernel::Gallop => OpKind::SemijoinGallop,
                    Kernel::BlockSkip => OpKind::SemijoinSkip,
                };
                f.add(kind, work, pages);
                kernels.push(kernel.name());
                fp = matched;
                fe = matched.min(st.ends);
            }
            fnb = if fp > 0 { st.node_bounds } else { None };
        }
        (f, kernels)
    }

    /// Plans `labels` (a QTYPE1/3 chain) under `policy`.
    pub fn plan_path(&self, labels: &[LabelId], policy: JoinOrderPolicy) -> PathPlan {
        let n = labels.len();
        let mut segments: Vec<Vec<XNodeId>> = Vec::new();
        let mut hash_lookups = 0u64;
        let mut exact_found = false;
        for j in (1..=n).rev() {
            let seg = self.apex.segment_nodes(&labels[..j]);
            hash_lookups += seg.hash_lookups;
            segments.push(seg.xnodes);
            if seg.exact {
                exact_found = true;
                break;
            }
        }
        segments.reverse();
        let empty_plan = |stages: Vec<Vec<XNodeId>>, hash_lookups: u64| {
            let mut digest = 0xcbf2_9ce4_8422_2325u64;
            fnv(&mut digest, b"empty");
            fnv(&mut digest, &(stages.len() as u64).to_le_bytes());
            PathPlan {
                stages,
                hash_lookups,
                order: JoinOrder::Forward,
                static_empty: true,
                digest,
                predicted_total: hash_lookups,
                kernels: Vec::new(),
                predicted: vec![(OpKind::IndexNav, hash_lookups, 0)],
            }
        };
        if !exact_found {
            // The single-label prefix is always exact when the label
            // exists; reaching here means it is unknown.
            return empty_plan(Vec::new(), hash_lookups);
        }
        let ests: Vec<StageEst> = segments.iter().map(|s| self.stage_est(s)).collect();
        if ests.iter().any(|e| e.pairs == 0) {
            // Exact cardinalities: a zero-pair stage proves the answer
            // empty before any page is faulted.
            return empty_plan(segments, hash_lookups);
        }
        let k = ests.len() - 1;
        // Candidate reductions: 0 = forward; r = backward over the last
        // r boundaries. Short chains enumerate exhaustively; longer ones
        // keep forward, the full reduction, and the reduction reaching
        // the smallest stage (greedy smallest-intermediate).
        let mut cands: Vec<usize> = vec![0];
        if k >= 1 {
            match policy {
                JoinOrderPolicy::ForceForward => {}
                JoinOrderPolicy::ForceBackward => cands = vec![k],
                JoinOrderPolicy::Planned => {
                    if k <= 6 {
                        cands.extend(1..=k);
                    } else {
                        let argmin = ests
                            .iter()
                            .enumerate()
                            .skip(1)
                            .min_by_key(|(_, e)| e.pairs)
                            .map(|(i, _)| i)
                            .unwrap_or(k);
                        for r in [1, k, k - argmin] {
                            if r >= 1 && !cands.contains(&r) {
                                cands.push(r);
                            }
                        }
                    }
                }
            }
        }
        let predict = |r: usize| {
            if r == 0 {
                self.predict_forward(&ests)
            } else {
                self.predict_backward(&ests, r)
            }
        };
        // `cands` always holds at least one entry; seed the incumbent
        // with it rather than threading an Option through the sweep.
        let r0 = cands.first().copied().unwrap_or(0);
        let (f0, k0) = predict(r0);
        let mut best = (r0, f0, k0);
        for &r in cands.iter().skip(1) {
            let (f, kernels) = predict(r);
            let total = f.total();
            let bt = best.1.total();
            // A backward order must beat forward by a real margin:
            // near-ties go to the legacy order.
            let better = if best.0 == 0 {
                total < bt.saturating_mul(49) / 50
            } else {
                total < bt
            };
            if better {
                best = (r, f, kernels);
            }
        }
        let (r, f, kernels) = best;
        let order = if r == 0 {
            JoinOrder::Forward
        } else {
            JoinOrder::BackwardThenForward { reduce: r }
        };
        let mut predicted = f.rows.clone();
        predicted.push((OpKind::IndexNav, hash_lookups, 0));
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        fnv(&mut digest, order.label().as_bytes());
        fnv(&mut digest, &(k as u64).to_le_bytes());
        for e in &ests {
            fnv(&mut digest, &e.pairs.to_le_bytes());
        }
        for kn in &kernels {
            fnv(&mut digest, kn.as_bytes());
        }
        PathPlan {
            stages: segments,
            hash_lookups,
            order,
            static_empty: false,
            digest,
            predicted_total: f.total() + hash_lookups,
            kernels,
            predicted,
        }
    }

    /// Executes `plan`, returning the final edge set plus the report
    /// pairing the plan's predictions with what actually ran.
    pub fn execute_path(
        &self,
        plan: &PathPlan,
        ctx: &mut ExecContext<'_>,
    ) -> (EdgeSet, PlanReport) {
        let before = ctx.cost.ops;
        ctx.note_hash_lookups(plan.hash_lookups);
        let edges = if plan.static_empty {
            EdgeSet::new()
        } else {
            match plan.order {
                JoinOrder::Forward => self.run_forward(plan, ctx),
                JoinOrder::BackwardThenForward { reduce } => self.run_backward(plan, reduce, ctx),
            }
        };
        let report = build_report(
            plan.digest,
            plan.order.label(),
            &plan.predicted,
            &before,
            &ctx.cost.ops,
        );
        (edges, report)
    }

    /// Forward order: delegates to [`MultiwayJoin`], so the execution is
    /// identical to the legacy pipeline.
    fn run_forward(&self, plan: &PathPlan, ctx: &mut ExecContext<'_>) -> EdgeSet {
        let mut it = plan.stages.iter();
        let Some(seed) = it.next() else {
            return EdgeSet::new();
        };
        MultiwayJoin {
            seed: seed.iter().map(|&x| self.source(x)).collect(),
            stages: it
                .map(|classes| classes.iter().map(|&x| self.source(x)).collect())
                .collect(),
            space: Space::ApexExtent,
        }
        .run(ctx)
    }

    /// One attributed reverse semijoin of a stored extent against the
    /// sorted, distinct `parents` (every block is faulted — reverse
    /// reduction is a scan-side pass).
    fn reverse_step(
        &self,
        id: u64,
        set: &EdgeSet,
        parents: &[NodeId],
        ctx: &mut ExecContext<'_>,
    ) -> EdgeSet {
        ctx.attributed(OpKind::SemijoinReverse, |cost, buf, scratch| {
            let report = reverse_semijoin_into(set, parents, &mut scratch.semi);
            let bx = set.blocks();
            for &kb in &scratch.semi.blocks {
                cost.pages_read += buf.touch(
                    exec::block_oid(Space::ApexExtent, id, kb),
                    bx.block_bytes(kb as usize),
                );
            }
            cost.extent_pairs += report.pairs_read as u64;
            cost.join_work += report.work as u64;
            cost.join_output += scratch.semi.out.len() as u64;
            EdgeSet::from_sorted(scratch.semi.out.clone())
        })
    }

    /// Semijoin of the running frontier against an in-memory reduced
    /// stage: merge or gallop on actual sizes, zero pages (reduced
    /// stages are derived sets, not storage — crucially, no block
    /// encode is ever forced on them).
    fn memory_join(&self, ctx: &mut ExecContext<'_>, cur: &EdgeSet, stage: &EdgeSet) -> EdgeSet {
        let ends = cur.end_nodes();
        let n = ends.len().max(1);
        let m = stage.len();
        let gap_log = (usize::BITS - (m / n).max(1).leading_zeros()) as usize;
        if m + n <= n * (2 * gap_log + 4) {
            ctx.attributed(OpKind::SemijoinMerge, |cost, _, _| {
                let (hit, work) = stage.semijoin_ends(ends.into());
                cost.join_work += work as u64;
                cost.join_output += hit.len() as u64;
                hit
            })
        } else {
            ctx.attributed(OpKind::SemijoinGallop, |cost, _, _| {
                let (hit, probes) = stage.probe_by_parents(ends.into());
                cost.join_work += probes as u64;
                cost.join_output += hit.len() as u64;
                hit
            })
        }
    }

    /// Backward reduction of the last `r` boundaries, then the forward
    /// pass over the mixed stored/reduced chain.
    fn run_backward(&self, plan: &PathPlan, r: usize, ctx: &mut ExecContext<'_>) -> EdgeSet {
        let k = plan.stages.len() - 1;
        debug_assert!(r >= 1 && r <= k);
        let lo = k - r;
        // Distinct parents of the last stage (a full scan of it).
        let mut parents: Vec<NodeId> = Vec::new();
        for &x in &plan.stages[k] {
            let (id, set) = self.source(x);
            ExtentScan::pairs(Space::ApexExtent, id, set).run(ctx);
            parents.extend(set.iter().map(|p| p.parent));
        }
        parents.sort_unstable();
        parents.dedup();
        if parents.is_empty() {
            return EdgeSet::new();
        }
        // Reduce stages k-1 .. lo.
        let mut reduced: Vec<EdgeSet> = vec![EdgeSet::new(); k];
        let mut scratch = Vec::new();
        for i in (lo..k).rev() {
            if !ctx.checkpoint() {
                return EdgeSet::new();
            }
            let mut stage_red = EdgeSet::new();
            for &x in &plan.stages[i] {
                let (id, set) = self.source(x);
                let hit = self.reverse_step(id, set, &parents, ctx);
                stage_red.union_in_place(&hit, &mut scratch);
            }
            if stage_red.is_empty() {
                // Nothing upstream can extend into the reduced suffix:
                // the answer is empty, skip the rest (including the
                // seed union the forward order would have paid).
                return EdgeSet::new();
            }
            parents.clear();
            parents.extend(stage_red.iter().map(|p| p.parent));
            parents.sort_unstable();
            parents.dedup();
            reduced[i] = stage_red;
        }
        // Forward pass.
        ctx.cost.ops.record(OpKind::MultiwayJoin, true, [0; 8]);
        let mut cur: EdgeSet = if lo == 0 {
            std::mem::take(&mut reduced[0])
        } else {
            ExtentUnion {
                sources: plan.stages[0].iter().map(|&x| self.source(x)).collect(),
                space: Space::ApexExtent,
            }
            .run(ctx)
        };
        // `i` indexes the parallel `reduced` / `plan.stages` slices.
        #[allow(clippy::needless_range_loop)]
        for i in 1..=k {
            if cur.is_empty() || !ctx.checkpoint() {
                break;
            }
            if i >= lo && i < k {
                cur = self.memory_join(ctx, &cur, &reduced[i]);
            } else {
                let mut next = EdgeSet::new();
                for &x in &plan.stages[i] {
                    let (id, extent) = self.source(x);
                    let hit =
                        exec::semijoin(ctx, cur.end_nodes().into(), Space::ApexExtent, id, extent);
                    next.union_in_place(&hit, &mut scratch);
                }
                cur = next;
            }
        }
        cur
    }

    /// Forecast for a QTYPE2 dataflow evaluation: the seed extent scans
    /// plus the segmentation lookups are predicted exactly; the fixpoint
    /// itself is navigation whose cost the report surfaces as-is (an
    /// honest mispredict).
    pub fn forecast_anc_desc(&self, first: LabelId) -> (u64, Vec<(OpKind, u64, u64)>) {
        let seg = self.apex.segment_nodes(&[first]);
        let est = self.stage_est(&seg.xnodes);
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        fnv(&mut digest, b"dataflow");
        fnv(&mut digest, &u64::from(first.0).to_le_bytes());
        fnv(&mut digest, &est.pairs.to_le_bytes());
        (
            digest,
            vec![
                (OpKind::ExtentScan, est.pairs, est.blocks),
                (OpKind::IndexNav, seg.hash_lookups, 0),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex::Workload;
    use apex_storage::bufmgr::BufferHandle;
    use xmlgraph::builder::moviedb;
    use xmlgraph::{LabelPath, XmlGraph};

    fn setup(g: &XmlGraph, workload: &[&str]) -> Apex {
        let mut idx = Apex::build_initial(g);
        if !workload.is_empty() {
            let wl = Workload::parse(g, workload).unwrap();
            idx.refine(g, &wl, 0.1);
        }
        idx
    }

    fn labels(g: &XmlGraph, p: &str) -> Vec<LabelId> {
        LabelPath::parse(g, p).unwrap().0
    }

    #[test]
    fn forward_and_backward_orders_agree() {
        let g = moviedb();
        let idx = setup(&g, &[]);
        let stats = PlanStats::assemble(&idx);
        let planner = Planner::new(&idx, Some(&stats), KernelPolicy::Adaptive, 0);
        for p in [
            "actor.name",
            "director.movie.title",
            "@movie.movie",
            "actor.@movie.movie.title",
            "director.movie.@director.director.name",
        ] {
            let ls = labels(&g, p);
            let mut want = None;
            for policy in [
                JoinOrderPolicy::Planned,
                JoinOrderPolicy::ForceForward,
                JoinOrderPolicy::ForceBackward,
            ] {
                let plan = planner.plan_path(&ls, policy);
                let buf = BufferHandle::unbounded();
                let mut ctx = ExecContext::new(&buf);
                let (out, report) = planner.execute_path(&plan, &mut ctx);
                match &want {
                    None => want = Some(out),
                    Some(w) => assert_eq!(&out, w, "{p} under {}", policy.name()),
                }
                // Every scalar the execution moved is in the report.
                let cost = ctx.finish();
                let attributed: u64 = report
                    .forecasts
                    .iter()
                    .map(|f| f.actual_work + f.actual_pages)
                    .sum();
                assert_eq!(attributed, cost.total(), "{p} under {}", policy.name());
            }
        }
    }

    #[test]
    fn backward_reduction_prunes_with_reverse_semijoins() {
        let g = moviedb();
        let idx = setup(&g, &[]);
        let planner = Planner::new(&idx, None, KernelPolicy::Adaptive, 0);
        let ls = labels(&g, "director.movie.title");
        let plan = planner.plan_path(&ls, JoinOrderPolicy::ForceBackward);
        assert!(matches!(
            plan.order,
            JoinOrder::BackwardThenForward { reduce: 2 }
        ));
        let buf = BufferHandle::unbounded();
        let mut ctx = ExecContext::new(&buf);
        let (out, report) = planner.execute_path(&plan, &mut ctx);
        assert!(!out.is_empty());
        assert!(report
            .forecasts
            .iter()
            .any(|f| f.kind == OpKind::SemijoinReverse && f.actual_work > 0));
        assert_eq!(report.order, "backward(2)");
    }

    #[test]
    fn unknown_label_and_zero_stage_plans_are_static_empty() {
        let g = moviedb();
        let idx = setup(&g, &[]);
        let stats = PlanStats::assemble(&idx);
        let planner = Planner::new(&idx, Some(&stats), KernelPolicy::Adaptive, 0);
        // `title.actor` exists label-wise but has an empty class list in
        // some stage only if cardinality is zero; craft the guaranteed
        // case instead: a stage whose extents are all empty cannot occur
        // in moviedb, so check the unknown-label path (no exact prefix).
        let ls = labels(&g, "title.actor");
        let plan = planner.plan_path(&ls, JoinOrderPolicy::Planned);
        let buf = BufferHandle::unbounded();
        let mut ctx = ExecContext::new(&buf);
        let (out, report) = planner.execute_path(&plan, &mut ctx);
        if plan.static_empty {
            assert_eq!(ctx.cost.pages_read, 0);
        }
        assert!(out.is_empty() || !plan.static_empty);
        assert!(report.mispredict_ratio().is_finite());
    }

    #[test]
    fn digest_is_stable_and_order_sensitive() {
        let g = moviedb();
        let idx = setup(&g, &[]);
        let planner = Planner::new(&idx, None, KernelPolicy::Adaptive, 0);
        let ls = labels(&g, "director.movie.title");
        let a = planner.plan_path(&ls, JoinOrderPolicy::ForceForward);
        let b = planner.plan_path(&ls, JoinOrderPolicy::ForceForward);
        let c = planner.plan_path(&ls, JoinOrderPolicy::ForceBackward);
        assert_eq!(a.digest, b.digest);
        assert_ne!(a.digest, c.digest);
    }

    #[test]
    fn planned_forward_execution_matches_legacy_multiway_costs() {
        // A forward plan must be bit-for-bit the legacy pipeline: same
        // result, same cost scalars.
        let g = moviedb();
        let idx = setup(&g, &["actor.name"]);
        let planner = Planner::new(&idx, None, KernelPolicy::Adaptive, 0);
        let ls = labels(&g, "director.movie.title");
        let plan = planner.plan_path(&ls, JoinOrderPolicy::ForceForward);
        let buf = BufferHandle::unbounded();
        let mut ctx = ExecContext::new(&buf);
        let (out, _) = planner.execute_path(&plan, &mut ctx);
        let planned_cost = ctx.finish();

        // Legacy: explicit segmentation + MultiwayJoin.
        let buf2 = BufferHandle::unbounded();
        let mut ctx2 = ExecContext::new(&buf2);
        let n = ls.len();
        let mut segments: Vec<Vec<XNodeId>> = Vec::new();
        for j in (1..=n).rev() {
            let seg = idx.segment_nodes(&ls[..j]);
            ctx2.note_hash_lookups(seg.hash_lookups);
            segments.push(seg.xnodes);
            if seg.exact {
                break;
            }
        }
        let mut it = segments.into_iter().rev();
        let seed = it.next().unwrap();
        let legacy = MultiwayJoin {
            seed: seed.iter().map(|&x| planner.source(x)).collect(),
            stages: it
                .map(|cs| cs.iter().map(|&x| planner.source(x)).collect())
                .collect(),
            space: Space::ApexExtent,
        }
        .run(&mut ctx2);
        assert_eq!(out, legacy);
        let legacy_cost = ctx2.finish();
        assert_eq!(planned_cost.scalars(), legacy_cost.scalars());
    }

    #[test]
    fn report_feedback_flattens_rows() {
        let rep = PlanReport {
            digest: 7,
            order: "forward".into(),
            forecasts: vec![OpForecast {
                kind: OpKind::ExtentUnion,
                predicted_work: 10,
                predicted_pages: 2,
                actual_work: 9,
                actual_pages: 2,
            }],
        };
        let rows: Vec<_> = rep.feedback().collect();
        assert_eq!(rows, vec![(OpKind::ExtentUnion, 12, 11)]);
        assert!((rep.mispredict_ratio() - 1.0 / 11.0).abs() < 1e-9);
        let s = rep.render();
        assert!(s.contains("mispredict ratio"));
        assert!(s.contains("ExtentUnion"));
    }
}
