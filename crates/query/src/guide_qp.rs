//! Query processing over rooted path indexes (strong DataGuide and
//! 1-index).
//!
//! These indexes record every label path *from the root*, so a
//! partial-matching query `//l_1/…/l_n` must be rewritten into simple
//! path expressions by exhaustively navigating the index graph (§2, §6.1
//! — the 14-edge-lookup example of §4). We implement that navigation as
//! a product fixpoint between the index graph and the suffix-matching
//! automaton of the query: per index node we track which query prefixes
//! can end there (a bitmask), propagating new bits along index edges
//! until a fixpoint. Nodes holding the full-match bit contribute their
//! extents. This visits exactly the part of the index an exhaustive
//! rewriting pass must visit, while remaining cycle-safe, and its cost
//! (index edges traversed) grows with index size — the effect Figures
//! 13–15 show for irregular data.
//!
//! Extent reads, navigation I/O and table probes run through the shared
//! operators in [`crate::exec`] over a cross-query buffer pool.

use std::hash::Hash;

use apex_storage::bufmgr::{BufferHandle, Space};
use apex_storage::{DataTable, OpKind, PageModel};
use dataguide::{DataGuide, DgNodeId};
use oneindex::{BlockId, OneIndex};
use xmlgraph::{LabelId, NodeId, XmlGraph};

use crate::ast::Query;
use crate::batch::{QueryOutput, QueryProcessor};
use crate::exec::{self, DataProbe, ExecContext, ExtentScan, IndexNav};
use crate::plan;

/// Abstraction over rooted path indexes whose nodes carry target-set
/// extents (DataGuide, 1-index).
pub trait RootedIndex {
    /// Node identifier type.
    type Id: Copy + Eq + Hash + Ord;
    /// The index root.
    fn root(&self) -> Self::Id;
    /// Iterates outgoing edges of a node.
    fn for_each_edge(&self, id: Self::Id, f: &mut dyn FnMut(LabelId, Self::Id));
    /// The extent (target set) of a node.
    fn extent(&self, id: Self::Id) -> &[NodeId];
    /// Stable numeric id for page accounting.
    fn id_u64(id: Self::Id) -> u64;
    /// Inverse of [`RootedIndex::id_u64`] over the dense arena.
    fn id_from_usize(i: usize) -> Self::Id;
    /// Buffer-pool address space of this index's extents.
    fn extent_space() -> Space;
    /// Buffer-pool address space of this index's page-packed node
    /// records.
    fn node_space() -> Space;
    /// Number of index nodes (dense-state sizing).
    fn node_count_hint(&self) -> usize;
    /// Display name.
    fn index_name(&self) -> &'static str;
}

impl RootedIndex for DataGuide {
    type Id = DgNodeId;
    fn root(&self) -> DgNodeId {
        DataGuide::root(self)
    }
    fn for_each_edge(&self, id: DgNodeId, f: &mut dyn FnMut(LabelId, DgNodeId)) {
        for &(l, t) in &self.node(id).edges {
            f(l, t);
        }
    }
    fn extent(&self, id: DgNodeId) -> &[NodeId] {
        &self.node(id).extent
    }
    fn id_u64(id: DgNodeId) -> u64 {
        id.0 as u64
    }
    fn id_from_usize(i: usize) -> DgNodeId {
        DgNodeId(i as u32)
    }
    fn extent_space() -> Space {
        Space::GuideExtent
    }
    fn node_space() -> Space {
        Space::GuideNode
    }
    fn node_count_hint(&self) -> usize {
        self.node_count()
    }
    fn index_name(&self) -> &'static str {
        "SDG"
    }
}

impl RootedIndex for OneIndex {
    type Id = BlockId;
    fn root(&self) -> BlockId {
        OneIndex::root(self)
    }
    fn for_each_edge(&self, id: BlockId, f: &mut dyn FnMut(LabelId, BlockId)) {
        for &(l, t) in &self.block(id).edges {
            f(l, t);
        }
    }
    fn extent(&self, id: BlockId) -> &[NodeId] {
        &self.block(id).extent
    }
    fn id_u64(id: BlockId) -> u64 {
        id.0 as u64
    }
    fn id_from_usize(i: usize) -> BlockId {
        BlockId(i as u32)
    }
    fn extent_space() -> Space {
        Space::OneExtent
    }
    fn node_space() -> Space {
        Space::OneNode
    }
    fn node_count_hint(&self) -> usize {
        self.node_count()
    }
    fn index_name(&self) -> &'static str {
        "1-index"
    }
}

/// Query processor over a [`RootedIndex`].
pub struct GuideProcessor<'a, I: RootedIndex> {
    g: &'a XmlGraph,
    index: &'a I,
    table: &'a DataTable,
    buf: BufferHandle,
    /// Page-packed byte offsets of index-node records (16 bytes header +
    /// 8 per edge): node `i` occupies `node_offsets[i]..node_offsets[i+1]`
    /// of [`RootedIndex::node_space`].
    node_offsets: Vec<u64>,
}

impl<'a, I: RootedIndex> GuideProcessor<'a, I> {
    /// Creates a processor with a private (unbounded) buffer pool.
    pub fn new(g: &'a XmlGraph, index: &'a I, table: &'a DataTable) -> Self {
        Self::with_buffer(g, index, table, BufferHandle::unbounded())
    }

    /// Creates a processor charging against a shared buffer pool.
    pub fn with_buffer(
        g: &'a XmlGraph,
        index: &'a I,
        table: &'a DataTable,
        buf: BufferHandle,
    ) -> Self {
        let node_offsets = exec::record_layout((0..index.node_count_hint()).map(|i| {
            let mut n_edges = 0usize;
            index.for_each_edge(I::id_from_usize(i), &mut |_, _| n_edges += 1);
            16 + 8 * n_edges
        }));
        GuideProcessor {
            g,
            index,
            table,
            buf,
            node_offsets,
        }
    }

    /// Scans index node `id`'s extent through the pool.
    fn scan_extent(&self, id: I::Id, ctx: &mut ExecContext<'_>) {
        ExtentScan::nodes(I::extent_space(), I::id_u64(id), self.index.extent(id)).run(ctx);
    }

    /// Charges the first visit of index node `id`'s page-packed record.
    fn nav_node(&self, id: I::Id, touched: &mut [bool], ctx: &mut ExecContext<'_>) {
        let i = I::id_u64(id) as usize;
        if !touched[i] {
            touched[i] = true;
            IndexNav {
                space: I::node_space(),
                bytes: self.node_offsets[i]..self.node_offsets[i + 1],
            }
            .run(ctx);
        }
    }

    /// QTYPE1 `//labels`: bitmask fixpoint; bit `k` at a node means "the
    /// last `k` edge labels of some rooted path to this node equal
    /// `labels[..k]`".
    fn eval_path(&self, labels: &[LabelId], ctx: &mut ExecContext<'_>) -> Vec<NodeId> {
        let n = labels.len();
        assert!(n < 63, "query length bounded by generator");
        let full: u64 = 1 << n;
        // Dense per-node automaton state (indexes are arena-allocated, so
        // ids are dense); a HashMap here dominates runtime on 100k+-node
        // guides.
        let mut bits: Vec<u64> = vec![0; self.index.node_count_hint()];
        let mut collected: Vec<bool> = vec![false; self.index.node_count_hint()];
        let mut touched: Vec<bool> = vec![false; self.index.node_count_hint()];
        let root = self.index.root();
        bits[I::id_u64(root) as usize] = 1;
        let mut work: Vec<(I::Id, u64)> = vec![(root, 1)];
        let mut out: Vec<NodeId> = Vec::new();

        while let Some((node, delta)) = work.pop() {
            let mut pushes: Vec<(I::Id, u64)> = Vec::new();
            self.index.for_each_edge(node, &mut |l, child| {
                let mut next = 1u64; // restart state is always live
                for (k, &lab) in labels.iter().enumerate() {
                    if delta & (1 << k) != 0 && lab == l {
                        next |= 1 << (k + 1);
                    }
                }
                pushes.push((child, next));
            });
            ctx.nav_edges(pushes.len() as u64);
            self.nav_node(node, &mut touched, ctx);
            for (child, next) in pushes {
                let slot = &mut bits[I::id_u64(child) as usize];
                let fresh = next & !*slot;
                if fresh == 0 {
                    continue;
                }
                *slot |= fresh;
                let seen = &mut collected[I::id_u64(child) as usize];
                if fresh & full != 0 && !*seen {
                    *seen = true;
                    self.scan_extent(child, ctx);
                    out.extend_from_slice(self.index.extent(child));
                }
                work.push((child, fresh));
            }
        }
        self.g.sort_doc_order(&mut out);
        out
    }

    /// QTYPE2 `//first//last`: two automaton bits (seen `first`; full
    /// match via a later `last` edge).
    fn eval_anc_desc(
        &self,
        first: LabelId,
        last: LabelId,
        ctx: &mut ExecContext<'_>,
    ) -> Vec<NodeId> {
        let mut bits: Vec<u8> = vec![0; self.index.node_count_hint()];
        let mut collected: Vec<bool> = vec![false; self.index.node_count_hint()];
        let mut touched: Vec<bool> = vec![false; self.index.node_count_hint()];
        let root = self.index.root();
        bits[I::id_u64(root) as usize] = 0b01; // bit0: initial; bit1: inside l_i
        let mut work: Vec<(I::Id, u8)> = vec![(root, 0b01)];
        let mut out: Vec<NodeId> = Vec::new();

        while let Some((node, delta)) = work.pop() {
            let mut pushes: Vec<(I::Id, u8, bool)> = Vec::new();
            self.index.for_each_edge(node, &mut |l, child| {
                let mut next = 0u8;
                if delta & 0b01 != 0 {
                    next |= 0b01;
                    if l == first {
                        next |= 0b10;
                    }
                }
                if delta & 0b10 != 0 {
                    next |= 0b10;
                }
                // Collect when an `last` edge is taken from a state that
                // has already passed an `first` edge.
                let hit = delta & 0b10 != 0 && l == last;
                pushes.push((child, next, hit));
            });
            ctx.nav_edges(pushes.len() as u64);
            self.nav_node(node, &mut touched, ctx);
            for (child, next, hit) in pushes {
                let seen = &mut collected[I::id_u64(child) as usize];
                if hit && !*seen {
                    *seen = true;
                    self.scan_extent(child, ctx);
                    out.extend_from_slice(self.index.extent(child));
                }
                let slot = &mut bits[I::id_u64(child) as usize];
                let fresh = next & !*slot;
                if fresh == 0 {
                    continue;
                }
                *slot |= fresh;
                work.push((child, fresh));
            }
        }
        self.g.sort_doc_order(&mut out);
        out
    }
}

impl<I: RootedIndex> QueryProcessor for GuideProcessor<'_, I> {
    fn name(&self) -> &'static str {
        self.index.index_name()
    }

    fn eval(&self, q: &Query) -> QueryOutput {
        let mut ctx = ExecContext::new(&self.buf);
        // A rooted index has exactly one strategy — exhaustive
        // navigation — so its forecast is the whole index graph: every
        // edge traversed, every node record faulted. Accurate for
        // QTYPE1/2 (the fixpoints visit everything reachable); extent
        // scans and value probes surface as honest mispredicts.
        let before = ctx.cost.ops;
        let total_bytes = self.node_offsets.last().copied().unwrap_or(0);
        let nodes_n = self.index.node_count_hint() as u64;
        let edges = (total_bytes.saturating_sub(16 * nodes_n)) / 8;
        let psz = PageModel::default().page_size as u64;
        let predicted = [(OpKind::IndexNav, edges, total_bytes.div_ceil(psz.max(1)))];
        let nodes = match q {
            Query::PartialPath { labels } => self.eval_path(labels, &mut ctx),
            Query::AncestorDescendant { first, last } => {
                self.eval_anc_desc(*first, *last, &mut ctx)
            }
            Query::ValuePath { labels, value } => {
                let mut nodes = self.eval_path(labels, &mut ctx);
                nodes.retain(|&n| {
                    DataProbe {
                        table: self.table,
                        nid: n,
                        value,
                    }
                    .run(&mut ctx)
                });
                nodes
            }
        };
        let report = plan::build_report(
            nodes_n ^ (edges << 20),
            "navigate",
            &predicted,
            &before,
            &ctx.cost.ops,
        );
        QueryOutput {
            nodes,
            cost: ctx.finish(),
            interrupted: false,
            plan: Some(report),
        }
    }

    fn buffer(&self) -> Option<&BufferHandle> {
        Some(&self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveProcessor;
    use apex_storage::PageModel;
    use xmlgraph::builder::moviedb;
    use xmlgraph::LabelPath;

    fn q1(g: &XmlGraph, p: &str) -> Query {
        Query::PartialPath {
            labels: LabelPath::parse(g, p).unwrap().0,
        }
    }

    #[test]
    fn sdg_qtype1_matches_naive() {
        let g = moviedb();
        let dg = DataGuide::build(&g);
        let t = DataTable::build(&g, PageModel::default());
        let gp = GuideProcessor::new(&g, &dg, &t);
        let nv = NaiveProcessor::new(&g, &t);
        for p in [
            "actor.name",
            "movie.title",
            "name",
            "@movie.movie",
            "director.movie.@director.director.name",
            "title.actor", // empty
        ] {
            let q = q1(&g, p);
            assert_eq!(gp.eval(&q).nodes, nv.eval(&q).nodes, "query {p}");
        }
    }

    #[test]
    fn oneindex_qtype1_matches_naive() {
        let g = moviedb();
        let oi = OneIndex::build(&g);
        let t = DataTable::build(&g, PageModel::default());
        let gp = GuideProcessor::new(&g, &oi, &t);
        let nv = NaiveProcessor::new(&g, &t);
        for p in ["actor.name", "movie.title", "name", "@movie.movie.title"] {
            let q = q1(&g, p);
            assert_eq!(gp.eval(&q).nodes, nv.eval(&q).nodes, "query {p}");
        }
    }

    #[test]
    fn sdg_qtype2_matches_naive() {
        let g = moviedb();
        let dg = DataGuide::build(&g);
        let t = DataTable::build(&g, PageModel::default());
        let gp = GuideProcessor::new(&g, &dg, &t);
        let nv = NaiveProcessor::new(&g, &t);
        for (a, b) in [("movie", "name"), ("director", "title"), ("movie", "movie")] {
            let q = Query::AncestorDescendant {
                first: g.label_id(a).unwrap(),
                last: g.label_id(b).unwrap(),
            };
            assert_eq!(gp.eval(&q).nodes, nv.eval(&q).nodes, "//{a}//{b}");
        }
    }

    #[test]
    fn sdg_qtype3_matches_naive() {
        let g = moviedb();
        let dg = DataGuide::build(&g);
        let t = DataTable::build(&g, PageModel::default());
        let gp = GuideProcessor::new(&g, &dg, &t);
        let nv = NaiveProcessor::new(&g, &t);
        let q = Query::ValuePath {
            labels: LabelPath::parse(&g, "movie.title").unwrap().0,
            value: "Star Wars".into(),
        };
        assert_eq!(gp.eval(&q).nodes, nv.eval(&q).nodes);
    }

    #[test]
    fn q1_on_guide_visits_many_index_edges() {
        // The §4 point: partial-matching queries force navigation.
        let g = moviedb();
        let dg = DataGuide::build(&g);
        let t = DataTable::build(&g, PageModel::default());
        let gp = GuideProcessor::new(&g, &dg, &t);
        let q = q1(&g, "actor.name");
        let out = gp.eval(&q);
        assert!(out.cost.index_edges >= dg.edge_count() as u64);
    }

    #[test]
    fn navigation_io_is_pooled_across_queries() {
        let g = moviedb();
        let dg = DataGuide::build(&g);
        let t = DataTable::build(&g, PageModel::default());
        let gp = GuideProcessor::new(&g, &dg, &t);
        let q = q1(&g, "actor.name");
        let cold = gp.eval(&q);
        assert!(cold.cost.pages_read >= 1);
        let warm = gp.eval(&q);
        assert_eq!(warm.cost.pages_read, 0, "warm run must hit the pool");
        // Navigation work is unchanged — only the I/O is cached.
        assert_eq!(warm.cost.index_edges, cold.cost.index_edges);
    }
}
