//! Batch execution: the unit Figures 13–15 report (total execution time
//! of a query set over one index).

use std::time::{Duration, Instant};

use apex_storage::bufmgr::{BufferHandle, BufferStats};
use apex_storage::Cost;
use xmlgraph::NodeId;

use crate::ast::Query;

/// Result of one query: result nodes (sorted by document order, as the
/// paper post-processes) plus the logical cost incurred.
#[derive(Debug, Clone, Default)]
pub struct QueryOutput {
    /// Result nodes in document order, deduplicated.
    pub nodes: Vec<NodeId>,
    /// Logical cost counters for this query.
    pub cost: Cost,
}

/// A query processor over one index structure.
pub trait QueryProcessor {
    /// Short name for tables ("APEX", "SDG", "1-index", "Fabric", "naive").
    fn name(&self) -> &'static str;
    /// Evaluates one query.
    fn eval(&self, q: &Query) -> QueryOutput;
    /// The cross-query buffer pool this processor charges against, if it
    /// evaluates through the shared execution layer.
    fn buffer(&self) -> Option<&BufferHandle> {
        None
    }
}

/// Aggregates over a batch of queries.
#[derive(Debug, Clone, Default)]
pub struct BatchStats {
    /// Number of queries evaluated.
    pub queries: usize,
    /// Total result nodes across all queries.
    pub result_nodes: usize,
    /// Queries with empty results.
    pub empty_results: usize,
    /// Accumulated logical cost.
    pub cost: Cost,
    /// Accumulated wall-clock time.
    pub wall: Duration,
    /// Buffer-pool activity during the batch (hits/misses/evictions),
    /// when the processor exposes its pool.
    pub buf: Option<BufferStats>,
}

impl BatchStats {
    /// One row of a figure: `pages`, `total logical`, `wall ms`, and the
    /// pool's hit rate when available.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} queries, {} result nodes ({} empty) | pages={} logical={} wall={:.1}ms",
            self.queries,
            self.result_nodes,
            self.empty_results,
            self.cost.pages_read,
            self.cost.total(),
            self.wall.as_secs_f64() * 1e3,
        );
        if let Some(b) = &self.buf {
            s.push_str(&format!(" | {b}"));
        }
        s
    }
}

/// Runs `queries` through `p`, accumulating cost, wall time, and the
/// processor's buffer-pool delta.
pub fn run_batch(p: &dyn QueryProcessor, queries: &[Query]) -> BatchStats {
    let before = p.buffer().map(|b| b.stats());
    let mut stats = BatchStats::default();
    let start = Instant::now();
    for q in queries {
        let out = p.eval(q);
        stats.queries += 1;
        stats.result_nodes += out.nodes.len();
        if out.nodes.is_empty() {
            stats.empty_results += 1;
        }
        stats.cost += out.cost;
    }
    stats.wall = start.elapsed();
    stats.buf = match (p.buffer(), before) {
        (Some(b), Some(s0)) => Some(b.stats() - s0),
        _ => None,
    };
    stats
}

/// Runs `queries` across `threads` worker threads sharing the processor
/// immutably (processors hold only shared references to the index and
/// data; the buffer pool behind [`QueryProcessor::buffer`] is shared by
/// all workers through its internal lock). Logical costs are summed;
/// wall time is the batch's span, so speed-up shows directly against
/// [`run_batch`]; the buffer delta covers the whole batch.
pub fn run_batch_parallel(
    p: &(dyn QueryProcessor + Sync),
    queries: &[Query],
    threads: usize,
) -> BatchStats {
    let threads = threads.max(1);
    let before = p.buffer().map(|b| b.stats());
    let start = Instant::now();
    let chunk = queries.len().div_ceil(threads).max(1);
    let partials: Vec<BatchStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .chunks(chunk)
            .map(|qs| scope.spawn(move || run_batch(p, qs)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });
    let mut stats = BatchStats::default();
    for part in partials {
        stats.queries += part.queries;
        stats.result_nodes += part.result_nodes;
        stats.empty_results += part.empty_results;
        stats.cost += part.cost;
    }
    stats.wall = start.elapsed();
    // Per-worker deltas overlap on the shared pool; the batch-level
    // delta is the authoritative account.
    stats.buf = match (p.buffer(), before) {
        (Some(b), Some(s0)) => Some(b.stats() - s0),
        _ => None,
    };
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveProcessor;
    use apex_storage::{DataTable, PageModel};
    use xmlgraph::builder::moviedb;
    use xmlgraph::LabelPath;

    fn queries(g: &xmlgraph::XmlGraph) -> Vec<Query> {
        ["actor.name", "movie.title", "name", "title", "movie"]
            .iter()
            .cycle()
            .take(40)
            .map(|s| Query::PartialPath {
                labels: LabelPath::parse(g, s).unwrap().0,
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = moviedb();
        let table = DataTable::build(&g, PageModel::default());
        let qs = queries(&g);
        // Fresh processors (= fresh pools): the pool is cross-query, so
        // reusing one processor would make the second batch all hits.
        let seq = run_batch(&NaiveProcessor::new(&g, &table), &qs);
        let par = run_batch_parallel(&NaiveProcessor::new(&g, &table), &qs, 4);
        assert_eq!(seq.queries, par.queries);
        assert_eq!(seq.result_nodes, par.result_nodes);
        assert_eq!(seq.empty_results, par.empty_results);
        // With an unbounded shared pool every distinct object misses
        // exactly once regardless of schedule, so aggregate costs (and
        // their per-operator attribution) are schedule-independent.
        assert_eq!(seq.cost, par.cost);
        let (sb, pb) = (seq.buf.unwrap(), par.buf.unwrap());
        assert_eq!(sb.misses, pb.misses);
        assert_eq!(sb.hits, pb.hits);
        assert!(sb.hits > 0, "batch with repeats must hit the pool");
    }

    #[test]
    fn parallel_handles_degenerate_thread_counts() {
        let g = moviedb();
        let table = DataTable::build(&g, PageModel::default());
        let p = NaiveProcessor::new(&g, &table);
        let queries = vec![Query::PartialPath {
            labels: LabelPath::parse(&g, "title").unwrap().0,
        }];
        for threads in [0, 1, 8, 64] {
            let s = run_batch_parallel(&p, &queries, threads);
            assert_eq!(s.queries, 1);
        }
    }

    #[test]
    fn batch_reports_buffer_delta_and_summary_hit_rate() {
        let g = moviedb();
        let table = DataTable::build(&g, PageModel::default());
        let p = NaiveProcessor::new(&g, &table);
        let qs = queries(&g);
        let first = run_batch(&p, &qs);
        let b = first.buf.expect("naive exposes its pool");
        assert!(b.misses > 0);
        assert!(first.summary().contains("hit_rate"));
        // A second batch over the same processor is all hits — the delta
        // accounting must not re-report the first batch's misses.
        let second = run_batch(&p, &qs);
        let b2 = second.buf.unwrap();
        assert_eq!(b2.misses, 0);
        assert!(b2.hits > 0);
    }
}
