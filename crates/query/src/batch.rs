//! Batch execution: the unit Figures 13–15 report (total execution time
//! of a query set over one index).

use std::time::{Duration, Instant};

use apex_storage::Cost;
use xmlgraph::NodeId;

use crate::ast::Query;

/// Result of one query: result nodes (sorted by document order, as the
/// paper post-processes) plus the logical cost incurred.
#[derive(Debug, Clone, Default)]
pub struct QueryOutput {
    /// Result nodes in document order, deduplicated.
    pub nodes: Vec<NodeId>,
    /// Logical cost counters for this query.
    pub cost: Cost,
}

/// A query processor over one index structure.
pub trait QueryProcessor {
    /// Short name for tables ("APEX", "SDG", "1-index", "Fabric", "naive").
    fn name(&self) -> &'static str;
    /// Evaluates one query.
    fn eval(&self, q: &Query) -> QueryOutput;
}

/// Aggregates over a batch of queries.
#[derive(Debug, Clone, Default)]
pub struct BatchStats {
    /// Number of queries evaluated.
    pub queries: usize,
    /// Total result nodes across all queries.
    pub result_nodes: usize,
    /// Queries with empty results.
    pub empty_results: usize,
    /// Accumulated logical cost.
    pub cost: Cost,
    /// Accumulated wall-clock time.
    pub wall: Duration,
}

impl BatchStats {
    /// One row of a figure: `pages`, `total logical`, `wall ms`.
    pub fn summary(&self) -> String {
        format!(
            "{} queries, {} result nodes ({} empty) | pages={} logical={} wall={:.1}ms",
            self.queries,
            self.result_nodes,
            self.empty_results,
            self.cost.pages_read,
            self.cost.total(),
            self.wall.as_secs_f64() * 1e3,
        )
    }
}

/// Runs `queries` through `p`, accumulating cost and wall time.
pub fn run_batch(p: &dyn QueryProcessor, queries: &[Query]) -> BatchStats {
    let mut stats = BatchStats::default();
    let start = Instant::now();
    for q in queries {
        let out = p.eval(q);
        stats.queries += 1;
        stats.result_nodes += out.nodes.len();
        if out.nodes.is_empty() {
            stats.empty_results += 1;
        }
        stats.cost += out.cost;
    }
    stats.wall = start.elapsed();
    stats
}

/// Runs `queries` across `threads` worker threads sharing the processor
/// immutably (processors hold only shared references to the index and
/// data). Logical costs are summed; wall time is the batch's span, so
/// speed-up shows directly against [`run_batch`].
pub fn run_batch_parallel(
    p: &(dyn QueryProcessor + Sync),
    queries: &[Query],
    threads: usize,
) -> BatchStats {
    let threads = threads.max(1);
    let start = Instant::now();
    let chunk = queries.len().div_ceil(threads).max(1);
    let partials: Vec<BatchStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .chunks(chunk)
            .map(|qs| scope.spawn(move || run_batch(p, qs)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker must not panic"))
            .collect()
    });
    let mut stats = BatchStats::default();
    for part in partials {
        stats.queries += part.queries;
        stats.result_nodes += part.result_nodes;
        stats.empty_results += part.empty_results;
        stats.cost += part.cost;
    }
    stats.wall = start.elapsed();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveProcessor;
    use apex_storage::{DataTable, PageModel};
    use xmlgraph::builder::moviedb;
    use xmlgraph::LabelPath;

    #[test]
    fn parallel_matches_sequential() {
        let g = moviedb();
        let table = DataTable::build(&g, PageModel::default());
        let p = NaiveProcessor::new(&g, &table);
        let queries: Vec<Query> = ["actor.name", "movie.title", "name", "title", "movie"]
            .iter()
            .cycle()
            .take(40)
            .map(|s| Query::PartialPath { labels: LabelPath::parse(&g, s).unwrap().0 })
            .collect();
        let seq = run_batch(&p, &queries);
        let par = run_batch_parallel(&p, &queries, 4);
        assert_eq!(seq.queries, par.queries);
        assert_eq!(seq.result_nodes, par.result_nodes);
        assert_eq!(seq.empty_results, par.empty_results);
        assert_eq!(seq.cost, par.cost);
    }

    #[test]
    fn parallel_handles_degenerate_thread_counts() {
        let g = moviedb();
        let table = DataTable::build(&g, PageModel::default());
        let p = NaiveProcessor::new(&g, &table);
        let queries = vec![Query::PartialPath {
            labels: LabelPath::parse(&g, "title").unwrap().0,
        }];
        for threads in [0, 1, 8, 64] {
            let s = run_batch_parallel(&p, &queries, threads);
            assert_eq!(s.queries, 1);
        }
    }
}
