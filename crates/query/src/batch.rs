//! Batch execution: the unit Figures 13–15 report (total execution time
//! of a query set over one index), plus the adaptive driver
//! ([`run_adaptive`]) that records every query into a
//! [`WorkloadMonitor`] while serving through an [`IndexCell`] snapshot.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use apex::{IndexCell, Refresher, WorkloadMonitor};
use apex_storage::bufmgr::{BufferHandle, BufferStats};
use apex_storage::{Cost, DataTable};
use xmlgraph::{LabelPath, NodeId, XmlGraph};

use crate::apex_qp::ApexProcessor;
use crate::ast::Query;
use crate::stats::percentile;

/// Result of one query: result nodes (sorted by document order, as the
/// paper post-processes) plus the logical cost incurred.
#[derive(Debug, Clone, Default)]
pub struct QueryOutput {
    /// Result nodes in document order, deduplicated.
    pub nodes: Vec<NodeId>,
    /// Logical cost counters for this query.
    pub cost: Cost,
    /// True when execution stopped early at a deadline checkpoint (the
    /// nodes collected so far are a correct partial answer; the serving
    /// layer reports such queries as `DeadlineExceeded`, never as
    /// complete results).
    pub interrupted: bool,
    /// Predicted-vs-actual plan report, when the query ran through the
    /// cost-based planner (`None` for the naive oracle).
    pub plan: Option<crate::plan::PlanReport>,
}

/// A query processor over one index structure.
pub trait QueryProcessor {
    /// Short name for tables ("APEX", "SDG", "1-index", "Fabric", "naive").
    fn name(&self) -> &'static str;
    /// Evaluates one query.
    fn eval(&self, q: &Query) -> QueryOutput;
    /// The cross-query buffer pool this processor charges against, if it
    /// evaluates through the shared execution layer.
    fn buffer(&self) -> Option<&BufferHandle> {
        None
    }
}

/// Aggregates over a batch of queries.
#[derive(Debug, Clone, Default)]
pub struct BatchStats {
    /// Number of queries evaluated.
    pub queries: usize,
    /// Total result nodes across all queries.
    pub result_nodes: usize,
    /// Queries with empty results.
    pub empty_results: usize,
    /// Accumulated logical cost.
    pub cost: Cost,
    /// Accumulated wall-clock time.
    pub wall: Duration,
    /// Buffer-pool activity during the batch (hits/misses/evictions),
    /// when the processor exposes its pool.
    pub buf: Option<BufferStats>,
}

impl BatchStats {
    /// One row of a figure: `pages`, `total logical`, `wall ms`, and the
    /// pool's hit rate when available.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} queries, {} result nodes ({} empty) | pages={} logical={} wall={:.1}ms",
            self.queries,
            self.result_nodes,
            self.empty_results,
            self.cost.pages_read,
            self.cost.total(),
            crate::stats::millis(self.wall),
        );
        if let Some(b) = &self.buf {
            s.push_str(&format!(" | {b}"));
        }
        s
    }
}

/// Runs `queries` through `p`, accumulating cost, wall time, and the
/// processor's buffer-pool delta.
pub fn run_batch(p: &dyn QueryProcessor, queries: &[Query]) -> BatchStats {
    run_batch_iter(p, queries.iter())
}

/// [`run_batch`] over any query sequence — shared by the sequential
/// entry point and the striped parallel workers.
fn run_batch_iter<'q>(
    p: &dyn QueryProcessor,
    queries: impl Iterator<Item = &'q Query>,
) -> BatchStats {
    let before = p.buffer().map(|b| b.stats());
    let mut stats = BatchStats::default();
    let start = Instant::now();
    for q in queries {
        let out = p.eval(q);
        stats.queries += 1;
        stats.result_nodes += out.nodes.len();
        if out.nodes.is_empty() {
            stats.empty_results += 1;
        }
        stats.cost += out.cost;
    }
    stats.wall = start.elapsed();
    stats.buf = match (p.buffer(), before) {
        (Some(b), Some(s0)) => Some(b.stats() - s0),
        _ => None,
    };
    stats
}

/// Runs `queries` across `threads` worker threads sharing the processor
/// immutably (processors hold only shared references to the index and
/// data; the buffer pool behind [`QueryProcessor::buffer`] is shared by
/// all workers through its internal lock). Logical costs are summed;
/// wall time is the batch's span, so speed-up shows directly against
/// [`run_batch`]; the buffer delta covers the whole batch.
pub fn run_batch_parallel(
    p: &(dyn QueryProcessor + Sync),
    queries: &[Query],
    threads: usize,
) -> BatchStats {
    let threads = threads.max(1).min(queries.len().max(1));
    let before = p.buffer().map(|b| b.stats());
    let start = Instant::now();
    // Striped (round-robin) assignment: worker t takes queries t, t+T,
    // t+2T, … Contiguous `chunks()` handed the whole remainder to the
    // last worker (with 100 queries on 8 threads, chunk = ⌈100/8⌉ = 13,
    // so worker 7 got 9 while the rest got 13 — and with pathological
    // ratios a worker could idle entirely). Stripes differ in size by at
    // most one query, and interleave hot/cold queries across workers.
    let partials: Vec<BatchStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || run_batch_iter(p, queries.iter().skip(t).step_by(threads)))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });
    let mut stats = BatchStats::default();
    for part in partials {
        stats.queries += part.queries;
        stats.result_nodes += part.result_nodes;
        stats.empty_results += part.empty_results;
        stats.cost += part.cost;
    }
    stats.wall = start.elapsed();
    // Per-worker deltas overlap on the shared pool; the batch-level
    // delta is the authoritative account.
    stats.buf = match (p.buffer(), before) {
        (Some(b), Some(s0)) => Some(b.stats() - s0),
        _ => None,
    };
    stats
}

/// Queries served against one index generation during an adaptive run.
#[derive(Debug, Clone, Default)]
pub struct GenerationRow {
    /// The snapshot generation these queries ran on.
    pub generation: u64,
    /// Queries answered on this generation.
    pub queries: usize,
    /// Result nodes across those queries.
    pub result_nodes: usize,
    /// Wall time spent on this generation.
    pub wall: Duration,
}

/// Result of an adaptive run: batch totals plus the per-generation
/// breakdown and wall-latency percentiles the serving layer reports.
#[derive(Debug, Clone, Default)]
pub struct AdaptiveStats {
    /// Batch totals (cost, wall, buffer delta) over the whole run.
    pub batch: BatchStats,
    /// Per-generation breakdown, in generation order.
    pub per_generation: Vec<GenerationRow>,
    /// Snapshot swaps observed while serving (last − first generation).
    pub swaps_observed: u64,
    /// Median per-query wall latency.
    pub p50: Duration,
    /// 99th-percentile per-query wall latency.
    pub p99: Duration,
}

impl AdaptiveStats {
    /// One line per generation: `gen k: queries, result nodes, wall ms`.
    pub fn generation_lines(&self) -> Vec<String> {
        self.per_generation
            .iter()
            .map(|r| {
                format!(
                    "gen {}: {} queries, {} result nodes, {:.1}ms",
                    r.generation,
                    r.queries,
                    r.result_nodes,
                    crate::stats::millis(r.wall)
                )
            })
            .collect()
    }

    /// Headline: swaps, generations served, and latency percentiles.
    pub fn summary(&self) -> String {
        format!(
            "{} | {} swaps observed, {} generations served | p50={:.2}ms p99={:.2}ms",
            self.batch.summary(),
            self.swaps_observed,
            self.per_generation.len(),
            crate::stats::millis(self.p50),
            crate::stats::millis(self.p99),
        )
    }
}

/// The label path an adaptive run records for `q`, if it is a
/// path-shaped query the monitor's support counting understands
/// (ancestor-descendant queries are not label paths and are served
/// without being recorded).
pub fn recordable_path(q: &Query) -> Option<LabelPath> {
    match q {
        Query::PartialPath { labels } | Query::ValuePath { labels, .. } => {
            Some(LabelPath::new(labels.clone()))
        }
        Query::AncestorDescendant { .. } => None,
    }
}

/// The mixed read/record/adapt driver: serves `queries` through the
/// current [`IndexCell`] snapshot, records each one into the monitor,
/// nudges the refresher when the monitor's policy says a refresh is
/// due, and re-arms its processor whenever a new generation is
/// published — all while queries keep answering (the rebuild happens in
/// the refresher thread, never here).
///
/// Each generation's processor carries the generation as a buffer-pool
/// tag, so post-swap extents fault in cold instead of phantom-hitting
/// stale cached objects; the pool (and its stats) remains shared, and
/// `batch.buf` is the exact delta for this run.
pub fn run_adaptive(
    g: &XmlGraph,
    table: &DataTable,
    cell: &IndexCell,
    monitor: &Mutex<WorkloadMonitor>,
    refresher: &Refresher,
    queries: &[Query],
    buf: &BufferHandle,
) -> AdaptiveStats {
    let before = buf.stats();
    let start = Instant::now();
    let mut batch = BatchStats::default();
    let mut rows: Vec<GenerationRow> = Vec::new();
    let mut latencies: Vec<Duration> = Vec::with_capacity(queries.len());
    let first_generation = cell.generation();
    let mut i = 0usize;
    while i < queries.len() {
        let snap = cell.snapshot();
        let generation = snap.generation();
        // The processor plans against the snapshot's published
        // statistics — the planner never touches the live index at plan
        // time while the refresher swaps generations underneath.
        let p = ApexProcessor::with_buffer_tagged(g, snap.index(), table, buf.clone(), generation)
            .with_plan_stats(snap.stats());
        let mut row = GenerationRow {
            generation,
            ..GenerationRow::default()
        };
        let gen_start = Instant::now();
        while i < queries.len() && cell.generation() == generation {
            let q = &queries[i];
            let q_start = Instant::now();
            let out = p.eval(q);
            latencies.push(q_start.elapsed());
            row.queries += 1;
            row.result_nodes += out.nodes.len();
            batch.queries += 1;
            batch.result_nodes += out.nodes.len();
            if out.nodes.is_empty() {
                batch.empty_results += 1;
            }
            batch.cost += out.cost;
            let path = recordable_path(q);
            if path.is_some() || out.plan.is_some() {
                let due = {
                    let mut m = monitor.lock().unwrap_or_else(|p| p.into_inner());
                    // Close the loop: predicted vs actual per-operator
                    // cost of this query's plan feeds the monitor.
                    if let Some(rep) = &out.plan {
                        m.record_plan(rep.feedback());
                    }
                    if let Some(path) = path {
                        m.record(path);
                        m.refresh_due(g, snap.index())
                    } else {
                        false
                    }
                };
                if due {
                    refresher.request_refresh();
                }
            }
            i += 1;
        }
        row.wall = gen_start.elapsed();
        if row.queries > 0 {
            match rows.last_mut() {
                // A publish can land between taking the snapshot and the
                // first query; fold re-runs of a generation together.
                Some(last) if last.generation == generation => {
                    last.queries += row.queries;
                    last.result_nodes += row.result_nodes;
                    last.wall += row.wall;
                }
                _ => rows.push(row),
            }
        }
    }
    batch.wall = start.elapsed();
    batch.buf = Some(buf.stats() - before);
    latencies.sort_unstable();
    AdaptiveStats {
        batch,
        per_generation: rows,
        swaps_observed: cell.generation() - first_generation,
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveProcessor;
    use apex_storage::{DataTable, PageModel};
    use xmlgraph::builder::moviedb;
    use xmlgraph::LabelPath;

    fn queries_n(g: &xmlgraph::XmlGraph, n: usize) -> Vec<Query> {
        ["actor.name", "movie.title", "name", "title", "movie"]
            .iter()
            .cycle()
            .take(n)
            .map(|s| Query::PartialPath {
                labels: LabelPath::parse(g, s).unwrap().0,
            })
            .collect()
    }

    fn queries(g: &xmlgraph::XmlGraph) -> Vec<Query> {
        queries_n(g, 40)
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = moviedb();
        let table = DataTable::build(&g, PageModel::default());
        // 43 queries on 7 threads: an uneven ratio (43 = 6×7 + 1) where
        // the old contiguous chunking (chunk = ⌈43/7⌉ = 7) would have
        // left the last worker a single query while others took 7.
        let qs = queries_n(&g, 43);
        // Fresh processors (= fresh pools): the pool is cross-query, so
        // reusing one processor would make the second batch all hits.
        let seq = run_batch(&NaiveProcessor::new(&g, &table), &qs);
        let par = run_batch_parallel(&NaiveProcessor::new(&g, &table), &qs, 7);
        assert_eq!(seq.queries, par.queries);
        assert_eq!(seq.result_nodes, par.result_nodes);
        assert_eq!(seq.empty_results, par.empty_results);
        // With an unbounded shared pool every distinct object misses
        // exactly once regardless of schedule, so aggregate costs (and
        // their per-operator attribution) are schedule-independent.
        assert_eq!(seq.cost, par.cost);
        let (sb, pb) = (seq.buf.unwrap(), par.buf.unwrap());
        assert_eq!(sb.misses, pb.misses);
        assert_eq!(sb.hits, pb.hits);
        assert!(sb.hits > 0, "batch with repeats must hit the pool");
    }

    #[test]
    fn striping_balances_uneven_ratios() {
        // The stripe sizes of any (queries, threads) ratio differ by at
        // most one — the invariant the round-robin switch establishes.
        for (n, threads) in [(43usize, 7usize), (100, 8), (5, 64), (1, 3), (17, 4)] {
            let spawned = threads.max(1).min(n.max(1));
            let sizes: Vec<usize> = (0..spawned)
                .map(|t| (0..n).skip(t).step_by(spawned).count())
                .collect();
            let (min, max) = (
                sizes.iter().copied().min().unwrap_or(0),
                sizes.iter().copied().max().unwrap_or(0),
            );
            assert!(max - min <= 1, "{n} queries / {threads} threads: {sizes:?}");
            assert_eq!(sizes.iter().sum::<usize>(), n);
            assert!(min >= 1, "no worker may idle: {sizes:?}");
        }
    }

    #[test]
    fn parallel_handles_degenerate_thread_counts() {
        let g = moviedb();
        let table = DataTable::build(&g, PageModel::default());
        let p = NaiveProcessor::new(&g, &table);
        let queries = vec![Query::PartialPath {
            labels: LabelPath::parse(&g, "title").unwrap().0,
        }];
        for threads in [0, 1, 8, 64] {
            let s = run_batch_parallel(&p, &queries, threads);
            assert_eq!(s.queries, 1);
        }
    }

    #[test]
    fn batch_reports_buffer_delta_and_summary_hit_rate() {
        let g = moviedb();
        let table = DataTable::build(&g, PageModel::default());
        let p = NaiveProcessor::new(&g, &table);
        let qs = queries(&g);
        let first = run_batch(&p, &qs);
        let b = first.buf.expect("naive exposes its pool");
        assert!(b.misses > 0);
        assert!(first.summary().contains("hit_rate"));
        // A second batch over the same processor is all hits — the delta
        // accounting must not re-report the first batch's misses.
        let second = run_batch(&p, &qs);
        let b2 = second.buf.unwrap();
        assert_eq!(b2.misses, 0);
        assert!(b2.hits > 0);
    }

    #[test]
    fn adaptive_run_serves_across_generations() {
        use apex::{Apex, RefreshPolicy};
        use std::sync::Arc;

        let g = Arc::new(moviedb());
        let table = DataTable::build(&g, PageModel::default());
        let cell = Arc::new(IndexCell::new(Apex::build_initial(&g)));
        let monitor = Arc::new(Mutex::new(WorkloadMonitor::new(
            100,
            0.3,
            RefreshPolicy::EveryN(10),
        )));
        let refresher = Refresher::spawn(Arc::clone(&g), Arc::clone(&cell), Arc::clone(&monitor))
            .expect("spawn refresher");
        let buf = BufferHandle::unbounded();

        // Phase 1: a hot actor.name workload. The EveryN(10) policy
        // requests a refresh on the 10th recorded query; wait_idle
        // between phases makes the generation advance deterministic.
        let qs1 = vec![
            Query::PartialPath {
                labels: LabelPath::parse(&g, "actor.name").unwrap().0,
            };
            12
        ];
        let s1 = run_adaptive(&g, &table, &cell, &monitor, &refresher, &qs1, &buf);
        assert_eq!(s1.batch.queries, 12);
        refresher.wait_idle();
        assert!(cell.generation() >= 1, "phase 1 must publish");
        assert!(cell
            .snapshot()
            .index()
            .required_paths(&g)
            .contains(&"actor.name".to_string()));

        // Phase 2: workload shifts to director.movie.
        let qs2 = vec![
            Query::PartialPath {
                labels: LabelPath::parse(&g, "director.movie").unwrap().0,
            };
            12
        ];
        let s2 = run_adaptive(&g, &table, &cell, &monitor, &refresher, &qs2, &buf);
        refresher.wait_idle();
        let g2 = cell.generation();
        assert!(g2 >= 2, "phase 2 must publish again (gen {g2})");

        // Phase 3 starts on the newest generation published so far.
        // Its own 10 recorded queries re-arm the EveryN(10) policy, so
        // a further swap may land while (or right after) the batch
        // runs — compare against the generation at entry, not the live
        // cell, which can already be ahead.
        let gen3 = cell.generation();
        let qs3 = queries_n(&g, 10);
        let s3 = run_adaptive(&g, &table, &cell, &monitor, &refresher, &qs3, &buf);
        assert_eq!(s3.per_generation.first().unwrap().generation, gen3);
        for r in &s3.per_generation {
            assert!(r.generation >= gen3, "served on a stale generation");
        }

        // Every query is accounted to exactly one generation row.
        for s in [&s1, &s2, &s3] {
            let per_gen: usize = s.per_generation.iter().map(|r| r.queries).sum();
            assert_eq!(per_gen, s.batch.queries);
            assert!(s.batch.buf.is_some());
            assert!(s.p50 <= s.p99);
            assert!(!s.summary().is_empty());
            assert_eq!(s.generation_lines().len(), s.per_generation.len());
        }
        let stats = refresher.shutdown();
        assert!(stats.refreshes >= 2);
        assert_eq!(stats.refreshes, cell.generation());
    }
}
