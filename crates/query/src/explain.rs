//! Query-plan explanation for the APEX processor.
//!
//! `EXPLAIN` support mirrors the §6.1 evaluation strategy: a QTYPE1 plan
//! shows how the query path was segmented against `H_APEX` (the
//! decreasing-`j` lookup loop), which class nodes feed each segment, and
//! whether the query is answered *directly* from one extent union (the
//! whole path is a required path) or needs a join chain. Useful for
//! understanding why a particular `minSup` setting helps a workload.

use apex::Apex;
use apex_storage::bufmgr::BufferStats;
use apex_storage::KernelPolicy;
use xmlgraph::{LabelId, XmlGraph};

use crate::ast::Query;
use crate::plan::{JoinOrderPolicy, Planner};

/// One segment of a QTYPE1 plan: the query prefix `labels[..prefix_len]`
/// resolved through `H_APEX`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentPlan {
    /// Length of the query prefix this segment covers.
    pub prefix_len: usize,
    /// Number of `G_APEX` class nodes whose extents are unioned.
    pub classes: usize,
    /// Total extent pairs behind those classes.
    pub extent_pairs: usize,
    /// True if the prefix is itself a required path (exact — terminates
    /// the segmentation loop).
    pub exact: bool,
    /// Predicted semijoin kernel for joining into this segment (the
    /// adaptive policy applied to the previous segment's pair count and
    /// this segment's largest extent). `None` for the seed segment,
    /// which is unioned, not joined.
    pub kernel: Option<&'static str>,
}

/// An explained plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Plan {
    /// QTYPE1/QTYPE3: either answered directly off one segment
    /// (`segments.len() == 1`) or via a join chain.
    PathJoin {
        /// Segments in evaluation order (exact seed first).
        segments: Vec<SegmentPlan>,
        /// Number of semijoin steps to perform.
        joins: usize,
        /// QTYPE3 only: the value predicate requiring table probes.
        value_filter: bool,
        /// Join order chosen by the cost-based planner
        /// ([`crate::plan::Planner`]): `forward` or `backward(r)`.
        order: String,
        /// The planner's predicted total cost for the chosen order.
        predicted_total: u64,
    },
    /// QTYPE2: dataflow from the `first`-labeled classes.
    AncestorDescendant {
        /// Number of seed classes (incoming label = `l_i`).
        start_classes: usize,
        /// Pairs in the seed extents.
        seed_pairs: usize,
    },
    /// The query references a label unknown to the index: empty result.
    Empty,
}

impl Plan {
    /// True if no joins and no graph traversal are needed (single exact
    /// segment — the "direct answer" case the paper optimizes for).
    pub fn is_direct(&self) -> bool {
        matches!(
            self,
            Plan::PathJoin { segments, joins: 0, .. } if segments.len() == 1
        )
    }

    /// Human-readable rendering, naming the physical operators of the
    /// shared execution layer ([`crate::exec`]) the plan runs through.
    pub fn render(&self, g: &XmlGraph, q: &Query) -> String {
        let mut s = format!("EXPLAIN {}\n", q.render(g));
        match self {
            Plan::Empty => s.push_str("  -> empty (unknown label)\n"),
            Plan::AncestorDescendant {
                start_classes,
                seed_pairs,
            } => {
                s.push_str(&format!(
                    "  -> dataflow from {start_classes} class node(s), {seed_pairs} seed pair(s)\n"
                ));
                s.push_str(
                    "  -> Semijoin(merge|gallop|block-skip, adaptive) per G_APEX edge until fixpoint\n",
                );
            }
            Plan::PathJoin {
                segments,
                joins,
                value_filter,
                order,
                predicted_total,
            } => {
                for seg in segments {
                    s.push_str(&format!(
                        "  -> prefix[..{}]: {} class(es), {} pair(s){}{}\n",
                        seg.prefix_len,
                        seg.classes,
                        seg.extent_pairs,
                        if seg.exact { " [exact]" } else { "" },
                        match seg.kernel {
                            Some(k) => format!(" [semijoin: {k}]"),
                            None => String::new(),
                        }
                    ));
                }
                if *joins == 0 {
                    s.push_str("  -> ExtentUnion: direct answer from extents (no joins)\n");
                } else {
                    s.push_str(&format!(
                        "  -> MultiwayJoin: ExtentUnion seed + {joins} Semijoin step(s), kernels as above\n"
                    ));
                    s.push_str(&format!(
                        "  -> join order: {order} (cost-based, predicted total {predicted_total})\n"
                    ));
                }
                if *value_filter {
                    s.push_str("  -> DataProbe value filter\n");
                }
            }
        }
        s
    }

    /// [`Plan::render`] followed by the cross-query buffer pool's state,
    /// so `explain` output shows how much of the plan's I/O the pool
    /// would absorb.
    pub fn render_with_buffer(&self, g: &XmlGraph, q: &Query, stats: &BufferStats) -> String {
        let mut s = self.render(g, q);
        s.push_str(&format!("  -> buffer pool: {stats}\n"));
        s
    }
}

/// Produces the plan APEX would execute for `q` (without executing it).
pub fn explain_apex(apex: &Apex, q: &Query) -> Plan {
    match q {
        Query::AncestorDescendant { first, .. } => {
            let seg = apex.segment_nodes(&[*first]);
            if seg.xnodes.is_empty() {
                return Plan::Empty;
            }
            let seed_pairs = seg.xnodes.iter().map(|&x| apex.extent(x).len()).sum();
            Plan::AncestorDescendant {
                start_classes: seg.xnodes.len(),
                seed_pairs,
            }
        }
        Query::PartialPath { labels } => plan_path(apex, labels, false),
        Query::ValuePath { labels, .. } => plan_path(apex, labels, true),
    }
}

fn plan_path(apex: &Apex, labels: &[LabelId], value_filter: bool) -> Plan {
    let n = labels.len();
    let mut raw = Vec::new();
    let mut exact_found = false;
    for j in (1..=n).rev() {
        let seg = apex.segment_nodes(&labels[..j]);
        if seg.exact {
            exact_found = true;
        }
        raw.push((j, seg));
        if exact_found {
            break;
        }
    }
    if !exact_found {
        return Plan::Empty;
    }
    raw.reverse(); // exact seed first — evaluation order
    let mut segments: Vec<SegmentPlan> = Vec::new();
    for (i, (j, seg)) in raw.iter().enumerate() {
        let extent_pairs = seg.xnodes.iter().map(|&x| apex.extent(x).len()).sum();
        // Predict the join kernel from the previous segment's pair count
        // (an upper bound on the ends flowing in) against this segment's
        // largest extent — the same rule the executor applies.
        let kernel = if i == 0 {
            None
        } else {
            let est_ends = segments[i - 1].extent_pairs;
            seg.xnodes
                .iter()
                .max_by_key(|&&x| apex.extent(x).len())
                .map(|&x| {
                    KernelPolicy::Adaptive
                        .choose(est_ends, apex.extent(x))
                        .name()
                })
        };
        segments.push(SegmentPlan {
            prefix_len: *j,
            classes: seg.xnodes.len(),
            extent_pairs,
            exact: seg.exact,
            kernel,
        });
    }
    let joins = segments.len() - 1;
    // Ask the cost-based planner which join order it would pick for
    // this chain (over live extent statistics — `explain` has no
    // snapshot), so the rendered plan matches what execution runs.
    let planned = Planner::new(apex, None, KernelPolicy::Adaptive, 0)
        .plan_path(labels, JoinOrderPolicy::Planned);
    Plan::PathJoin {
        segments,
        joins,
        value_filter,
        order: planned.order.label(),
        predicted_total: planned.predicted_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex::Workload;
    use xmlgraph::builder::moviedb;

    fn figure2() -> (XmlGraph, Apex) {
        let g = moviedb();
        let mut idx = Apex::build_initial(&g);
        let wl = Workload::parse(&g, &["actor.name"]).unwrap();
        idx.refine(&g, &wl, 0.5);
        (g, idx)
    }

    #[test]
    fn required_path_is_direct() {
        let (g, idx) = figure2();
        let q = Query::parse(&g, "//actor/name").unwrap();
        let plan = explain_apex(&idx, &q);
        assert!(plan.is_direct(), "{plan:?}");
        let rendered = plan.render(&g, &q);
        assert!(rendered.contains("direct answer"));
        assert!(rendered.contains("[exact]"));
    }

    #[test]
    fn non_required_path_needs_joins() {
        let (g, idx) = figure2();
        let q = Query::parse(&g, "//director/movie/title").unwrap();
        let plan = explain_apex(&idx, &q);
        assert!(!plan.is_direct());
        let Plan::PathJoin {
            segments,
            joins,
            value_filter,
            order,
            ..
        } = &plan
        else {
            panic!("expected path plan")
        };
        assert_eq!(*joins, segments.len() - 1);
        assert!(*joins >= 1);
        assert!(!value_filter);
        // Seed (first segment) is the exact one.
        assert!(segments[0].exact);
        assert!(segments.iter().skip(1).all(|s| !s.exact));
        // The seed is unioned; every join stage shows its predicted kernel.
        assert!(segments[0].kernel.is_none());
        assert!(segments.iter().skip(1).all(|s| s.kernel.is_some()));
        let rendered = plan.render(&g, &q);
        assert!(rendered.contains("[semijoin: "), "{rendered}");
        // The cost-based planner's chosen join order is part of the plan.
        assert!(
            order.as_str() == "forward" || order.starts_with("backward("),
            "{order}"
        );
        assert!(rendered.contains("join order: "), "{rendered}");
    }

    #[test]
    fn value_path_plans_table_filter() {
        let (g, idx) = figure2();
        let q = Query::parse(&g, "//title[text() = \"Star Wars\"]").unwrap();
        let plan = explain_apex(&idx, &q);
        let Plan::PathJoin { value_filter, .. } = &plan else {
            panic!()
        };
        assert!(value_filter);
        assert!(plan.render(&g, &q).contains("value filter"));
    }

    #[test]
    fn render_with_buffer_appends_pool_state() {
        use crate::apex_qp::ApexProcessor;
        use crate::batch::QueryProcessor;
        use apex_storage::{DataTable, PageModel};
        let (g, idx) = figure2();
        let table = DataTable::build(&g, PageModel::default());
        let qp = ApexProcessor::new(&g, &idx, &table);
        let q = Query::parse(&g, "//actor/name").unwrap();
        let _ = qp.eval(&q);
        let stats = qp.buffer().unwrap().stats();
        let s = explain_apex(&idx, &q).render_with_buffer(&g, &q, &stats);
        assert!(s.contains("buffer pool"));
        assert!(s.contains("hit_rate"));
    }

    #[test]
    fn executed_plan_report_shows_predicted_and_actual() {
        // The `explain` tail: evaluating the query yields a PlanReport
        // whose rendering puts predicted and actual cost side by side
        // with the mispredict ratio.
        use crate::apex_qp::ApexProcessor;
        use crate::batch::QueryProcessor;
        use apex_storage::{DataTable, PageModel};
        let (g, idx) = figure2();
        let table = DataTable::build(&g, PageModel::default());
        let qp = ApexProcessor::new(&g, &idx, &table);
        let q = Query::parse(&g, "//director/movie/title").unwrap();
        let out = qp.eval(&q);
        let rep = out.plan.expect("apex plans every path query");
        let rendered = rep.render();
        assert!(rendered.contains("pred.work"), "{rendered}");
        assert!(rendered.contains("act.work"), "{rendered}");
        assert!(rendered.contains("mispredict ratio"), "{rendered}");
        assert!(!rep.forecasts.is_empty());
    }

    #[test]
    fn qtype2_plan_counts_seeds() {
        let (g, idx) = figure2();
        let q = Query::parse(&g, "//movie//name").unwrap();
        let plan = explain_apex(&idx, &q);
        let Plan::AncestorDescendant {
            start_classes,
            seed_pairs,
        } = plan
        else {
            panic!()
        };
        assert!(start_classes >= 1);
        // T(movie) = {<0,14>, <7,8>, <9,8>, <16,14>}.
        assert_eq!(seed_pairs, 4);
    }

    #[test]
    fn plan_matches_execution_cost_shape() {
        // A direct plan must execute with zero join work; a join plan
        // with nonzero join work.
        use crate::apex_qp::ApexProcessor;
        use crate::batch::QueryProcessor;
        use apex_storage::{DataTable, PageModel};
        let (g, idx) = figure2();
        let table = DataTable::build(&g, PageModel::default());
        let qp = ApexProcessor::new(&g, &idx, &table);

        let direct = Query::parse(&g, "//actor/name").unwrap();
        assert!(explain_apex(&idx, &direct).is_direct());
        assert_eq!(qp.eval(&direct).cost.join_work, 0);

        let joined = Query::parse(&g, "//director/movie/title").unwrap();
        assert!(!explain_apex(&idx, &joined).is_direct());
        assert!(qp.eval(&joined).cost.join_work > 0);
    }
}
