//! Latency statistics shared by every layer that reports percentiles:
//! the adaptive batch driver ([`crate::batch::run_adaptive`]), the bench
//! harness's tables and `BENCH_*.json` rows, and the network load
//! generator. One tested implementation — nearest-rank on an ascending
//! list plus the unit conversions — instead of a copy per reporter.

use std::time::Duration;

/// Nearest-rank percentile of an ascending latency list: `q` in
/// `[0, 1]`, `q = 0.5` the median, `q = 0.99` the p99. Returns
/// [`Duration::ZERO`] for an empty list; `q` outside `[0, 1]` clamps to
/// the extreme elements.
pub fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// `d` in microseconds, as the float the tables and JSON rows print.
pub fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// `d` in milliseconds, as the float the tables and JSON rows print.
pub fn millis(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(list: &[u64]) -> Vec<Duration> {
        list.iter().map(|&v| Duration::from_micros(v)).collect()
    }

    #[test]
    fn empty_list_is_zero() {
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
    }

    #[test]
    fn single_element_is_every_percentile() {
        let l = us(&[7]);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(percentile(&l, q), Duration::from_micros(7));
        }
    }

    #[test]
    fn nearest_rank_picks_expected_elements() {
        let l = us(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(percentile(&l, 0.0), Duration::from_micros(10));
        // (10 - 1) * 0.5 = 4.5, rounds to index 5 (ties round up).
        assert_eq!(percentile(&l, 0.5), Duration::from_micros(60));
        assert_eq!(percentile(&l, 1.0), Duration::from_micros(100));
        // (10 - 1) * 0.99 = 8.91 → index 9.
        assert_eq!(percentile(&l, 0.99), Duration::from_micros(100));
    }

    #[test]
    fn out_of_range_quantiles_clamp() {
        let l = us(&[1, 2, 3]);
        assert_eq!(percentile(&l, -1.0), Duration::from_micros(1));
        assert_eq!(percentile(&l, 2.0), Duration::from_micros(3));
    }

    #[test]
    fn percentiles_are_monotone_in_q() {
        let l = us(&[3, 1, 4, 1, 5, 9, 2, 6]);
        let mut sorted = l.clone();
        sorted.sort_unstable();
        let mut prev = Duration::ZERO;
        for i in 0..=100 {
            let p = percentile(&sorted, i as f64 / 100.0);
            assert!(p >= prev, "p{i} regressed");
            prev = p;
        }
    }

    #[test]
    fn unit_conversions() {
        let d = Duration::from_micros(1_500);
        assert!((micros(d) - 1_500.0).abs() < 1e-9);
        assert!((millis(d) - 1.5).abs() < 1e-12);
    }
}
