//! Direct graph-traversal evaluator — the correctness oracle.
//!
//! Evaluates queries straight over `G_XML` with no index. Every other
//! processor is tested for result equality against this one. It also
//! accounts a coarse cost (edges scanned) so it can serve as a
//! "no index" baseline in ablations.

use apex_storage::{Cost, DataTable, PageModel};
use xmlgraph::{LabelId, NodeId, XmlGraph};

use crate::ast::Query;
use crate::batch::{QueryOutput, QueryProcessor};

/// The naive evaluator.
pub struct NaiveProcessor<'a> {
    g: &'a XmlGraph,
    table: &'a DataTable,
    /// All edges grouped by label: `by_label[l] = (from, to)*`.
    by_label: Vec<Vec<(NodeId, NodeId)>>,
    pages: PageModel,
}

impl<'a> NaiveProcessor<'a> {
    /// Builds the evaluator (one pass to group edges by label).
    pub fn new(g: &'a XmlGraph, table: &'a DataTable) -> Self {
        let mut by_label: Vec<Vec<(NodeId, NodeId)>> = vec![Vec::new(); g.label_count()];
        for (from, l, to) in g.edges() {
            by_label[l.idx()].push((from, to));
        }
        NaiveProcessor { g, table, by_label, pages: PageModel::default() }
    }

    /// Nodes reached by `//l_1/…/l_n`: start from every `l_1` edge and
    /// follow the remaining labels.
    fn eval_path(&self, labels: &[LabelId], cost: &mut Cost) -> Vec<NodeId> {
        let first = &self.by_label[labels[0].idx()];
        cost.extent_pairs += first.len() as u64;
        let mut frontier: Vec<NodeId> = first.iter().map(|&(_, to)| to).collect();
        frontier.sort_unstable();
        frontier.dedup();
        for &l in &labels[1..] {
            let mut next = Vec::new();
            for &v in &frontier {
                for e in self.g.out_edges(v) {
                    cost.extent_pairs += 1;
                    if e.label == l {
                        next.push(e.to);
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        frontier
    }

    /// `//l_i//l_j`: BFS from the targets of `l_i` edges; collect targets
    /// of `l_j` edges whose source is reachable.
    fn eval_anc_desc(&self, first: LabelId, last: LabelId, cost: &mut Cost) -> Vec<NodeId> {
        let starts = &self.by_label[first.idx()];
        cost.extent_pairs += starts.len() as u64;
        let mut reachable = vec![false; self.g.node_count()];
        let mut stack: Vec<NodeId> = Vec::new();
        for &(_, to) in starts {
            if !reachable[to.idx()] {
                reachable[to.idx()] = true;
                stack.push(to);
            }
        }
        let mut out = Vec::new();
        while let Some(v) = stack.pop() {
            for e in self.g.out_edges(v) {
                cost.extent_pairs += 1;
                if e.label == last {
                    out.push(e.to);
                }
                if !reachable[e.to.idx()] {
                    reachable[e.to.idx()] = true;
                    stack.push(e.to);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl QueryProcessor for NaiveProcessor<'_> {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn eval(&self, q: &Query) -> QueryOutput {
        let mut cost = Cost::new();
        let nodes = match q {
            Query::PartialPath { labels } => self.eval_path(labels, &mut cost),
            Query::AncestorDescendant { first, last } => {
                self.eval_anc_desc(*first, *last, &mut cost)
            }
            Query::ValuePath { labels, value } => {
                let mut nodes = self.eval_path(labels, &mut cost);
                nodes.retain(|&n| self.table.value(n) == Some(value.as_str()));
                nodes
            }
        };
        // Without an index, every scanned edge is a data-page touch
        // (8 bytes per adjacency entry, no reuse across frontiers).
        cost.pages_read += self.pages.pages_for_bytes(cost.extent_pairs as usize * 8).max(1);
        QueryOutput { nodes, cost }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_storage::PageModel;
    use xmlgraph::builder::moviedb;
    use xmlgraph::LabelPath;

    fn setup(g: &XmlGraph) -> (DataTable, Vec<(String, Vec<u32>)>) {
        let t = DataTable::build(g, PageModel::default());
        (t, vec![])
    }

    #[test]
    fn qtype1_on_moviedb() {
        let g = moviedb();
        let (t, _) = setup(&g);
        let p = NaiveProcessor::new(&g, &t);
        let q = Query::PartialPath {
            labels: LabelPath::parse(&g, "actor.name").unwrap().0,
        };
        let out = p.eval(&q);
        assert_eq!(out.nodes, vec![NodeId(3), NodeId(5)]);
    }

    #[test]
    fn qtype1_with_dereference() {
        let g = moviedb();
        let (t, _) = setup(&g);
        let p = NaiveProcessor::new(&g, &t);
        let q = Query::PartialPath {
            labels: LabelPath::parse(&g, "@movie.movie.title").unwrap().0,
        };
        let out = p.eval(&q);
        // @movie(9)=>movie(8)->title(10); @movie(16)=>movie(14)->title(17).
        assert_eq!(out.nodes, vec![NodeId(10), NodeId(17)]);
    }

    #[test]
    fn qtype2_on_moviedb() {
        let g = moviedb();
        let (t, _) = setup(&g);
        let p = NaiveProcessor::new(&g, &t);
        let movie = g.label_id("movie").unwrap();
        let name = g.label_id("name").unwrap();
        let out = p.eval(&Query::AncestorDescendant { first: movie, last: name });
        // Movie edges land on 8 and 14. Reachable name edges: 12->13 (via
        // the director child of movie 14 and via @director(6) of movie 8)
        // and 2->3 (via @actor(15) of movie 14). Names 5 and 11 hang off
        // actor 4 / director 7, which no movie reaches.
        assert_eq!(out.nodes, vec![NodeId(3), NodeId(13)]);
    }

    #[test]
    fn qtype3_on_moviedb() {
        let g = moviedb();
        let (t, _) = setup(&g);
        let p = NaiveProcessor::new(&g, &t);
        let q = Query::ValuePath {
            labels: LabelPath::parse(&g, "title").unwrap().0,
            value: "Star Wars".into(),
        };
        let out = p.eval(&q);
        assert_eq!(out.nodes, vec![NodeId(10)]);
    }

    #[test]
    fn unmatched_path_is_empty() {
        let g = moviedb();
        let (t, _) = setup(&g);
        let p = NaiveProcessor::new(&g, &t);
        let q = Query::PartialPath {
            labels: LabelPath::parse(&g, "title.title").unwrap().0,
        };
        assert!(p.eval(&q).nodes.is_empty());
    }
}
