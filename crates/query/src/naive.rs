//! Direct graph-traversal evaluator — the correctness oracle.
//!
//! Evaluates queries straight over `G_XML` with no index. Every other
//! processor is tested for result equality against this one. It also
//! accounts a cost (edges scanned, pages touched through the shared
//! buffer pool) so it can serve as a "no index" baseline in ablations:
//! the label posting lists and node adjacency lists are modeled as
//! page-packed arrays ([`Space::LabelPosting`] / [`Space::GraphAdjacency`])
//! scanned through [`crate::exec::ExtentScan`].

use apex_storage::bufmgr::{BufferHandle, Space};
use apex_storage::DataTable;
use xmlgraph::{LabelId, NodeId, XmlGraph};

use crate::ast::Query;
use crate::batch::{QueryOutput, QueryProcessor};
use crate::exec::{self, DataProbe, ExecContext, ExtentScan};

/// The naive evaluator.
pub struct NaiveProcessor<'a> {
    g: &'a XmlGraph,
    table: &'a DataTable,
    /// All edges grouped by label: `by_label[l] = (from, to)*`.
    by_label: Vec<Vec<(NodeId, NodeId)>>,
    buf: BufferHandle,
    /// Byte offsets of the page-packed posting lists (8 bytes/pair):
    /// label `l`'s list occupies `posting_off[l]..posting_off[l+1]`.
    posting_off: Vec<u64>,
    /// Byte offsets of the page-packed adjacency lists (8 bytes/edge).
    adj_off: Vec<u64>,
}

impl<'a> NaiveProcessor<'a> {
    /// Builds the evaluator with a private (unbounded) buffer pool.
    pub fn new(g: &'a XmlGraph, table: &'a DataTable) -> Self {
        Self::with_buffer(g, table, BufferHandle::unbounded())
    }

    /// Builds the evaluator charging against a shared buffer pool (one
    /// pass to group edges by label).
    pub fn with_buffer(g: &'a XmlGraph, table: &'a DataTable, buf: BufferHandle) -> Self {
        let mut by_label: Vec<Vec<(NodeId, NodeId)>> = vec![Vec::new(); g.label_count()];
        for (from, l, to) in g.edges() {
            by_label[l.idx()].push((from, to));
        }
        let posting_off = exec::record_layout(by_label.iter().map(|v| v.len() * 8));
        let adj_off = exec::record_layout(
            (0..g.node_count()).map(|i| g.out_edges(NodeId(i as u32)).len() * 8),
        );
        NaiveProcessor {
            g,
            table,
            by_label,
            buf,
            posting_off,
            adj_off,
        }
    }

    /// Scans label `l`'s posting list.
    fn scan_postings(&self, l: LabelId, ctx: &mut ExecContext<'_>) -> &[(NodeId, NodeId)] {
        let i = l.idx();
        ExtentScan::packed(
            Space::LabelPosting,
            self.posting_off[i]..self.posting_off[i + 1],
            self.by_label[i].len(),
        )
        .run(ctx);
        &self.by_label[i]
    }

    /// Scans node `v`'s adjacency list.
    fn scan_adjacency(&self, v: NodeId, ctx: &mut ExecContext<'_>) -> &[xmlgraph::Edge] {
        let i = v.idx();
        let edges = self.g.out_edges(v);
        ExtentScan::packed(
            Space::GraphAdjacency,
            self.adj_off[i]..self.adj_off[i + 1],
            edges.len(),
        )
        .run(ctx);
        edges
    }

    /// Nodes reached by `//l_1/…/l_n`: start from every `l_1` edge and
    /// follow the remaining labels.
    fn eval_path(&self, labels: &[LabelId], ctx: &mut ExecContext<'_>) -> Vec<NodeId> {
        let first = self.scan_postings(labels[0], ctx);
        let mut frontier: Vec<NodeId> = first.iter().map(|&(_, to)| to).collect();
        frontier.sort_unstable();
        frontier.dedup();
        for &l in &labels[1..] {
            let mut next = Vec::new();
            for &v in &frontier {
                for e in self.scan_adjacency(v, ctx) {
                    if e.label == l {
                        next.push(e.to);
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        frontier
    }

    /// `//l_i//l_j`: BFS from the targets of `l_i` edges; collect targets
    /// of `l_j` edges whose source is reachable.
    fn eval_anc_desc(
        &self,
        first: LabelId,
        last: LabelId,
        ctx: &mut ExecContext<'_>,
    ) -> Vec<NodeId> {
        let starts = self.scan_postings(first, ctx);
        let mut reachable = vec![false; self.g.node_count()];
        let mut stack: Vec<NodeId> = Vec::new();
        for &(_, to) in starts {
            if !reachable[to.idx()] {
                reachable[to.idx()] = true;
                stack.push(to);
            }
        }
        let mut out = Vec::new();
        while let Some(v) = stack.pop() {
            for e in self.scan_adjacency(v, ctx) {
                if e.label == last {
                    out.push(e.to);
                }
                if !reachable[e.to.idx()] {
                    reachable[e.to.idx()] = true;
                    stack.push(e.to);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl QueryProcessor for NaiveProcessor<'_> {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn eval(&self, q: &Query) -> QueryOutput {
        let mut ctx = ExecContext::new(&self.buf);
        let nodes = match q {
            Query::PartialPath { labels } => self.eval_path(labels, &mut ctx),
            Query::AncestorDescendant { first, last } => {
                self.eval_anc_desc(*first, *last, &mut ctx)
            }
            Query::ValuePath { labels, value } => {
                let mut nodes = self.eval_path(labels, &mut ctx);
                nodes.retain(|&n| {
                    DataProbe {
                        table: self.table,
                        nid: n,
                        value,
                    }
                    .run(&mut ctx)
                });
                nodes
            }
        };
        QueryOutput {
            nodes,
            cost: ctx.finish(),
            interrupted: false,
            plan: None,
        }
    }

    fn buffer(&self) -> Option<&BufferHandle> {
        Some(&self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_storage::{OpKind, PageModel};
    use xmlgraph::builder::moviedb;
    use xmlgraph::LabelPath;

    fn setup(g: &XmlGraph) -> (DataTable, Vec<(String, Vec<u32>)>) {
        let t = DataTable::build(g, PageModel::default());
        (t, vec![])
    }

    #[test]
    fn qtype1_on_moviedb() {
        let g = moviedb();
        let (t, _) = setup(&g);
        let p = NaiveProcessor::new(&g, &t);
        let q = Query::PartialPath {
            labels: LabelPath::parse(&g, "actor.name").unwrap().0,
        };
        let out = p.eval(&q);
        assert_eq!(out.nodes, vec![NodeId(3), NodeId(5)]);
    }

    #[test]
    fn qtype1_with_dereference() {
        let g = moviedb();
        let (t, _) = setup(&g);
        let p = NaiveProcessor::new(&g, &t);
        let q = Query::PartialPath {
            labels: LabelPath::parse(&g, "@movie.movie.title").unwrap().0,
        };
        let out = p.eval(&q);
        // @movie(9)=>movie(8)->title(10); @movie(16)=>movie(14)->title(17).
        assert_eq!(out.nodes, vec![NodeId(10), NodeId(17)]);
    }

    #[test]
    fn qtype2_on_moviedb() {
        let g = moviedb();
        let (t, _) = setup(&g);
        let p = NaiveProcessor::new(&g, &t);
        let movie = g.label_id("movie").unwrap();
        let name = g.label_id("name").unwrap();
        let out = p.eval(&Query::AncestorDescendant {
            first: movie,
            last: name,
        });
        // Movie edges land on 8 and 14. Reachable name edges: 12->13 (via
        // the director child of movie 14 and via @director(6) of movie 8)
        // and 2->3 (via @actor(15) of movie 14). Names 5 and 11 hang off
        // actor 4 / director 7, which no movie reaches.
        assert_eq!(out.nodes, vec![NodeId(3), NodeId(13)]);
    }

    #[test]
    fn qtype3_on_moviedb() {
        let g = moviedb();
        let (t, _) = setup(&g);
        let p = NaiveProcessor::new(&g, &t);
        let q = Query::ValuePath {
            labels: LabelPath::parse(&g, "title").unwrap().0,
            value: "Star Wars".into(),
        };
        let out = p.eval(&q);
        assert_eq!(out.nodes, vec![NodeId(10)]);
        // The value test is a costed DataProbe through the pool.
        assert!(out.cost.ops.get(OpKind::DataProbe).invocations >= 1);
        assert!(out.cost.table_probes >= 1);
    }

    #[test]
    fn unmatched_path_is_empty() {
        let g = moviedb();
        let (t, _) = setup(&g);
        let p = NaiveProcessor::new(&g, &t);
        let q = Query::PartialPath {
            labels: LabelPath::parse(&g, "title.title").unwrap().0,
        };
        assert!(p.eval(&q).nodes.is_empty());
    }

    #[test]
    fn scans_attribute_pages_to_extent_scan() {
        let g = moviedb();
        let (t, _) = setup(&g);
        let p = NaiveProcessor::new(&g, &t);
        let q = Query::PartialPath {
            labels: LabelPath::parse(&g, "actor.name").unwrap().0,
        };
        let out = p.eval(&q);
        assert!(out.cost.extent_pairs > 0);
        assert!(out.cost.pages_read >= 1);
        let scan = out.cost.ops.get(OpKind::ExtentScan);
        assert_eq!(scan.pages_read(), out.cost.pages_read);
        assert_eq!(scan.extent_pairs(), out.cost.extent_pairs);
    }
}
