//! Random query and workload generation (§6.1 "Query Workloads").
//!
//! The paper's procedure, reproduced faithfully:
//!
//! * store all possible simple path expressions of the data (bounded
//!   enumeration on cyclic graphs);
//! * **QTYPE1** (5000 queries): pick a random simple path expression,
//!   take a random contiguous subsequence, prefix `//`. About 25 % come
//!   out as simple (root-anchored) expressions, matching the paper's
//!   observation. 20 % of the 5000 become the tuning workload;
//! * **QTYPE2** (500 queries): pick a random simple path expression and
//!   two distinct labels from it, forming `//l_i//l_j` (results may be
//!   empty — the paper explicitly does not guarantee non-emptiness);
//! * **QTYPE3** (1000 queries): pick a valued node, take a random
//!   suffix-aligned subsequence of its tree path (no dereferences) and
//!   its value — results are guaranteed non-empty.

use apex::Workload;
use apex_storage::DataTable;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xmlgraph::paths::{rooted_label_paths, EnumLimits};
use xmlgraph::{LabelId, LabelPath, NodeId, XmlGraph};

use crate::ast::Query;

/// Knobs for query generation.
#[derive(Debug, Clone, Copy)]
pub struct GeneratorConfig {
    /// Number of QTYPE1 queries (paper: 5000).
    pub qtype1: usize,
    /// Number of QTYPE2 queries (paper: 500).
    pub qtype2: usize,
    /// Number of QTYPE3 queries (paper: 1000).
    pub qtype3: usize,
    /// Fraction of QTYPE1 queries sampled into the tuning workload
    /// (paper: 0.20).
    pub workload_fraction: f64,
    /// RNG seed.
    pub seed: u64,
    /// Bounds for simple-path enumeration.
    pub limits: EnumLimits,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            qtype1: 5000,
            qtype2: 500,
            qtype3: 1000,
            workload_fraction: 0.20,
            seed: 0x9E37,
            limits: EnumLimits {
                max_len: 12,
                max_paths: 100_000,
            },
        }
    }
}

/// The generated query sets plus the tuning workload.
#[derive(Debug, Clone)]
pub struct QuerySets {
    /// QTYPE1 queries.
    pub qtype1: Vec<Query>,
    /// QTYPE2 queries.
    pub qtype2: Vec<Query>,
    /// QTYPE3 queries.
    pub qtype3: Vec<Query>,
    /// The 20 % sample of QTYPE1 used to refine APEX.
    pub workload: Workload,
    /// Fraction of QTYPE1 queries that are simple path expressions
    /// (diagnostic; the paper reports ~25 %).
    pub simple_fraction: f64,
}

impl QuerySets {
    /// Generates all three query sets for `g`.
    pub fn generate(g: &XmlGraph, table: &DataTable, cfg: GeneratorConfig) -> QuerySets {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let simple_paths = rooted_label_paths(g, cfg.limits);
        assert!(!simple_paths.is_empty(), "graph has no rooted paths");

        // QTYPE1.
        let mut qtype1 = Vec::with_capacity(cfg.qtype1);
        let mut simple_count = 0usize;
        for _ in 0..cfg.qtype1 {
            let path = &simple_paths[rng.gen_range(0..simple_paths.len())];
            let n = path.len();
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(i..n);
            let labels = path.labels()[i..=j].to_vec();
            if i == 0 {
                simple_count += 1;
            }
            qtype1.push(Query::PartialPath { labels });
        }

        // Workload sample (20 %).
        let mut workload = Workload::new();
        for q in &qtype1 {
            if rng.gen_bool(cfg.workload_fraction) {
                if let Query::PartialPath { labels } = q {
                    workload.push(LabelPath::new(labels.clone()));
                }
            }
        }

        // QTYPE2: two distinct labels from one simple path.
        let mut qtype2 = Vec::with_capacity(cfg.qtype2);
        let mut guard = 0usize;
        while qtype2.len() < cfg.qtype2 && guard < cfg.qtype2 * 50 {
            guard += 1;
            let path = &simple_paths[rng.gen_range(0..simple_paths.len())];
            if path.len() < 2 {
                continue;
            }
            let i = rng.gen_range(0..path.len() - 1);
            let j = rng.gen_range(i + 1..path.len());
            let (first, last) = (path.labels()[i], path.labels()[j]);
            if first == last {
                continue; // the paper picks two distinct labels
            }
            qtype2.push(Query::AncestorDescendant { first, last });
        }

        // QTYPE3: suffix of the tree path of a random valued node, plus
        // its value (non-empty by construction; no dereference since tree
        // paths never cross @attr reference edges).
        let valued: Vec<(NodeId, String)> = table.iter().map(|(n, v)| (n, v.to_string())).collect();
        let mut qtype3 = Vec::with_capacity(cfg.qtype3);
        if !valued.is_empty() {
            for _ in 0..cfg.qtype3 {
                let (node, value) = &valued[rng.gen_range(0..valued.len())];
                let path = tree_path(g, *node);
                let start = rng.gen_range(0..path.len());
                qtype3.push(Query::ValuePath {
                    labels: path[start..].to_vec(),
                    value: value.clone(),
                });
            }
        }

        QuerySets {
            simple_fraction: simple_count as f64 / cfg.qtype1.max(1) as f64,
            qtype1,
            qtype2,
            qtype3,
            workload,
        }
    }
}

/// The tree label path from the root to `node`.
fn tree_path(g: &XmlGraph, node: NodeId) -> Vec<LabelId> {
    let mut labels = Vec::new();
    let mut cur = node;
    while !g.tree_parent(cur).is_null() {
        labels.push(g.tag(cur));
        cur = g.tree_parent(cur);
    }
    labels.reverse();
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_storage::PageModel;
    use xmlgraph::builder::moviedb;

    fn cfg(seed: u64) -> GeneratorConfig {
        GeneratorConfig {
            qtype1: 400,
            qtype2: 60,
            qtype3: 80,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn generates_requested_counts() {
        let g = moviedb();
        let t = DataTable::build(&g, PageModel::default());
        let qs = QuerySets::generate(&g, &t, cfg(1));
        assert_eq!(qs.qtype1.len(), 400);
        assert_eq!(qs.qtype2.len(), 60);
        assert_eq!(qs.qtype3.len(), 80);
        assert!(!qs.workload.is_empty());
        // 20% sample within generous bounds.
        assert!(qs.workload.len() > 40 && qs.workload.len() < 140);
    }

    #[test]
    fn simple_fraction_near_quarter() {
        let g = datagen_placeholder();
        let t = DataTable::build(&g, PageModel::default());
        let qs = QuerySets::generate(
            &g,
            &t,
            GeneratorConfig {
                qtype1: 3000,
                ..cfg(3)
            },
        );
        // E[1/len] over this tree's path lengths is ~0.46; real datasets
        // with deeper paths land near the paper's 25 % (asserted in the
        // cross-crate integration tests).
        assert!(
            qs.simple_fraction > 0.08 && qs.simple_fraction < 0.55,
            "simple fraction {}",
            qs.simple_fraction
        );
    }

    /// A slightly deeper tree than moviedb so subsequence statistics are
    /// meaningful.
    fn datagen_placeholder() -> XmlGraph {
        let mut b = xmlgraph::GraphBuilder::new("r");
        let root = b.root();
        for _ in 0..3 {
            let a = b.add_child(root, "a");
            for _ in 0..3 {
                let c = b.add_child(a, "b");
                let d = b.add_child(c, "c");
                let e = b.add_child(d, "d");
                b.add_value_child(e, "e", "v");
            }
        }
        b.finish().unwrap()
    }

    #[test]
    fn qtype2_labels_distinct() {
        let g = moviedb();
        let t = DataTable::build(&g, PageModel::default());
        let qs = QuerySets::generate(&g, &t, cfg(5));
        for q in &qs.qtype2 {
            let Query::AncestorDescendant { first, last } = q else {
                panic!()
            };
            assert_ne!(first, last);
        }
    }

    #[test]
    fn qtype3_results_nonempty_on_naive() {
        let g = moviedb();
        let t = DataTable::build(&g, PageModel::default());
        let qs = QuerySets::generate(&g, &t, cfg(7));
        use crate::batch::QueryProcessor as _;
        let nv = crate::naive::NaiveProcessor::new(&g, &t);
        for q in &qs.qtype3 {
            let out = nv.eval(q);
            assert!(!out.nodes.is_empty(), "{} empty", q.render(&g));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = moviedb();
        let t = DataTable::build(&g, PageModel::default());
        let a = QuerySets::generate(&g, &t, cfg(9));
        let b = QuerySets::generate(&g, &t, cfg(9));
        assert_eq!(a.qtype1, b.qtype1);
        assert_eq!(a.qtype2, b.qtype2);
        assert_eq!(a.qtype3, b.qtype3);
    }
}
