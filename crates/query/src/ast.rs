//! The query model: the three query types of the evaluation (§6.1).

use xmlgraph::{LabelId, XmlGraph};

/// A label-path query.
///
/// In the graph encoding of §3, the dereference operator `=>` is just two
/// consecutive edge labels (`@attr` followed by the target's tag), so
/// QTYPE1 queries with dereferences are plain label sequences here;
/// [`Query::render`] prints them back with `=>` for display fidelity.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Query {
    /// QTYPE1: `//l_i/l_{i+1}/…/l_n` — partial-matching path query.
    PartialPath {
        /// The label sequence (non-empty).
        labels: Vec<LabelId>,
    },
    /// QTYPE2: `//l_i//l_j` — ancestor/descendant label pair.
    AncestorDescendant {
        /// The ancestor edge label.
        first: LabelId,
        /// The descendant edge label.
        last: LabelId,
    },
    /// QTYPE3: `//l_1/…/l_n[text() = value]`.
    ValuePath {
        /// The label sequence (non-empty, no dereference).
        labels: Vec<LabelId>,
        /// The required text value of the result node.
        value: String,
    },
}

impl Query {
    /// Parses the paper's query notation against `g`'s label alphabet:
    ///
    /// * QTYPE1 — `//a/b/c`, with dereferences written `//a/@m => m/c`;
    /// * QTYPE2 — `//a//b` (exactly two single labels);
    /// * QTYPE3 — `//a/b[text() = "value"]`.
    ///
    /// Returns a descriptive error for unknown labels or malformed
    /// syntax.
    pub fn parse(g: &XmlGraph, input: &str) -> Result<Query, String> {
        let rest = input
            .trim()
            .strip_prefix("//")
            .ok_or_else(|| format!("query must start with `//`: {input}"))?;

        // Optional trailing [text() = "value"].
        let (path_part, value) = match rest.split_once('[') {
            None => (rest, None),
            Some((path, pred)) => {
                let pred = pred
                    .strip_suffix(']')
                    .ok_or_else(|| format!("unterminated predicate in {input}"))?;
                let v = pred
                    .trim()
                    .strip_prefix("text()")
                    .map(str::trim)
                    .and_then(|p| p.strip_prefix('='))
                    .map(str::trim)
                    .ok_or_else(|| {
                        format!("only [text() = …] predicates are supported: {input}")
                    })?;
                let v = v
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .unwrap_or(v);
                (path, Some(v.to_string()))
            }
        };

        let lookup = |name: &str| -> Result<LabelId, String> {
            g.label_id(name.trim())
                .ok_or_else(|| format!("unknown label `{}`", name.trim()))
        };

        // `//` in the middle → QTYPE2 (two single labels, no value).
        if let Some((first, last)) = path_part.split_once("//") {
            if last.contains("//") {
                return Err(format!("at most one inner `//` is supported: {input}"));
            }
            if value.is_some() {
                return Err(format!("`//a//b` cannot carry a value predicate: {input}"));
            }
            if [first, last]
                .iter()
                .any(|s| s.contains('/') || s.contains("=>"))
            {
                return Err(format!(
                    "only `//a//b` ancestor/descendant queries are supported: {input}"
                ));
            }
            return Ok(Query::AncestorDescendant {
                first: lookup(first)?,
                last: lookup(last)?,
            });
        }

        // QTYPE1/QTYPE3: `=>` is just a step in the graph encoding.
        let normalized = path_part.replace("=>", "/");
        let labels = normalized
            .split('/')
            .filter(|s| !s.trim().is_empty())
            .map(lookup)
            .collect::<Result<Vec<_>, _>>()?;
        if labels.is_empty() {
            return Err(format!("empty label path: {input}"));
        }
        Ok(match value {
            None => Query::PartialPath { labels },
            Some(value) => Query::ValuePath { labels, value },
        })
    }

    /// The label path of QTYPE1/QTYPE3 queries (None for QTYPE2).
    pub fn labels(&self) -> Option<&[LabelId]> {
        match self {
            Query::PartialPath { labels } => Some(labels),
            Query::ValuePath { labels, .. } => Some(labels),
            Query::AncestorDescendant { .. } => None,
        }
    }

    /// True if this is a *simple path expression*: its label path starts
    /// at the root of the data (checked against `g` by the generator).
    /// Kept here as a helper for workload statistics.
    pub fn len(&self) -> usize {
        match self {
            Query::PartialPath { labels } => labels.len(),
            Query::ValuePath { labels, .. } => labels.len(),
            Query::AncestorDescendant { .. } => 2,
        }
    }

    /// Queries are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Renders in the paper's XQuery-ish notation, printing `@attr`
    /// followed by a tag as a dereference (`//…/@attr => tag/…`).
    pub fn render(&self, g: &XmlGraph) -> String {
        match self {
            Query::PartialPath { labels } => render_path(g, labels),
            Query::AncestorDescendant { first, last } => {
                format!("//{}//{}", g.label_str(*first), g.label_str(*last))
            }
            Query::ValuePath { labels, value } => {
                format!("{}[text() = \"{}\"]", render_path(g, labels), value)
            }
        }
    }
}

fn render_path(g: &XmlGraph, labels: &[LabelId]) -> String {
    let mut s = String::from("/");
    let mut prev_was_ref_attr = false;
    for (k, l) in labels.iter().enumerate() {
        let name = g.label_str(*l);
        if prev_was_ref_attr {
            s.push_str(" => ");
            s.push_str(name);
        } else {
            s.push('/');
            s.push_str(name);
        }
        // `@attr` that the data marks as IDREF dereferences next label.
        prev_was_ref_attr =
            name.starts_with('@') && g.idref_labels().contains(l) && k + 1 < labels.len();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlgraph::builder::moviedb;
    use xmlgraph::LabelPath;

    #[test]
    fn parse_round_trips_render() {
        let g = moviedb();
        for q in [
            "//actor/name",
            "//movie/title",
            "//actor/@movie => movie/title",
            "//actor//name",
            "//movie/title[text() = \"Star Wars\"]",
        ] {
            let parsed = Query::parse(&g, q).unwrap();
            assert_eq!(parsed.render(&g), q, "round trip of {q}");
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        let g = moviedb();
        for q in [
            "actor/name",              // missing //
            "//actor/bogus",           // unknown label
            "//a//b//c",               // too many //
            "//actor//name[text()=x]", // predicate on QTYPE2
            "//actor/name[foo=1]",     // unsupported predicate
            "//",                      // empty
        ] {
            assert!(Query::parse(&g, q).is_err(), "should reject {q}");
        }
    }

    #[test]
    fn parse_value_without_quotes() {
        let g = moviedb();
        let q = Query::parse(&g, "//movie/title[text() = Star]").unwrap();
        assert!(matches!(q, Query::ValuePath { ref value, .. } if value == "Star"));
    }

    #[test]
    fn renders_partial_path() {
        let g = moviedb();
        let p = LabelPath::parse(&g, "actor.name").unwrap();
        let q = Query::PartialPath { labels: p.0 };
        assert_eq!(q.render(&g), "//actor/name");
    }

    #[test]
    fn renders_dereference() {
        let g = moviedb();
        let p = LabelPath::parse(&g, "actor.@movie.movie.title").unwrap();
        let q = Query::PartialPath { labels: p.0 };
        assert_eq!(q.render(&g), "//actor/@movie => movie/title");
    }

    #[test]
    fn renders_qtype2_and_qtype3() {
        let g = moviedb();
        let a = g.label_id("actor").unwrap();
        let n = g.label_id("name").unwrap();
        let q2 = Query::AncestorDescendant { first: a, last: n };
        assert_eq!(q2.render(&g), "//actor//name");
        let p = LabelPath::parse(&g, "movie.title").unwrap();
        let q3 = Query::ValuePath {
            labels: p.0,
            value: "Star Wars".into(),
        };
        assert_eq!(q3.render(&g), "//movie/title[text() = \"Star Wars\"]");
    }

    #[test]
    fn len_and_labels() {
        let g = moviedb();
        let p = LabelPath::parse(&g, "movie.title").unwrap();
        let q = Query::PartialPath {
            labels: p.0.clone(),
        };
        assert_eq!(q.len(), 2);
        assert_eq!(q.labels(), Some(p.0.as_slice()));
        let a = g.label_id("actor").unwrap();
        let q2 = Query::AncestorDescendant { first: a, last: a };
        assert_eq!(q2.labels(), None);
    }
}
