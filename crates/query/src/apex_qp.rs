//! The APEX query processor (§6.1 "Query Processor Implementation").
//!
//! * **QTYPE1** — looks up `H_APEX` with the whole query path; if the
//!   longest required suffix equals the path, the answer is read straight
//!   off the located extents. Otherwise the processor keeps shortening
//!   the prefix (`j` from `n` down) collecting the union of extents per
//!   prefix until the prefix is itself a required path, then multi-way
//!   joins the collected edge sets.
//! * **QTYPE2** — query pruning & rewriting: the traversal starts from
//!   the `G_APEX` nodes whose incoming label is `l_i` (found via
//!   `H_APEX`), not from the root as a DataGuide must. Implemented as a
//!   cycle-safe dataflow fixpoint that joins extents along `G_APEX`
//!   edges (equivalent to enumerating the rewritten label paths and
//!   joining per path, but terminates on cyclic class graphs).
//! * **QTYPE3** — QTYPE1 followed by data-table probes.
//!
//! All physical work — extent I/O, unions, semijoins, table probes —
//! runs through the shared operators in [`crate::exec`] over a
//! cross-query [`BufferHandle`] pool.

use std::collections::HashMap;

use apex::{Apex, PlanStats, XNodeId};
use apex_storage::bufmgr::{BufferHandle, Space};
use apex_storage::{DataTable, EdgeSet, KernelPolicy};
use xmlgraph::{LabelId, NodeId, XmlGraph};

use crate::ast::Query;
use crate::batch::{QueryOutput, QueryProcessor};
use crate::exec::{self, DataProbe, ExecContext, ExtentScan, IndexNav};
use crate::plan::{self, JoinOrderPolicy, PlanReport, Planner};

/// Byte stride separating the page-packed node layouts of successive
/// index generations inside [`Space::ApexNode`] (1 TiB per generation —
/// far above any real layout, and a multiple of every page size in use,
/// so the derived page ids of distinct generations never collide).
const NAV_TAG_STRIDE: u64 = 1 << 40;

/// Query processor over an [`Apex`] index.
pub struct ApexProcessor<'a> {
    g: &'a XmlGraph,
    apex: &'a Apex,
    table: &'a DataTable,
    buf: BufferHandle,
    /// Generation tag mixed into every buffer-pool identity (high 32
    /// bits of extent object ids; `NAV_TAG_STRIDE` byte offset of the
    /// node layout). A rebuilt index reuses `XNodeId`s for different
    /// extents, so snapshot swaps without distinct tags would score
    /// phantom pool hits on stale cached objects.
    tag: u64,
    /// Page-packed byte offsets of `G_APEX` node records (16 bytes
    /// header + 8 per edge): node `x` occupies
    /// `node_offsets[x]..node_offsets[x+1]` of [`Space::ApexNode`],
    /// shifted by the generation tag's stride.
    node_offsets: Vec<u64>,
    /// Kernel policy for every semijoin this processor runs.
    policy: KernelPolicy,
    /// Absolute per-query deadline armed on every [`ExecContext`] this
    /// processor creates (the network serving layer sets this; batch and
    /// bench runs leave it unset).
    deadline: Option<std::time::Instant>,
    /// Statistics snapshot the planner reads (adaptive serving passes
    /// the published snapshot's stats; `None` falls back to the live
    /// extents' cheap accessors — same numbers, read at plan time).
    stats: Option<&'a PlanStats>,
    /// Join-order selection: cost-based by default; benches force the
    /// fixed orders through this.
    order: JoinOrderPolicy,
}

impl<'a> ApexProcessor<'a> {
    /// Creates a processor with a private (unbounded) buffer pool.
    pub fn new(g: &'a XmlGraph, apex: &'a Apex, table: &'a DataTable) -> Self {
        Self::with_buffer(g, apex, table, BufferHandle::unbounded())
    }

    /// Creates a processor charging against a shared buffer pool.
    pub fn with_buffer(
        g: &'a XmlGraph,
        apex: &'a Apex,
        table: &'a DataTable,
        buf: BufferHandle,
    ) -> Self {
        Self::with_buffer_tagged(g, apex, table, buf, 0)
    }

    /// Creates a processor charging against a shared buffer pool under a
    /// generation tag — used by adaptive serving, where processors over
    /// different index snapshots share one pool and `tag` is the
    /// snapshot's generation (must be `< 2³²`; generations are swap
    /// counts, far below that).
    pub fn with_buffer_tagged(
        g: &'a XmlGraph,
        apex: &'a Apex,
        table: &'a DataTable,
        buf: BufferHandle,
        tag: u64,
    ) -> Self {
        let mut node_offsets = exec::record_layout(
            (0..apex.graph().allocated()).map(|i| 16 + 8 * apex.out_edges(XNodeId(i as u32)).len()),
        );
        let base = tag * NAV_TAG_STRIDE;
        for off in &mut node_offsets {
            *off += base;
        }
        ApexProcessor {
            g,
            apex,
            table,
            buf,
            tag,
            node_offsets,
            policy: KernelPolicy::Adaptive,
            deadline: None,
            stats: None,
            order: JoinOrderPolicy::Planned,
        }
    }

    /// Forces a fixed semijoin kernel (tests and benches compare the
    /// kernels; production uses the default adaptive policy).
    pub fn with_kernel_policy(mut self, policy: KernelPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Arms a per-query deadline: evaluation checkpoints at stage
    /// boundaries and stops early once `deadline` passes, returning a
    /// [`QueryOutput`] with `interrupted = true`.
    pub fn with_deadline(mut self, deadline: std::time::Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Plans against `stats` (a published snapshot's statistics)
    /// instead of the live extent accessors.
    pub fn with_plan_stats(mut self, stats: &'a PlanStats) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Forces a join-order policy (benches compare the planner against
    /// the fixed orders; production uses the default cost-based choice).
    pub fn with_join_order(mut self, order: JoinOrderPolicy) -> Self {
        self.order = order;
        self
    }

    /// The cost-based planner for this processor's index view.
    fn planner(&self) -> Planner<'a> {
        Planner::new(self.apex, self.stats, self.policy, self.tag)
    }

    /// `(buffer id, extent)` source for class node `x`.
    fn source(&self, x: XNodeId) -> (u64, &'a EdgeSet) {
        let r = self.apex.extent_ref(x);
        ((self.tag << 32) | r.id, r.set)
    }

    /// QTYPE1 evaluation returning the final edge set and the plan
    /// report.
    ///
    /// The §6.1 decreasing-j segmentation runs inside the planner, which
    /// then chooses the join order (forward, or a backward reduction of
    /// the last stages) and the kernels from the statistics snapshot; a
    /// forward plan executes bit-for-bit the legacy seed-union +
    /// [`crate::exec::MultiwayJoin`] pipeline.
    fn eval_path_edges(
        &self,
        labels: &[LabelId],
        ctx: &mut ExecContext<'_>,
    ) -> (EdgeSet, PlanReport) {
        let planner = self.planner();
        let plan = planner.plan_path(labels, self.order);
        planner.execute_path(&plan, ctx)
    }

    fn eval_path(
        &self,
        labels: &[LabelId],
        ctx: &mut ExecContext<'_>,
    ) -> (Vec<NodeId>, PlanReport) {
        let (edges, report) = self.eval_path_edges(labels, ctx);
        let mut nodes = edges.end_nodes().to_vec();
        self.g.sort_doc_order(&mut nodes);
        (nodes, report)
    }

    /// Charges the first visit of class node `x`'s page-packed record.
    // apex-lint: allow(panic-reachability): `touched` and `node_offsets` are sized n and n+1 over the same class-node count
    fn nav_node(&self, x: XNodeId, touched: &mut [bool], ctx: &mut ExecContext<'_>) {
        let i = x.0 as usize;
        if !touched[i] {
            touched[i] = true;
            IndexNav {
                space: Space::ApexNode,
                bytes: self.node_offsets[i]..self.node_offsets[i + 1],
            }
            .run(ctx);
        }
    }

    /// QTYPE2: dataflow fixpoint from the `l_i` classes.
    ///
    /// Deltas are *batched per class node* before propagation, so each
    /// `G_APEX` edge scans its target extent once per round instead of
    /// once per incoming delta — the disk-friendly evaluation order the
    /// paper's join-of-extents description implies.
    fn eval_anc_desc(
        &self,
        first: LabelId,
        last: LabelId,
        ctx: &mut ExecContext<'_>,
    ) -> Vec<NodeId> {
        let seg = self.apex.segment_nodes(&[first]);
        ctx.note_hash_lookups(seg.hash_lookups);
        // known: per class node, extent pairs already proven reachable
        // from an l_i instance. pending: accumulated un-propagated delta.
        let mut known: HashMap<XNodeId, EdgeSet> = HashMap::new();
        let mut pending: HashMap<XNodeId, EdgeSet> = HashMap::new();
        let mut queue: Vec<XNodeId> = Vec::new();
        let mut scratch = Vec::new();
        for x in &seg.xnodes {
            let (id, set) = self.source(*x);
            ExtentScan::pairs(Space::ApexExtent, id, set).run(ctx);
            let e = set.clone();
            known.insert(*x, e.clone());
            pending.insert(*x, e);
            queue.push(*x);
        }
        let mut out: Vec<NodeId> = Vec::new();
        // G_APEX node records are page-packed (Space::ApexNode): the
        // first visit of a node charges its record's pages.
        let mut touched: Vec<bool> = vec![false; self.apex.graph().allocated()];
        while let Some(x) = queue.pop() {
            // One fixpoint round is the non-preemptible unit; a tripped
            // deadline surfaces the arrivals collected so far.
            if !ctx.checkpoint() {
                break;
            }
            let Some(delta) = pending.remove(&x) else {
                continue;
            };
            if delta.is_empty() {
                continue;
            }
            let ends = delta.end_nodes();
            self.nav_node(x, &mut touched, ctx);
            for &(label, y) in self.apex.out_edges(x) {
                ctx.nav_edges(1);
                let (id, extent) = self.source(y);
                let step = exec::semijoin(ctx, ends.into(), Space::ApexExtent, id, extent);
                if step.is_empty() {
                    continue;
                }
                // Every step pair is a genuine arrival (distance >= 1
                // from an l_i instance): collect it even if the pair was
                // already known — e.g. when it was part of the seed and a
                // cycle re-reaches it (//d//d through a back-edge).
                if label == last {
                    out.extend(step.iter().map(|p| p.node));
                }
                let slot = known.entry(y).or_default();
                let fresh = step.difference(slot);
                if fresh.is_empty() {
                    continue;
                }
                ctx.note_fixpoint_output(fresh.len() as u64);
                slot.union_in_place(&fresh, &mut scratch);
                let waiting = pending.entry(y).or_default();
                let was_empty = waiting.is_empty();
                waiting.union_in_place(&fresh, &mut scratch);
                if was_empty {
                    queue.push(y);
                }
            }
        }
        self.g.sort_doc_order(&mut out);
        out
    }
}

impl QueryProcessor for ApexProcessor<'_> {
    fn name(&self) -> &'static str {
        "APEX"
    }

    fn eval(&self, q: &Query) -> QueryOutput {
        let mut ctx = ExecContext::with_policy(&self.buf, self.policy);
        if let Some(d) = self.deadline {
            ctx.set_deadline(d);
        }
        let (nodes, report) = match q {
            Query::PartialPath { labels } => self.eval_path(labels, &mut ctx),
            Query::AncestorDescendant { first, last } => {
                let before = ctx.cost.ops;
                let nodes = self.eval_anc_desc(*first, *last, &mut ctx);
                let (digest, predicted) = self.planner().forecast_anc_desc(*first);
                let report =
                    plan::build_report(digest, "dataflow", &predicted, &before, &ctx.cost.ops);
                (nodes, report)
            }
            Query::ValuePath { labels, value } => {
                let (mut nodes, report) = self.eval_path(labels, &mut ctx);
                nodes.retain(|&n| {
                    ctx.checkpoint()
                        && DataProbe {
                            table: self.table,
                            nid: n,
                            value,
                        }
                        .run(&mut ctx)
                });
                (nodes, report)
            }
        };
        let interrupted = ctx.interrupted();
        QueryOutput {
            nodes,
            cost: ctx.finish(),
            interrupted,
            plan: Some(report),
        }
    }

    fn buffer(&self) -> Option<&BufferHandle> {
        Some(&self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveProcessor;
    use apex::Workload;
    use apex_storage::{OpKind, PageModel};
    use xmlgraph::builder::moviedb;
    use xmlgraph::LabelPath;

    fn setup(g: &XmlGraph, workload: &[&str]) -> (Apex, DataTable) {
        let mut idx = Apex::build_initial(g);
        if !workload.is_empty() {
            let wl = Workload::parse(g, workload).unwrap();
            idx.refine(g, &wl, 0.1);
        }
        (idx, DataTable::build(g, PageModel::default()))
    }

    fn q1(g: &XmlGraph, p: &str) -> Query {
        Query::PartialPath {
            labels: LabelPath::parse(g, p).unwrap().0,
        }
    }

    #[test]
    fn qtype1_on_apex0_matches_naive() {
        let g = moviedb();
        let (idx, t) = setup(&g, &[]);
        let ap = ApexProcessor::new(&g, &idx, &t);
        let nv = NaiveProcessor::new(&g, &t);
        for p in [
            "actor.name",
            "movie.title",
            "director.movie.title",
            "name",
            "@movie.movie",
            "actor.@movie.movie.title",
            "director.movie.@director.director.name",
        ] {
            let q = q1(&g, p);
            assert_eq!(ap.eval(&q).nodes, nv.eval(&q).nodes, "query {p}");
        }
    }

    #[test]
    fn qtype1_on_refined_apex_matches_naive_and_is_cheaper() {
        let g = moviedb();
        let (idx, t) = setup(&g, &["actor.name", "director.movie", "@movie.movie"]);
        let ap = ApexProcessor::new(&g, &idx, &t);
        let nv = NaiveProcessor::new(&g, &t);
        let q = q1(&g, "actor.name");
        let out = ap.eval(&q);
        assert_eq!(out.nodes, nv.eval(&q).nodes);
        // actor.name is required: answered with no joins.
        assert_eq!(out.cost.join_work, 0);
    }

    #[test]
    fn qtype2_matches_naive() {
        let g = moviedb();
        let (idx, t) = setup(&g, &["actor.name"]);
        let ap = ApexProcessor::new(&g, &idx, &t);
        let nv = NaiveProcessor::new(&g, &t);
        for (a, b) in [
            ("movie", "name"),
            ("director", "title"),
            ("actor", "title"),
            ("movie", "movie"),
        ] {
            let q = Query::AncestorDescendant {
                first: g.label_id(a).unwrap(),
                last: g.label_id(b).unwrap(),
            };
            assert_eq!(ap.eval(&q).nodes, nv.eval(&q).nodes, "//{a}//{b}");
        }
    }

    #[test]
    fn qtype3_matches_naive() {
        let g = moviedb();
        let (idx, t) = setup(&g, &[]);
        let ap = ApexProcessor::new(&g, &idx, &t);
        let nv = NaiveProcessor::new(&g, &t);
        let q = Query::ValuePath {
            labels: LabelPath::parse(&g, "title").unwrap().0,
            value: "Star Wars".into(),
        };
        assert_eq!(ap.eval(&q).nodes, nv.eval(&q).nodes);
        assert_eq!(ap.eval(&q).nodes, vec![NodeId(10)]);
    }

    #[test]
    fn single_label_queries_are_exact_unions() {
        let g = moviedb();
        let (idx, t) = setup(&g, &["actor.name"]);
        let ap = ApexProcessor::new(&g, &idx, &t);
        // //name must union the actor.name class and the remainder class
        // with no joins.
        let q = q1(&g, "name");
        let out = ap.eval(&q);
        assert_eq!(
            out.nodes,
            vec![NodeId(3), NodeId(5), NodeId(11), NodeId(13)]
        );
        assert_eq!(out.cost.join_work, 0);
        assert!(out.cost.pages_read >= 1);
    }

    #[test]
    fn queries_longer_than_any_required_path() {
        let g = moviedb();
        let (idx, t) = setup(&g, &["actor.name"]);
        let ap = ApexProcessor::new(&g, &idx, &t);
        let nv = NaiveProcessor::new(&g, &t);
        // 4-step query across reference edges, far longer than the
        // longest required path (2).
        let q = q1(&g, "director.movie.@director.director");
        assert_eq!(ap.eval(&q).nodes, nv.eval(&q).nodes);
        assert_eq!(ap.eval(&q).nodes, vec![NodeId(12)]);
    }

    #[test]
    fn empty_intermediate_join_short_circuits() {
        let g = moviedb();
        let (idx, t) = setup(&g, &[]);
        let ap = ApexProcessor::new(&g, &idx, &t);
        // `year` exists only under movie 8; `year.title` has no instance.
        let q = q1(&g, "year.title");
        let out = ap.eval(&q);
        assert!(out.nodes.is_empty());
    }

    #[test]
    fn qtype2_self_label_through_cycle() {
        // //movie//movie across reference edges; verify against naive
        // rather than hand-reasoning the cycle structure.
        let g = moviedb();
        let (idx, t) = setup(&g, &[]);
        let ap = ApexProcessor::new(&g, &idx, &t);
        let nv = NaiveProcessor::new(&g, &t);
        let movie = g.label_id("movie").unwrap();
        let q = Query::AncestorDescendant {
            first: movie,
            last: movie,
        };
        assert_eq!(ap.eval(&q).nodes, nv.eval(&q).nodes);
    }

    #[test]
    fn unknown_label_yields_empty() {
        let g = moviedb();
        let (idx, t) = setup(&g, &[]);
        let ap = ApexProcessor::new(&g, &idx, &t);
        // `PLAYS` does not exist in moviedb — build a query with a label
        // id that is valid in another graph. Use a fresh label by parsing
        // against the same graph is impossible; instead use a path whose
        // combination yields empty.
        let q = q1(&g, "title.actor");
        assert!(ap.eval(&q).nodes.is_empty());
    }

    #[test]
    fn generation_tags_partition_the_shared_pool() {
        let g = moviedb();
        let (idx, t) = setup(&g, &["actor.name"]);
        let buf = BufferHandle::unbounded();
        let q = q1(&g, "actor.name");
        let gen0 = ApexProcessor::with_buffer_tagged(&g, &idx, &t, buf.clone(), 0);
        let cold0 = gen0.eval(&q);
        assert!(cold0.cost.pages_read > 0);
        assert_eq!(gen0.eval(&q).cost.pages_read, 0, "same tag re-runs hit");
        // A processor over the *same* index under a different tag models
        // a freshly published snapshot: its objects are distinct, so the
        // first run must miss instead of phantom-hitting gen-0 pages.
        let gen1 = ApexProcessor::with_buffer_tagged(&g, &idx, &t, buf.clone(), 1);
        let cold1 = gen1.eval(&q);
        assert_eq!(cold1.cost.pages_read, cold0.cost.pages_read);
        assert_eq!(gen1.eval(&q).cost.pages_read, 0);
    }

    #[test]
    fn operators_attribute_all_pages_and_pool_is_cross_query() {
        let g = moviedb();
        let (idx, t) = setup(&g, &[]);
        let ap = ApexProcessor::new(&g, &idx, &t);
        let q = q1(&g, "director.movie.title");
        let cold = ap.eval(&q);
        assert!(cold.cost.pages_read > 0);
        // Every page charged by the query is attributed to an operator.
        let attributed: u64 = OpKind::ALL
            .iter()
            .map(|&k| cold.cost.ops.get(k).pages_read())
            .sum();
        assert_eq!(attributed, cold.cost.pages_read);
        assert!(cold.cost.ops.get(OpKind::MultiwayJoin).invocations >= 1);
        // The pool outlives queries: re-running is all buffer hits.
        let warm = ap.eval(&q);
        assert_eq!(warm.cost.pages_read, 0, "warm run must hit the pool");
        let s = ap.buffer().unwrap().stats();
        assert!(s.hits > 0 && s.misses > 0);
    }
}
