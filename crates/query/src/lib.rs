//! # apex-query — queries, workloads, and query processors
//!
//! Implements §6.1 of the APEX paper end to end:
//!
//! * [`ast::Query`] — the three evaluated query types: QTYPE1
//!   (`//l_i/l_{i+1}/…/l_n`, optionally with the `=>` dereference
//!   operator), QTYPE2 (`//l_i//l_j`), QTYPE3
//!   (`//l_1/…/l_n[text() = value]`);
//! * [`generator`] — the random query/workload generators described in
//!   "Query Workloads" (5000 QTYPE1 with ~25 % simple expressions, 500
//!   QTYPE2, 1000 non-empty QTYPE3; workload = 20 % sample);
//! * [`apex_qp`] — the APEX query processor: longest-suffix segmentation
//!   over `H_APEX`, extent unions, multi-way joins of edge sets;
//! * [`guide_qp`] — the strong-DataGuide / 1-index processor: query
//!   pruning & rewriting by (memoized) exhaustive navigation of the index
//!   graph, as an automaton-product traversal;
//! * [`fabric_qp`] — the Index Fabric processor (key search / whole-trie
//!   traversal);
//! * [`naive`] — a direct graph-traversal evaluator used as the
//!   correctness oracle for every other processor;
//! * [`exec`] — the shared physical execution layer (extent scans,
//!   unions, semijoins, table probes) every processor evaluates
//!   through, charging a cross-query buffer pool and attributing cost
//!   per operator;
//! * [`batch`] — batch runner collecting wall time + logical costs per
//!   query set (the unit Figures 13–15 report);
//! * [`stats`] — the shared nearest-rank percentile / unit-conversion
//!   helpers every latency reporter (batch, bench, net) uses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apex_qp;
pub mod ast;
pub mod batch;
pub mod exec;
pub mod explain;
pub mod fabric_qp;
pub mod generator;
pub mod guide_qp;
pub mod naive;
pub mod plan;
pub mod stats;

pub use ast::Query;
pub use batch::{
    run_adaptive, run_batch, run_batch_parallel, AdaptiveStats, BatchStats, GenerationRow,
    QueryOutput, QueryProcessor,
};
pub use exec::ExecContext;
pub use explain::{explain_apex, Plan, SegmentPlan};
pub use generator::{GeneratorConfig, QuerySets};
pub use plan::{JoinOrder, JoinOrderPolicy, OpForecast, PathPlan, PlanReport, Planner};
