// Fixture: exit codes carried by value; clean everywhere.

pub fn verdict(ok: bool) -> std::process::ExitCode {
    if ok {
        std::process::ExitCode::SUCCESS
    } else {
        std::process::ExitCode::FAILURE
    }
}
