// Fixture: pool access through shared handles; clean everywhere.

pub fn disciplined(buf: &BufferHandle) -> u64 {
    buf.touch(ObjectId::new(Space::Raw, 1), 8)
}
