//! A justified allow: the single ownership-handoff copy at operator
//! exit, suppressed on the line above the call.

pub struct MergeScratch {
    out: Vec<u32>,
}

pub fn handoff(scratch: &mut MergeScratch) -> Vec<u32> {
    // apex-lint: allow(hot-path-alloc): ownership handoff at operator exit keeps the scratch capacity
    scratch.out.clone()
}
