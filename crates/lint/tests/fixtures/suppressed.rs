// Fixture: justified suppressions silence findings, on the same line or
// from the line above.

pub fn charge(cost: &mut Cost) {
    cost.pages_read += 1; // apex-lint: allow(cost-io-writes): fixture-local storage layer
    // apex-lint: allow(cost-io-writes): standalone comment covers the next line
    cost.extent_pairs += 2;
}

pub fn brittle(input: Option<u32>) -> u32 {
    // apex-lint: allow(no-panic): fixture invariant, cannot be None here
    input.unwrap()
}
