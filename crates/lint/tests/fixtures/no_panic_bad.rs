//! Fixture: panicking calls in library code. The doc mention of
//! `.unwrap()` here and the string below must NOT fire; the real calls
//! must.

pub fn brittle(input: Option<u32>, table: &std::collections::HashMap<u32, u32>) -> u32 {
    let a = input.unwrap(); // line 6: finding
    let b = table.get(&a).expect("present"); // line 7: finding
    if *b > 100 {
        panic!("too big: {b}"); // line 9: finding
    }
    let c = input.unwrap_or_default(); // unwrap_or_default is fine
    let d = input.unwrap_or_else(|| 3); // unwrap_or_else is fine
    let msg = "calling .unwrap() or panic! in a string is fine";
    let _ = msg;
    a + c + d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3); // test code: clean
        let r: Result<u32, ()> = Ok(1);
        r.expect("fine in tests"); // test code: clean
    }
}
