//! The disciplined shape: buffers come in from scratch or &mut params,
//! and the one real allocation lives in the *Scratch constructor.

pub struct MergeScratch {
    out: Vec<u32>,
}

impl MergeScratch {
    pub fn new() -> Self {
        MergeScratch {
            out: Vec::with_capacity(64),
        }
    }
}

pub fn merge(xs: &[u32], scratch: &mut MergeScratch, acc: &mut Vec<u32>) -> usize {
    scratch.out.clear();
    for &x in xs {
        scratch.out.push(x);
    }
    acc.extend(scratch.out.iter().copied());
    scratch.out.len()
}
