//! The cycle finding anchors at the first edge of its canonical
//! rotation; a justified allow on that line silences it.

use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let _ga = self.a.lock();
        let _gb = self.b.lock(); // apex-lint: allow(lock-order): startup-only path, single-threaded by construction
        0
    }

    pub fn backward(&self) -> u32 {
        let _gb = self.b.lock();
        let _ga = self.a.lock();
        1
    }
}
