//! Consistent acquisition order and blocking under at most one guard.

use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let _ga = self.a.lock();
        let _gb = self.b.lock();
        0
    }

    pub fn also_forward(&self) -> u32 {
        let _ga = self.a.lock();
        let _gb = self.b.lock();
        1
    }

    pub fn wait_one(&self) -> u32 {
        let _ga = self.a.lock();
        std::thread::sleep(std::time::Duration::from_millis(1));
        2
    }
}
