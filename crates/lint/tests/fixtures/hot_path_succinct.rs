//! Succinct-extent shape: builders may allocate (they materialize the
//! succinct form), the query-time cursor surface may not.

pub struct PackedU32s {
    words: Vec<u64>,
}

impl PackedU32s {
    pub fn pack(values: &[u32]) -> Self {
        let mut words = Vec::with_capacity(values.len());
        for &v in values {
            words.push(v as u64);
        }
        PackedU32s { words }
    }

    pub fn from_sorted(values: &[u32]) -> Self {
        Self::pack(&values.to_vec())
    }

    pub fn to_vec(&self) -> Vec<u32> {
        self.words.iter().map(|&w| w as u32).collect()
    }

    pub fn probe(&self, i: usize) -> u64 {
        let copied = self.words.clone();
        copied.get(i).copied().unwrap_or(0)
    }
}

pub fn fill(window: &mut Vec<u64>, src: &PackedU32s) -> usize {
    window.clear();
    window.extend(src.words.iter().copied());
    window.len()
}
