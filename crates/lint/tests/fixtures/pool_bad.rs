// Fixture: private buffer pools constructed outside storage/batch.

pub fn rogue_pools() {
    let a = BufferManager::unbounded(PageModel::default()); // line 4: finding
    let b = BufferManager::with_capacity_pages(64); // line 5: finding
    let c = PageCache::new(); // line 6: finding
    let d = PageCache::default(); // line 7: finding
    let ok = BufferHandle::unbounded(); // handles are fine: clean
    drop((a, b, c, d, ok));
}
