//! Total variant: `get` cannot panic, so the serving path is safe.

pub fn decode(v: u32) -> u32 {
    let table = [10u32, 20, 30];
    table.get(v as usize).copied().unwrap_or(0)
}
