// Fixture: Result-propagating library code; clean everywhere.

pub fn sturdy(input: Option<u32>) -> Result<u32, String> {
    let a = input.ok_or_else(|| "missing input".to_string())?;
    let Some(b) = a.checked_mul(2) else {
        return Err("overflow".to_string());
    };
    Ok(b)
}
