// Fixture: only reads and non-I/O counter writes; clean at any path.

pub fn observe(cost: &Cost, q: &mut Cost) {
    let pages = cost.pages_read;
    let pairs = cost.extent_pairs;
    q.index_edges += 1;
    q.hash_lookups += pages + pairs;
    assert!(cost.pages_read == 0 || cost.table_probes <= pairs);
}
