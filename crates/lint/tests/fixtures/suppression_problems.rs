// Fixture: suppression hygiene findings.

pub fn problems(cost: &mut Cost, input: Option<u32>) -> u32 {
    cost.pages_read += 1; // apex-lint: allow(cost-io-writes)
    // ^ line 4: suppresses, but bad-suppression (no justification)
    let x = input.unwrap_or(0); // apex-lint: allow(no-panic): nothing fires here -> unused
    cost.hash_lookups += 1; // apex-lint: allow(not-a-rule): unknown rule name
    x
}
