//! Same shape as the bad fixture, with a justified fn-level allow on
//! the line above the `fn` — one comment covers every site inside.

// apex-lint: allow(panic-reachability): v is range-checked at the wire boundary
pub fn decode(v: u32) -> u32 {
    let table = [10u32, 20, 30];
    table[v as usize]
}
