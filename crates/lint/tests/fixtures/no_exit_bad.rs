// Fixture: process::exit from a library crate.

pub fn bail(code: i32) {
    std::process::exit(code); // line 4: finding
}

pub fn bail_imported(code: i32) {
    use std::process;
    process::exit(code); // line 9: finding
}
