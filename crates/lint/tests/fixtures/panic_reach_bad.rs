//! Reached from the serving root: `decode` can panic via indexing.

pub fn decode(v: u32) -> u32 {
    let table = [10u32, 20, 30];
    table[v as usize]
}

/// Nothing calls this, so its panic site is the per-site rules'
/// business, not reachability's.
pub fn orphan(v: u32) -> u32 {
    let table = [1u32];
    table[v as usize]
}
