//! Fixture: a crate root carrying the required attribute.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Nothing to see.
pub fn noop() {}
