//! Fixture: a crate root without `#![forbid(unsafe_code)]`.
//! `#[forbid(unsafe_code)]` on an item does not count — the crate-level
//! inner attribute is required.

#[forbid(unsafe_code)]
pub mod inner {}
