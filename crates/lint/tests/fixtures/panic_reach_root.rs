//! Serving-root fixture: linted as `crates/net/src/server.rs`, every
//! non-test fn here is a reachability root.

pub fn serve(v: u32) -> u32 {
    handler::decode(v)
}
