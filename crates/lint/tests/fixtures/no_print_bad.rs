// Fixture: terminal output from a library crate.

pub fn chatty(x: u32) {
    println!("x = {x}"); // line 4: finding
    eprintln!("warn: {x}"); // line 5: finding
    print!("{x}"); // line 6: finding
    let s = "println! in a string is fine";
    let _ = s;
}

#[cfg(test)]
mod tests {
    #[test]
    fn debug_prints_in_tests_are_fine() {
        println!("test output is exempt");
    }
}
