//! Opposite acquisition orders plus blocking under two guards.

use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let _ga = self.a.lock();
        let _gb = self.b.lock();
        0
    }

    pub fn backward(&self) -> u32 {
        let _gb = self.b.lock();
        let _ga = self.a.lock();
        1
    }

    pub fn drain(&self) -> u32 {
        let _ga = self.a.lock();
        let _gb = self.b.lock();
        std::thread::sleep(std::time::Duration::from_millis(1));
        2
    }
}
