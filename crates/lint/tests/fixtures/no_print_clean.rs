// Fixture: library output through io::Write; clean everywhere.

use std::io::{self, Write};

pub fn report(mut w: impl Write, x: u32) -> io::Result<()> {
    writeln!(w, "x = {x}")
}
