//! Allocation outside the *Scratch constructor on the kernel hot path.

pub struct MergeScratch {
    out: Vec<u32>,
}

impl MergeScratch {
    pub fn new() -> Self {
        MergeScratch { out: Vec::new() }
    }
}

pub fn merge(xs: &[u32], scratch: &mut MergeScratch, acc: &mut Vec<u32>) -> usize {
    let doubled = xs.to_vec();
    let mut tmp = Vec::new();
    tmp.push(doubled.len() as u32);
    scratch.out.push(xs.len() as u32);
    acc.extend(tmp.iter().copied());
    scratch.out.len()
}
