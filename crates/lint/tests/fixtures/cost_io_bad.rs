// Fixture: Cost I/O counter writes outside the storage/executor layers.
// Linted as a file in crates/query (not exec.rs), expect 3 findings.

pub fn charge(cost: &mut Cost) {
    cost.pages_read += 1; // line 5: finding
    cost.extent_pairs = 7; // line 6: finding
    cost.table_probes += probe_count(); // line 7: finding
    cost.hash_lookups += 1; // not an I/O counter: clean
    let snapshot = cost.pages_read; // read, not write: clean
    let fresh = Cost {
        pages_read: snapshot, // struct literal, not a field write: clean
        ..Cost::default()
    };
    drop(fresh);
}

#[cfg(test)]
mod tests {
    #[test]
    fn writes_in_tests_are_fine() {
        let mut c = Cost::default();
        c.pages_read += 10; // test code: clean
    }
}
