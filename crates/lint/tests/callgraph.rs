//! Unit tests for the workspace call graph on synthetic crates: typed
//! vs fallback resolution, local/ctor/field-chain typing, leaf-crate
//! exclusion, panic-site extraction, and the assert exemption.

use apex_lint::callgraph::CallGraph;
use apex_lint::Workspace;

fn build(files: &[(&str, &str)]) -> CallGraph {
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|&(p, s)| (p.to_string(), s.to_string()))
        .collect();
    let ws = Workspace::from_sources(&sources);
    CallGraph::build(&ws)
}

#[test]
fn self_calls_resolve_to_the_enclosing_impl() {
    let g = build(&[(
        "crates/core/src/a.rs",
        "pub struct Q { n: u32 }\n\
         impl Q {\n\
             pub fn step(&self) -> u32 { self.incr() }\n\
             fn incr(&self) -> u32 { self.n + 1 }\n\
         }\n\
         pub struct R;\n\
         impl R { pub fn incr(&self) -> u32 { 0 } }\n",
    )]);
    let step = g.fn_id("Q::step").unwrap();
    let q_incr = g.fn_id("Q::incr").unwrap();
    let edges = &g.edges[step];
    assert_eq!(edges.len(), 1, "R::incr must not be a candidate");
    assert_eq!(edges[0].callee, q_incr);
    assert!(!edges[0].fallback);
}

#[test]
fn untyped_receivers_fall_back_to_all_methods_and_are_flagged() {
    let g = build(&[(
        "crates/core/src/a.rs",
        "pub struct Q;\n\
         impl Q { pub fn poke(&self) -> u32 { 1 } }\n\
         pub struct R;\n\
         impl R { pub fn poke(&self) -> u32 { 2 } }\n\
         pub fn run(h: &Handle) -> u32 { h.poke() }\n",
    )]);
    let run = g.fn_id("run").unwrap();
    // `Handle` is not a workspace type, so both `poke`s are candidates —
    // but every such edge is marked as the over-approximation it is.
    assert_eq!(g.edges[run].len(), 2);
    assert!(g.edges[run].iter().all(|e| e.fallback));
    // And reachability refuses to walk them.
    let reach = g.reach_from(&[run]);
    assert_eq!(reach.len(), 1);
    assert!(reach.contains_key(&run));
}

#[test]
fn let_bound_locals_and_ctor_results_type_their_receivers() {
    let g = build(&[(
        "crates/core/src/a.rs",
        "pub struct Q;\n\
         impl Q {\n\
             pub fn new() -> Q { Q }\n\
             pub fn poke(&self) -> u32 { 1 }\n\
         }\n\
         pub struct R;\n\
         impl R { pub fn poke(&self) -> u32 { 2 } }\n\
         pub fn via_local() -> u32 {\n\
             let q = Q::new();\n\
             q.poke()\n\
         }\n\
         pub fn via_ctor() -> u32 { Q::new().poke() }\n",
    )]);
    let q_new = g.fn_id("Q::new").unwrap();
    let q_poke = g.fn_id("Q::poke").unwrap();
    for caller in ["via_local", "via_ctor"] {
        let id = g.fn_id(caller).unwrap();
        let mut callees: Vec<usize> = g.edges[id].iter().map(|e| e.callee).collect();
        callees.sort_unstable();
        let mut want = vec![q_new, q_poke];
        want.sort_unstable();
        assert_eq!(callees, want, "{caller} should hit Q only");
        assert!(g.edges[id].iter().all(|e| !e.fallback), "{caller}");
    }
}

#[test]
fn field_chains_walk_declared_field_types() {
    let g = build(&[(
        "crates/core/src/a.rs",
        "pub struct Inner;\n\
         impl Inner { pub fn fire(&self) -> u32 { 9 } }\n\
         pub struct Outer { inner: Inner }\n\
         impl Outer { pub fn go(&self) -> u32 { self.inner.fire() } }\n\
         pub struct Decoy;\n\
         impl Decoy { pub fn fire(&self) -> u32 { 0 } }\n",
    )]);
    let go = g.fn_id("Outer::go").unwrap();
    let inner_fire = g.fn_id("Inner::fire").unwrap();
    let edges = &g.edges[go];
    assert_eq!(edges.len(), 1, "Decoy::fire must not be a candidate");
    assert_eq!(edges[0].callee, inner_fire);
    assert!(!edges[0].fallback);
}

#[test]
fn leaf_crates_are_not_cross_crate_candidates() {
    let g = build(&[
        (
            "crates/core/src/a.rs",
            "pub fn caller() -> u32 { helper() }\npub fn helper() -> u32 { 1 }\n",
        ),
        ("crates/cli/src/main.rs", "pub fn helper() -> u32 { 2 }\n"),
    ]);
    let caller = g.fn_id("caller").unwrap();
    let core_helper = g.fn_id("core::a::helper").unwrap();
    let callees: Vec<usize> = g.edges[caller].iter().map(|e| e.callee).collect();
    assert_eq!(callees, [core_helper]);
}

#[test]
fn panic_sites_are_extracted_and_asserts_are_exempt() {
    let g = build(&[(
        "crates/core/src/p.rs",
        "pub fn sites(xs: &[u32], r: Result<u32, ()>) -> u32 {\n\
             debug_assert!(xs[0] > 0);\n\
             let a = xs[1];\n\
             let b = r.unwrap();\n\
             a + b\n\
         }\n",
    )]);
    let id = g.fn_id("sites").unwrap();
    let whats: Vec<&str> = g.panic_sites[id].iter().map(|s| s.what).collect();
    // The indexing inside debug_assert! is the asserted contract, not a
    // panic hazard; the bare xs[1] and the unwrap are.
    assert_eq!(whats, ["indexing", ".unwrap()"]);
}

#[test]
fn qualified_free_calls_resolve_across_files() {
    let g = build(&[
        (
            "crates/net/src/server.rs",
            "pub fn serve(v: u32) -> u32 { handler::decode(v) }\n",
        ),
        (
            "crates/net/src/handler.rs",
            "pub fn decode(v: u32) -> u32 { v + 1 }\n",
        ),
    ]);
    let serve = g.fn_id("net::server::serve").unwrap();
    let decode = g.fn_id("net::handler::decode").unwrap();
    let reach = g.reach_from(&[serve]);
    assert_eq!(reach.get(&decode), Some(&serve));
    assert_eq!(
        g.chain(&reach, decode),
        "net::server::serve -> net::handler::decode"
    );
}
