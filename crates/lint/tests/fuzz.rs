//! The analyzer must never panic, whatever it is fed: arbitrary bytes
//! (lexer robustness) and Rust-ish token soup (parser/call-graph/lock
//! walker robustness, since random bytes rarely lex into deep item
//! structure). The fixed paths route the soup through the workspace
//! rules too — server.rs makes everything a serving root, kernels.rs
//! arms the allocation rule.

use proptest::prelude::*;

/// Tokens weighted toward the constructs the parser and the analyses
/// actually dispatch on: item keywords, brace/paren soup, lock verbs,
/// panic sites, suppression comments, and half-finished literals.
const TOKENS: &[&str] = &[
    "fn",
    "f",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    "<",
    ">",
    ";",
    ",",
    ":",
    "::",
    ".",
    "=",
    "!",
    "#",
    "&",
    "mut",
    "self",
    "Self",
    "let",
    "impl",
    "struct",
    "enum",
    "trait",
    "mod",
    "pub",
    "where",
    "for",
    "match",
    "if",
    "else",
    "loop",
    "test",
    "cfg",
    "S",
    "Q",
    "x",
    "y",
    "scratch",
    "Mutex",
    "RwLock",
    "Arc",
    "Vec",
    "new",
    "lock",
    "read",
    "write",
    "drop",
    "unwrap",
    "expect",
    "panic",
    "push",
    "extend",
    "collect",
    "to_vec",
    "clone",
    "recv",
    "wait",
    "sleep",
    "join",
    "debug_assert",
    "0",
    "1u8",
    "b'a'",
    "'a'",
    "'static",
    "\"s",
    "\"done\"",
    "// apex-lint:",
    "// apex-lint: allow(no-panic): x",
    "/*",
    "r#\"",
    "->",
    "=>",
    "..",
    "..=",
    "<<",
    ">>",
];

proptest! {
    #[test]
    fn lint_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(0u8..=255u8, 0..400usize),
    ) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let _ = apex_lint::lint_str("crates/net/src/server.rs", &src);
    }

    #[test]
    fn lint_never_panics_on_token_soup(
        picks in proptest::collection::vec(0usize..TOKENS.len(), 0..150usize),
        newlines in proptest::collection::vec(0usize..8usize, 0..150usize),
    ) {
        let mut src = String::new();
        for (k, &p) in picks.iter().enumerate() {
            src.push_str(TOKENS[p]);
            // Sprinkle newlines so line comments sometimes terminate.
            if newlines.get(k).copied().unwrap_or(1) == 0 {
                src.push('\n');
            } else {
                src.push(' ');
            }
        }
        let _ = apex_lint::lint_str("crates/storage/src/kernels.rs", &src);
        let _ = apex_lint::lint_str("crates/query/src/exec.rs", &src);
    }
}
