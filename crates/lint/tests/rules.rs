//! Golden tests: each rule fires on a violating fixture, stays silent on
//! a clean one, and respects the allow-list paths and suppression
//! comments. Fixtures live under `tests/fixtures/` and are linted under
//! synthetic workspace paths so the path-based allow-lists are exercised
//! without touching the real tree.

use apex_lint::{lint_str, tally, Finding, Severity};

const COST_IO_BAD: &str = include_str!("fixtures/cost_io_bad.rs");
const COST_IO_CLEAN: &str = include_str!("fixtures/cost_io_clean.rs");
const NO_PANIC_BAD: &str = include_str!("fixtures/no_panic_bad.rs");
const NO_PANIC_CLEAN: &str = include_str!("fixtures/no_panic_clean.rs");
const FORBID_UNSAFE_BAD: &str = include_str!("fixtures/forbid_unsafe_bad.rs");
const FORBID_UNSAFE_CLEAN: &str = include_str!("fixtures/forbid_unsafe_clean.rs");
const NO_PRINT_BAD: &str = include_str!("fixtures/no_print_bad.rs");
const NO_PRINT_CLEAN: &str = include_str!("fixtures/no_print_clean.rs");
const NO_EXIT_BAD: &str = include_str!("fixtures/no_exit_bad.rs");
const NO_EXIT_CLEAN: &str = include_str!("fixtures/no_exit_clean.rs");
const POOL_BAD: &str = include_str!("fixtures/pool_bad.rs");
const POOL_CLEAN: &str = include_str!("fixtures/pool_clean.rs");
const SUPPRESSED: &str = include_str!("fixtures/suppressed.rs");
const SUPPRESSION_PROBLEMS: &str = include_str!("fixtures/suppression_problems.rs");
const PANIC_REACH_ROOT: &str = include_str!("fixtures/panic_reach_root.rs");
const PANIC_REACH_BAD: &str = include_str!("fixtures/panic_reach_bad.rs");
const PANIC_REACH_SUPPRESSED: &str = include_str!("fixtures/panic_reach_suppressed.rs");
const PANIC_REACH_CLEAN: &str = include_str!("fixtures/panic_reach_clean.rs");
const LOCK_ORDER_BAD: &str = include_str!("fixtures/lock_order_bad.rs");
const LOCK_ORDER_SUPPRESSED: &str = include_str!("fixtures/lock_order_suppressed.rs");
const LOCK_ORDER_CLEAN: &str = include_str!("fixtures/lock_order_clean.rs");
const HOT_PATH_BAD: &str = include_str!("fixtures/hot_path_bad.rs");
const HOT_PATH_SUPPRESSED: &str = include_str!("fixtures/hot_path_suppressed.rs");
const HOT_PATH_CLEAN: &str = include_str!("fixtures/hot_path_clean.rs");
const HOT_PATH_SUCCINCT: &str = include_str!("fixtures/hot_path_succinct.rs");

/// Lints a multi-file synthetic workspace.
fn lint_files(files: &[(&str, &str)]) -> Vec<Finding> {
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|&(p, s)| (p.to_string(), s.to_string()))
        .collect();
    apex_lint::engine::lint(&apex_lint::Workspace::from_sources(&sources))
}

/// `(rule, line)` pairs, in report order.
fn hits(findings: &[Finding]) -> Vec<(&'static str, u32)> {
    findings.iter().map(|f| (f.rule, f.line)).collect()
}

/// Assert the fixture produces no findings when linted at `rel_path`.
fn assert_clean(rel_path: &str, src: &str) {
    let findings = lint_str(rel_path, src);
    assert!(
        findings.is_empty(),
        "unexpected findings at {rel_path}: {:?}",
        hits(&findings)
    );
}

// --- rule 1: cost-io-writes -------------------------------------------------

#[test]
fn cost_io_writes_fires_outside_storage_and_exec() {
    let findings = lint_str("crates/query/src/apex_qp.rs", COST_IO_BAD);
    assert_eq!(
        hits(&findings),
        [
            ("cost-io-writes", 5),
            ("cost-io-writes", 6),
            ("cost-io-writes", 7),
        ]
    );
    assert!(findings.iter().all(|f| f.severity == Severity::Error));
}

#[test]
fn cost_io_writes_allows_storage_and_the_executor() {
    assert_clean("crates/storage/src/cost.rs", COST_IO_BAD);
    assert_clean("crates/query/src/exec.rs", COST_IO_BAD);
    // The cost-based planner charges I/O through attributed closures
    // (reverse semijoins fault blocks), so it is an allowed writer too.
    assert_clean("crates/query/src/plan.rs", COST_IO_BAD);
    // Recovery's WAL segment scan reports the log pages it faults
    // through the same counters, so core::wal is an allowed writer.
    assert_clean("crates/core/src/wal.rs", COST_IO_BAD);
}

#[test]
fn cost_io_reads_and_compute_counters_are_clean() {
    assert_clean("crates/query/src/apex_qp.rs", COST_IO_CLEAN);
}

// --- rule 2: no-panic -------------------------------------------------------

#[test]
fn no_panic_fires_in_library_code_only() {
    let findings = lint_str("crates/core/src/lib.rs", NO_PANIC_BAD);
    // Line 6 unwrap, line 7 expect, line 9 panic!; the #[cfg(test)]
    // module, doc comments, and string literals stay silent. The fixture
    // is also a crate root without `#![forbid(unsafe_code)]`.
    assert_eq!(
        hits(&findings),
        [
            ("forbid-unsafe", 1),
            ("no-panic", 6),
            ("no-panic", 7),
            ("no-panic", 9),
        ]
    );
}

#[test]
fn no_panic_exempts_the_cli() {
    assert_clean("crates/cli/src/util.rs", NO_PANIC_BAD);
}

#[test]
fn no_panic_stays_silent_on_result_propagation() {
    assert_clean("crates/core/src/sturdy.rs", NO_PANIC_CLEAN);
}

// --- rule 3: forbid-unsafe --------------------------------------------------

#[test]
fn forbid_unsafe_requires_the_crate_level_attribute() {
    let findings = lint_str("crates/core/src/lib.rs", FORBID_UNSAFE_BAD);
    assert_eq!(hits(&findings), [("forbid-unsafe", 1)]);

    let findings = lint_str("crates/cli/src/main.rs", FORBID_UNSAFE_BAD);
    assert_eq!(hits(&findings), [("forbid-unsafe", 1)]);
}

#[test]
fn forbid_unsafe_accepts_the_attribute_and_skips_non_roots() {
    assert_clean("crates/core/src/lib.rs", FORBID_UNSAFE_CLEAN);
    // Not a crate root: the rule does not apply.
    assert_clean("crates/core/src/inner.rs", FORBID_UNSAFE_BAD);
}

// --- rule 4: no-print -------------------------------------------------------

#[test]
fn no_print_fires_in_library_crates() {
    let findings = lint_str("crates/core/src/out.rs", NO_PRINT_BAD);
    assert_eq!(
        hits(&findings),
        [("no-print", 4), ("no-print", 5), ("no-print", 6)]
    );
}

#[test]
fn no_print_exempts_cli_and_bench() {
    assert_clean("crates/cli/src/report.rs", NO_PRINT_BAD);
    assert_clean("crates/bench/src/bin/b.rs", NO_PRINT_BAD);
}

#[test]
fn no_print_stays_silent_on_writeln_to_a_writer() {
    assert_clean("crates/core/src/out.rs", NO_PRINT_CLEAN);
}

// --- rule 5: no-exit --------------------------------------------------------

#[test]
fn no_exit_fires_in_library_crates() {
    let findings = lint_str("crates/query/src/driver.rs", NO_EXIT_BAD);
    assert_eq!(hits(&findings), [("no-exit", 4), ("no-exit", 9)]);
}

#[test]
fn no_exit_exempts_the_cli_and_exit_codes() {
    assert_clean("crates/cli/src/args.rs", NO_EXIT_BAD);
    assert_clean("crates/query/src/driver.rs", NO_EXIT_CLEAN);
}

// --- rule 6: pool-discipline ------------------------------------------------

#[test]
fn pool_discipline_fires_outside_storage_and_batch() {
    let findings = lint_str("crates/query/src/plan.rs", POOL_BAD);
    assert_eq!(
        hits(&findings),
        [
            ("pool-discipline", 4),
            ("pool-discipline", 5),
            ("pool-discipline", 6),
            ("pool-discipline", 7),
        ]
    );
}

#[test]
fn pool_discipline_allows_storage_and_batch() {
    assert_clean("crates/storage/src/pool.rs", POOL_BAD);
    assert_clean("crates/query/src/batch.rs", POOL_BAD);
}

#[test]
fn pool_discipline_ignores_handle_use() {
    assert_clean("crates/query/src/plan.rs", POOL_CLEAN);
}

// --- rule 7: panic-reachability ---------------------------------------------

#[test]
fn panic_reachability_flags_reachable_panics_only() {
    let findings = lint_files(&[
        ("crates/net/src/server.rs", PANIC_REACH_ROOT),
        ("crates/net/src/handler.rs", PANIC_REACH_BAD),
    ]);
    // `decode` (fn at line 3) is reached from the root and flagged at
    // its definition line; `orphan` has the same panic site but no
    // caller, so reachability stays silent about it.
    let got: Vec<(&str, &str, u32)> = findings
        .iter()
        .map(|f| (f.file.as_str(), f.rule, f.line))
        .collect();
    assert_eq!(
        got,
        [("crates/net/src/handler.rs", "panic-reachability", 3)]
    );
    assert!(
        findings[0]
            .message
            .contains("net::server::serve -> net::handler::decode"),
        "finding should carry the call chain: {}",
        findings[0].message
    );
}

#[test]
fn panic_reachability_fn_level_suppression_covers_all_sites() {
    let findings = lint_files(&[
        ("crates/net/src/server.rs", PANIC_REACH_ROOT),
        ("crates/net/src/handler.rs", PANIC_REACH_SUPPRESSED),
    ]);
    assert!(findings.is_empty(), "unexpected: {:?}", hits(&findings));
}

#[test]
fn panic_reachability_accepts_total_code() {
    let findings = lint_files(&[
        ("crates/net/src/server.rs", PANIC_REACH_ROOT),
        ("crates/net/src/handler.rs", PANIC_REACH_CLEAN),
    ]);
    assert!(findings.is_empty(), "unexpected: {:?}", hits(&findings));
}

// --- rule 8: lock-order -----------------------------------------------------

#[test]
fn lock_order_reports_cycles_and_blocking_under_two_guards() {
    let findings = lint_str("crates/core/src/sync.rs", LOCK_ORDER_BAD);
    // Line 13: the a→b edge that closes the cycle with backward's b→a.
    // Line 26: sleep while both guards are held.
    assert_eq!(hits(&findings), [("lock-order", 13), ("lock-order", 26)]);
    assert!(findings[0].message.contains("cycle"));
    assert!(findings[1].message.contains("blocks while 2 lock guards"));
}

#[test]
fn lock_order_suppression_at_the_cycle_anchor() {
    assert_clean("crates/core/src/sync.rs", LOCK_ORDER_SUPPRESSED);
}

#[test]
fn lock_order_accepts_consistent_order_and_single_guard_blocking() {
    assert_clean("crates/core/src/sync.rs", LOCK_ORDER_CLEAN);
}

// --- rule 9: hot-path-alloc -------------------------------------------------

#[test]
fn hot_path_alloc_fires_in_kernels_outside_scratch_ctors() {
    let findings = lint_str("crates/storage/src/kernels.rs", HOT_PATH_BAD);
    // to_vec, a fresh Vec::new, and a push into it; the Scratch ctor's
    // Vec::new, the scratch-rooted push and the &mut-param extend pass.
    assert_eq!(
        hits(&findings),
        [
            ("hot-path-alloc", 14),
            ("hot-path-alloc", 15),
            ("hot-path-alloc", 16),
        ]
    );
}

#[test]
fn hot_path_alloc_scopes_to_semijoin_owners_in_exec() {
    // The same fixture linted as exec.rs is clean: its free fns are not
    // semijoin/join operators, and exec's plumbing is out of scope.
    assert_clean("crates/query/src/exec.rs", HOT_PATH_BAD);
    // And entirely out of scope elsewhere in the storage crate.
    assert_clean("crates/storage/src/cost.rs", HOT_PATH_BAD);
}

#[test]
fn hot_path_alloc_covers_succinct_query_surface() {
    // Linted as succinct.rs, the non-builder fn `merge` fires exactly
    // like it does in kernels.rs.
    let findings = lint_str("crates/storage/src/succinct.rs", HOT_PATH_BAD);
    assert_eq!(
        hits(&findings),
        [
            ("hot-path-alloc", 14),
            ("hot-path-alloc", 15),
            ("hot-path-alloc", 16),
        ]
    );
    // Builders (pack/from_sorted/to_vec/new) keep their allocations;
    // the query-time `probe` clone is the only finding, and the window
    // fill writing through a &mut param stays clean.
    let findings = lint_str("crates/storage/src/succinct.rs", HOT_PATH_SUCCINCT);
    assert_eq!(hits(&findings), [("hot-path-alloc", 26)]);
    // The builder exemption is succinct-only: the same shape linted as
    // kernels.rs fires inside the builders too.
    let findings = lint_str("crates/storage/src/kernels.rs", HOT_PATH_SUCCINCT);
    assert!(findings.len() > 1, "builders must fire outside succinct.rs");
}

#[test]
fn hot_path_alloc_suppression_and_clean_shape() {
    assert_clean("crates/storage/src/kernels.rs", HOT_PATH_SUPPRESSED);
    assert_clean("crates/storage/src/kernels.rs", HOT_PATH_CLEAN);
}

// --- suppression behavior ---------------------------------------------------

#[test]
fn justified_suppressions_silence_findings() {
    // Trailing same-line and standalone line-above forms both work.
    assert_clean("crates/query/src/apex_qp.rs", SUPPRESSED);
}

#[test]
fn suppression_hygiene_is_itself_linted() {
    let findings = lint_str("crates/query/src/apex_qp.rs", SUPPRESSION_PROBLEMS);
    assert_eq!(
        hits(&findings),
        [
            // Justification-free allow: the original finding is silenced
            // but the suppression itself is an error.
            ("bad-suppression", 4),
            // Suppression that never fires is dead weight: an error, so
            // the allow-comment inventory can never rot silently.
            ("stale-allow", 6),
            // Unknown rule name.
            ("bad-suppression", 7),
        ]
    );
    assert!(findings.iter().all(|f| f.severity == Severity::Error));
    // The suppressed cost write on line 4 must not reappear.
    assert!(findings.iter().all(|f| f.rule != "cost-io-writes"));
}

#[test]
fn tally_counts_errors_and_warnings() {
    let findings = lint_str("crates/query/src/apex_qp.rs", SUPPRESSION_PROBLEMS);
    assert_eq!(tally(&findings), (3, 0));
}

// --- the real workspace stays clean ----------------------------------------

#[test]
fn workspace_is_lint_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let findings = apex_lint::lint_workspace(&root).expect("workspace walk");
    let rendered = apex_lint::render_text(&findings);
    assert!(findings.is_empty(), "workspace has findings:\n{rendered}");
}
