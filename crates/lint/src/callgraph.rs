//! Workspace symbol table, conservative call graph, and the
//! `panic-reachability` analysis.
//!
//! Resolution is *name-based and over-approximate*: a method call
//! `recv.m(…)` whose receiver type cannot be determined resolves to
//! every workspace method named `m` — edges may point at functions the
//! program never calls, but a call the program does make is never
//! dropped (within the subset we model: no trait-object dispatch
//! tables, no function-pointer indirection). Three refinements keep the
//! over-approximation useful:
//!
//! 1. `self.m(…)` prefers the enclosing `impl`'s own method;
//! 2. receivers that are parameters (or `self` fields) with a known
//!    workspace type resolve through that type — and if the type is
//!    known but has no method `m`, the call is std/trait dispatch and
//!    contributes no edge;
//! 3. `cli`/`bench` are leaf binaries nothing imports, so their
//!    functions are never cross-crate resolution candidates.
//!
//! Panic *sites* are direct: `panic!`/`unreachable!`, `.unwrap()`,
//! `.expect()`, and `[…]` indexing (which can exceed bounds; `get`
//! cannot). `panic-reachability` then walks the graph from the serving
//! roots — every non-test function in `net::server`, `core::serve`,
//! `core::recover`, `query::exec`, and `shard::router` — and flags
//! each reachable function that contains a panic site, anchored at its
//! `fn` line so one justified suppression covers the whole function.
//! Recovery is a root because it runs before serving can start: a
//! panic there turns a torn log into a boot loop. The scatter-gather
//! router is a root because a panic in a connection or prober thread
//! silently unroutes every shard behind it.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::engine::{Finding, Severity, Workspace};
use crate::parse::FnItem;

/// Files whose non-test functions are serving roots: the worker/reader
/// loops of the socket server, the refresher, the query operators, and
/// the boot-time recovery path (which must survive arbitrarily torn or
/// corrupted logs without panicking).
pub const ROOT_FILES: &[&str] = &[
    "crates/net/src/server.rs",
    "crates/core/src/serve.rs",
    "crates/core/src/recover.rs",
    "crates/query/src/exec.rs",
    "crates/shard/src/router.rs",
];

/// Crates nothing else imports (binaries, the analyzer, the test
/// suite): their functions are never cross-crate resolution candidates,
/// which keeps name-collision edges from dragging them into the serving
/// path's reachable set.
const LEAF_CRATES: &[&str] = &["cli", "bench", "lint", "suite"];

/// Keywords that look like `ident (` but are not calls.
/// Contract-check macros whose argument lists are exempt from
/// panic-site scanning (the panic is the macro's purpose).
const ASSERT_MACROS: &[&str] = &[
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
];

const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "move", "ref", "mut", "let", "fn", "pub", "use", "mod", "struct", "enum", "union", "trait",
    "impl", "where", "unsafe", "dyn", "box", "async", "await", "yield", "const", "static", "type",
    "crate", "super", "extern",
];

/// One function in the flattened workspace symbol table.
pub struct FnNode {
    /// Index of the owning file in [`Workspace::files`].
    pub file: usize,
    /// Index into that file's [`crate::parse::ParsedFile::fns`].
    pub item: usize,
    /// Fully qualified display name, e.g. `net::server::Conn::respond`.
    pub qname: String,
}

/// One call edge, anchored at its call site.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Callee function id.
    pub callee: usize,
    /// Code-token index of the call in the *caller's* file.
    pub tok: usize,
    /// 1-based line of the call site.
    pub line: u32,
    /// True when the callee set came from the all-methods-of-this-name
    /// over-approximation (untyped receiver) rather than a typed
    /// resolution. Both rules traverse only typed edges — a phantom
    /// name-collision edge would manufacture unreachable panics and
    /// impossible deadlocks alike; fallback edges are kept on the graph
    /// for diagnostics and tests.
    pub fallback: bool,
}

/// A direct panic site inside one function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// 1-based line.
    pub line: u32,
    /// What panics there: `panic!`, `.unwrap()`, `.expect()`, `indexing`.
    pub what: &'static str,
}

/// The workspace call graph.
pub struct CallGraph {
    /// All functions, id-indexed.
    pub fns: Vec<FnNode>,
    /// Outgoing edges per function id (deduplicated, source order).
    pub edges: Vec<Vec<Edge>>,
    /// Direct panic sites per function id.
    pub panic_sites: Vec<Vec<PanicSite>>,
}

/// `crates/net/src/server.rs` → `net::server::`, `…/src/lib.rs` →
/// `core::` — the qname prefix contributed by the file's path.
fn path_prefix(rel_path: &str, crate_dir: &str) -> String {
    let mut prefix = String::new();
    if !crate_dir.is_empty() {
        prefix.push_str(crate_dir);
        prefix.push_str("::");
    }
    if let Some(after) = rel_path.split("/src/").nth(1) {
        for seg in after.split('/') {
            let seg = seg.strip_suffix(".rs").unwrap_or(seg);
            if seg == "lib" || seg == "main" || seg == "mod" {
                continue;
            }
            prefix.push_str(seg);
            prefix.push_str("::");
        }
    }
    prefix
}

impl CallGraph {
    /// Builds the symbol table and resolves every call site.
    pub fn build(ws: &Workspace<'_>) -> CallGraph {
        let mut fns = Vec::new();
        for (fi, file) in ws.files.iter().enumerate() {
            let prefix = path_prefix(file.ctx.rel_path, file.ctx.crate_dir);
            for (ii, item) in file.parsed.fns.iter().enumerate() {
                let mut qname = prefix.clone();
                for m in &item.modules {
                    qname.push_str(m);
                    qname.push_str("::");
                }
                if let Some(owner) = &item.owner {
                    qname.push_str(owner);
                    qname.push_str("::");
                }
                qname.push_str(&item.name);
                fns.push(FnNode {
                    file: fi,
                    item: ii,
                    qname,
                });
            }
        }

        let mut index = Index::default();
        for (id, node) in fns.iter().enumerate() {
            let item = item_of(ws, node);
            match &item.owner {
                Some(owner) => {
                    index.methods.entry(item.name.clone()).or_default().push(id);
                    index
                        .owner_methods
                        .entry((owner.clone(), item.name.clone()))
                        .or_default()
                        .push(id);
                }
                None => index.free.entry(item.name.clone()).or_default().push(id),
            }
        }
        for file in &ws.files {
            index.types.extend(file.parsed.types.iter().cloned());
            for f in &file.parsed.fields {
                index
                    .field_types
                    .entry((f.owner.clone(), f.name.clone()))
                    .or_insert_with(|| f.ty.clone());
            }
        }

        let mut graph = CallGraph {
            edges: vec![Vec::new(); fns.len()],
            panic_sites: vec![Vec::new(); fns.len()],
            fns,
        };
        for id in 0..graph.fns.len() {
            graph.scan_body(ws, &index, id);
        }
        graph
    }

    /// The function id whose qualified name ends with `suffix` (unique
    /// match required) — a test/diagnostic convenience.
    pub fn fn_id(&self, suffix: &str) -> Option<usize> {
        let mut found = None;
        for (id, node) in self.fns.iter().enumerate() {
            let hit = node.qname == suffix
                || node
                    .qname
                    .strip_suffix(suffix)
                    .is_some_and(|pre| pre.ends_with("::"));
            if hit {
                if found.is_some() {
                    return None;
                }
                found = Some(id);
            }
        }
        found
    }

    /// BFS over the *typed* edge relation from `roots` (fallback edges
    /// are not traversed — see [`Edge::fallback`]). Returns, for each
    /// reached id, its BFS predecessor (roots map to themselves).
    pub fn reach_from(&self, roots: &[usize]) -> BTreeMap<usize, usize> {
        let mut parent = BTreeMap::new();
        let mut queue = VecDeque::new();
        for &r in roots {
            if parent.insert(r, r).is_none() {
                queue.push_back(r);
            }
        }
        while let Some(id) = queue.pop_front() {
            for e in self.edges[id].iter().filter(|e| !e.fallback) {
                if parent.insert(e.callee, id).is_none() {
                    queue.push_back(e.callee);
                }
            }
        }
        parent
    }

    /// Renders `root → … → target` from a predecessor map.
    pub fn chain(&self, parent: &BTreeMap<usize, usize>, target: usize) -> String {
        let mut hops = vec![target];
        let mut cur = target;
        while let Some(&p) = parent.get(&cur) {
            if p == cur || hops.len() > 12 {
                break;
            }
            hops.push(p);
            cur = p;
        }
        hops.reverse();
        hops.iter()
            .map(|&id| self.fns[id].qname.as_str())
            .collect::<Vec<_>>()
            .join(" -> ")
    }

    /// Scans one function body for call edges and panic sites.
    fn scan_body(&mut self, ws: &Workspace<'_>, index: &Index, id: usize) {
        let node = &self.fns[id];
        let file = &ws.files[node.file];
        let item = &file.parsed.fns[node.item];
        let Some((open, close)) = item.body else {
            return;
        };
        // Nested fns own their tokens; skip their spans.
        let mut children: Vec<(usize, usize)> = file
            .parsed
            .fns
            .iter()
            .filter_map(|f| f.body)
            .filter(|&(o, c)| o > open && c < close)
            .collect();
        children.sort_unstable();

        let ctx = &file.ctx;
        let locals = local_types(ctx, open, close);
        let mut edges: Vec<Edge> = Vec::new();
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut child = 0usize;
        let mut i = open;
        while i <= close.min(ctx.code_len().saturating_sub(1)) {
            while child < children.len() && children[child].0 < i {
                child += 1;
            }
            if child < children.len() && children[child].0 == i {
                i = children[child].1 + 1;
                continue;
            }
            let t = ctx.text(i);

            // The assert family is a deliberate contract check — the
            // macro's own panic is the point, and any indexing inside
            // its arguments is part of the asserted condition. Skip the
            // argument list for panic-site purposes (call edges inside
            // it were already irrelevant: asserts guard, not dispatch).
            if !ctx.is_test(i)
                && !item.is_test
                && ASSERT_MACROS.contains(&t)
                && ctx.text(i + 1) == "!"
                && ctx.text(i + 2) == "("
            {
                let mut depth = 0i32;
                let mut j = i + 2;
                while j <= close {
                    match ctx.text(j) {
                        "(" => depth += 1,
                        ")" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                i = j + 1;
                continue;
            }

            // --- panic sites -------------------------------------------------
            if !ctx.is_test(i) && !item.is_test {
                if (t == "panic" || t == "unreachable") && ctx.text(i + 1) == "!" {
                    self.panic_sites[id].push(PanicSite {
                        line: ctx.line(i),
                        what: if t == "panic" {
                            "panic!"
                        } else {
                            "unreachable!"
                        },
                    });
                } else if t == "."
                    && (ctx.ident_is(i + 1, "unwrap") || ctx.ident_is(i + 1, "expect"))
                    && ctx.text(i + 2) == "("
                {
                    self.panic_sites[id].push(PanicSite {
                        line: ctx.line(i + 1),
                        what: if ctx.ident_is(i + 1, "unwrap") {
                            ".unwrap()"
                        } else {
                            ".expect()"
                        },
                    });
                } else if t == "[" && i > open {
                    let prev = ctx.text(i - 1);
                    let indexes_value = (ctx.is_ident(i - 1) && !KEYWORDS.contains(&prev))
                        || prev == ")"
                        || prev == "]";
                    // A full-range slice `[..]` of a Vec/slice cannot panic.
                    let full_range = ctx.text(i + 1) == ".." && ctx.text(i + 2) == "]";
                    if indexes_value && !full_range {
                        self.panic_sites[id].push(PanicSite {
                            line: ctx.line(i),
                            what: "indexing",
                        });
                    }
                }
            }

            // --- call edges --------------------------------------------------
            if ctx.is_ident(i) && !KEYWORDS.contains(&t) {
                let after = self.after_turbofish(ctx, i + 1);
                if ctx.text(after) == "(" {
                    let prev = if i == 0 { "" } else { ctx.text(i - 1) };
                    let (callees, fallback) = if prev == "." {
                        resolve_method(index, item, &locals, ctx, i)
                    } else if prev == "::" {
                        (resolve_qualified(index, item, ctx, i), false)
                    } else {
                        (resolve_bare(index, item, t), false)
                    };
                    for callee in callees {
                        let caller_crate = ctx.crate_dir;
                        let callee_file = &ws.files[self.fns[callee].file];
                        let callee_item = item_of(ws, &self.fns[callee]);
                        // Leaf binaries are never cross-crate targets;
                        // test fns are not compiled into the binary.
                        let leaf = LEAF_CRATES.contains(&callee_file.ctx.crate_dir);
                        if (leaf && callee_file.ctx.crate_dir != caller_crate)
                            || callee_item.is_test && !item.is_test
                        {
                            continue;
                        }
                        if seen.insert(callee) {
                            edges.push(Edge {
                                callee,
                                tok: i,
                                line: ctx.line(i),
                                fallback,
                            });
                        }
                    }
                }
            }
            i += 1;
        }
        self.edges[id] = edges;
    }

    /// If tokens at `i` are a turbofish (`:: < … >`), returns the index
    /// just past it; otherwise `i`.
    fn after_turbofish(&self, ctx: &crate::engine::FileCtx<'_>, i: usize) -> usize {
        if ctx.text(i) != "::" || ctx.text(i + 1) != "<" {
            return i;
        }
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < ctx.code_len() {
            match ctx.text(j) {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                "(" | ")" | ";" | "{" => return i,
                _ => {}
            }
            if depth <= 0 {
                return j + 1;
            }
            j += 1;
        }
        i
    }
}

fn item_of<'w>(ws: &'w Workspace<'_>, node: &FnNode) -> &'w FnItem {
    &ws.files[node.file].parsed.fns[node.item]
}

/// The name-resolution index.
#[derive(Default)]
struct Index {
    free: BTreeMap<String, Vec<usize>>,
    methods: BTreeMap<String, Vec<usize>>,
    owner_methods: BTreeMap<(String, String), Vec<usize>>,
    /// All struct/enum/impl/trait type names defined in the workspace.
    types: BTreeSet<String>,
    /// `(owner, field)` → declared type tokens.
    field_types: BTreeMap<(String, String), String>,
}

impl Index {
    /// The workspace types mentioned in a type string, e.g.
    /// `& Arc < Mutex < RefreshShared > >` → `[RefreshShared]`.
    fn known_types_in<'t>(&self, ty: &'t str) -> Vec<&'t str> {
        ty.split(' ').filter(|w| self.types.contains(*w)).collect()
    }
}

/// Declared types of `let`-bound locals in one body: `let x: Foo = …`,
/// `let x = Foo::new(…)`, `let x = Foo { … }`. A flat map — shadowing
/// and block scopes are ignored, and a name bound twice keeps its first
/// type; good enough for receiver resolution, where a collision only
/// costs precision, not soundness.
fn local_types(
    ctx: &crate::engine::FileCtx<'_>,
    open: usize,
    close: usize,
) -> BTreeMap<String, String> {
    let mut out: BTreeMap<String, String> = BTreeMap::new();
    let last = close.min(ctx.code_len().saturating_sub(1));
    for i in open..=last {
        if ctx.text(i) != "let" {
            continue;
        }
        let mut j = i + 1;
        if ctx.text(j) == "mut" {
            j += 1;
        }
        if !ctx.is_ident(j) {
            continue; // destructuring pattern — no single type to record
        }
        let name = ctx.text(j).to_string();
        let ty: Option<String> = if ctx.text(j + 1) == ":" {
            let mut parts = Vec::new();
            let mut k = j + 2;
            while k <= last && ctx.text(k) != "=" && ctx.text(k) != ";" {
                parts.push(ctx.text(k));
                k += 1;
            }
            (!parts.is_empty()).then(|| parts.join(" "))
        } else if ctx.text(j + 1) == "="
            && ctx.is_ident(j + 2)
            && ctx
                .text(j + 2)
                .chars()
                .next()
                .is_some_and(|c| c.is_uppercase())
            && (ctx.text(j + 3) == "::" || ctx.text(j + 3) == "{")
        {
            Some(ctx.text(j + 2).to_string())
        } else {
            None
        };
        if let Some(ty) = ty {
            out.entry(name).or_insert(ty);
        }
    }
    out
}

/// `recv . name (…)` — `i` indexes `name`, `i-1` the dot. Returns the
/// callee set plus whether it came from the untyped all-methods
/// fallback.
fn resolve_method(
    index: &Index,
    caller: &FnItem,
    locals: &BTreeMap<String, String>,
    ctx: &crate::engine::FileCtx<'_>,
    i: usize,
) -> (Vec<usize>, bool) {
    let name = ctx.text(i);
    let recv = if i >= 2 { ctx.text(i - 2) } else { "" };

    // `self.name(…)` — the enclosing impl's method wins.
    if recv == "self" && (i < 3 || ctx.text(i - 3) != ".") {
        if let Some(owner) = &caller.owner {
            if let Some(ids) = index.owner_methods.get(&(owner.clone(), name.to_string())) {
                return (ids.clone(), false);
            }
            // Known owner without such a method: std/derive dispatch.
            if index.types.contains(owner) {
                return (Vec::new(), false);
            }
        }
    }

    // `root.f1.f2.name(…)` — a field chain rooted at `self`, a local or
    // a parameter, walked hop by hop through declared field types.
    if ctx.is_ident(i - 2) {
        if let Some(chain) = receiver_chain(ctx, i - 1) {
            if let Some(ty) = chain_type(index, caller, locals, &chain) {
                return resolve_through_type(index, &ty, name);
            }
        }
    }

    // `Type::ctor(…).name(…)` / `Type { … }.name(…)` — constructor
    // results and struct literals type as the named struct. Only a
    // matching workspace method counts; a miss falls through, since a
    // constructor may return something other than Self.
    if recv == ")" || recv == "}" {
        if let Some(t) = literal_or_ctor_type(ctx, i - 2, recv) {
            let t = if t == "Self" {
                caller.owner.as_deref().unwrap_or("Self")
            } else {
                t
            };
            if index.types.contains(t) {
                if let Some(ids) = index.owner_methods.get(&(t.to_string(), name.to_string())) {
                    return (ids.clone(), false);
                }
            }
        }
    }

    // Unknown receiver: every workspace method with this name.
    (index.methods.get(name).cloned().unwrap_or_default(), true)
}

/// The `.`-separated identifier chain ending at the dot at `i` (the
/// one before the method name): `self . shared . queue . hwm (` with
/// `i` at the last dot → `["self", "shared", "queue"]`. `None` when
/// the chain does not start at a plain identifier.
fn receiver_chain<'t>(ctx: &crate::engine::FileCtx<'t>, i: usize) -> Option<Vec<&'t str>> {
    let mut chain = Vec::new();
    let mut j = i;
    loop {
        if j == 0 || !ctx.is_ident(j - 1) {
            return None;
        }
        chain.push(ctx.text(j - 1));
        if j >= 2 && ctx.text(j - 2) == "." {
            j -= 2;
        } else {
            break;
        }
    }
    chain.reverse();
    Some(chain)
}

/// Types a receiver chain: the root resolves via `self` (enclosing
/// owner), a `let`-bound local, or a parameter; each further hop walks
/// the declared type of that field. Returns the final declared type
/// string, or `None` when any hop is unknown.
fn chain_type(
    index: &Index,
    caller: &FnItem,
    locals: &BTreeMap<String, String>,
    chain: &[&str],
) -> Option<String> {
    let (root, hops) = chain.split_first()?;
    let mut ty: String = if *root == "self" {
        caller.owner.clone()?
    } else if let Some(t) = locals.get(*root) {
        if t == "Self" {
            caller.owner.clone()?
        } else {
            t.clone()
        }
    } else if let Some(p) = caller.params.iter().find(|p| p.name == *root) {
        p.ty.clone()
    } else {
        return None;
    };
    for hop in hops {
        let owner = index.known_types_in(&ty).into_iter().next()?.to_string();
        ty = index.field_types.get(&(owner, hop.to_string()))?.clone();
    }
    Some(ty)
}

/// The struct name of a `Type::ctor(…)` call or `Type { … }` literal
/// whose closing token sits at `close` (`recv` is `")"` or `"}"`).
fn literal_or_ctor_type<'t>(
    ctx: &crate::engine::FileCtx<'t>,
    close: usize,
    recv: &str,
) -> Option<&'t str> {
    let (open_s, close_s) = if recv == ")" { ("(", ")") } else { ("{", "}") };
    // Walk back to the matching opener.
    let mut depth = 0i32;
    let mut j = close;
    let open = loop {
        let t = ctx.text(j);
        if t == close_s {
            depth += 1;
        } else if t == open_s {
            depth -= 1;
            if depth == 0 {
                break j;
            }
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    };
    let ti = if recv == ")" {
        // `Type :: ctor (` — the ctor ident, `::`, then the type.
        if open >= 3 && ctx.is_ident(open - 1) && ctx.text(open - 2) == "::" {
            open - 3
        } else {
            return None;
        }
    } else if open >= 1 {
        open - 1
    } else {
        return None;
    };
    let t = ctx.text(ti);
    (ctx.is_ident(ti) && t.chars().next().is_some_and(|c| c.is_uppercase())).then_some(t)
}

/// Resolution through a known declared type: methods of the workspace
/// types the type string mentions; a known type without the method
/// means std/trait dispatch (no edge); no known type falls back to the
/// all-methods over-approximation (flagged as such).
fn resolve_through_type(index: &Index, ty: &str, name: &str) -> (Vec<usize>, bool) {
    let known = index.known_types_in(ty);
    if known.is_empty() {
        return (index.methods.get(name).cloned().unwrap_or_default(), true);
    }
    let mut out = Vec::new();
    for t in known {
        if let Some(ids) = index.owner_methods.get(&(t.to_string(), name.to_string())) {
            out.extend_from_slice(ids);
        }
    }
    out.sort_unstable();
    out.dedup();
    (out, false)
}

/// `Qual :: name (…)` — `i` indexes `name`.
fn resolve_qualified(
    index: &Index,
    caller: &FnItem,
    ctx: &crate::engine::FileCtx<'_>,
    i: usize,
) -> Vec<usize> {
    let name = ctx.text(i);
    let qual = if i >= 2 { ctx.text(i - 2) } else { "" };
    let qual = if qual == "Self" {
        caller.owner.as_deref().unwrap_or("Self")
    } else {
        qual
    };
    if let Some(ids) = index
        .owner_methods
        .get(&(qual.to_string(), name.to_string()))
    {
        return ids.clone();
    }
    if index.types.contains(qual) {
        return Vec::new(); // known type, assoc fn not ours (derive etc.)
    }
    if qual
        .chars()
        .next()
        .is_some_and(|c| c.is_lowercase() || c == '_')
    {
        // Module-qualified free call (`kernels::semijoin_into(…)`).
        return index.free.get(name).cloned().unwrap_or_default();
    }
    Vec::new() // std type (`Vec::new`, `Instant::now`, …)
}

/// Bare `name (…)` — a free call, unless `name` is a callback param.
fn resolve_bare(index: &Index, caller: &FnItem, name: &str) -> Vec<usize> {
    if caller.params.iter().any(|p| p.name == name) {
        return Vec::new();
    }
    index.free.get(name).cloned().unwrap_or_default()
}

/// The `panic-reachability` rule: see module docs.
pub fn panic_reachability(ws: &Workspace<'_>, out: &mut Vec<Finding>) {
    let graph = CallGraph::build(ws);
    let mut roots = Vec::new();
    for (id, node) in graph.fns.iter().enumerate() {
        let file = &ws.files[node.file];
        if ROOT_FILES.contains(&file.ctx.rel_path) && !item_of(ws, node).is_test {
            roots.push(id);
        }
    }
    if roots.is_empty() {
        return;
    }
    let parent = graph.reach_from(&roots);
    for &id in parent.keys() {
        let sites = &graph.panic_sites[id];
        if sites.is_empty() {
            continue;
        }
        let node = &graph.fns[id];
        let item = item_of(ws, node);
        if item.is_test {
            continue;
        }
        let mut shown: Vec<String> = sites
            .iter()
            .take(4)
            .map(|s| format!("{} at line {}", s.what, s.line))
            .collect();
        if sites.len() > 4 {
            shown.push(format!("+{} more", sites.len() - 4));
        }
        out.push(Finding {
            file: ws.files[node.file].ctx.rel_path.to_string(),
            line: item.line,
            rule: "panic-reachability",
            severity: Severity::Error,
            message: format!(
                "`{}` is reachable from the serving path ({}) and can panic: {}",
                node.qname,
                graph.chain(&parent, id),
                shown.join(", ")
            ),
        });
    }
}
