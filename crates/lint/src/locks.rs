//! Lock-acquisition analysis and the `lock-order` rule.
//!
//! Guard-held regions are tracked *syntactically* per function body: a
//! `let g = ….lock(…)…;` binding holds its guard until the enclosing
//! block ends, an explicit `drop(g)`, while an un-bound acquisition
//! (`self.lock().closed = true;`, `match q.lock() { … }`) is held to
//! the end of its statement. Lock identity is a *class*, not an
//! instance: `Owner.field` for a `Mutex`/`RwLock` struct field,
//! the inner type name for a `&Mutex<T>` parameter, and — for helper
//! methods that return guards (`JobQueue::lock`) — whatever classes the
//! helper itself acquires, resolved through the call graph.
//!
//! Two failure shapes are rejected:
//!
//! 1. **Order cycles** — every acquisition made while other guards are
//!    held contributes `held → acquired` edges (including through
//!    calls, using each callee's transitive acquisition summary); a
//!    cycle in that graph, self-loops included, means two threads can
//!    acquire the same classes in opposite orders.
//! 2. **Blocking under two guards** — `Condvar::wait` releases *its*
//!    mutex but nothing else, and channel `recv`, `accept`, socket
//!    I/O or `sleep` release nothing; parking a thread that still
//!    holds a second guard stalls every peer of that lock.
//!
//! Classes are over-approximate in the same way the call graph is: a
//! phantom edge can exist, a modeled acquisition cannot be missed
//! (within the syntactic subset — no lock guards smuggled through
//! struct fields or returned collections).

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::CallGraph;
use crate::engine::{Finding, Severity, Workspace};
use crate::parse::FnItem;

/// Method names that can block the calling thread. `join` is handled
/// separately (only the no-argument thread form, not `slice.join(", ")`).
const BLOCKING: &[&str] = &[
    "wait",
    "wait_timeout",
    "wait_while",
    "recv",
    "recv_timeout",
    "recv_deadline",
    "accept",
    "read_line",
    "read_exact",
    "read_to_end",
    "write_all",
    "flush",
    "connect",
    "sleep",
];

/// A to-be-resolved lock class: either named directly, or "whatever
/// this guard-returning callee acquires".
#[derive(Debug, Clone)]
enum ClassRef {
    Direct(String),
    FromFn(usize),
}

/// One live guard during simulation.
struct Guard {
    name: Option<String>,
    classes: Vec<ClassRef>,
    depth: u32,
    temp: bool,
}

struct AcquireEvent {
    line: u32,
    new: Vec<ClassRef>,
    held_before: Vec<ClassRef>,
}

struct CallEvent {
    line: u32,
    callees: Vec<usize>,
    held: Vec<ClassRef>,
    guards: usize,
}

struct BlockEvent {
    line: u32,
    what: String,
    held: Vec<ClassRef>,
    guards: usize,
}

#[derive(Default)]
struct FnLockInfo {
    acquires: Vec<AcquireEvent>,
    calls: Vec<CallEvent>,
    blocks: Vec<BlockEvent>,
}

/// One `held → acquired` order edge with its first site.
struct OrderEdge {
    file: String,
    line: u32,
    via: String,
}

/// The `lock-order` rule: see module docs.
pub fn lock_order(ws: &Workspace<'_>, out: &mut Vec<Finding>) {
    let graph = CallGraph::build(ws);
    let env = LockEnv::build(ws);

    // Phase A: per-function guard simulation.
    let infos: Vec<FnLockInfo> = (0..graph.fns.len())
        .map(|id| simulate(ws, &graph, &env, id))
        .collect();

    // Phase B: transitive acquisition / blocking summaries.
    let mut acquires: Vec<BTreeSet<String>> = infos
        .iter()
        .map(|info| {
            info.acquires
                .iter()
                .flat_map(|e| &e.new)
                .filter_map(|c| match c {
                    ClassRef::Direct(s) => Some(s.clone()),
                    ClassRef::FromFn(_) => None,
                })
                .collect()
        })
        .collect();
    let mut blocks: Vec<Option<String>> = infos
        .iter()
        .enumerate()
        .map(|(id, info)| {
            info.blocks
                .first()
                .map(|b| format!("`{}` in `{}`", b.what, graph.fns[id].qname))
        })
        .collect();
    loop {
        let mut changed = false;
        for id in 0..graph.fns.len() {
            // Fallback (name-only) edges are excluded throughout the lock
            // analysis: a phantom callee would manufacture deadlock
            // reports out of method-name collisions.
            for e in graph.edges[id].iter().filter(|e| !e.fallback) {
                let callee_acq: Vec<String> = acquires[e.callee].iter().cloned().collect();
                for c in callee_acq {
                    changed |= acquires[id].insert(c);
                }
                if blocks[id].is_none() {
                    if let Some(b) = blocks[e.callee].clone() {
                        blocks[id] = Some(b);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    let resolve = |refs: &[ClassRef]| -> BTreeSet<String> {
        let mut set = BTreeSet::new();
        for c in refs {
            match c {
                ClassRef::Direct(s) => {
                    set.insert(s.clone());
                }
                ClassRef::FromFn(id) => set.extend(acquires[*id].iter().cloned()),
            }
        }
        set
    };

    // Phase C: order edges, blocking findings, cycles.
    let mut edges: BTreeMap<(String, String), OrderEdge> = BTreeMap::new();
    for (id, info) in infos.iter().enumerate() {
        let node = &graph.fns[id];
        let file = ws.files[node.file].ctx.rel_path.to_string();
        for e in &info.acquires {
            let held = resolve(&e.held_before);
            let new = resolve(&e.new);
            for h in &held {
                for a in &new {
                    edges
                        .entry((h.clone(), a.clone()))
                        .or_insert_with(|| OrderEdge {
                            file: file.clone(),
                            line: e.line,
                            via: node.qname.clone(),
                        });
                }
            }
        }
        for e in &info.calls {
            if e.held.is_empty() {
                continue;
            }
            let held = resolve(&e.held);
            for &callee in &e.callees {
                for a in &acquires[callee] {
                    for h in &held {
                        edges
                            .entry((h.clone(), a.clone()))
                            .or_insert_with(|| OrderEdge {
                                file: file.clone(),
                                line: e.line,
                                via: format!("{} via `{}`", node.qname, graph.fns[callee].qname),
                            });
                    }
                }
                if e.guards >= 2 {
                    if let Some(b) = &blocks[callee] {
                        out.push(Finding {
                            file: file.clone(),
                            line: e.line,
                            rule: "lock-order",
                            severity: Severity::Error,
                            message: format!(
                                "call into `{}` can block ({}) while {} lock guards are held \
                                 ({}); a parked thread holding a second lock can deadlock its \
                                 peers",
                                graph.fns[callee].qname,
                                b,
                                e.guards,
                                join(&held),
                            ),
                        });
                    }
                }
            }
        }
        for b in &info.blocks {
            if b.guards >= 2 {
                let held = resolve(&b.held);
                out.push(Finding {
                    file: file.clone(),
                    line: b.line,
                    rule: "lock-order",
                    severity: Severity::Error,
                    message: format!(
                        "`{}` blocks while {} lock guards are held ({}); blocking releases at \
                         most its own mutex, so the second guard deadlocks its peers",
                        b.what,
                        b.guards,
                        join(&held),
                    ),
                });
            }
        }
    }

    report_cycles(&edges, out);
}

fn join(set: &BTreeSet<String>) -> String {
    set.iter().cloned().collect::<Vec<_>>().join(", ")
}

/// Finds cycles in the class order graph and reports each once,
/// anchored at the first edge of its canonical rotation.
fn report_cycles(edges: &BTreeMap<(String, String), OrderEdge>, out: &mut Vec<Finding>) {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (h, a) in edges.keys() {
        adj.entry(h.as_str()).or_default().push(a.as_str());
    }
    // DFS cycle collection from each node, smallest-first so the
    // canonical rotation is found first; dedupe by node set.
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    let starts: Vec<&str> = adj.keys().copied().collect();
    for start in starts {
        let mut path = vec![start];
        let mut on_path: BTreeSet<&str> = BTreeSet::from([start]);
        dfs_cycles(
            start,
            start,
            &adj,
            &mut path,
            &mut on_path,
            &mut reported,
            out,
            edges,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs_cycles<'g>(
    start: &'g str,
    cur: &'g str,
    adj: &BTreeMap<&'g str, Vec<&'g str>>,
    path: &mut Vec<&'g str>,
    on_path: &mut BTreeSet<&'g str>,
    reported: &mut BTreeSet<Vec<String>>,
    out: &mut Vec<Finding>,
    edges: &BTreeMap<(String, String), OrderEdge>,
) {
    if path.len() > 8 {
        return; // bound the search; real cycles are short
    }
    for &next in adj.get(cur).map(Vec::as_slice).unwrap_or(&[]) {
        if next == start {
            // Canonical form: rotation starting at the smallest class.
            let mut cyc: Vec<String> = path.iter().map(|s| s.to_string()).collect();
            let min = cyc
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.as_str())
                .map(|(i, _)| i)
                .unwrap_or(0);
            cyc.rotate_left(min);
            if !reported.insert(cyc.clone()) {
                continue;
            }
            let mut desc = Vec::new();
            for k in 0..cyc.len() {
                let h = &cyc[k];
                let a = &cyc[(k + 1) % cyc.len()];
                if let Some(e) = edges.get(&(h.clone(), a.clone())) {
                    desc.push(format!("{h} -> {a} ({}:{})", e.file, e.line));
                }
            }
            let Some(first) = edges.get(&(cyc[0].clone(), cyc[1 % cyc.len()].clone())) else {
                continue;
            };
            out.push(Finding {
                file: first.file.clone(),
                line: first.line,
                rule: "lock-order",
                severity: Severity::Error,
                message: format!(
                    "lock acquisition order cycle: {} (first edge in `{}`) — two threads \
                     taking these locks in opposite orders deadlock",
                    desc.join(", "),
                    first.via
                ),
            });
        } else if !on_path.contains(next) && next > start {
            // Only explore nodes greater than `start` so each cycle is
            // discovered exactly once, from its smallest node.
            path.push(next);
            on_path.insert(next);
            dfs_cycles(start, next, adj, path, on_path, reported, out, edges);
            on_path.remove(next);
            path.pop();
        }
    }
}

/// Workspace type knowledge the guard simulation resolves receiver
/// chains against.
struct LockEnv {
    /// `(owner, field) → rw` for every lock field.
    lock_fields: BTreeMap<(String, String), bool>,
    /// `(owner, field) → declared type tokens` for every field.
    field_types: BTreeMap<(String, String), String>,
    /// All workspace type names.
    types: BTreeSet<String>,
}

impl LockEnv {
    fn build(ws: &Workspace<'_>) -> Self {
        let mut env = LockEnv {
            lock_fields: BTreeMap::new(),
            field_types: BTreeMap::new(),
            types: BTreeSet::new(),
        };
        for file in &ws.files {
            env.types.extend(file.parsed.types.iter().cloned());
            for f in &file.parsed.fields {
                if let Some(rw) = f.lock_kind() {
                    env.lock_fields
                        .insert((f.owner.clone(), f.name.clone()), rw);
                }
                env.field_types
                    .insert((f.owner.clone(), f.name.clone()), f.ty.clone());
            }
        }
        env
    }

    /// The workspace type a field hop lands on: the first type name in
    /// the field's declared type (`Arc < SharedState >` → `SharedState`).
    fn field_hop(&self, owner: &str, field: &str) -> Option<&str> {
        let ty = self
            .field_types
            .get(&(owner.to_string(), field.to_string()))?;
        ty.split(' ').find(|w| self.types.contains(*w))
    }

    /// The first workspace type a type string mentions.
    fn known_type_in<'t>(&self, ty: &'t str) -> Option<&'t str> {
        ty.split(' ').find(|w| self.types.contains(*w))
    }
}

/// Simulates guard scopes through one function body.
fn simulate(ws: &Workspace<'_>, graph: &CallGraph, env: &LockEnv, id: usize) -> FnLockInfo {
    let mut info = FnLockInfo::default();
    let node = &graph.fns[id];
    let file = &ws.files[node.file];
    let ctx = &file.ctx;
    let item = &file.parsed.fns[node.item];
    let Some((open, close)) = item.body else {
        return info;
    };
    if item.is_test {
        return info;
    }
    let mut children: Vec<(usize, usize)> = file
        .parsed
        .fns
        .iter()
        .filter_map(|f| f.body)
        .filter(|&(o, c)| o > open && c < close)
        .collect();
    children.sort_unstable();
    // Call sites resolved by the call graph, keyed by name-token index.
    // Fallback (name-only) edges are excluded — see `lock_order`.
    let call_map: BTreeMap<usize, Vec<usize>> = {
        let mut m: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for e in graph.edges[id].iter().filter(|e| !e.fallback) {
            m.entry(e.tok).or_default().push(e.callee);
        }
        m
    };

    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0u32;
    let mut child = 0usize;
    let held = |guards: &[Guard]| -> Vec<ClassRef> {
        guards.iter().flat_map(|g| g.classes.clone()).collect()
    };
    let mut i = open;
    let last = close.min(ctx.code_len().saturating_sub(1));
    while i <= last {
        while child < children.len() && children[child].0 < i {
            child += 1;
        }
        if child < children.len() && children[child].0 == i {
            i = children[child].1 + 1;
            continue;
        }
        match ctx.text(i) {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            }
            ";" => guards.retain(|g| !(g.temp && g.depth == depth)),
            "drop" if ctx.text(i + 1) == "(" && ctx.text(i + 3) == ")" => {
                let name = ctx.text(i + 2);
                guards.retain(|g| g.name.as_deref() != Some(name));
            }
            "." if ctx.text(i + 2) == "("
                && (ctx.ident_is(i + 1, "lock")
                    || ctx.ident_is(i + 1, "read")
                    || ctx.ident_is(i + 1, "write")) =>
            {
                let verb = ctx.text(i + 1);
                let classes = classify_acquisition(ctx, item, env, i, verb)
                    .map(|c| vec![ClassRef::Direct(c)])
                    .or_else(|| {
                        // A guard-returning helper (`JobQueue::lock`):
                        // classes are whatever the callee acquires. Only
                        // when the receiver chain is *typed* (self, a
                        // field, a parameter) — an unresolvable local
                        // like `stdin.lock()` would otherwise pick up
                        // every workspace method of that name and turn a
                        // std guard into a phantom holder of every lock
                        // class.
                        if !typed_receiver(ctx, item, i) {
                            return None;
                        }
                        call_map
                            .get(&(i + 1))
                            .map(|callees| callees.iter().map(|&c| ClassRef::FromFn(c)).collect())
                    });
                if let Some(classes) = classes {
                    if !classes.is_empty() {
                        info.acquires.push(AcquireEvent {
                            line: ctx.line(i + 1),
                            new: classes.clone(),
                            held_before: held(&guards),
                        });
                        let binding = let_binding_for(ctx, open, i);
                        guards.push(Guard {
                            temp: binding.is_none(),
                            name: binding,
                            classes,
                            depth,
                        });
                    }
                }
            }
            "." | "::"
                if BLOCKING.iter().any(|b| ctx.ident_is(i + 1, b)) && ctx.text(i + 2) == "(" =>
            {
                info.blocks.push(BlockEvent {
                    line: ctx.line(i + 1),
                    what: format!(".{}()", ctx.text(i + 1)),
                    held: held(&guards),
                    guards: guards.len(),
                });
            }
            "." if ctx.ident_is(i + 1, "join")
                && ctx.text(i + 2) == "("
                && ctx.text(i + 3) == ")" =>
            {
                // Thread join only: `slice.join(", ")` takes an argument.
                info.blocks.push(BlockEvent {
                    line: ctx.line(i + 1),
                    what: ".join()".to_string(),
                    held: held(&guards),
                    guards: guards.len(),
                });
            }
            _ => {
                if let Some(callees) = call_map.get(&i) {
                    // Guard-returning sites were handled above; they are
                    // keyed at the method name, whose previous token is
                    // the dot the acquisition arm matched on.
                    let is_lock_verb = matches!(ctx.text(i), "lock" | "read" | "write")
                        && i > 0
                        && ctx.text(i - 1) == ".";
                    if !is_lock_verb {
                        info.calls.push(CallEvent {
                            line: ctx.line(i),
                            callees: callees.clone(),
                            held: held(&guards),
                            guards: guards.len(),
                        });
                    }
                }
            }
        }
        i += 1;
    }
    info
}

/// True when the receiver chain of `<chain> . verb (` at dot `i` is
/// rooted in something the analysis can type: `self` or a parameter of
/// the enclosing function.
fn typed_receiver(ctx: &crate::engine::FileCtx<'_>, item: &FnItem, i: usize) -> bool {
    let mut j = i;
    loop {
        if j == 0 || !ctx.is_ident(j - 1) {
            return false;
        }
        if j >= 2 && ctx.text(j - 2) == "." {
            j -= 2;
        } else {
            break;
        }
    }
    let root = ctx.text(j - 1);
    root == "self" || item.params.iter().any(|p| p.name == root)
}

/// Names the lock class of `<chain> . verb (` when the receiver chain
/// resolves to a known `Mutex`/`RwLock`; `i` indexes the dot. Chains of
/// any depth are walked through declared field types
/// (`self.shared.conn_stats.lock()` → `SharedState.conn_stats`).
fn classify_acquisition(
    ctx: &crate::engine::FileCtx<'_>,
    item: &FnItem,
    env: &LockEnv,
    i: usize,
    verb: &str,
) -> Option<String> {
    // Walk the `.`-separated receiver chain backwards.
    let mut chain: Vec<&str> = Vec::new();
    let mut j = i;
    loop {
        if j == 0 || !ctx.is_ident(j - 1) {
            return None; // `foo().lock()` etc — unresolvable chain root
        }
        chain.push(ctx.text(j - 1));
        if j >= 2 && ctx.text(j - 2) == "." {
            j -= 2;
        } else {
            break;
        }
    }
    chain.reverse();
    let verb_ok = |rw: bool| {
        if rw {
            verb == "read" || verb == "write"
        } else {
            verb == "lock"
        }
    };

    // Root: `self` types as the enclosing impl's owner, a parameter as
    // its declared type. A lone Mutex-typed parameter (`m.lock()`) is
    // classed by its inner type — there is no owning struct to name.
    let (root, rest) = chain.split_first()?;
    let root_ty: String = if *root == "self" {
        item.owner.clone()?
    } else {
        let param = item.params.iter().find(|q| q.name == *root)?;
        if rest.is_empty() {
            let inner = param.mutex_inner()?;
            let rw = param.ty.contains("RwLock");
            return verb_ok(rw).then(|| inner.to_string());
        }
        env.known_type_in(&param.ty)
            .or_else(|| param.type_head())?
            .to_string()
    };

    // Intermediate hops through declared field types; the last element
    // must be a lock field of wherever the walk lands.
    let (last, mids) = rest.split_last()?;
    let mut owner = root_ty;
    for mid in mids {
        owner = env.field_hop(&owner, mid)?.to_string();
    }
    let rw = env.lock_fields.get(&(owner.clone(), last.to_string()))?;
    verb_ok(*rw).then(|| format!("{owner}.{last}"))
}

/// If the statement containing token `i` begins `let [mut] name =`,
/// returns the bound name; the statement start is the nearest `;`,
/// `{` or `}` at or after `open`.
fn let_binding_for(ctx: &crate::engine::FileCtx<'_>, open: usize, i: usize) -> Option<String> {
    let mut j = i;
    while j > open {
        match ctx.text(j - 1) {
            ";" | "{" | "}" => break,
            _ => j -= 1,
        }
    }
    if ctx.text(j) != "let" {
        return None;
    }
    let name_at = if ctx.text(j + 1) == "mut" {
        j + 2
    } else {
        j + 1
    };
    ctx.is_ident(name_at).then(|| ctx.text(name_at).to_string())
}
