//! Finding reporters: a compiler-style text form, a line-oriented JSON
//! form for tooling, and a minimal SARIF 2.1.0 form for CI artifact
//! upload.

use std::fmt::Write as _;

use crate::engine::{Finding, Severity};
use crate::rules;

/// Renders findings like rustc diagnostics, one per line, followed by a
/// summary line:
///
/// ```text
/// crates/foo/src/lib.rs:12: error[no-panic]: `.unwrap()` in library code …
/// apex-lint: 1 error, 0 warnings
/// ```
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(
            out,
            "{}:{}: {}[{}]: {}",
            f.file, f.line, f.severity, f.rule, f.message
        );
    }
    let (errors, warnings) = tally(findings);
    let _ = writeln!(
        out,
        "apex-lint: {errors} error{}, {warnings} warning{}",
        if errors == 1 { "" } else { "s" },
        if warnings == 1 { "" } else { "s" },
    );
    out
}

/// Renders findings as one JSON object:
/// `{"findings":[{"file":…,"line":…,"rule":…,"severity":…,"message":…}],
///   "errors":N,"warnings":M}`.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\"}}",
            escape(&f.file),
            f.line,
            escape(f.rule),
            f.severity,
            escape(&f.message)
        );
    }
    let (errors, warnings) = tally(findings);
    let _ = write!(out, "],\"errors\":{errors},\"warnings\":{warnings}}}");
    out
}

/// Renders findings as a minimal SARIF 2.1.0 log: one run, the rule
/// catalog as `tool.driver.rules`, one `result` per finding with
/// `level`, `message.text` and a physical location. Enough for CI
/// annotation upload; no fixes, flows, or fingerprints.
pub fn render_sarif(findings: &[Finding]) -> String {
    let mut out = String::from(
        "{\"version\":\"2.1.0\",\
         \"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"runs\":[{\"tool\":{\"driver\":{\"name\":\"apex-lint\",\
         \"informationUri\":\"crates/lint/RULES.md\",\"rules\":[",
    );
    let mut first = true;
    for (name, summary) in rules::RULES
        .iter()
        .map(|r| (r.name, r.summary))
        .chain(rules::META_RULES.iter().copied())
    {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
            escape(name),
            escape(summary)
        );
    }
    out.push_str("]}},\"results\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let level = match f.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        let _ = write!(
            out,
            "{{\"ruleId\":\"{}\",\"level\":\"{level}\",\
             \"message\":{{\"text\":\"{}\"}},\
             \"locations\":[{{\"physicalLocation\":{{\
             \"artifactLocation\":{{\"uri\":\"{}\"}},\
             \"region\":{{\"startLine\":{}}}}}}}]}}",
            escape(f.rule),
            escape(&f.message),
            escape(&f.file),
            f.line.max(1)
        );
    }
    out.push_str("]}]}");
    out
}

/// Counts `(errors, warnings)`.
pub fn tally(findings: &[Finding]) -> (usize, usize) {
    let errors = findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .count();
    (errors, findings.len() - errors)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![
            Finding {
                file: "crates/x/src/lib.rs".into(),
                line: 3,
                rule: "no-panic",
                severity: Severity::Error,
                message: "a \"quoted\" problem".into(),
            },
            Finding {
                file: "crates/x/src/lib.rs".into(),
                line: 9,
                rule: "unused-suppression",
                severity: Severity::Warning,
                message: "stale".into(),
            },
        ]
    }

    #[test]
    fn text_form_is_one_line_per_finding_plus_summary() {
        let txt = render_text(&sample());
        assert!(txt.contains("crates/x/src/lib.rs:3: error[no-panic]: a \"quoted\" problem"));
        assert!(txt.contains("crates/x/src/lib.rs:9: warning[unused-suppression]: stale"));
        assert!(txt.ends_with("apex-lint: 1 error, 1 warning\n"));
    }

    #[test]
    fn json_escapes_and_tallies() {
        let js = render_json(&sample());
        assert!(js.contains("\"message\":\"a \\\"quoted\\\" problem\""));
        assert!(js.ends_with("\"errors\":1,\"warnings\":1}"));
        assert!(js.starts_with("{\"findings\":["));
    }

    #[test]
    fn sarif_has_rules_results_and_levels() {
        let s = render_sarif(&sample());
        assert!(s.contains("\"version\":\"2.1.0\""));
        assert!(s.contains("\"name\":\"apex-lint\""));
        // Catalog + meta rules are all declared.
        assert!(s.contains("\"id\":\"panic-reachability\""));
        assert!(s.contains("\"id\":\"stale-allow\""));
        // Each finding becomes a result with level and location.
        assert!(s.contains("\"ruleId\":\"no-panic\",\"level\":\"error\""));
        assert!(s.contains("\"uri\":\"crates/x/src/lib.rs\""));
        assert!(s.contains("\"startLine\":3"));
        // It must be self-contained JSON (balanced braces at the ends).
        assert!(s.starts_with('{') && s.ends_with('}'));
    }

    #[test]
    fn empty_report() {
        assert_eq!(
            render_json(&[]),
            "{\"findings\":[],\"errors\":0,\"warnings\":0}"
        );
        assert_eq!(render_text(&[]), "apex-lint: 0 errors, 0 warnings\n");
    }
}
