//! The rule engine: per-file context, test-region detection, inline
//! suppressions, the workspace model, and the workspace walker.
//!
//! A [`FileCtx`] is built once per file and handed to every rule. Rules
//! see only *code* tokens (comments stripped) via [`FileCtx::code_tok`],
//! plus a per-token "inside test code" flag so that `#[cfg(test)]`
//! modules and `#[test]` functions are exempt from the runtime-behavior
//! rules. Since PR 7 each file also carries its recovered item
//! structure ([`crate::parse::ParsedFile`]), and rules come in two
//! shapes: per-file matchers and whole-[`Workspace`] analyses (call
//! graph, lock order) that need every file at once.
//!
//! Findings are filtered through inline suppression comments before
//! being reported:
//!
//! ```text
//! cost.pages_read += 1; // apex-lint: allow(cost-io-writes): trie-local I/O
//! ```
//!
//! A suppression must name the rule and carry a justification after the
//! closing parenthesis; it silences findings of that rule on its own
//! line or, when the comment stands alone, on the following line.
//! Reason-less suppressions are themselves findings (`bad-suppression`,
//! error), and a suppression that silences nothing is a `stale-allow`
//! *error* — a dead allow is a hole an invariant can silently leak
//! through, so it fails the gate just like a live violation.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Tok, TokKind};
use crate::parse::{parse, ParsedFile};
use crate::rules;

/// How severe a finding is. Errors fail the build; warnings fail only
/// under `--strict`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory; nonfatal unless `--strict`.
    Warning,
    /// A violated invariant; `apex-lint` exits nonzero.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One rule violation (or suppression problem) at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Name of the violated rule.
    pub rule: &'static str,
    /// Whether this fails the run.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
}

/// Everything a rule can ask about one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path, `/`-separated (`crates/query/src/exec.rs`).
    pub rel_path: &'a str,
    /// The `crates/<dir>` component of the path, or `""` outside `crates/`.
    pub crate_dir: &'a str,
    /// True for `crates/*/src/lib.rs` and `crates/*/src/main.rs`.
    pub is_crate_root: bool,
    toks: Vec<Tok<'a>>,
    code: Vec<usize>,
    in_test: Vec<bool>,
}

impl<'a> FileCtx<'a> {
    /// Lexes `src` and computes test regions.
    pub fn new(rel_path: &'a str, src: &'a str) -> Self {
        let toks = lex(src);
        let code: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        let crate_dir = rel_path
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .unwrap_or("");
        let is_crate_root = rel_path.ends_with("/src/lib.rs") || rel_path.ends_with("/src/main.rs");
        let mut ctx = FileCtx {
            rel_path,
            crate_dir,
            is_crate_root,
            in_test: vec![false; code.len()],
            toks,
            code,
        };
        ctx.mark_test_regions();
        ctx
    }

    /// Number of code (non-comment) tokens.
    pub fn code_len(&self) -> usize {
        self.code.len()
    }

    /// The `i`-th code token.
    pub fn code_tok(&self, i: usize) -> &Tok<'a> {
        &self.toks[self.code[i]]
    }

    /// Text of the `i`-th code token, or `""` past the end — so rules can
    /// match fixed-size windows without bounds gymnastics.
    pub fn text(&self, i: usize) -> &'a str {
        match self.code.get(i) {
            Some(&ti) => self.toks[ti].text,
            None => "",
        }
    }

    /// 1-based line of the `i`-th code token (`0` past the end).
    pub fn line(&self, i: usize) -> u32 {
        match self.code.get(i) {
            Some(&ti) => self.toks[ti].line,
            None => 0,
        }
    }

    /// True when the `i`-th code token is an identifier with text `s`.
    pub fn ident_is(&self, i: usize, s: &str) -> bool {
        match self.code.get(i) {
            Some(&ti) => self.toks[ti].kind == TokKind::Ident && self.toks[ti].text == s,
            None => false,
        }
    }

    /// True when the `i`-th code token is any identifier.
    pub fn is_ident(&self, i: usize) -> bool {
        match self.code.get(i) {
            Some(&ti) => self.toks[ti].kind == TokKind::Ident,
            None => false,
        }
    }

    /// True when the `i`-th code token lies inside a `#[test]` function
    /// or a `#[cfg(test)]`-gated item.
    pub fn is_test(&self, i: usize) -> bool {
        self.in_test.get(i).copied().unwrap_or(false)
    }

    /// Plain (non-doc) comment tokens, for suppression parsing. Doc
    /// comments are excluded so documentation may *show* the suppression
    /// syntax without enacting it.
    fn comments(&self) -> impl Iterator<Item = &Tok<'a>> {
        self.toks.iter().filter(|t| match t.kind {
            TokKind::LineComment => !t.text.starts_with("///") && !t.text.starts_with("//!"),
            TokKind::BlockComment => !t.text.starts_with("/**") && !t.text.starts_with("/*!"),
            _ => false,
        })
    }

    /// Marks the brace-delimited item following a test attribute
    /// (`#[test]`, `#[cfg(test)]`, `#[cfg(any(test, …))]`) as test code.
    /// `#[cfg(not(test))]` is deliberately *not* treated as test code.
    fn mark_test_regions(&mut self) {
        let mut i = 0;
        while i < self.code.len() {
            if self.text(i) == "#" && self.text(i + 1) == "[" {
                let (attr_end, is_test_attr) = self.scan_attr(i + 1);
                if is_test_attr {
                    let mut j = attr_end + 1;
                    // Skip any further attributes stacked on the item.
                    while self.text(j) == "#" && self.text(j + 1) == "[" {
                        j = self.scan_attr(j + 1).0 + 1;
                    }
                    // The gated item runs to its braced body; a `;` first
                    // means an out-of-line `mod tests;` — nothing to mark.
                    while j < self.code.len() && self.text(j) != "{" && self.text(j) != ";" {
                        j += 1;
                    }
                    if self.text(j) == "{" {
                        let close = self.matching_brace(j);
                        for flag in &mut self.in_test[j..=close.min(self.code.len() - 1)] {
                            *flag = true;
                        }
                    }
                }
                i = attr_end + 1;
            } else {
                i += 1;
            }
        }
    }

    /// `open` indexes the `[` of an attribute; returns the index of the
    /// matching `]` (or the last token) and whether the attribute gates
    /// test code.
    fn scan_attr(&self, open: usize) -> (usize, bool) {
        let mut depth = 0usize;
        let mut has_test = false;
        let mut has_not = false;
        let mut i = open;
        while i < self.code.len() {
            match self.text(i) {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return (i, has_test && !has_not);
                    }
                }
                "test" => has_test = true,
                "not" => has_not = true,
                _ => {}
            }
            i += 1;
        }
        (self.code.len().saturating_sub(1), false)
    }

    /// `open` indexes a `{`; returns the index of the matching `}` (or
    /// the last token on imbalance).
    pub(crate) fn matching_brace(&self, open: usize) -> usize {
        let mut depth = 0usize;
        for i in open..self.code.len() {
            match self.text(i) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
        self.code.len().saturating_sub(1)
    }
}

/// One lexed + parsed source file of the workspace under analysis.
pub struct WorkspaceFile<'a> {
    /// The token-level view.
    pub ctx: FileCtx<'a>,
    /// The item-level view.
    pub parsed: ParsedFile,
}

/// All files of the workspace, in deterministic (path-sorted) order —
/// the unit the whole-program rules (call graph, lock order) run over.
pub struct Workspace<'a> {
    /// The files, in the order given to [`Workspace::from_sources`].
    pub files: Vec<WorkspaceFile<'a>>,
}

impl<'a> Workspace<'a> {
    /// Builds the workspace model from `(rel_path, source)` pairs.
    pub fn from_sources(sources: &'a [(String, String)]) -> Self {
        Workspace {
            files: sources
                .iter()
                .map(|(rel, src)| {
                    let ctx = FileCtx::new(rel, src);
                    let parsed = parse(&ctx);
                    WorkspaceFile { ctx, parsed }
                })
                .collect(),
        }
    }
}

/// One parsed `// apex-lint: allow(<rule>): <reason>` comment entry.
#[derive(Debug)]
struct Suppression {
    file: String,
    rule: String,
    line: u32,
    known_rule: bool,
    used: bool,
}

/// The marker that introduces a suppression (or any directive) comment.
const MARKER: &str = "apex-lint:";

/// Parses suppressions out of one comment body. Returns parsed entries,
/// plus malformed-directive findings.
fn parse_directive(
    text: &str,
    line: u32,
    file: &str,
    out: &mut Vec<Suppression>,
    findings: &mut Vec<Finding>,
) {
    let Some(at) = text.find(MARKER) else {
        return;
    };
    let rest = text[at + MARKER.len()..].trim_start();
    let malformed = |findings: &mut Vec<Finding>, why: &str| {
        findings.push(Finding {
            file: file.to_string(),
            line,
            rule: "bad-suppression",
            severity: Severity::Error,
            message: format!("{why}; expected `// apex-lint: allow(<rule>): <justification>`"),
        });
    };
    let Some(args) = rest.strip_prefix("allow") else {
        malformed(findings, "unrecognized apex-lint directive");
        return;
    };
    let args = args.trim_start();
    let Some(body) = args.strip_prefix('(') else {
        malformed(findings, "missing `(` after `allow`");
        return;
    };
    let Some(close) = body.find(')') else {
        malformed(findings, "unclosed `allow(`");
        return;
    };
    let reason = body[close + 1..]
        .trim_start()
        .strip_prefix(':')
        .map(str::trim)
        .unwrap_or("");
    if reason.is_empty() {
        malformed(findings, "suppression carries no justification");
    }
    for name in body[..close].split(',') {
        let name = name.trim();
        if name.is_empty() {
            malformed(findings, "empty rule name in `allow(…)`");
            continue;
        }
        let known_rule = rules::RULES.iter().any(|r| r.name == name);
        if !known_rule {
            findings.push(Finding {
                file: file.to_string(),
                line,
                rule: "bad-suppression",
                severity: Severity::Error,
                message: format!("suppression names unknown rule `{name}`"),
            });
        }
        out.push(Suppression {
            file: file.to_string(),
            rule: name.to_string(),
            line,
            known_rule,
            used: false,
        });
    }
}

/// Runs the full catalog over a built workspace model and applies the
/// suppression pass. Findings come back sorted by `(file, line, rule)`.
pub fn lint(ws: &Workspace<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for rule in rules::RULES {
        match rule.check {
            rules::Check::File(check) => {
                for file in &ws.files {
                    check(file, &mut findings);
                }
            }
            rules::Check::Workspace(check) => check(ws, &mut findings),
        }
    }

    let mut suppressions: Vec<Suppression> = Vec::new();
    let mut meta_findings: Vec<Finding> = Vec::new();
    for file in &ws.files {
        for c in file.ctx.comments() {
            parse_directive(
                c.text,
                c.line,
                file.ctx.rel_path,
                &mut suppressions,
                &mut meta_findings,
            );
        }
    }

    // A suppression matches findings on its own line, or on the next
    // line when the comment stands alone.
    findings.retain(|f| {
        let mut keep = true;
        for s in suppressions.iter_mut() {
            if s.rule == f.rule && s.file == f.file && (s.line == f.line || s.line + 1 == f.line) {
                s.used = true;
                keep = false;
            }
        }
        keep
    });
    for s in &suppressions {
        if !s.used && s.known_rule {
            meta_findings.push(Finding {
                file: s.file.clone(),
                line: s.line,
                rule: "stale-allow",
                severity: Severity::Error,
                message: format!(
                    "suppression of `{}` silences nothing; remove the stale allow",
                    s.rule
                ),
            });
        }
    }
    findings.extend(meta_findings);
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    findings
}

/// Lints one file given as a string. `rel_path` decides which crate the
/// rules consider the code to belong to, so tests can probe allow-lists
/// by picking paths. The file is analyzed as a one-file workspace:
/// whole-program rules see exactly this file (fixtures pick root paths
/// to become their own serving roots). Findings come back sorted.
pub fn lint_str(rel_path: &str, src: &str) -> Vec<Finding> {
    let sources = [(rel_path.to_string(), src.to_string())];
    lint(&Workspace::from_sources(&sources))
}

/// Recursively collects `.rs` files under `dir`, sorted for determinism.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walks `<root>/crates/*/src` and lints every Rust file as one
/// workspace. Paths in the findings are reported relative to `root`.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    crate_dirs.sort();
    let mut files = Vec::new();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    let mut sources = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = fs::read_to_string(&path)?;
        sources.push((rel, src));
    }
    Ok(lint(&Workspace::from_sources(&sources)))
}
