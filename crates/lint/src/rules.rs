//! The rule catalog.
//!
//! Rules come in two shapes since PR 7: *file* rules match token
//! sequences (plus the file's parsed item structure) over one file at a
//! time, and *workspace* rules run whole-program analyses — the call
//! graph ([`crate::callgraph`]) and the lock-acquisition graph
//! ([`crate::locks`]) — over every file at once. Comments and string
//! contents never match (see [`crate::lexer`]). The catalog encodes the
//! workspace's architectural invariants:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `cost-io-writes` | `Cost` I/O counters are written only by the storage layer (incl. `storage::block` / `storage::kernels`), the shared executor, the planner's attributed operators, and `core::wal`'s recovery scan |
//! | `no-panic` | library code neither `.unwrap()`s, `.expect()`s nor `panic!`s (per-site; the serving-root files are covered transitively by `panic-reachability` instead) |
//! | `panic-reachability` | nothing reachable from the serving roots (`net::server`, `core::serve`, `core::recover`, `query::exec`, `shard::router`) can panic — `panic!`, `unwrap`, `expect`, or `[…]` indexing |
//! | `lock-order` | the lock-acquisition graph is cycle-free and nothing blocks while holding two guards |
//! | `hot-path-alloc` | semijoin kernel bodies never allocate outside `*Scratch` constructors |
//! | `forbid-unsafe` | every crate root carries `#![forbid(unsafe_code)]` |
//! | `no-print` | output macros live in `cli`/`bench` only |
//! | `no-exit` | `std::process::exit` is the CLI's privilege |
//! | `pool-discipline` | buffer pools are constructed by `storage` and the batch layer only |
//!
//! Suppression hygiene is checked by the engine itself: `bad-suppression`
//! (malformed or justification-free allows) and `stale-allow` (an allow
//! that silences nothing), both errors, neither suppressible.
//!
//! To add a rule: write the check, add a [`Rule`] entry to [`RULES`],
//! add triggering / suppressed / clean fixtures under
//! `crates/lint/tests/fixtures/`, and document it in
//! `crates/lint/RULES.md` and `DESIGN.md`.

use crate::callgraph;
use crate::engine::{FileCtx, Finding, Severity, Workspace, WorkspaceFile};
use crate::locks;

/// How a rule inspects the workspace.
pub enum Check {
    /// Runs once per file.
    File(fn(&WorkspaceFile<'_>, &mut Vec<Finding>)),
    /// Runs once over the whole workspace.
    Workspace(fn(&Workspace<'_>, &mut Vec<Finding>)),
}

/// A named invariant check.
pub struct Rule {
    /// Stable kebab-case name, used in reports and `allow(…)`.
    pub name: &'static str,
    /// One-line description for `--list-rules`.
    pub summary: &'static str,
    /// Severity of its findings.
    pub severity: Severity,
    /// The matcher.
    pub check: Check,
}

/// The rule catalog, in report order.
pub const RULES: &[Rule] = &[
    Rule {
        name: "cost-io-writes",
        summary: "Cost I/O counters (pages_read/extent_pairs/table_probes) are written \
                  only in apex-storage (incl. block/kernels), apex_query::exec, \
                  apex_query::plan and apex::wal's recovery scan",
        severity: Severity::Error,
        check: Check::File(cost_io_writes),
    },
    Rule {
        name: "no-panic",
        summary: ".unwrap()/.expect()/panic! are banned in non-test library code \
                  (cli exempt; the serving-root files are covered by panic-reachability)",
        severity: Severity::Error,
        check: Check::File(no_panic),
    },
    Rule {
        name: "panic-reachability",
        summary: "functions reachable from the serving roots (net::server, core::serve, \
                  core::recover, query::exec, shard::router) must not panic!, unwrap, \
                  expect, or index without get",
        severity: Severity::Error,
        check: Check::Workspace(callgraph::panic_reachability),
    },
    Rule {
        name: "lock-order",
        summary: "the Mutex/RwLock acquisition graph must be cycle-free, and nothing may \
                  block (Condvar::wait, channel recv, accept, socket I/O) holding two guards",
        severity: Severity::Error,
        check: Check::Workspace(locks::lock_order),
    },
    Rule {
        name: "hot-path-alloc",
        summary: "storage::kernels, storage::succinct and query::exec semijoin bodies may \
                  not allocate (Vec::new/with_capacity/push-to-fresh/collect/to_vec/clone) \
                  outside *Scratch constructors and succinct builders",
        severity: Severity::Error,
        check: Check::File(hot_path_alloc),
    },
    Rule {
        name: "forbid-unsafe",
        summary: "every crate root must carry #![forbid(unsafe_code)]",
        severity: Severity::Error,
        check: Check::File(forbid_unsafe),
    },
    Rule {
        name: "no-print",
        summary: "println!/eprintln!/print!/eprint! are banned outside cli and bench",
        severity: Severity::Error,
        check: Check::File(no_print),
    },
    Rule {
        name: "no-exit",
        summary: "std::process::exit is banned outside cli",
        severity: Severity::Error,
        check: Check::File(no_exit),
    },
    Rule {
        name: "pool-discipline",
        summary: "PageCache/BufferManager are constructed only in apex-storage and \
                  apex_query::batch",
        severity: Severity::Error,
        check: Check::File(pool_discipline),
    },
];

/// Engine-level hygiene findings that are not catalog rules (and can
/// therefore never be suppressed): listed for `--list-rules`.
pub const META_RULES: &[(&str, &str)] = &[
    (
        "bad-suppression",
        "an apex-lint directive that is malformed, names an unknown rule, or carries \
         no justification",
    ),
    (
        "stale-allow",
        "an `// apex-lint: allow(…)` that silences nothing — dead allows are holes \
         invariants can leak through",
    ),
];

fn emit(ctx: &FileCtx<'_>, out: &mut Vec<Finding>, i: usize, rule: &'static str, message: String) {
    out.push(Finding {
        file: ctx.rel_path.to_string(),
        line: ctx.code_tok(i).line,
        rule,
        severity: Severity::Error,
        message,
    });
}

/// The `Cost` counters that represent storage I/O; attribution breaks if
/// anything outside the storage/executor layers bumps them.
const IO_FIELDS: &[&str] = &["pages_read", "extent_pairs", "table_probes"];

/// Assignment operators (a field followed by one of these is a write).
const ASSIGN_OPS: &[&str] = &["=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="];

fn cost_io_writes(file: &WorkspaceFile<'_>, out: &mut Vec<Finding>) {
    let ctx = &file.ctx;
    // The whole storage crate is a permitted writer — that includes the
    // compressed block encoder (`storage::block`) and the semijoin
    // kernels (`storage::kernels`) the executor charges from. The
    // cost-based planner (`query::plan`) is the executor's peer: its
    // backward join order runs reverse semijoins that fault blocks and
    // charge pages/pairs through the same attributed closures.
    // `core::wal` is the one non-query writer: recovery's segment scan
    // charges `pages_read` for the log pages it faults, so a replayed
    // boot reports its I/O through the same attributed counters as a
    // served query.
    if ctx.crate_dir == "storage"
        || ctx.rel_path == "crates/query/src/exec.rs"
        || ctx.rel_path == "crates/query/src/plan.rs"
        || ctx.rel_path == "crates/core/src/wal.rs"
    {
        return;
    }
    for i in 0..ctx.code_len() {
        if ctx.text(i) == "."
            && IO_FIELDS.iter().any(|f| ctx.ident_is(i + 1, f))
            && ASSIGN_OPS.contains(&ctx.text(i + 2))
            && !ctx.is_test(i)
        {
            emit(
                ctx,
                out,
                i + 1,
                "cost-io-writes",
                format!(
                    "write to Cost I/O counter `{}` outside apex-storage / apex_query::exec \
                     breaks per-operator attribution",
                    ctx.text(i + 1)
                ),
            );
        }
    }
}

fn no_panic(file: &WorkspaceFile<'_>, out: &mut Vec<Finding>) {
    let ctx = &file.ctx;
    if ctx.crate_dir == "cli" {
        return;
    }
    // The serving-root files get the transitive treatment instead: one
    // panic-reachability finding per function, not one per site.
    if callgraph::ROOT_FILES.contains(&ctx.rel_path) {
        return;
    }
    for i in 0..ctx.code_len() {
        if ctx.is_test(i) {
            continue;
        }
        if ctx.text(i) == "."
            && (ctx.ident_is(i + 1, "unwrap") || ctx.ident_is(i + 1, "expect"))
            && ctx.text(i + 2) == "("
        {
            emit(
                ctx,
                out,
                i + 1,
                "no-panic",
                format!(
                    "`.{}()` in library code can panic; propagate a Result or restructure",
                    ctx.text(i + 1)
                ),
            );
        } else if ctx.ident_is(i, "panic") && ctx.text(i + 1) == "!" {
            emit(
                ctx,
                out,
                i,
                "no-panic",
                "`panic!` in library code; return an error instead".to_string(),
            );
        }
    }
}

/// Code-token indices belonging to `item`'s own body — nested fn
/// bodies excluded, since those tokens belong to the nested item.
fn own_body_tokens(file: &WorkspaceFile<'_>, item: &crate::parse::FnItem) -> Vec<usize> {
    let Some((open, close)) = item.body else {
        return Vec::new();
    };
    let mut children: Vec<(usize, usize)> = file
        .parsed
        .fns
        .iter()
        .filter_map(|f| f.body)
        .filter(|&(o, c)| o > open && c < close)
        .collect();
    children.sort_unstable();
    let mut toks = Vec::new();
    let mut child = 0usize;
    let mut i = open;
    let last = close.min(file.ctx.code_len().saturating_sub(1));
    while i <= last {
        while child < children.len() && children[child].0 < i {
            child += 1;
        }
        if child < children.len() && children[child].0 == i {
            i = children[child].1 + 1;
            continue;
        }
        toks.push(i);
        i += 1;
    }
    toks
}

/// Constructor/builder names exempt from `hot-path-alloc` in
/// `storage::succinct`: they materialize the succinct form itself
/// (once, at encode or cache-fill time), so their allocations are the
/// point, not a hot-path leak.
fn is_succinct_builder(name: &str) -> bool {
    name == "new"
        || name == "to_vec"
        || ["build", "pack", "from", "encode"]
            .iter()
            .any(|p| name.starts_with(p))
}

fn hot_path_alloc(file: &WorkspaceFile<'_>, out: &mut Vec<Finding>) {
    let ctx = &file.ctx;
    let in_kernels = ctx.rel_path == "crates/storage/src/kernels.rs";
    let in_exec = ctx.rel_path == "crates/query/src/exec.rs";
    let in_succinct = ctx.rel_path == "crates/storage/src/succinct.rs";
    if !in_kernels && !in_exec && !in_succinct {
        return;
    }
    for item in &file.parsed.fns {
        if item.is_test {
            continue;
        }
        let owner = item.owner.as_deref().unwrap_or("");
        // Scratch constructors are *where* the buffers get allocated;
        // everything else on the hot path reuses them.
        if owner.ends_with("Scratch") {
            continue;
        }
        // In succinct.rs the builders own their allocations; the
        // query-time surface (directory probes, sampled restarts,
        // cursor fills) stays covered.
        if in_succinct && is_succinct_builder(&item.name) {
            continue;
        }
        // In exec.rs the hot path is the semijoin/join operators; other
        // operators and plumbing are covered by the per-site rules.
        if in_exec && !owner.contains("Semijoin") && !owner.contains("Join") {
            continue;
        }
        for i in own_body_tokens(file, item) {
            if ctx.is_test(i) {
                continue;
            }
            let t = ctx.text(i);
            if t == "Vec"
                && ctx.text(i + 1) == "::"
                && (ctx.ident_is(i + 2, "new") || ctx.ident_is(i + 2, "with_capacity"))
            {
                emit(
                    ctx,
                    out,
                    i,
                    "hot-path-alloc",
                    format!(
                        "`Vec::{}` allocates on the semijoin hot path; take a *Scratch \
                         buffer instead",
                        ctx.text(i + 2)
                    ),
                );
            } else if t == "vec" && ctx.text(i + 1) == "!" {
                emit(
                    ctx,
                    out,
                    i,
                    "hot-path-alloc",
                    "`vec![…]` allocates on the semijoin hot path; take a *Scratch buffer \
                     instead"
                        .to_string(),
                );
            } else if t == "." && ctx.text(i + 2) == "(" {
                let m = ctx.text(i + 1);
                match m {
                    "collect" | "to_vec" | "clone" => emit(
                        ctx,
                        out,
                        i + 1,
                        "hot-path-alloc",
                        format!(
                            "`.{m}()` allocates on the semijoin hot path; write into a \
                             reused *Scratch buffer instead"
                        ),
                    ),
                    "push" | "extend" if !scratch_receiver(ctx, item, i) => emit(
                        ctx,
                        out,
                        i + 1,
                        "hot-path-alloc",
                        format!(
                            "`.{m}()` into a non-scratch collection allocates on the \
                             semijoin hot path; push into a *Scratch buffer or a &mut \
                             output parameter"
                        ),
                    ),
                    _ => {}
                }
            } else if t == "." && ctx.ident_is(i + 1, "collect") && ctx.text(i + 2) == "::" {
                // Turbofish form: `.collect::<Vec<_>>()`.
                emit(
                    ctx,
                    out,
                    i + 1,
                    "hot-path-alloc",
                    "`.collect::<…>()` allocates on the semijoin hot path; write into a \
                     reused *Scratch buffer instead"
                        .to_string(),
                );
            }
        }
    }
}

/// True when the receiver chain of `<chain> . push/extend (` at dot `i`
/// is rooted in a scratch buffer: the literal `scratch`, `self` inside
/// a `*Scratch` impl, or a `&mut` parameter of the enclosing fn.
fn scratch_receiver(ctx: &FileCtx<'_>, item: &crate::parse::FnItem, i: usize) -> bool {
    // Walk to the root of the `.`-separated receiver chain.
    let mut j = i;
    while j >= 2 && ctx.is_ident(j - 1) && ctx.text(j - 2) == "." {
        j -= 2;
    }
    if j == 0 || !ctx.is_ident(j - 1) {
        return false; // `foo().buf.push(…)` — unresolvable root
    }
    let root = ctx.text(j - 1);
    if root == "scratch" {
        return true;
    }
    if root == "self" {
        return item
            .owner
            .as_deref()
            .is_some_and(|o| o.ends_with("Scratch"));
    }
    item.params.iter().any(|p| p.name == root && p.by_mut_ref())
}

fn forbid_unsafe(file: &WorkspaceFile<'_>, out: &mut Vec<Finding>) {
    let ctx = &file.ctx;
    if !ctx.is_crate_root {
        return;
    }
    for i in 0..ctx.code_len() {
        if ctx.text(i) == "#"
            && ctx.text(i + 1) == "!"
            && ctx.text(i + 2) == "["
            && ctx.ident_is(i + 3, "forbid")
            && ctx.text(i + 4) == "("
        {
            // Accept any ident list containing unsafe_code before `)`.
            let mut j = i + 5;
            while j < ctx.code_len() && ctx.text(j) != ")" {
                if ctx.ident_is(j, "unsafe_code") {
                    return; // satisfied
                }
                j += 1;
            }
        }
    }
    out.push(Finding {
        file: ctx.rel_path.to_string(),
        line: 1,
        rule: "forbid-unsafe",
        severity: Severity::Error,
        message: "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
    });
}

/// Crates whose job is terminal output.
const PRINT_CRATES: &[&str] = &["cli", "bench"];

fn no_print(file: &WorkspaceFile<'_>, out: &mut Vec<Finding>) {
    let ctx = &file.ctx;
    if PRINT_CRATES.contains(&ctx.crate_dir) {
        return;
    }
    const MACROS: &[&str] = &["println", "eprintln", "print", "eprint"];
    for i in 0..ctx.code_len() {
        if MACROS.iter().any(|m| ctx.ident_is(i, m)) && ctx.text(i + 1) == "!" && !ctx.is_test(i) {
            emit(
                ctx,
                out,
                i,
                "no-print",
                format!(
                    "`{}!` in a library crate; terminal output belongs to cli/bench",
                    ctx.text(i)
                ),
            );
        }
    }
}

fn no_exit(file: &WorkspaceFile<'_>, out: &mut Vec<Finding>) {
    let ctx = &file.ctx;
    if ctx.crate_dir == "cli" {
        return;
    }
    for i in 0..ctx.code_len() {
        if ctx.ident_is(i, "process")
            && ctx.text(i + 1) == "::"
            && ctx.ident_is(i + 2, "exit")
            && !ctx.is_test(i)
        {
            emit(
                ctx,
                out,
                i + 2,
                "no-exit",
                "`std::process::exit` outside cli skips destructors and steals the \
                 exit-code decision"
                    .to_string(),
            );
        }
    }
}

fn pool_discipline(file: &WorkspaceFile<'_>, out: &mut Vec<Finding>) {
    let ctx = &file.ctx;
    if ctx.crate_dir == "storage" || ctx.rel_path == "crates/query/src/batch.rs" {
        return;
    }
    const TYPES: &[&str] = &["PageCache", "BufferManager"];
    const CTORS: &[&str] = &[
        "new",
        "unbounded",
        "with_capacity",
        "with_capacity_pages",
        "default",
    ];
    for i in 0..ctx.code_len() {
        if TYPES.iter().any(|t| ctx.ident_is(i, t))
            && ctx.text(i + 1) == "::"
            && CTORS.iter().any(|c| ctx.ident_is(i + 2, c))
            && !ctx.is_test(i)
        {
            emit(
                ctx,
                out,
                i,
                "pool-discipline",
                format!(
                    "direct `{}::{}` outside apex-storage / apex_query::batch bypasses \
                     the shared pool discipline",
                    ctx.text(i),
                    ctx.text(i + 2)
                ),
            );
        }
    }
}
