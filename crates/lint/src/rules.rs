//! The rule catalog.
//!
//! Each rule is a token-sequence matcher over one file's code tokens
//! (comments and string contents never match — see [`crate::lexer`]).
//! Rules encode the workspace's architectural invariants:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `cost-io-writes` | `Cost` I/O counters are written only by the storage layer (incl. `storage::block` / `storage::kernels`), the shared executor and the planner's attributed operators |
//! | `no-panic` | library code neither `.unwrap()`s, `.expect()`s nor `panic!`s |
//! | `forbid-unsafe` | every crate root carries `#![forbid(unsafe_code)]` |
//! | `no-print` | output macros live in `cli`/`bench` only |
//! | `no-exit` | `std::process::exit` is the CLI's privilege |
//! | `pool-discipline` | buffer pools are constructed by `storage` and the batch layer only |
//!
//! To add a rule: write a `fn(&FileCtx, &mut Vec<Finding>)`, add a
//! [`Rule`] entry to [`RULES`], add a triggering and a clean fixture
//! under `crates/lint/tests/fixtures/`, and document it in `DESIGN.md`.

use crate::engine::{FileCtx, Finding, Severity};

/// A named invariant check.
pub struct Rule {
    /// Stable kebab-case name, used in reports and `allow(…)`.
    pub name: &'static str,
    /// One-line description for `--list-rules`.
    pub summary: &'static str,
    /// Severity of its findings.
    pub severity: Severity,
    /// The matcher.
    pub check: fn(&FileCtx, &mut Vec<Finding>),
}

/// The rule catalog, in report order.
pub const RULES: &[Rule] = &[
    Rule {
        name: "cost-io-writes",
        summary: "Cost I/O counters (pages_read/extent_pairs/table_probes) are written \
                  only in apex-storage (incl. block/kernels), apex_query::exec and \
                  apex_query::plan",
        severity: Severity::Error,
        check: cost_io_writes,
    },
    Rule {
        name: "no-panic",
        summary: ".unwrap()/.expect()/panic! are banned in non-test library code \
                  (cli exempt)",
        severity: Severity::Error,
        check: no_panic,
    },
    Rule {
        name: "forbid-unsafe",
        summary: "every crate root must carry #![forbid(unsafe_code)]",
        severity: Severity::Error,
        check: forbid_unsafe,
    },
    Rule {
        name: "no-print",
        summary: "println!/eprintln!/print!/eprint! are banned outside cli and bench",
        severity: Severity::Error,
        check: no_print,
    },
    Rule {
        name: "no-exit",
        summary: "std::process::exit is banned outside cli",
        severity: Severity::Error,
        check: no_exit,
    },
    Rule {
        name: "pool-discipline",
        summary: "PageCache/BufferManager are constructed only in apex-storage and \
                  apex_query::batch",
        severity: Severity::Error,
        check: pool_discipline,
    },
];

fn emit(ctx: &FileCtx, out: &mut Vec<Finding>, i: usize, rule: &'static str, message: String) {
    out.push(Finding {
        file: ctx.rel_path.to_string(),
        line: ctx.code_tok(i).line,
        rule,
        severity: Severity::Error,
        message,
    });
}

/// The `Cost` counters that represent storage I/O; attribution breaks if
/// anything outside the storage/executor layers bumps them.
const IO_FIELDS: &[&str] = &["pages_read", "extent_pairs", "table_probes"];

/// Assignment operators (a field followed by one of these is a write).
const ASSIGN_OPS: &[&str] = &["=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="];

fn cost_io_writes(ctx: &FileCtx, out: &mut Vec<Finding>) {
    // The whole storage crate is a permitted writer — that includes the
    // compressed block encoder (`storage::block`) and the semijoin
    // kernels (`storage::kernels`) the executor charges from. The
    // cost-based planner (`query::plan`) is the executor's peer: its
    // backward join order runs reverse semijoins that fault blocks and
    // charge pages/pairs through the same attributed closures.
    if ctx.crate_dir == "storage"
        || ctx.rel_path == "crates/query/src/exec.rs"
        || ctx.rel_path == "crates/query/src/plan.rs"
    {
        return;
    }
    for i in 0..ctx.code_len() {
        if ctx.text(i) == "."
            && IO_FIELDS.iter().any(|f| ctx.ident_is(i + 1, f))
            && ASSIGN_OPS.contains(&ctx.text(i + 2))
            && !ctx.is_test(i)
        {
            emit(
                ctx,
                out,
                i + 1,
                "cost-io-writes",
                format!(
                    "write to Cost I/O counter `{}` outside apex-storage / apex_query::exec \
                     breaks per-operator attribution",
                    ctx.text(i + 1)
                ),
            );
        }
    }
}

fn no_panic(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.crate_dir == "cli" {
        return;
    }
    for i in 0..ctx.code_len() {
        if ctx.is_test(i) {
            continue;
        }
        if ctx.text(i) == "."
            && (ctx.ident_is(i + 1, "unwrap") || ctx.ident_is(i + 1, "expect"))
            && ctx.text(i + 2) == "("
        {
            emit(
                ctx,
                out,
                i + 1,
                "no-panic",
                format!(
                    "`.{}()` in library code can panic; propagate a Result or restructure",
                    ctx.text(i + 1)
                ),
            );
        } else if ctx.ident_is(i, "panic") && ctx.text(i + 1) == "!" {
            emit(
                ctx,
                out,
                i,
                "no-panic",
                "`panic!` in library code; return an error instead".to_string(),
            );
        }
    }
}

fn forbid_unsafe(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !ctx.is_crate_root {
        return;
    }
    for i in 0..ctx.code_len() {
        if ctx.text(i) == "#"
            && ctx.text(i + 1) == "!"
            && ctx.text(i + 2) == "["
            && ctx.ident_is(i + 3, "forbid")
            && ctx.text(i + 4) == "("
        {
            // Accept any ident list containing unsafe_code before `)`.
            let mut j = i + 5;
            while j < ctx.code_len() && ctx.text(j) != ")" {
                if ctx.ident_is(j, "unsafe_code") {
                    return; // satisfied
                }
                j += 1;
            }
        }
    }
    out.push(Finding {
        file: ctx.rel_path.to_string(),
        line: 1,
        rule: "forbid-unsafe",
        severity: Severity::Error,
        message: "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
    });
}

/// Crates whose job is terminal output.
const PRINT_CRATES: &[&str] = &["cli", "bench"];

fn no_print(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if PRINT_CRATES.contains(&ctx.crate_dir) {
        return;
    }
    const MACROS: &[&str] = &["println", "eprintln", "print", "eprint"];
    for i in 0..ctx.code_len() {
        if MACROS.iter().any(|m| ctx.ident_is(i, m)) && ctx.text(i + 1) == "!" && !ctx.is_test(i) {
            emit(
                ctx,
                out,
                i,
                "no-print",
                format!(
                    "`{}!` in a library crate; terminal output belongs to cli/bench",
                    ctx.text(i)
                ),
            );
        }
    }
}

fn no_exit(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.crate_dir == "cli" {
        return;
    }
    for i in 0..ctx.code_len() {
        if ctx.ident_is(i, "process")
            && ctx.text(i + 1) == "::"
            && ctx.ident_is(i + 2, "exit")
            && !ctx.is_test(i)
        {
            emit(
                ctx,
                out,
                i + 2,
                "no-exit",
                "`std::process::exit` outside cli skips destructors and steals the \
                 exit-code decision"
                    .to_string(),
            );
        }
    }
}

fn pool_discipline(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.crate_dir == "storage" || ctx.rel_path == "crates/query/src/batch.rs" {
        return;
    }
    const TYPES: &[&str] = &["PageCache", "BufferManager"];
    const CTORS: &[&str] = &[
        "new",
        "unbounded",
        "with_capacity",
        "with_capacity_pages",
        "default",
    ];
    for i in 0..ctx.code_len() {
        if TYPES.iter().any(|t| ctx.ident_is(i, t))
            && ctx.text(i + 1) == "::"
            && CTORS.iter().any(|c| ctx.ident_is(i + 2, c))
            && !ctx.is_test(i)
        {
            emit(
                ctx,
                out,
                i,
                "pool-discipline",
                format!(
                    "direct `{}::{}` outside apex-storage / apex_query::batch bypasses \
                     the shared pool discipline",
                    ctx.text(i),
                    ctx.text(i + 2)
                ),
            );
        }
    }
}
