//! An item-level parser over the lexer's token stream.
//!
//! The token-sequence rules of PR 2 see a flat window of tokens; the
//! structure-aware rules (panic reachability, lock order, hot-path
//! allocation) need to know *which function* a token belongs to, which
//! `impl` owns that function, and which struct fields are locks. This
//! module recovers exactly that much structure — `mod` / `impl` /
//! `trait` / `fn` nesting, parameter lists, body extents, and
//! `Mutex`/`RwLock` struct fields — and nothing more. It is a
//! recognizer, not a grammar: every lookup is bounds-tolerant (via
//! [`FileCtx::text`]'s empty-string-past-the-end contract) so malformed
//! input degrades to fewer recovered items, never a panic.
//!
//! All indices in this module are *code-token* indices into the owning
//! [`FileCtx`] (comments excluded), matching what the rule matchers use.

use crate::engine::FileCtx;

/// One function parameter, reduced to what the analyses need.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (`self` for receivers; the last ident of a pattern).
    pub name: String,
    /// The declared type's tokens joined with single spaces, e.g.
    /// `& mut Vec < EdgePair >`. Empty for bare `self` receivers.
    pub ty: String,
}

impl Param {
    /// True when the parameter is taken by `&mut` reference.
    pub fn by_mut_ref(&self) -> bool {
        self.ty.starts_with("& mut ")
    }

    /// The head type name: the first path-segment identifier after
    /// stripping references, `mut`, lifetimes, `dyn` and `impl` — for
    /// `& mut fabric :: Trie < u32 >` this is `fabric`'s final segment
    /// `Trie`… i.e. the last identifier before any `<` in the leading
    /// path, which is what receiver-type call resolution keys on.
    pub fn type_head(&self) -> Option<&str> {
        let mut head = None;
        for w in self.ty.split(' ') {
            match w {
                "&" | "mut" | "dyn" | "impl" => continue,
                w if w.starts_with('\'') => continue,
                "::" => continue,
                "<" => break,
                w if w
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_') =>
                {
                    head = Some(w);
                }
                _ => break,
            }
        }
        head
    }

    /// For `& Mutex < Foo >` / `Arc < Mutex < Foo > >` returns `Foo`:
    /// the identifier immediately following `Mutex <` (or `RwLock <`).
    pub fn mutex_inner(&self) -> Option<&str> {
        let words: Vec<&str> = self.ty.split(' ').collect();
        for i in 0..words.len() {
            if (words[i] == "Mutex" || words[i] == "RwLock")
                && words.get(i + 1) == Some(&"<")
                && words.get(i + 2).is_some()
            {
                return Some(words[i + 2]);
            }
        }
        None
    }
}

/// One recovered `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's bare name.
    pub name: String,
    /// The `impl`/`trait` type the function belongs to, if any.
    pub owner: Option<String>,
    /// Inline `mod` path within the file (outermost first).
    pub modules: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Parsed parameter list.
    pub params: Vec<Param>,
    /// Code-token indices of the body's `{` and its matching `}`;
    /// `None` for bodyless trait/extern declarations.
    pub body: Option<(usize, usize)>,
    /// True when the function lies in `#[test]`/`#[cfg(test)]` code.
    pub is_test: bool,
}

/// One named struct field with its declared type.
#[derive(Debug, Clone)]
pub struct FieldItem {
    /// Name of the struct that owns the field.
    pub owner: String,
    /// The field's name.
    pub name: String,
    /// The declared type's tokens joined with single spaces.
    pub ty: String,
}

impl FieldItem {
    /// `Some(rw)` when the field is a lock: `Mutex<…>` (`rw == false`)
    /// or `RwLock<…>` (`rw == true`), possibly nested in `Arc<…>`.
    pub fn lock_kind(&self) -> Option<bool> {
        let words: Vec<&str> = self.ty.split(' ').collect();
        for i in 0..words.len() {
            if words.get(i + 1) == Some(&"<") {
                match words[i] {
                    "Mutex" => return Some(false),
                    "RwLock" => return Some(true),
                    _ => {}
                }
            }
        }
        None
    }
}

/// Everything the parser recovers from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// All `fn` items, in source order (nested fns included).
    pub fns: Vec<FnItem>,
    /// All named struct fields, with declared types.
    pub fields: Vec<FieldItem>,
    /// All type names the file defines (structs, enums, unions, traits,
    /// and `impl` subjects).
    pub types: Vec<String>,
}

impl ParsedFile {
    /// The innermost function whose body contains code-token `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(o, c)| o <= i && i <= c))
            .min_by_key(|f| f.body.map(|(o, c)| c - o).unwrap_or(usize::MAX))
    }
}

/// What kind of brace-delimited scope the walker is inside.
#[derive(Debug, Clone)]
enum ScopeKind {
    Module(String),
    Owner(String),
    Struct(String),
    Other,
}

struct Scope {
    kind: ScopeKind,
    depth: u32,
}

/// Tokens that may legally precede an item keyword (`impl`, `struct`,
/// …) in statement position. Anything else — `->`, `(`, `,`, `&` — puts
/// the keyword in *type* position (`-> impl Iterator`), not an item.
fn item_position(prev: &str) -> bool {
    matches!(prev, "" | "{" | "}" | ";" | "]" | "unsafe" | "pub" | ")")
}

/// Parses one file's structure. Never panics, even on arbitrary bytes:
/// unrecognized regions simply contribute no items.
pub fn parse(ctx: &FileCtx) -> ParsedFile {
    Parser {
        ctx,
        out: ParsedFile::default(),
        scopes: Vec::new(),
        depth: 0,
    }
    .run()
}

struct Parser<'c, 'a> {
    ctx: &'c FileCtx<'a>,
    out: ParsedFile,
    scopes: Vec<Scope>,
    depth: u32,
}

impl<'c, 'a> Parser<'c, 'a> {
    fn run(mut self) -> ParsedFile {
        let mut i = 0usize;
        let n = self.ctx.code_len();
        while i < n {
            let t = self.ctx.text(i);
            let prev = if i == 0 { "" } else { self.ctx.text(i - 1) };
            match t {
                "{" => {
                    self.depth += 1;
                    i += 1;
                }
                "}" => {
                    while self.scopes.last().is_some_and(|s| s.depth == self.depth) {
                        self.scopes.pop();
                    }
                    self.depth = self.depth.saturating_sub(1);
                    i += 1;
                }
                "mod" if item_position(prev) => i = self.item_mod(i),
                "impl" if item_position(prev) => i = self.item_impl(i),
                "trait" if item_position(prev) => i = self.item_trait(i),
                "struct" | "enum" | "union" if item_position(prev) => i = self.item_struct(i),
                "fn" => i = self.item_fn(i),
                _ => {
                    if let Some(next) = self.struct_field(i) {
                        i = next;
                    } else {
                        i += 1;
                    }
                }
            }
        }
        self.out
    }

    /// Pushes `kind` for the brace opening at `open` (which the caller
    /// has located but not consumed) and returns the index after it.
    fn enter(&mut self, kind: ScopeKind, open: usize) -> usize {
        self.depth += 1;
        self.scopes.push(Scope {
            kind,
            depth: self.depth,
        });
        open + 1
    }

    /// `mod name { … }` or `mod name;`.
    fn item_mod(&mut self, i: usize) -> usize {
        let name = self.ctx.text(i + 1);
        if !is_name(name) {
            return i + 1;
        }
        match self.ctx.text(i + 2) {
            "{" => self.enter(ScopeKind::Module(name.to_string()), i + 2),
            _ => i + 2, // `mod name;` — out of line, nothing to scope
        }
    }

    /// `impl [<…>] Type { … }` / `impl [<…>] Trait for Type { … }`.
    fn item_impl(&mut self, i: usize) -> usize {
        let mut j = i + 1;
        j = self.skip_generics(j);
        // Collect the header up to `{` (or give up at `;`/EOF); the
        // implemented type is the segment after `for` when present.
        let mut seg_start = j;
        while j < self.ctx.code_len() {
            match self.ctx.text(j) {
                "{" => {
                    let name = self.type_name_in(seg_start, j);
                    return self.enter_owner(name, j);
                }
                ";" => return j + 1,
                "for" => seg_start = j + 1,
                "where" => {
                    let name = self.type_name_in(seg_start, j);
                    return match self.find_block_open(j) {
                        Some(open) => self.enter_owner(name, open),
                        None => self.ctx.code_len(),
                    };
                }
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// Enters an `impl`/`trait` body, recording the owner type name.
    fn enter_owner(&mut self, name: Option<String>, open: usize) -> usize {
        match name {
            Some(name) => {
                if !self.out.types.contains(&name) {
                    self.out.types.push(name.clone());
                }
                self.enter(ScopeKind::Owner(name), open)
            }
            None => self.enter(ScopeKind::Other, open),
        }
    }

    /// `trait Name [: bounds] { … }`.
    fn item_trait(&mut self, i: usize) -> usize {
        let name = self.ctx.text(i + 1);
        if !is_name(name) {
            return i + 1;
        }
        match self.find_block_open(i + 2) {
            Some(open) => self.enter_owner(Some(name.to_string()), open),
            None => i + 2,
        }
    }

    /// `struct Name [<…>] { fields }` (also covers `enum`/`union`
    /// bodies — variant fields sit two levels deep and are not matched).
    fn item_struct(&mut self, i: usize) -> usize {
        let name = self.ctx.text(i + 1);
        if !is_name(name) {
            return i + 1;
        }
        if !self.out.types.contains(&name.to_string()) {
            self.out.types.push(name.to_string());
        }
        let mut j = self.skip_generics(i + 2);
        while j < self.ctx.code_len() {
            match self.ctx.text(j) {
                "{" => return self.enter(ScopeKind::Struct(name.to_string()), j),
                ";" | "(" => return j, // unit or tuple struct
                _ => j += 1,
            }
        }
        j
    }

    /// Matches `[pub] name : Type` at the immediate depth of the
    /// innermost `struct` scope, records it, and returns the index of
    /// the type's terminator (`,` or the struct's `}`).
    fn struct_field(&mut self, i: usize) -> Option<usize> {
        let owner = match self.scopes.last() {
            Some(Scope {
                kind: ScopeKind::Struct(name),
                depth,
            }) if *depth == self.depth => name.clone(),
            _ => return None,
        };
        let name = self.ctx.text(i);
        if !is_name(name) || self.ctx.text(i + 1) != ":" {
            return None;
        }
        let prev = if i == 0 { "" } else { self.ctx.text(i - 1) };
        if !matches!(prev, "{" | "," | "pub" | ")" | "]") {
            return None;
        }
        // The type runs to the next top-level `,` or the struct's `}`.
        let mut depth = 0i32;
        let mut j = i + 2;
        while j < self.ctx.code_len() {
            match self.ctx.text(j) {
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | ">" => depth -= 1,
                "<<" => depth += 2,
                ">>" => depth -= 2,
                "}" => break,
                "," if depth <= 0 => break,
                _ => {}
            }
            if depth < 0 {
                break;
            }
            j += 1;
        }
        let ty = (i + 2..j)
            .map(|k| self.ctx.text(k))
            .collect::<Vec<_>>()
            .join(" ");
        self.out.fields.push(FieldItem {
            owner,
            name: name.to_string(),
            ty,
        });
        Some(j)
    }

    /// `fn name [<…>] ( params ) [-> ret] [where …] { body }`.
    fn item_fn(&mut self, i: usize) -> usize {
        let name_tok = self.ctx.text(i + 1);
        if !is_name(name_tok) {
            return i + 1; // `fn(u32) -> u32` pointer type
        }
        let j = self.skip_generics(i + 2);
        if self.ctx.text(j) != "(" {
            return i + 2;
        }
        let close = self.matching_paren(j);
        let params = self.parse_params(j + 1, close);
        let after = self.find_block_open_or_semi(close + 1);
        let (body, next) = match after {
            Some((open, true)) => {
                let end = self.ctx.matching_brace(open);
                (Some((open, end)), open + 1)
            }
            Some((semi, false)) => (None, semi + 1),
            None => (None, self.ctx.code_len()),
        };
        let owner = self.scopes.iter().rev().find_map(|s| match &s.kind {
            ScopeKind::Owner(n) => Some(n.clone()),
            _ => None,
        });
        let modules = self
            .scopes
            .iter()
            .filter_map(|s| match &s.kind {
                ScopeKind::Module(n) => Some(n.clone()),
                _ => None,
            })
            .collect();
        self.out.fns.push(FnItem {
            name: name_tok.to_string(),
            owner,
            modules,
            line: self.ctx.code_tok(i).line,
            params,
            body,
            is_test: self.ctx.is_test(i),
        });
        if body.is_some() {
            // Keep walking *inside* the body (nested items, scope depth).
            self.depth += 1;
        }
        next
    }

    /// Splits `params` between code indices `[start, close)` on
    /// top-level commas and reduces each to a [`Param`].
    fn parse_params(&self, start: usize, close: usize) -> Vec<Param> {
        let mut params = Vec::new();
        let mut depth = 0i32;
        let mut seg = start;
        let mut j = start;
        while j <= close {
            let t = self.ctx.text(j);
            let boundary = j == close || (t == "," && depth == 0);
            if boundary {
                if let Some(p) = self.parse_param(seg, j) {
                    params.push(p);
                }
                seg = j + 1;
            } else {
                match t {
                    "(" | "[" | "{" | "<" => depth += 1,
                    ")" | "]" | "}" | ">" => depth -= 1,
                    "<<" => depth += 2,
                    ">>" => depth -= 2,
                    _ => {}
                }
            }
            j += 1;
        }
        params
    }

    /// One parameter in `[start, end)`: `self` forms, or `pattern : ty`.
    fn parse_param(&self, start: usize, end: usize) -> Option<Param> {
        if start >= end {
            return None;
        }
        // Locate the top-level `:` (absent for `self` receivers).
        let mut depth = 0i32;
        let mut colon = None;
        for j in start..end {
            match self.ctx.text(j) {
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" | ">" => depth -= 1,
                ":" if depth == 0 => {
                    colon = Some(j);
                    break;
                }
                _ => {}
            }
        }
        let (name_end, ty) = match colon {
            Some(c) => {
                let ty = (c + 1..end)
                    .map(|j| self.ctx.text(j))
                    .collect::<Vec<_>>()
                    .join(" ");
                (c, ty)
            }
            None => {
                // Receiver: `self`, `&self`, `&mut self`, `&'a self`.
                let is_recv = (start..end).any(|j| self.ctx.text(j) == "self");
                if !is_recv {
                    return None;
                }
                let ty = (start..end.saturating_sub(1))
                    .map(|j| self.ctx.text(j))
                    .collect::<Vec<_>>()
                    .join(" ");
                return Some(Param {
                    name: "self".to_string(),
                    ty: if ty.is_empty() { ty } else { ty + " Self" },
                });
            }
        };
        // The binding name: last ident before the colon (`mut x: T`,
        // destructuring patterns degrade to their last binding).
        let name = (start..name_end)
            .rev()
            .map(|j| self.ctx.text(j))
            .find(|t| is_name(t))?;
        Some(Param {
            name: name.to_string(),
            ty,
        })
    }

    /// If `i` starts a generic list `<…>`, returns the index just past
    /// its closing `>`; otherwise returns `i`.
    fn skip_generics(&self, i: usize) -> usize {
        if self.ctx.text(i) != "<" {
            return i;
        }
        let mut depth = 0i32;
        let mut j = i;
        while j < self.ctx.code_len() {
            match self.ctx.text(j) {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                "(" | "{" | ";" if depth <= 0 => return j,
                _ => {}
            }
            if depth <= 0 {
                return j + 1;
            }
            j += 1;
        }
        j
    }

    /// Index of the `)` matching the `(` at `open` (or the last token).
    fn matching_paren(&self, open: usize) -> usize {
        let mut depth = 0i32;
        for j in open..self.ctx.code_len() {
            match self.ctx.text(j) {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
        self.ctx.code_len().saturating_sub(1)
    }

    /// Scans forward from `i` to the next top-level `{`, used for
    /// headers that may contain a `where` clause.
    fn find_block_open(&self, i: usize) -> Option<usize> {
        (i..self.ctx.code_len()).find(|&j| self.ctx.text(j) == "{")
    }

    /// Scans from `i` for the fn body's `{` or a terminating `;`.
    /// Returns `(index, is_brace)`.
    fn find_block_open_or_semi(&self, i: usize) -> Option<(usize, bool)> {
        for j in i..self.ctx.code_len() {
            match self.ctx.text(j) {
                "{" => return Some((j, true)),
                ";" => return Some((j, false)),
                _ => {}
            }
        }
        None
    }

    /// The implemented type's name within header tokens `[start, end)`:
    /// the identifier right before the first `<`, else the last
    /// identifier of the path.
    fn type_name_in(&self, start: usize, end: usize) -> Option<String> {
        let mut last = None;
        for j in start..end {
            let t = self.ctx.text(j);
            if t == "<" {
                break;
            }
            if is_name(t) && !matches!(t, "dyn" | "mut") {
                last = Some(t.to_string());
            }
        }
        last
    }
}

/// A plausible item name: starts like an identifier and is not a
/// keyword that can follow the anchors we match on.
fn is_name(t: &str) -> bool {
    let mut chars = t.chars();
    let head_ok = chars.next().is_some_and(|c| c.is_alphabetic() || c == '_');
    head_ok
        && !matches!(
            t,
            "fn" | "mod"
                | "impl"
                | "trait"
                | "struct"
                | "enum"
                | "union"
                | "pub"
                | "where"
                | "for"
                | "self"
                | "Self"
                | "crate"
                | "super"
                | "mut"
                | "dyn"
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(src: &str) -> ParsedFile {
        let ctx = FileCtx::new("crates/x/src/lib.rs", src);
        parse(&ctx)
    }

    #[test]
    fn free_fn_and_method() {
        let p = parsed(
            "fn free(a: u32, b: &mut Vec<u8>) -> u32 { a }\n\
             struct S { x: u32 }\n\
             impl S { pub fn m(&self, k: usize) -> u32 { self.x } }",
        );
        assert_eq!(p.fns.len(), 2);
        let free = &p.fns[0];
        assert_eq!(free.name, "free");
        assert_eq!(free.owner, None);
        assert_eq!(free.params.len(), 2);
        assert_eq!(free.params[0].name, "a");
        assert!(free.params[1].by_mut_ref());
        assert_eq!(free.params[1].type_head(), Some("Vec"));
        let m = &p.fns[1];
        assert_eq!(m.owner.as_deref(), Some("S"));
        assert_eq!(m.params[0].name, "self");
        assert_eq!(m.params[1].name, "k");
    }

    #[test]
    fn trait_impls_attach_to_the_implemented_type() {
        let p = parsed(
            "impl fmt::Display for Cost { fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { Ok(()) } }",
        );
        assert_eq!(p.fns[0].owner.as_deref(), Some("Cost"));
        assert_eq!(p.fns[0].name, "fmt");
    }

    #[test]
    fn generic_impls_and_where_clauses() {
        let p = parsed(
            "impl<'a, T: Clone> Holder<'a, T> where T: Send { fn get<Q: Into<T>>(&self, q: Q) -> T { self.t.clone() } }",
        );
        assert_eq!(p.fns[0].owner.as_deref(), Some("Holder"));
        assert_eq!(p.fns[0].params.len(), 2);
    }

    #[test]
    fn inline_modules_nest() {
        let p = parsed("mod outer { mod inner { fn deep() {} } fn shallow() {} }");
        assert_eq!(p.fns[0].modules, ["outer", "inner"]);
        assert_eq!(p.fns[1].modules, ["outer"]);
    }

    #[test]
    fn impl_in_return_position_is_not_an_item() {
        let p = parsed(
            "fn mk() -> impl Iterator<Item = u32> { std::iter::empty() }\n\
             fn after() {}",
        );
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[1].owner, None, "after() must not inherit an owner");
    }

    #[test]
    fn bodyless_trait_methods_and_fn_pointer_types() {
        let p = parsed(
            "trait T { fn required(&self) -> u32; fn provided(&self) -> u32 { 1 } }\n\
             fn takes(f: fn(u32) -> u32) -> u32 { f(1) }",
        );
        assert_eq!(p.fns.len(), 3);
        assert_eq!(p.fns[0].body, None);
        assert!(p.fns[1].body.is_some());
        assert_eq!(p.fns[0].owner.as_deref(), Some("T"));
        assert_eq!(p.fns[2].name, "takes");
        assert_eq!(p.fns[2].params.len(), 1);
    }

    #[test]
    fn fields_and_lock_kinds_are_recovered() {
        let p = parsed(
            "struct Q { state: Mutex<QueueState>, cv: Condvar }\n\
             pub struct Cell { pub current: Mutex<Arc<Snapshot>> }\n\
             struct R { map: RwLock<HashMap<u32, u32>> }\n\
             struct Plain { n: usize }",
        );
        let locks: Vec<(&str, &str, bool)> = p
            .fields
            .iter()
            .filter_map(|f| {
                f.lock_kind()
                    .map(|rw| (f.owner.as_str(), f.name.as_str(), rw))
            })
            .collect();
        assert_eq!(
            locks,
            [
                ("Q", "state", false),
                ("Cell", "current", false),
                ("R", "map", true),
            ]
        );
        // Non-lock fields are captured too, with their type text.
        let cv = p.fields.iter().find(|f| f.name == "cv").unwrap();
        assert_eq!((cv.owner.as_str(), cv.ty.as_str()), ("Q", "Condvar"));
        assert!(p.types.contains(&"Plain".to_string()));
    }

    #[test]
    fn enclosing_fn_prefers_the_innermost_body() {
        let src = "fn outer() { fn inner() { let x = 1; } }";
        let ctx = FileCtx::new("crates/x/src/lib.rs", src);
        let p = parse(&ctx);
        // Find the code index of `x`.
        let xi = (0..ctx.code_len()).find(|&i| ctx.text(i) == "x").unwrap();
        assert_eq!(p.enclosing_fn(xi).unwrap().name, "inner");
    }

    #[test]
    fn test_functions_are_flagged() {
        let p = parsed("fn lib() {}\n#[cfg(test)]\nmod tests { #[test] fn t() { panic!() } }");
        assert!(!p.fns[0].is_test);
        assert!(p.fns[1].is_test);
    }

    #[test]
    fn arbitrary_garbage_does_not_panic() {
        for src in [
            "fn",
            "fn (",
            "impl",
            "impl {",
            "struct",
            "mod",
            "trait X",
            "fn f(",
            "impl < { fn g(",
            "fn f(a:,,) {}",
            "}}}}{{{{",
            "fn f<T(>) {}",
        ] {
            let _ = parsed(src);
        }
    }
}
