//! A hand-written lexer for the Rust subset the rule engine matches on.
//!
//! The rules in [`crate::rules`] match *token* sequences, so the lexer's
//! one job is to never confuse code with non-code: string literals
//! (including raw / byte / raw-byte forms), character literals vs.
//! lifetimes, and line / nested block comments are all recognized, which
//! is exactly what naive `grep`-style checking gets wrong (`"unwrap()"`
//! inside a string or a doc comment must not fire the panic-freedom
//! rule). Numeric literals and operators are lexed loosely — precise
//! enough for token matching, far short of a full grammar.

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`cost`, `fn`, `unwrap`, …).
    Ident,
    /// Raw identifier (`r#type`).
    RawIdent,
    /// Any literal: string, raw string, byte string, char, number.
    Literal,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Operator or delimiter, maximal-munch (`::`, `+=`, `{`, …).
    Punct,
    /// `// …` comment, doc comments included; text spans to end of line.
    LineComment,
    /// `/* … */` comment, nesting honored.
    BlockComment,
}

/// One token: classification, source text, 1-based starting line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok<'a> {
    /// What the token is.
    pub kind: TokKind,
    /// The token's source text (for `Literal` this includes quotes).
    pub text: &'a str,
    /// 1-based line on which the token starts.
    pub line: u32,
}

/// Multi-character operators, longest first so maximal munch works by
/// scanning the table in order.
const OPS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into a token stream. Unterminated constructs (string,
/// comment) are tolerated: the remainder of the file becomes one token,
/// so linting never aborts on a malformed file — the compiler reports
/// those errors better than we could.
pub fn lex(src: &str) -> Vec<Tok<'_>> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Tok<'a>> {
        let mut toks = Vec::new();
        while let Some(&c) = self.bytes.get(self.pos) {
            let start = self.pos;
            let start_line = self.line;
            let kind = match c {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                    continue;
                }
                b' ' | b'\t' | b'\r' => {
                    self.pos += 1;
                    continue;
                }
                b'/' if self.peek(1) == Some(b'/') => {
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                    TokKind::LineComment
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.block_comment();
                    TokKind::BlockComment
                }
                b'"' => {
                    self.string();
                    TokKind::Literal
                }
                b'\'' => self.char_or_lifetime(),
                b'0'..=b'9' => {
                    self.number();
                    TokKind::Literal
                }
                c if is_ident_start(c) => self.ident_or_prefixed_literal(),
                _ => {
                    self.punct();
                    TokKind::Punct
                }
            };
            toks.push(Tok {
                kind,
                text: &self.src[start..self.pos],
                line: start_line,
            });
        }
        toks
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump_counting_lines(&mut self) {
        if self.bytes[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn block_comment(&mut self) {
        self.pos += 2; // "/*"
        let mut depth = 1u32;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.peek(0) == Some(b'/') && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.peek(0) == Some(b'*') && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.bump_counting_lines();
            }
        }
    }

    /// Consumes a `"…"` string starting at `pos`, honoring `\` escapes.
    fn string(&mut self) {
        self.pos += 1; // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    self.pos += 1;
                    if self.pos < self.bytes.len() {
                        self.bump_counting_lines();
                    }
                }
                b'"' => {
                    self.pos += 1;
                    return;
                }
                _ => self.bump_counting_lines(),
            }
        }
    }

    /// Consumes `r"…"` / `r#"…"#` with any number of hashes; `pos` is on
    /// the first `#` or the opening quote (the `r`/`br` prefix is already
    /// consumed by the caller).
    fn raw_string(&mut self) {
        let start = self.pos;
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        if self.peek(0) != Some(b'"') {
            self.pos = start; // not actually a raw string; back off
            return;
        }
        self.pos += 1;
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'"' {
                let after = &self.bytes[self.pos + 1..];
                if after.len() >= hashes && after[..hashes].iter().all(|&b| b == b'#') {
                    self.pos += 1 + hashes;
                    return;
                }
            }
            self.bump_counting_lines();
        }
    }

    /// Distinguishes `'a` (lifetime) from `'a'` / `'\n'` (char literal).
    fn char_or_lifetime(&mut self) -> TokKind {
        // pos is on the opening quote.
        match self.peek(1) {
            Some(b'\\') => {
                // Definitely a char literal with an escape.
                self.pos += 2; // quote + backslash
                if self.pos < self.bytes.len() {
                    self.pos += 1; // the escaped character
                }
                self.scan_to_closing_quote();
                TokKind::Literal
            }
            Some(c) if is_ident_start(c) => {
                let mut j = self.pos + 2;
                while j < self.bytes.len() && is_ident_continue(self.bytes[j]) {
                    j += 1;
                }
                if self.bytes.get(j) == Some(&b'\'') {
                    self.pos = j + 1; // 'x' — a char literal
                    TokKind::Literal
                } else {
                    self.pos = j; // 'ident — a lifetime
                    TokKind::Lifetime
                }
            }
            Some(_) => {
                // ' ' or '€' or similar single-char literal.
                self.pos += 2;
                self.scan_to_closing_quote();
                TokKind::Literal
            }
            None => {
                self.pos += 1;
                TokKind::Punct
            }
        }
    }

    fn scan_to_closing_quote(&mut self) {
        // Multibyte chars: skip continuation bytes until the quote.
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
            self.pos += 1;
        }
        if self.pos < self.bytes.len() {
            self.pos += 1;
        }
    }

    fn number(&mut self) {
        while self
            .peek(0)
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            self.pos += 1;
        }
        // A fractional part: `1.5` but not `1..2` or `1.max(2)`.
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
            while self
                .peek(0)
                .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
            {
                self.pos += 1;
            }
        }
    }

    /// An identifier, or a literal announced by an identifier-like prefix
    /// (`r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'x'`, `r#ident`).
    fn ident_or_prefixed_literal(&mut self) -> TokKind {
        let start = self.pos;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.pos += 1;
        }
        let word = &self.src[start..self.pos];
        match (word, self.peek(0)) {
            ("r" | "br", Some(b'"')) => {
                self.raw_string();
                TokKind::Literal
            }
            ("r" | "br", Some(b'#')) => {
                // Could be a raw string (r#"…"#) or a raw identifier
                // (r#type). raw_string() backs off unless it finds the
                // quote after the hashes.
                let before = self.pos;
                self.raw_string();
                if self.pos != before {
                    return TokKind::Literal;
                }
                if word == "r" && self.peek(1).is_some_and(is_ident_start) {
                    self.pos += 1; // '#'
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.pos += 1;
                    }
                    return TokKind::RawIdent;
                }
                TokKind::Ident
            }
            ("b", Some(b'"')) => {
                self.string();
                TokKind::Literal
            }
            ("b", Some(b'\'')) => {
                self.pos += 1; // the quote
                if self.peek(0) == Some(b'\\') {
                    // Skip the backslash, then the escaped byte — each
                    // step guarded so `b'\` truncated at end of file
                    // cannot run the cursor past the buffer.
                    self.pos += 1;
                    if self.pos < self.bytes.len() {
                        self.bump_counting_lines();
                    }
                }
                self.scan_to_closing_quote();
                TokKind::Literal
            }
            _ => TokKind::Ident,
        }
    }

    fn punct(&mut self) {
        let rest = &self.src[self.pos..];
        for op in OPS {
            if rest.starts_with(op) {
                self.pos += op.len();
                return;
            }
        }
        self.pos += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_ops() {
        let t = kinds("cost.pages_read += 1;");
        assert_eq!(
            t,
            vec![
                (TokKind::Ident, "cost"),
                (TokKind::Punct, "."),
                (TokKind::Ident, "pages_read"),
                (TokKind::Punct, "+="),
                (TokKind::Literal, "1"),
                (TokKind::Punct, ";"),
            ]
        );
    }

    #[test]
    fn strings_hide_their_content() {
        let t = kinds(r#"let s = "x.unwrap() panic!";"#);
        assert!(t.iter().all(|(_, s)| !s.starts_with("unwrap")));
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Literal).count(), 1);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let t = kinds(r###"let s = r#"quote " inside .unwrap()"#; s.len()"###);
        let lits: Vec<_> = t.iter().filter(|(k, _)| *k == TokKind::Literal).collect();
        assert_eq!(lits.len(), 1);
        assert!(lits[0].1.contains("unwrap"));
        // The unwrap inside the raw string is a literal, not an ident.
        assert!(!t.contains(&(TokKind::Ident, "unwrap")));
        assert!(t.contains(&(TokKind::Ident, "len")));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let t = kinds(r#"(b"ab.unwrap()", b'x', b'\n')"#);
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Literal).count(), 3);
        assert!(!t.contains(&(TokKind::Ident, "unwrap")));
    }

    #[test]
    fn byte_literals_are_single_tokens_not_ident_plus_string() {
        // Each prefixed form must come back as ONE Literal token whose
        // text includes the prefix; a split (`b` ident + string) would
        // desynchronize every window-based rule matcher downstream.
        for src in [r#"b"bytes""#, "b'x'", r"b'\''", r"b'\\'", r##"br"raw""##] {
            let t = kinds(src);
            assert_eq!(t.len(), 1, "{src} should lex as one token, got {t:?}");
            assert_eq!(t[0], (TokKind::Literal, src));
        }
    }

    #[test]
    fn truncated_byte_escape_at_eof_does_not_panic() {
        // Regression: `b'\` ending the file used to advance the cursor
        // past the buffer and panic slicing the token text.
        for src in ["b'\\", "b'", "b'\\n", "'\\", "b\"", "br#\"x"] {
            let t = lex(src);
            assert!(!t.is_empty(), "{src:?} should still produce tokens");
        }
    }

    #[test]
    fn multiline_byte_string_counts_lines() {
        let t = lex("b\"one\ntwo\"\nafter");
        assert_eq!(t[0].kind, TokKind::Literal);
        let after = Tok {
            kind: TokKind::Ident,
            text: "after",
            line: 3,
        };
        assert_eq!(t[1], after);
    }

    #[test]
    fn comments_line_block_nested() {
        let t = kinds("a /* outer /* nested .unwrap() */ still */ b // tail panic!\nc");
        assert!(t.contains(&(TokKind::Ident, "a")));
        assert!(t.contains(&(TokKind::Ident, "b")));
        assert!(t.contains(&(TokKind::Ident, "c")));
        assert!(!t.contains(&(TokKind::Ident, "unwrap")));
        assert_eq!(
            t.iter().filter(|(k, _)| *k == TokKind::LineComment).count(),
            1
        );
        assert_eq!(
            t.iter()
                .filter(|(k, _)| *k == TokKind::BlockComment)
                .count(),
            1
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let t = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(t.iter().filter(|(k, _)| *k == TokKind::Lifetime).count() == 2);
        assert!(t.contains(&(TokKind::Literal, "'x'")));
        let t = kinds(r"let c = '\''; let l: &'static str = s;");
        assert!(t.contains(&(TokKind::Literal, r"'\''")));
        assert!(t.contains(&(TokKind::Lifetime, "'static")));
    }

    #[test]
    fn raw_identifiers() {
        let t = kinds("let r#type = r#move;");
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::RawIdent).count(), 2);
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"two\nline string\"\n/* block\ncomment */ b";
        let t = lex(src);
        assert_eq!(t[0].line, 1); // a
        assert_eq!(t[1].line, 2); // the string starts on line 2
        assert_eq!(t[2].line, 4); // block comment starts on line 4
        assert_eq!(t[3].line, 5); // b lands after the comment's newline
    }

    #[test]
    fn floats_do_not_eat_method_calls() {
        let t = kinds("1.5 + 2.max(3) + 0..4");
        assert!(t.contains(&(TokKind::Literal, "1.5")));
        assert!(t.contains(&(TokKind::Ident, "max")));
        assert!(t.contains(&(TokKind::Punct, "..")));
    }
}
