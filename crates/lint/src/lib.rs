//! # apex-lint — the workspace invariant checker
//!
//! PR 1 made per-operator cost attribution a *verified partition* of
//! [`Cost`] — but only runtime tests defended it. `apex-lint` turns the
//! architectural contracts into static rules over the workspace's own
//! sources, in the same build-it-from-scratch spirit as the hand-written
//! XML tokenizer: a small Rust lexer ([`lexer`]) that correctly skips
//! strings and comments, a token-sequence rule engine ([`engine`],
//! [`rules`]) with inline suppressions, and text/JSON reporters
//! ([`report`]).
//!
//! The binary walks `crates/*/src`, applies the catalog, and exits
//! nonzero on errors; `ci.sh` runs it as a hard gate after clippy.
//!
//! ## Rule catalog
//!
//! See [`rules::RULES`]. In short: `Cost` I/O counters may only be
//! written by `apex-storage` and `apex_query::exec` (`cost-io-writes`);
//! library code is panic-free (`no-panic`) and print-free (`no-print`);
//! every crate root forbids `unsafe` (`forbid-unsafe`); only the CLI may
//! call `process::exit` (`no-exit`); buffer pools are constructed only
//! by the storage and batch layers (`pool-discipline`).
//!
//! ## Suppressions
//!
//! ```text
//! cost.pages_read += 1; // apex-lint: allow(cost-io-writes): trie blocks are fabric-local storage
//! ```
//!
//! The justification after the second colon is mandatory; a suppression
//! that silences nothing is reported as a warning so it cannot go stale
//! silently.
//!
//! [`Cost`]: https://example.org/apex-rs (apex_storage::Cost)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;

pub use engine::{lint_str, lint_workspace, FileCtx, Finding, Severity};
pub use report::{render_json, render_text, tally};
