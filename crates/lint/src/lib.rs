//! # apex-lint — the workspace invariant checker
//!
//! PR 1 made per-operator cost attribution a *verified partition* of
//! [`Cost`] — but only runtime tests defended it. `apex-lint` turns the
//! architectural contracts into static rules over the workspace's own
//! sources, in the same build-it-from-scratch spirit as the hand-written
//! XML tokenizer: a small Rust lexer ([`lexer`]) that correctly skips
//! strings and comments, an item-level parser ([`parse`]) that recovers
//! functions, impl owners, parameters and lock-typed fields, a
//! conservative call graph ([`callgraph`]) and lock-acquisition model
//! ([`locks`]) built on top of it, a rule engine ([`engine`], [`rules`])
//! with inline suppressions, and text/JSON/SARIF reporters ([`report`]).
//!
//! The binary walks `crates/*/src`, applies the catalog, and exits
//! nonzero on errors; `ci.sh` runs it as a hard gate after clippy, plus
//! a timed self-check over this crate with a SARIF artifact.
//!
//! ## Rule catalog
//!
//! See [`rules::RULES`] and `crates/lint/RULES.md`. The per-file rules:
//! `Cost` I/O counters may only be written by `apex-storage` and the
//! executor/planner (`cost-io-writes`); library code is panic-free
//! (`no-panic`) and print-free (`no-print`); semijoin kernel bodies
//! never allocate (`hot-path-alloc`); every crate root forbids `unsafe`
//! (`forbid-unsafe`); only the CLI may call `process::exit` (`no-exit`);
//! buffer pools are constructed only by the storage and batch layers
//! (`pool-discipline`). The whole-workspace rules: nothing reachable
//! from the serving roots can panic (`panic-reachability`), and the
//! lock-acquisition graph is cycle-free with no blocking call under two
//! guards (`lock-order`).
//!
//! ## Suppressions
//!
//! ```text
//! cost.pages_read += 1; // apex-lint: allow(cost-io-writes): trie blocks are fabric-local storage
//! ```
//!
//! The justification after the second colon is mandatory; a suppression
//! that silences nothing is itself an error (`stale-allow`), so dead
//! allows cannot accumulate as holes in the gate.
//!
//! [`Cost`]: https://example.org/apex-rs (apex_storage::Cost)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod engine;
pub mod lexer;
pub mod locks;
pub mod parse;
pub mod report;
pub mod rules;

pub use engine::{lint_str, lint_workspace, FileCtx, Finding, Severity, Workspace, WorkspaceFile};
pub use report::{render_json, render_sarif, render_text, tally};
