//! The `apex-lint` binary: walks `crates/*/src` under the workspace
//! root and reports invariant violations. Exit codes: 0 clean, 1
//! findings, 2 usage/IO error.
//!
//! ```text
//! apex-lint [--root <dir>] [--format text|json|sarif] [--only <prefix>]
//!           [--strict] [--list-rules]
//! ```
//!
//! `--only <prefix>` keeps findings whose file path starts with the
//! given workspace-relative prefix (e.g. `crates/lint`); the analysis
//! still runs over the whole workspace so cross-file rules see every
//! caller, only the *report* is narrowed. CI uses it for the timed
//! self-check gate over the analyzer's own crate.
//!
//! The binary holds itself to the catalog it enforces: no panicking
//! calls, no print macros (output goes through `io::Write`), and no
//! `process::exit` (`ExitCode` carries the verdict).

#![forbid(unsafe_code)]

use std::io::{self, Write};
use std::path::PathBuf;
use std::process::ExitCode;

use apex_lint::{lint_workspace, render_json, render_sarif, render_text, rules, tally};

const USAGE: &str = "usage: apex-lint [--root <dir>] [--format text|json|sarif] \
                     [--only <prefix>] [--strict] [--list-rules]";

enum Format {
    Text,
    Json,
    Sarif,
}

struct Opts {
    root: PathBuf,
    format: Format,
    only: Option<String>,
    strict: bool,
    list_rules: bool,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        root: PathBuf::from("."),
        format: Format::Text,
        only: None,
        strict: false,
        list_rules: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root needs a path")?;
                opts.root = PathBuf::from(v);
            }
            "--format" => match it.next().map(String::as_str) {
                Some("text") => opts.format = Format::Text,
                Some("json") => opts.format = Format::Json,
                Some("sarif") => opts.format = Format::Sarif,
                _ => return Err("--format needs `text`, `json` or `sarif`".into()),
            },
            "--only" => {
                let v = it.next().ok_or("--only needs a path prefix")?;
                opts.only = Some(v.trim_end_matches('/').to_string());
            }
            "--strict" => opts.strict = true,
            "--list-rules" => opts.list_rules = true,
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn run(args: &[String]) -> io::Result<ExitCode> {
    let mut stdout = io::stdout().lock();
    let opts = match parse_opts(args) {
        Ok(o) => o,
        Err(msg) => {
            let mut stderr = io::stderr().lock();
            writeln!(stderr, "{msg}")?;
            return Ok(ExitCode::from(2));
        }
    };
    if opts.list_rules {
        for r in rules::RULES {
            writeln!(stdout, "{:<20} {}  {}", r.name, r.severity, r.summary)?;
        }
        for (name, summary) in rules::META_RULES {
            writeln!(stdout, "{name:<20} error  {summary}")?;
        }
        return Ok(ExitCode::SUCCESS);
    }
    let mut findings = lint_workspace(&opts.root)?;
    if let Some(prefix) = &opts.only {
        findings.retain(|f| f.file == *prefix || f.file.starts_with(&format!("{prefix}/")));
    }
    match opts.format {
        Format::Json => writeln!(stdout, "{}", render_json(&findings))?,
        Format::Sarif => writeln!(stdout, "{}", render_sarif(&findings))?,
        Format::Text => write!(stdout, "{}", render_text(&findings))?,
    }
    let (errors, warnings) = tally(&findings);
    let failing = errors > 0 || (opts.strict && warnings > 0);
    Ok(if failing {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            let mut stderr = io::stderr().lock();
            let _ = writeln!(stderr, "apex-lint: {e}");
            ExitCode::from(2)
        }
    }
}
