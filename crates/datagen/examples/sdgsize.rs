fn main() {
    for (name, g) in [
        ("ged150", datagen::gedml(150, 77)),
        ("ged360", datagen::gedml(360, 0x6ED01)),
        ("flix200", datagen::flixml(200, 0xF11F1)),
    ] {
        let t = std::time::Instant::now();
        match dataguide::DataGuide::build_bounded(&g, 5_000_000) {
            Some(dg) => println!(
                "{name}: data {} nodes -> SDG {} nodes / {} edges ({:?})",
                g.node_count(),
                dg.node_count(),
                dg.edge_count(),
                t.elapsed()
            ),
            None => println!("{name}: SDG exceeded limit"),
        }
    }
}
