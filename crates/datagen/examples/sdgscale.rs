//! Measures strong-DataGuide size over GedML corpus sizes (generator
//! calibration aid; see DESIGN.md "Dataset calibration").

fn main() {
    for n in [150usize, 360, 1310] {
        let g = datagen::gedml(n, 0x6ED01);
        match dataguide::DataGuide::build_bounded(&g, 8_000_000) {
            Some(dg) => println!(
                "gedml({n}): data {} -> SDG {} nodes / {} edges",
                g.node_count(),
                dg.node_count(),
                dg.edge_count()
            ),
            None => println!("gedml({n}): exceeded 8M states"),
        }
    }
}
