fn main() {
    for d in datagen::Dataset::all() {
        let big = matches!(
            d,
            datagen::Dataset::ShakesAll | datagen::Dataset::Flix03 | datagen::Dataset::Ged03
        );
        if big && std::env::args().nth(1).as_deref() != Some("--all") {
            continue;
        }
        let g = d.generate();
        println!(
            "{:<18} nodes={:>7} (paper {:>7}) edges={:>7} (paper {:>7}) labels={:>3}({}) (paper {}({}))",
            d.name(), g.node_count(), d.paper_nodes(), g.edge_count(), d.paper_edges(),
            g.label_count(), g.idref_labels().len(), d.paper_labels(), d.paper_idref_labels(),
        );
    }
}
