fn main() {
    for (name, g) in [
        ("4trag", datagen::shakespeare_scaled(4, 0xA11CE, 1.0)),
        ("flix01", datagen::flixml(200, 0xF11F1)),
        ("ged01", datagen::gedml(360, 0x6ED01)),
    ] {
        let t = std::time::Instant::now();
        let f = fabric::IndexFabric::build(&g);
        println!(
            "{name}: keys={} trie_nodes={} blocks={} truncated={} ({:?})",
            f.key_count(),
            f.trie_nodes(),
            f.block_count(),
            f.truncated,
            t.elapsed()
        );
    }
}
