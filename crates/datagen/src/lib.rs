//! # datagen — synthetic datasets for the APEX reproduction
//!
//! The paper evaluates on three families (Table 1):
//!
//! * **Shakespeare plays** (Bosak) — pure trees with a small label set
//!   and *minor* irregularity; three sizes (4 / 11 / all plays);
//! * **FlixML** (B-movie reviews, via IBM's XML Generator) — *moderately*
//!   irregular graphs with 3 IDREF-typed labels and a handful of
//!   reference edges;
//! * **GedML** (genealogy) — *highly* irregular graphs with 14
//!   IDREF-typed labels and reference edges amounting to ~15 % of all
//!   edges (cycles abound).
//!
//! We cannot ship the 2002 files, so [`shakespeare()`], [`flixml()`]
//! and [`gedml()`] generate deterministic (seeded) graphs from DTD-like
//! grammars that reproduce the three properties the evaluation depends
//! on: the node/edge/label counts of Table 1 (±15 %), the IDREF label
//! counts, and the irregularity gradient Play < Flix < Ged. The
//! [`Dataset`] enum enumerates the paper's nine instances.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flixml;
pub mod gedml;
pub mod names;
pub mod shakespeare;

pub use flixml::flixml;
pub use gedml::gedml;
pub use shakespeare::{shakespeare, shakespeare_scaled};

use xmlgraph::{GraphBuilder, NodeId, XmlGraph};

/// Registers a generator-assigned id. Generator ids are sequence-numbered
/// (`S0`, `F3`, …) and therefore unique by construction; a collision is a
/// bug in the generator, not an input condition.
pub(crate) fn register_unique(b: &mut GraphBuilder, node: NodeId, id: &str) {
    // apex-lint: allow(no-panic): generator-internal invariant (sequence-numbered ids), not input-dependent
    b.register_id(node, id).expect("generator ids are unique");
}

/// Finalizes a generated graph. Every reference the generators emit
/// targets an id registered in the same pass, so resolution cannot fail.
pub(crate) fn finish_generated(b: GraphBuilder) -> XmlGraph {
    // apex-lint: allow(no-panic): generator-internal invariant (references target generated ids)
    b.finish().expect("generated references resolve")
}

/// The nine datasets of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Hamlet + Macbeth + Othello + Lear (4 plays).
    FourTragedy,
    /// Eleven plays.
    Shakes11,
    /// All plays.
    ShakesAll,
    /// Small FlixML.
    Flix01,
    /// Medium FlixML.
    Flix02,
    /// Large FlixML.
    Flix03,
    /// Small GedML.
    Ged01,
    /// Medium GedML.
    Ged02,
    /// Large GedML.
    Ged03,
}

impl Dataset {
    /// All nine, in Table 1 order.
    pub fn all() -> [Dataset; 9] {
        use Dataset::*;
        [
            FourTragedy,
            Shakes11,
            ShakesAll,
            Flix01,
            Flix02,
            Flix03,
            Ged01,
            Ged02,
            Ged03,
        ]
    }

    /// The paper's file name for the dataset.
    pub fn name(self) -> &'static str {
        use Dataset::*;
        match self {
            FourTragedy => "four_tragedy.xml",
            Shakes11 => "shakes_11.xml",
            ShakesAll => "shakes_all.xml",
            Flix01 => "Flix01.xml",
            Flix02 => "Flix02.xml",
            Flix03 => "Flix03.xml",
            Ged01 => "Ged01.xml",
            Ged02 => "Ged02.xml",
            Ged03 => "Ged03.xml",
        }
    }

    /// Node count reported in Table 1 (for EXPERIMENTS.md comparisons).
    pub fn paper_nodes(self) -> usize {
        use Dataset::*;
        match self {
            FourTragedy => 22_791,
            Shakes11 => 48_818,
            ShakesAll => 179_691,
            Flix01 => 14_734,
            Flix02 => 41_691,
            Flix03 => 335_401,
            Ged01 => 8_259,
            Ged02 => 30_875,
            Ged03 => 381_046,
        }
    }

    /// Edge count reported in Table 1.
    pub fn paper_edges(self) -> usize {
        use Dataset::*;
        match self {
            FourTragedy => 22_790,
            Shakes11 => 48_817,
            ShakesAll => 179_690,
            Flix01 => 14_763,
            Flix02 => 41_723,
            Flix03 => 335_432,
            Ged01 => 9_699,
            Ged02 => 36_228,
            Ged03 => 447_524,
        }
    }

    /// Label count reported in Table 1 (distinct labels).
    pub fn paper_labels(self) -> usize {
        use Dataset::*;
        match self {
            FourTragedy => 17,
            Shakes11 => 21,
            ShakesAll => 22,
            Flix01 => 62,
            Flix02 => 64,
            Flix03 => 70,
            Ged01 => 65,
            Ged02 => 77,
            Ged03 => 84,
        }
    }

    /// IDREF-typed label count reported in Table 1.
    pub fn paper_idref_labels(self) -> usize {
        use Dataset::*;
        match self {
            FourTragedy | Shakes11 | ShakesAll => 0,
            Flix01 | Flix02 | Flix03 => 3,
            Ged01 | Ged02 | Ged03 => 14,
        }
    }

    /// True for the tree-structured Shakespeare family.
    pub fn is_tree(self) -> bool {
        matches!(
            self,
            Dataset::FourTragedy | Dataset::Shakes11 | Dataset::ShakesAll
        )
    }

    /// Generates the dataset (deterministic; seeds are fixed per dataset).
    pub fn generate(self) -> XmlGraph {
        use Dataset::*;
        match self {
            FourTragedy => shakespeare_scaled(4, 0xA11CE, 1.00),
            Shakes11 => shakespeare_scaled(11, 0xA11CE, 0.79),
            ShakesAll => shakespeare_scaled(38, 0xA11CE, 0.82),
            Flix01 => flixml(200, 0xF11F1),
            Flix02 => flixml(565, 0xF11F2),
            Flix03 => flixml(4540, 0xF11F3),
            Ged01 => gedml(360, 0x6ED01),
            Ged02 => gedml(1310, 0x6ED02),
            Ged03 => gedml(16100, 0x6ED03),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlgraph::paths::EnumLimits;
    use xmlgraph::stats::{check_invariants, GraphStats};

    fn within(actual: usize, target: usize, tol: f64) -> bool {
        let lo = (target as f64 * (1.0 - tol)) as usize;
        let hi = (target as f64 * (1.0 + tol)) as usize;
        (lo..=hi).contains(&actual)
    }

    #[test]
    fn small_datasets_match_table1_within_15pct() {
        for d in [Dataset::FourTragedy, Dataset::Flix01, Dataset::Ged01] {
            let g = d.generate();
            assert!(
                within(g.node_count(), d.paper_nodes(), 0.15),
                "{}: nodes {} vs paper {}",
                d.name(),
                g.node_count(),
                d.paper_nodes()
            );
            assert!(
                within(g.edge_count(), d.paper_edges(), 0.15),
                "{}: edges {} vs paper {}",
                d.name(),
                g.edge_count(),
                d.paper_edges()
            );
            assert_eq!(
                g.idref_labels().len(),
                d.paper_idref_labels(),
                "{}",
                d.name()
            );
        }
    }

    #[test]
    fn label_counts_close_to_table1() {
        for d in [Dataset::FourTragedy, Dataset::Flix01, Dataset::Ged01] {
            let g = d.generate();
            let diff = (g.label_count() as i64 - d.paper_labels() as i64).abs();
            assert!(
                diff <= 6,
                "{}: labels {} vs paper {}",
                d.name(),
                g.label_count(),
                d.paper_labels()
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::Flix01.generate();
        let b = Dataset::Flix01.generate();
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn invariants_hold_for_small_datasets() {
        for d in [Dataset::FourTragedy, Dataset::Flix01, Dataset::Ged01] {
            let g = d.generate();
            let problems = check_invariants(&g);
            assert!(problems.is_empty(), "{}: {problems:?}", d.name());
        }
    }

    #[test]
    fn irregularity_gradient_play_flix_ged() {
        // Distinct rooted paths per node must grow Play < Flix < Ged.
        let limits = EnumLimits {
            max_len: 8,
            max_paths: 50_000,
        };
        let play = GraphStats::compute(&Dataset::FourTragedy.generate(), limits);
        let flix = GraphStats::compute(&Dataset::Flix01.generate(), limits);
        let ged = GraphStats::compute(&Dataset::Ged01.generate(), limits);
        let density = |s: &GraphStats| s.distinct_rooted_paths as f64 / s.labels as f64;
        assert!(
            density(&play) < density(&flix),
            "play {} !< flix {}",
            density(&play),
            density(&flix)
        );
        assert!(
            density(&flix) < density(&ged),
            "flix {} !< ged {}",
            density(&flix),
            density(&ged)
        );
        // Trees have zero reference edges; Ged has many more than Flix.
        assert_eq!(play.ref_edges, 0);
        assert!(ged.ref_edges > flix.ref_edges * 5);
    }

    #[test]
    fn trees_are_trees() {
        let g = Dataset::FourTragedy.generate();
        assert_eq!(g.edge_count(), g.node_count() - 1);
        assert!(g.idref_labels().is_empty());
    }
}
