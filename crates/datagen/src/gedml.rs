//! GedML-like generator: genealogy graphs with *high* irregularity and 14
//! IDREF-typed labels whose reference edges form dense cycles (Table 1's
//! Ged rows: ~17 % of all edges are references).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xmlgraph::{GraphBuilder, NodeId, XmlGraph};

use crate::names;

/// Generates a GedML-like graph with `individuals` INDI records (plus
/// `individuals / 2.5` FAM records and a few SOUR/NOTE/OBJE/REPO/SUBM
/// records).
///
/// The 14 IDREF-typed labels are `@husb`, `@wife`, `@chil`, `@famc`,
/// `@fams`, `@alia`, `@asso`, `@subm`, `@sour`, `@note`, `@obje`,
/// `@repo`, `@anci`, `@desi`. Optional event vocabularies grow with
/// corpus size (65 → 77 → 84 labels).
pub fn gedml(individuals: usize, seed: u64) -> XmlGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new("gedcom");
    let root = b.root();

    let tier = if individuals >= 5000 {
        2
    } else if individuals >= 800 {
        1
    } else {
        0
    };
    let families = (individuals as f64 / 2.5).ceil() as usize;

    // Header and shared records (targets for the rarer reference kinds).
    let head = b.add_child(root, "head");
    let gedc = b.add_child(head, "gedc");
    b.add_value_child(gedc, "vers", "5.5");
    b.add_value_child(head, "lang", "English");
    b.add_value_child(head, "dest", "ANSTFILE");

    let subm = b.add_child(root, "subm");
    crate::register_unique(&mut b, subm, "SUB1");
    b.add_value_child(subm, "name", "Generated Archive");
    b.add_value_child(subm, "corp", "Archive Corp");

    let n_sours = 4.max(individuals / 100);
    for i in 0..n_sours {
        let s = b.add_child(root, "sour");
        crate::register_unique(&mut b, s, &format!("S{i}"));
        b.add_value_child(s, "titl", &format!("Parish register {i}"));
        b.add_value_child(s, "auth", &names::person(&mut rng));
        b.add_value_child(s, "publ", "County Press");
        b.add_value_child(s, "page", &format!("{}", i + 1));
    }
    let n_notes = 3.max(individuals / 200);
    for i in 0..n_notes {
        let n = b.add_child(root, "note");
        crate::register_unique(&mut b, n, &format!("N{i}"));
        b.add_value_child(n, "text", &names::verse(&mut rng));
    }
    let n_objes = 2.max(individuals / 400);
    for i in 0..n_objes {
        let o = b.add_child(root, "obje");
        crate::register_unique(&mut b, o, &format!("O{i}"));
        b.add_value_child(o, "form", "jpeg");
        b.add_value_child(o, "file", &format!("img{i}.jpg"));
    }
    let n_repos = 2.max(individuals / 500);
    for i in 0..n_repos {
        let r = b.add_child(root, "repo");
        crate::register_unique(&mut b, r, &format!("R{i}"));
        b.add_value_child(r, "name", "County Archive");
    }

    // Spouse assignments first, so @fams on individuals is exactly the
    // inverse of @husb/@wife on families (real GEDCOM consistency — and
    // what keeps the strong DataGuide's subset construction near the
    // paper's Table 2 sizes instead of exploding).
    // Marriages form a forest of small lineage clusters, each a few
    // generations deep, with near-monogamous spouses drawn from the
    // previous generation of the same cluster. This mirrors real GEDCOM
    // exports (aggregations of shallow family trees). Without the
    // cluster/generation bounds, descent walks (@chil -> @fams -> @chil
    // ...) are unbounded and the strong DataGuide's subset construction
    // explodes far beyond the paper's Table 2 sizes.
    let mut husb = vec![0usize; families];
    let mut wife = vec![0usize; families];
    let mut fams_map: Vec<Vec<usize>> = vec![Vec::new(); individuals];
    {
        // Shuffled per-(cluster, generation) spouse pools with cursors.
        let gens = gens_for(individuals);
        let n_bands = cluster_count(individuals) * gens;
        let mut pools: Vec<Vec<usize>> = vec![Vec::new(); n_bands];
        for i in 0..individuals {
            pools[band_index(i, individuals)].push(i);
        }
        for pool in &mut pools {
            for i in (1..pool.len()).rev() {
                pool.swap(i, rng.gen_range(0..=i));
            }
        }
        let mut cursors = vec![0usize; n_bands];
        for f in 0..families {
            // The band of this family's children, and its parent band.
            let child_center = (f * individuals / families.max(1)).min(individuals - 1);
            let child_band = band_index(child_center, individuals);
            if child_band.is_multiple_of(gens) && f + 1 != families {
                // Stub family (its proportional child block consists of
                // founders, who carry no FAMC): no spouses either. The
                // last family is always fully populated so the @husb and
                // @wife labels are guaranteed to exist.
                continue;
            }
            let parent_band = if child_band.is_multiple_of(gens) {
                child_band // last-family fallback on a founder band
            } else {
                child_band - 1
            };
            // Strict monogamy: exhausted pools leave the slot empty
            // instead of remarrying (polygamy would let spouse-family
            // alternations drift across the marriage network).
            let mut take = || -> Option<usize> {
                let pool = &pools[parent_band];
                if cursors[parent_band] < pool.len() {
                    let v = pool[cursors[parent_band]];
                    cursors[parent_band] += 1;
                    Some(v)
                } else {
                    None
                }
            };
            let h = take();
            let w = take();
            if let Some(h) = h {
                husb[f] = h;
                fams_map[h].push(f);
            } else {
                husb[f] = usize::MAX;
            }
            if let Some(w) = w {
                wife[f] = w;
                fams_map[w].push(f);
            } else {
                wife[f] = usize::MAX;
            }
        }
    }

    // Individuals.
    let mut indis: Vec<NodeId> = Vec::with_capacity(individuals);
    for (i, fams) in fams_map.iter().enumerate() {
        let indi = gen_indi(
            &mut b,
            root,
            &mut rng,
            i,
            tier,
            individuals,
            families,
            n_sours,
            n_notes,
            n_objes,
            n_repos,
            fams,
        );
        crate::register_unique(&mut b, indi, &format!("I{i}"));
        indis.push(indi);
    }

    // Families. References are *local* (generational blocks): family f's
    // children are the consecutive individuals whose famc is f, and its
    // parents come from a nearby window. Real genealogies have this
    // locality; fully random references would make the strong DataGuide's
    // subset construction blow up far beyond the paper's Table 2 sizes.
    for f in 0..families {
        let fam = b.add_child(root, "fam");
        crate::register_unique(&mut b, fam, &format!("F{f}"));
        if husb[f] != usize::MAX {
            b.add_idref(fam, "husb", &format!("I{}", husb[f]));
        }
        if wife[f] != usize::MAX {
            b.add_idref(fam, "wife", &format!("I{}", wife[f]));
        }
        for i in 0..individuals {
            if gen_of(i, individuals) > 0 && famc_of(i, individuals, families) == f {
                b.add_idref(fam, "chil", &format!("I{i}"));
            }
        }
        if rng.gen_bool(0.8) {
            let marr = b.add_child(fam, "marr");
            b.add_value_child(marr, "date", &names::date(&mut rng));
            b.add_value_child(marr, "plac", names::pick(&mut rng, names::PLACES));
        }
        if rng.gen_bool(0.08) {
            let div = b.add_child(fam, "div");
            b.add_value_child(div, "date", &names::date(&mut rng));
        }
        if f == 0 || rng.gen_bool(0.12) {
            let enga = b.add_child(fam, "enga");
            b.add_value_child(enga, "date", &names::date(&mut rng));
        }
        if f == 0 || rng.gen_bool(0.05) {
            b.add_idref(fam, "subm", "SUB1");
        }
    }

    crate::finish_generated(b)
}

/// One INDI record. Heavily optional: the hallmark of GedML irregularity.
#[allow(clippy::too_many_arguments)]
fn gen_indi(
    b: &mut GraphBuilder,
    root: NodeId,
    rng: &mut SmallRng,
    no: usize,
    tier: usize,
    individuals: usize,
    families: usize,
    n_sours: usize,
    n_notes: usize,
    n_objes: usize,
    n_repos: usize,
    fams: &[usize],
) -> NodeId {
    // The last record exercises the full tier alphabet (it is never a
    // founder, so every reference label including @famc appears).
    let force = no + 1 == individuals;
    let indi = b.add_child(root, "indi");

    let name = b.add_child(indi, "name");
    b.add_value_child(name, "givn", names::pick(rng, names::FIRST_NAMES));
    b.add_value_child(name, "surn", names::pick(rng, names::LAST_NAMES));
    b.add_value_child(indi, "sex", if rng.gen_bool(0.5) { "M" } else { "F" });

    // Birth is nearly universal; everything else is spotty.
    if force || rng.gen_bool(0.95) {
        let birt = b.add_child(indi, "birt");
        b.add_value_child(birt, "date", &names::date(rng));
        if rng.gen_bool(0.8) {
            b.add_value_child(birt, "plac", names::pick(rng, names::PLACES));
        }
    }
    if force || rng.gen_bool(0.55) {
        let deat = b.add_child(indi, "deat");
        b.add_value_child(deat, "date", &names::date(rng));
        if rng.gen_bool(0.6) {
            b.add_value_child(deat, "plac", names::pick(rng, names::PLACES));
        }
        if rng.gen_bool(0.5) {
            let buri = b.add_child(indi, "buri");
            b.add_value_child(buri, "date", &names::date(rng));
            b.add_value_child(buri, "plac", names::pick(rng, names::PLACES));
        }
    }
    if force || rng.gen_bool(0.35) {
        let bapm = b.add_child(indi, "bapm");
        b.add_value_child(bapm, "date", &names::date(rng));
    }
    if force || rng.gen_bool(0.35) {
        b.add_value_child(indi, "occu", "farmer");
    }
    if force || rng.gen_bool(0.4) {
        let resi = b.add_child(indi, "resi");
        let addr = b.add_child(resi, "addr");
        b.add_value_child(addr, "city", names::pick(rng, names::PLACES));
        if rng.gen_bool(0.5) {
            b.add_value_child(addr, "stae", "Westmark");
        }
        b.add_value_child(addr, "ctry", "Freedonia");
        if force || rng.gen_bool(0.3) {
            b.add_value_child(addr, "phon", "none");
        }
    }
    if force || rng.gen_bool(0.3) {
        let even = b.add_child(indi, "even");
        b.add_value_child(even, "type", "census");
        b.add_value_child(even, "date", &names::date(rng));
    }
    if force || rng.gen_bool(0.2) {
        b.add_value_child(indi, "reli", "Reformed");
    }
    if force || rng.gen_bool(0.15) {
        b.add_value_child(indi, "educ", "parish school");
    }
    // Change-tracking record (universal in GEDCOM exports).
    {
        let chan = b.add_child(indi, "chan");
        b.add_value_child(chan, "date", &names::date(rng));
    }
    if force || rng.gen_bool(0.25) {
        b.add_value_child(indi, "age", &format!("{}", rng.gen_range(1..95)));
    }
    if force || rng.gen_bool(0.2) {
        b.add_value_child(indi, "cause", "fever");
    }
    if force || rng.gen_bool(0.12) {
        let fact = b.add_child(indi, "fact");
        b.add_value_child(fact, "type", "heraldry");
    }
    if force || rng.gen_bool(0.08) {
        b.add_value_child(indi, "idno", &format!("{}", rng.gen_range(1000..9999)));
    }
    if force || rng.gen_bool(0.08) {
        b.add_value_child(indi, "afn", &format!("{}", rng.gen_range(100000..999999)));
    }

    // Tier 1 extras.
    if tier >= 1 {
        if force || rng.gen_bool(0.12) {
            let chr = b.add_child(indi, "chr");
            b.add_value_child(chr, "date", &names::date(rng));
        }
        if force || rng.gen_bool(0.08) {
            let adop = b.add_child(indi, "adop");
            b.add_value_child(adop, "date", &names::date(rng));
        }
        if force || rng.gen_bool(0.08) {
            b.add_value_child(indi, "nati", "Freedonian");
        }
        if force || rng.gen_bool(0.06) {
            let emig = b.add_child(indi, "emig");
            b.add_value_child(emig, "date", &names::date(rng));
            b.add_value_child(emig, "plac", names::pick(rng, names::PLACES));
        }
        if force || rng.gen_bool(0.06) {
            let immi = b.add_child(indi, "immi");
            b.add_value_child(immi, "date", &names::date(rng));
        }
        if force || rng.gen_bool(0.05) {
            b.add_value_child(indi, "dscr", "tall, red hair");
        }
        if force || rng.gen_bool(0.1) {
            let conf = b.add_child(indi, "conf");
            b.add_value_child(conf, "date", &names::date(rng));
        }
        if force || rng.gen_bool(0.04) {
            let crem = b.add_child(indi, "crem");
            b.add_value_child(crem, "date", &names::date(rng));
        }
        if force || rng.gen_bool(0.08) {
            b.add_value_child(indi, "nick", names::pick(rng, names::FIRST_NAMES));
        }
        if force || rng.gen_bool(0.06) {
            b.add_value_child(indi, "nchi", &format!("{}", rng.gen_range(0..9)));
        }
        if force || rng.gen_bool(0.06) {
            b.add_value_child(indi, "nmr", &format!("{}", rng.gen_range(0..3)));
        }
        if force || rng.gen_bool(0.05) {
            b.add_value_child(indi, "caste", "yeoman");
        }
    }

    // Tier 2 extras.
    if tier >= 2 {
        if force || rng.gen_bool(0.05) {
            let will = b.add_child(indi, "will");
            b.add_value_child(will, "date", &names::date(rng));
        }
        if force || rng.gen_bool(0.05) {
            let prob = b.add_child(indi, "prob");
            b.add_value_child(prob, "date", &names::date(rng));
        }
        if force || rng.gen_bool(0.04) {
            let grad = b.add_child(indi, "grad");
            b.add_value_child(grad, "date", &names::date(rng));
        }
        if force || rng.gen_bool(0.04) {
            let natu = b.add_child(indi, "natu");
            b.add_value_child(natu, "date", &names::date(rng));
        }
        if force || rng.gen_bool(0.04) {
            let cens = b.add_child(indi, "cens");
            b.add_value_child(cens, "date", &names::date(rng));
        }
        if force || rng.gen_bool(0.03) {
            b.add_value_child(
                indi,
                "ssn",
                &format!("{:09}", rng.gen_range(0..999999999u32)),
            );
        }
        if force || rng.gen_bool(0.03) {
            b.add_value_child(indi, "prop", "two oxen");
        }
    }

    // References (labels forced once so the alphabet is deterministic).
    // Founders (generation 0 of each cluster) have no FAMC — exactly like
    // real GEDCOM exports, and what bounds ancestry walks for the
    // DataGuide's subset construction.
    if gen_of(no, individuals) > 0 {
        b.add_idref(
            indi,
            "famc",
            &format!("F{}", famc_of(no, individuals, families)),
        );
    }
    if !fams.is_empty() {
        let f = fams[rng.gen_range(0..fams.len())];
        b.add_idref(indi, "fams", &format!("F{f}"));
    } else if force {
        // Guarantee the @fams label exists even if individual 0 is not a
        // spouse anywhere.
        b.add_idref(indi, "fams", "F0");
    }
    if force || rng.gen_bool(0.12) {
        b.add_idref(indi, "alia", "I0");
    }
    if force || rng.gen_bool(0.12) {
        b.add_idref(indi, "asso", "I1");
    }
    if force || rng.gen_bool(0.25) {
        b.add_idref(indi, "sour", &format!("S{}", no % n_sours));
    }
    if force || rng.gen_bool(0.12) {
        b.add_idref(indi, "note", &format!("N{}", no % n_notes));
    }
    if force || rng.gen_bool(0.05) {
        b.add_idref(indi, "obje", &format!("O{}", no % n_objes));
    }
    if force || rng.gen_bool(0.04) {
        b.add_idref(indi, "repo", &format!("R{}", no % n_repos));
    }
    if force || rng.gen_bool(0.03) {
        b.add_idref(indi, "anci", "SUB1");
    }
    if force || rng.gen_bool(0.03) {
        b.add_idref(indi, "desi", "SUB1");
    }
    indi
}

/// Individuals per lineage cluster: the geometry that keeps rooted-path
/// diversity (and hence DataGuide size) in the paper's regime.
const CLUSTER: usize = 100;

/// Generations per cluster. Bigger archives aggregate deeper lineages;
/// reference-word depth — and with it the strong DataGuide's size —
/// grows accordingly, reproducing Table 2's Ged01 < Ged02 < Ged03
/// gradient.
fn gens_for(individuals: usize) -> usize {
    if individuals >= 5000 {
        5
    } else if individuals >= 800 {
        4
    } else {
        3
    }
}

fn cluster_count(individuals: usize) -> usize {
    individuals.div_ceil(CLUSTER).max(1)
}

/// Generation (0-based) of individual `i` within its cluster.
fn gen_of(i: usize, individuals: usize) -> usize {
    let gens = gens_for(individuals);
    ((i % CLUSTER) * gens / CLUSTER).min(gens - 1)
}

/// Flat index of individual `i`'s (cluster, generation) band.
fn band_index(i: usize, individuals: usize) -> usize {
    let gens = gens_for(individuals);
    let c = (i / CLUSTER).min(cluster_count(individuals) - 1);
    let within = i % CLUSTER;
    let g = (within * gens / CLUSTER).min(gens - 1);
    c * gens + g
}

/// The family whose `chil` list contains individual `i` (consecutive
/// blocks of ~2.5 children; the proportional mapping keeps it inside
/// i's own cluster).
fn famc_of(i: usize, individuals: usize, families: usize) -> usize {
    (i * families / individuals.max(1)).min(families.saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_idref_labels() {
        let g = gedml(50, 7);
        assert_eq!(g.idref_labels().len(), 14);
    }

    #[test]
    fn reference_edges_are_dense() {
        let g = gedml(200, 7);
        let refs = g
            .edges()
            .filter(|(f, _, t)| g.tree_parent(*t) != *f)
            .count();
        // Roughly 17% of edges should be references (Table 1 ratio).
        let ratio = refs as f64 / g.edge_count() as f64;
        assert!(ratio > 0.10 && ratio < 0.25, "ref ratio {ratio}");
    }

    #[test]
    fn label_tiers_grow() {
        let small = gedml(330, 1).label_count();
        let medium = gedml(1230, 1).label_count();
        let large = gedml(5200, 1).label_count();
        assert!(small < medium, "{small} !< {medium}");
        assert!(medium < large, "{medium} !< {large}");
    }

    #[test]
    fn families_reference_individuals() {
        let g = gedml(40, 3);
        let at_husb = g.label_id("@husb").unwrap();
        let indi = g.label_id("indi").unwrap();
        let mut checked = 0;
        for (_, l, attr) in g.edges() {
            if l == at_husb {
                let refs = g.out_edges(attr);
                assert_eq!(refs.len(), 1);
                assert_eq!(refs[0].label, indi);
                checked += 1;
            }
        }
        assert!(checked > 0);
    }
}
