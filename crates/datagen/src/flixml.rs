//! FlixML-like generator: B-movie review graphs with *moderate*
//! irregularity and 3 IDREF-typed labels (a handful of reference edges,
//! matching Table 1's Flix rows).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xmlgraph::{GraphBuilder, NodeId, XmlGraph};

use crate::names;

/// Generates a FlixML-like graph with `reviews` movie reviews.
///
/// Label richness scales with corpus size (rare optional elements appear
/// only in larger corpora), reproducing Table 1's 62 → 64 → 70 gradient.
/// Exactly three IDREF-typed labels exist: `@sequel`, `@remakeof`,
/// `@related`; about 10 reference attributes of each kind are emitted
/// regardless of size (Table 1 shows ~30 reference edges at every scale).
pub fn flixml(reviews: usize, seed: u64) -> XmlGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new("flixinfo");
    let root = b.root();

    // Richness tiers: bigger corpora exercise more optional elements.
    let tier = if reviews >= 2000 {
        2
    } else if reviews >= 400 {
        1
    } else {
        0
    };

    let mut review_nodes: Vec<NodeId> = Vec::with_capacity(reviews);
    for i in 0..reviews {
        let r = gen_review(&mut b, root, &mut rng, i, tier);
        crate::register_unique(&mut b, r, &format!("f{i}"));
        review_nodes.push(r);
    }

    // ~30 reference attributes across the corpus, split over the three
    // IDREF labels (both endpoints random).
    let n_refs = 30.min(reviews.saturating_sub(1));
    for k in 0..n_refs {
        let from = review_nodes[rng.gen_range(0..review_nodes.len())];
        let to = rng.gen_range(0..review_nodes.len());
        let attr = match k % 3 {
            0 => "sequel",
            1 => "remakeof",
            _ => "related",
        };
        b.add_idref(from, attr, &format!("f{to}"));
    }

    crate::finish_generated(b)
}

fn gen_review(
    b: &mut GraphBuilder,
    root: NodeId,
    rng: &mut SmallRng,
    no: usize,
    tier: usize,
) -> NodeId {
    // Force the full optional-label alphabet once per tier so label
    // counts are deterministic.
    let force = no == 0;
    let review = b.add_child(root, "review");

    b.add_value_child(review, "title", &names::title(rng));
    if force || rng.gen_bool(0.2) {
        b.add_value_child(review, "alttitle", &names::title(rng));
    }
    let genre = b.add_child(review, "genre");
    b.add_value_child(genre, "primarygenre", names::pick(rng, names::GENRES));
    if force || rng.gen_bool(0.5) {
        b.add_value_child(genre, "othergenre", names::pick(rng, names::GENRES));
    }
    b.add_value_child(review, "releaseyear", &names::year(rng));
    b.add_value_child(
        review,
        "mpaarating",
        if rng.gen_bool(0.5) { "PG" } else { "R" },
    );
    b.add_value_child(review, "bees", &format!("{}", rng.gen_range(1..6)));
    b.add_value_child(review, "runtime", &format!("{}", rng.gen_range(58..131)));
    b.add_value_child(review, "studio", "Monarch Pictures");
    if force || rng.gen_bool(0.4) {
        b.add_value_child(review, "distributor", "Alliance Releasing");
    }

    // Cast.
    let cast = b.add_child(review, "cast");
    let lead = b.add_child(cast, "leadcast");
    for _ in 0..rng.gen_range(3..6) {
        let m = b.add_child(lead, if rng.gen_bool(0.5) { "male" } else { "female" });
        b.add_value_child(m, "name", &names::person(rng));
        b.add_value_child(m, "role", names::pick(rng, names::FIRST_NAMES));
    }
    if force || rng.gen_bool(0.75) {
        let other = b.add_child(cast, "othercast");
        for _ in 0..rng.gen_range(4..12) {
            let m = b.add_child(other, if rng.gen_bool(0.5) { "male" } else { "female" });
            b.add_value_child(m, "name", &names::person(rng));
            b.add_value_child(m, "role", names::pick(rng, names::FIRST_NAMES));
        }
    }

    // Crew.
    let crew = b.add_child(review, "crew");
    let d = b.add_child(crew, "director");
    b.add_value_child(d, "name", &names::person(rng));
    if force || rng.gen_bool(0.7) {
        let p = b.add_child(crew, "producer");
        b.add_value_child(p, "name", &names::person(rng));
    }
    if force || rng.gen_bool(0.6) {
        let w = b.add_child(crew, "writer");
        b.add_value_child(w, "name", &names::person(rng));
    }
    if force || rng.gen_bool(0.3) {
        let c = b.add_child(crew, "cinematographer");
        b.add_value_child(c, "name", &names::person(rng));
    }
    if force || rng.gen_bool(0.3) {
        let c = b.add_child(crew, "composer");
        b.add_value_child(c, "name", &names::person(rng));
    }

    // Review body.
    let plot = b.add_child(review, "plotsummary");
    for _ in 0..rng.gen_range(5..11) {
        b.add_value_child(plot, "paragraph", &names::verse(rng));
    }
    if force || rng.gen_bool(0.5) {
        b.add_value_child(review, "remarks", &names::verse(rng));
    }
    let reviewer = b.add_child(review, "reviewer");
    b.add_value_child(reviewer, "name", &names::person(rng));
    b.add_value_child(reviewer, "reviewdate", &names::date(rng));
    if force || rng.gen_bool(0.4) {
        b.add_value_child(review, "pros", &names::verse(rng));
        b.add_value_child(review, "cons", &names::verse(rng));
    }
    if force || rng.gen_bool(0.3) {
        b.add_value_child(review, "quote", &names::verse(rng));
    }

    // Technical block.
    let video = b.add_child(review, "video");
    b.add_value_child(video, "videoformat", "VHS");
    b.add_value_child(
        video,
        "color",
        if rng.gen_bool(0.6) { "BW" } else { "color" },
    );
    if force || rng.gen_bool(0.3) {
        b.add_value_child(video, "widescreen", "no");
        b.add_value_child(video, "transfer", "grainy");
    }
    let audio = b.add_child(review, "audio");
    b.add_value_child(audio, "audioformat", "mono");
    if force || rng.gen_bool(0.3) {
        b.add_value_child(audio, "soundquality", "hissy");
    }
    b.add_value_child(review, "language", "English");
    b.add_value_child(review, "country", "USA");
    if force || rng.gen_bool(0.25) {
        b.add_value_child(review, "sfx", "rubber suit");
        b.add_value_child(review, "dialog", "wooden");
    }
    if force || rng.gen_bool(0.3) {
        b.add_value_child(review, "violence", "mild");
        b.add_value_child(review, "nudity", "none");
    }

    // Catalog-ish extras.
    if force || rng.gen_bool(0.4) {
        b.add_value_child(review, "location", names::pick(rng, names::PLACES));
    }
    if force || rng.gen_bool(0.3) {
        b.add_value_child(review, "website", "http://bmovies.example");
    }
    if force || rng.gen_bool(0.25) {
        b.add_value_child(review, "aka", &names::title(rng));
    }
    if force || rng.gen_bool(0.3) {
        b.add_value_child(review, "description", &names::verse(rng));
        b.add_value_child(review, "theme", names::pick(rng, names::GENRES));
    }
    if force || rng.gen_bool(0.2) {
        let awards = b.add_child(review, "awards");
        for _ in 0..rng.gen_range(1..3) {
            b.add_value_child(awards, "award", "Golden Turkey nominee");
        }
    }
    if force || rng.gen_bool(0.2) {
        b.add_value_child(review, "mpaareason", "creature violence");
    }
    if force || rng.gen_bool(0.2) {
        b.add_value_child(review, "edition", "bargain bin");
        b.add_value_child(review, "dvdextras", "trailer");
    }
    if force || rng.gen_bool(0.15) {
        b.add_value_child(review, "chapterlist", "12 chapters");
    }

    // Tier 1 extras (appear in medium corpora).
    if tier >= 1 && (force || rng.gen_bool(0.15)) {
        b.add_value_child(review, "tagline", &names::verse(rng));
        b.add_value_child(review, "trivia", &names::verse(rng));
    }

    // Tier 2 extras (large corpora only).
    if tier >= 2 && (force || rng.gen_bool(0.1)) {
        let st = b.add_child(review, "soundtrack");
        let song = b.add_child(st, "song");
        b.add_value_child(song, "songtitle", &names::title(rng));
        b.add_value_child(song, "artist", &names::person(rng));
        b.add_value_child(
            review,
            "budget",
            &format!("{}", rng.gen_range(10..900) * 1000),
        );
        b.add_value_child(
            review,
            "boxoffice",
            &format!("{}", rng.gen_range(10..900) * 1000),
        );
    }
    review
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idref_labels_are_three() {
        let g = flixml(60, 5);
        let mut names: Vec<&str> = g.idref_labels().iter().map(|l| g.label_str(*l)).collect();
        names.sort_unstable();
        assert_eq!(names, vec!["@related", "@remakeof", "@sequel"]);
    }

    #[test]
    fn label_tiers_grow() {
        let small = flixml(170, 1).label_count();
        let medium = flixml(480, 1).label_count();
        let large = flixml(2200, 1).label_count();
        assert!(small < medium, "{small} !< {medium}");
        assert!(medium < large, "{medium} !< {large}");
    }

    #[test]
    fn has_reference_edges() {
        let g = flixml(100, 2);
        let refs = g
            .edges()
            .filter(|(f, _, t)| g.tree_parent(*t) != *f)
            .count();
        assert_eq!(refs, 30);
    }

    #[test]
    fn reviews_have_title_and_cast() {
        let g = flixml(20, 3);
        let review = g.label_id("review").unwrap();
        let title = g.label_id("title").unwrap();
        let cast = g.label_id("cast").unwrap();
        for (_, l, node) in g.edges() {
            if l == review {
                let labels: Vec<_> = g.out_edges(node).iter().map(|e| e.label).collect();
                assert!(labels.contains(&title));
                assert!(labels.contains(&cast));
            }
        }
    }
}
