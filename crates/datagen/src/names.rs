//! Small deterministic word pools for generated values.

use rand::rngs::SmallRng;
use rand::Rng;

/// First names for personae / individuals.
pub const FIRST_NAMES: &[&str] = &[
    "Edmund",
    "Cordelia",
    "Horatio",
    "Ophelia",
    "Duncan",
    "Banquo",
    "Emilia",
    "Cassio",
    "Regan",
    "Goneril",
    "Lennox",
    "Rosse",
    "Angus",
    "Fleance",
    "Seyton",
    "Osric",
    "Marcellus",
    "Bernardo",
    "Francisco",
    "Reynaldo",
    "Lucianus",
    "Voltemand",
];

/// Family names.
pub const LAST_NAMES: &[&str] = &[
    "Montague",
    "Capulet",
    "Lennox",
    "Macduff",
    "Hastings",
    "Stanley",
    "Brakenbury",
    "Tyrrel",
    "Vaughan",
    "Blunt",
    "Herbert",
    "Oxford",
    "Surrey",
    "Norfolk",
];

/// Movie-ish title words.
pub const TITLE_WORDS: &[&str] = &[
    "Attack", "Return", "Revenge", "Night", "Curse", "Planet", "Brain", "Swamp", "Creature",
    "Phantom", "Zombie", "Robot", "Saucer", "Doom", "Laser", "Mutant",
];

/// Genres for FlixML.
pub const GENRES: &[&str] = &[
    "horror", "scifi", "thriller", "western", "noir", "comedy", "monster", "space",
];

/// Place names for GedML.
pub const PLACES: &[&str] = &[
    "Springfield",
    "Riverton",
    "Milltown",
    "Ashford",
    "Brookside",
    "Eastham",
    "Fairview",
    "Granton",
    "Hillcrest",
    "Kingsport",
];

/// Picks one item.
pub fn pick<'a>(rng: &mut SmallRng, pool: &[&'a str]) -> &'a str {
    pool[rng.gen_range(0..pool.len())]
}

/// A two-word title.
pub fn title(rng: &mut SmallRng) -> String {
    format!(
        "{} of the {}",
        pick(rng, TITLE_WORDS),
        pick(rng, TITLE_WORDS)
    )
}

/// A "First Last" person name.
pub fn person(rng: &mut SmallRng) -> String {
    format!("{} {}", pick(rng, FIRST_NAMES), pick(rng, LAST_NAMES))
}

/// A line of verse (cheap filler text with some variety).
pub fn verse(rng: &mut SmallRng) -> String {
    const OPEN: &[&str] = &["O", "But", "And", "Thus", "Yet", "Now", "Hark"];
    const MID: &[&str] = &[
        "the night doth",
        "my lord shall",
        "the crown will",
        "sweet sorrow may",
        "the tempest must",
        "yon stars do",
    ];
    const END: &[&str] = &["fall", "rise", "weep", "speak", "burn", "fade", "sing"];
    format!("{} {} {}", pick(rng, OPEN), pick(rng, MID), pick(rng, END))
}

/// A year between 1930 and 1979 (B-movie era).
pub fn year(rng: &mut SmallRng) -> String {
    format!("{}", 1930 + rng.gen_range(0..50))
}

/// A GEDCOM-ish date.
pub fn date(rng: &mut SmallRng) -> String {
    const MONTHS: &[&str] = &[
        "JAN", "FEB", "MAR", "APR", "MAY", "JUN", "JUL", "AUG", "SEP", "OCT", "NOV", "DEC",
    ];
    format!(
        "{} {} {}",
        rng.gen_range(1..29),
        MONTHS[rng.gen_range(0..12usize)],
        1700 + rng.gen_range(0..250)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deterministic_with_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        assert_eq!(title(&mut a), title(&mut b));
        assert_eq!(person(&mut a), person(&mut b));
        assert_eq!(verse(&mut a), verse(&mut b));
        assert_eq!(date(&mut a), date(&mut b));
    }

    #[test]
    fn year_in_range() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let y: i32 = year(&mut r).parse().unwrap();
            assert!((1930..1980).contains(&y));
        }
    }
}
