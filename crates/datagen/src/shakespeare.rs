//! Shakespeare-play-like tree generator (minor irregularity, small label
//! alphabet, no references) — stands in for Bosak's play files.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xmlgraph::{GraphBuilder, NodeId, XmlGraph};

use crate::names;

/// Generates a corpus of `plays` plays under a single `PLAYS` root.
///
/// Label budget matches Table 1: 17 labels for 4 plays, 21 for 11
/// (PROLOGUE/EPILOGUE/INDUCT/SUBTITLE appear from the 5th play on), 22
/// for the full corpus (SONG appears from the 20th play on).
pub fn shakespeare(plays: usize, seed: u64) -> XmlGraph {
    shakespeare_scaled(plays, seed, 1.0)
}

/// Like [`shakespeare`], with a size multiplier on speeches per scene
/// (real plays vary: the four tragedies are ~20 % longer than average).
pub fn shakespeare_scaled(plays: usize, seed: u64, scale: f64) -> XmlGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new("PLAYS");
    let root = b.root();
    for play_no in 0..plays {
        gen_play(&mut b, root, &mut rng, play_no, scale);
    }
    crate::finish_generated(b)
}

fn gen_play(b: &mut GraphBuilder, root: NodeId, rng: &mut SmallRng, play_no: usize, scale: f64) {
    let rare = play_no >= 4; // PROLOGUE/EPILOGUE/INDUCT/SUBTITLE
    let very_rare = play_no >= 19; // SONG
                                   // The first play of each tier uses every tier feature, so the label
                                   // alphabet matches Table 1 exactly regardless of the seed.
    let force = play_no == 4;

    let play = b.add_child(root, "PLAY");
    b.add_value_child(play, "TITLE", &format!("The Tragedy No. {}", play_no + 1));
    if rare && (force || rng.gen_bool(0.4)) {
        b.add_value_child(play, "SUBTITLE", "A Winter Piece");
    }

    // Front matter.
    let fm = b.add_child(play, "FM");
    for _ in 0..3 {
        b.add_value_child(fm, "P", "Text placed in the public domain.");
    }

    // Dramatis personae.
    let personae = b.add_child(play, "PERSONAE");
    b.add_value_child(personae, "TITLE", "Dramatis Personae");
    let n_personae = rng.gen_range(12..22);
    for _ in 0..n_personae {
        b.add_value_child(personae, "PERSONA", &names::person(rng));
    }
    if rng.gen_bool(0.7) {
        let grp = b.add_child(personae, "PGROUP");
        for _ in 0..rng.gen_range(2..4) {
            b.add_value_child(grp, "PERSONA", &names::person(rng));
        }
        b.add_value_child(grp, "GRPDESCR", "lords attending");
    }

    b.add_value_child(play, "SCNDESCR", "SCENE: several parts of the realm.");
    b.add_value_child(play, "PLAYSUBT", "A TRAGEDY");

    if rare && (force || rng.gen_bool(0.25)) {
        let induct = b.add_child(play, "INDUCT");
        gen_speeches(b, induct, rng, 4, very_rare);
    }

    for act_no in 0..5 {
        let act = b.add_child(play, "ACT");
        b.add_value_child(act, "TITLE", &format!("ACT {}", act_no + 1));
        if rare && act_no == 0 && (force || rng.gen_bool(0.3)) {
            let prologue = b.add_child(act, "PROLOGUE");
            b.add_value_child(prologue, "TITLE", "PROLOGUE");
            gen_speeches(b, prologue, rng, 2, very_rare);
        }
        let scenes = rng.gen_range(4..8);
        for scene_no in 0..scenes {
            let scene = b.add_child(act, "SCENE");
            b.add_value_child(
                scene,
                "TITLE",
                &format!("SCENE {}. A room of state.", scene_no + 1),
            );
            if rng.gen_bool(0.8) {
                b.add_value_child(scene, "STAGEDIR", "Enter attendants with torches");
            }
            let speeches = (rng.gen_range(20..34) as f64 * scale).round() as usize;
            gen_speeches(b, scene, rng, speeches, very_rare);
        }
        if rare && act_no == 4 && (force || rng.gen_bool(0.3)) {
            let epilogue = b.add_child(act, "EPILOGUE");
            b.add_value_child(epilogue, "TITLE", "EPILOGUE");
            gen_speeches(b, epilogue, rng, 2, very_rare);
        }
    }
}

fn gen_speeches(
    b: &mut GraphBuilder,
    parent: NodeId,
    rng: &mut SmallRng,
    count: usize,
    allow_song: bool,
) {
    for i in 0..count {
        let speech = b.add_child(parent, "SPEECH");
        b.add_value_child(speech, "SPEAKER", names::pick(rng, names::FIRST_NAMES));
        let lines = rng.gen_range(2..10);
        for _ in 0..lines {
            b.add_value_child(speech, "LINE", &names::verse(rng));
        }
        if rng.gen_bool(0.08) {
            b.add_value_child(speech, "STAGEDIR", "Aside");
        }
        if allow_song && (i == 0 || rng.gen_bool(0.01)) {
            b.add_value_child(speech, "SONG", "Full fathom five thy father lies");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_plays_have_17_labels() {
        let g = shakespeare(4, 1);
        assert_eq!(
            g.label_count(),
            17,
            "labels: {:?}",
            g.labels().iter().map(|(_, s)| s).collect::<Vec<_>>()
        );
    }

    #[test]
    fn eleven_plays_have_21_labels() {
        let g = shakespeare(11, 0xA11CE);
        assert_eq!(g.label_count(), 21);
    }

    #[test]
    fn full_corpus_has_22_labels() {
        let g = shakespeare(38, 0xA11CE);
        assert_eq!(g.label_count(), 22);
    }

    #[test]
    fn is_a_tree() {
        let g = shakespeare(2, 9);
        assert_eq!(g.edge_count(), g.node_count() - 1);
    }

    #[test]
    fn speeches_have_speakers_and_lines() {
        let g = shakespeare(1, 3);
        let speech = g.label_id("SPEECH").unwrap();
        let speaker = g.label_id("SPEAKER").unwrap();
        let line = g.label_id("LINE").unwrap();
        for (_, l, node) in g.edges() {
            if l == speech {
                let labels: Vec<_> = g.out_edges(node).iter().map(|e| e.label).collect();
                assert!(labels.contains(&speaker));
                assert!(labels.contains(&line));
            }
        }
    }
}
