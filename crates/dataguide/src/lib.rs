//! # dataguide — the strong DataGuide baseline
//!
//! A strong DataGuide (Goldman & Widom, VLDB'97) is the determinization
//! of the data graph viewed as an NFA over edge labels: each DataGuide
//! node is a *target set* — the exact set of data nodes reached by some
//! rooted label path — and every rooted label path of the data appears
//! exactly once in the guide. The construction emulates the NFA→DFA
//! subset construction, which is linear for tree data and exponential in
//! the worst case for graphs (§2 of the APEX paper) — that blow-up on
//! irregular data is precisely what Table 2 and Figures 13–15 measure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use xmlgraph::{LabelId, NodeId, XmlGraph};

/// Identifier of a DataGuide node (arena index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DgNodeId(pub u32);

impl DgNodeId {
    #[inline]
    fn idx(self) -> usize {
        self.0 as usize
    }
}

/// One DataGuide node: a target set plus labeled edges.
#[derive(Debug, Clone)]
pub struct DgNode {
    /// The target set: data nodes reached by (every) rooted label path
    /// that leads to this guide node. Sorted.
    pub extent: Vec<NodeId>,
    /// Outgoing edges; exactly one per label (the guide is deterministic).
    pub edges: Vec<(LabelId, DgNodeId)>,
}

/// A strong DataGuide.
#[derive(Debug, Clone)]
pub struct DataGuide {
    nodes: Vec<DgNode>,
    root: DgNodeId,
    edge_count: usize,
}

/// Safety limit: abort construction if the guide exceeds this many nodes
/// (the worst case is exponential; our datasets stay far below).
pub const DEFAULT_NODE_LIMIT: usize = 5_000_000;

impl DataGuide {
    /// Builds the strong DataGuide of `g` with the default node limit.
    ///
    /// # Panics
    /// Panics if the subset construction exceeds [`DEFAULT_NODE_LIMIT`]
    /// nodes (prevents runaway memory on pathological inputs).
    pub fn build(g: &XmlGraph) -> Self {
        // apex-lint: allow(no-panic): documented panic contract; build_bounded is the non-panicking API
        Self::build_bounded(g, DEFAULT_NODE_LIMIT).expect("DataGuide exceeded node limit")
    }

    /// Builds with an explicit node limit; `None` if exceeded.
    pub fn build_bounded(g: &XmlGraph, node_limit: usize) -> Option<Self> {
        let mut interned: HashMap<Vec<NodeId>, DgNodeId> = HashMap::new();
        let mut nodes: Vec<DgNode> = Vec::new();
        let mut edge_count = 0usize;

        let root_set = vec![g.root()];
        nodes.push(DgNode {
            extent: root_set.clone(),
            edges: Vec::new(),
        });
        let root = DgNodeId(0);
        interned.insert(root_set, root);

        let mut work = vec![root];
        let mut groups: HashMap<LabelId, Vec<NodeId>> = HashMap::new();
        while let Some(cur) = work.pop() {
            // Group successors of the whole target set by label.
            groups.clear();
            for &v in &nodes[cur.idx()].extent {
                for e in g.out_edges(v) {
                    groups.entry(e.label).or_default().push(e.to);
                }
            }
            let mut grouped: Vec<(LabelId, Vec<NodeId>)> = groups.drain().collect();
            grouped.sort_unstable_by_key(|&(label, _)| label);
            for (label, mut targets) in grouped {
                targets.sort_unstable();
                targets.dedup();
                let next = match interned.get(&targets) {
                    Some(&id) => id,
                    None => {
                        if nodes.len() >= node_limit {
                            return None;
                        }
                        let id = DgNodeId(nodes.len() as u32);
                        nodes.push(DgNode {
                            extent: targets.clone(),
                            edges: Vec::new(),
                        });
                        interned.insert(targets, id);
                        work.push(id);
                        id
                    }
                };
                nodes[cur.idx()].edges.push((label, next));
                edge_count += 1;
            }
        }
        Some(DataGuide {
            nodes,
            root,
            edge_count,
        })
    }

    /// The root guide node (target set `{root}`).
    #[inline]
    pub fn root(&self) -> DgNodeId {
        self.root
    }

    /// Number of guide nodes (Table 2's "Nodes").
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of guide edges (Table 2's "Edges").
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Access one node.
    #[inline]
    pub fn node(&self, id: DgNodeId) -> &DgNode {
        &self.nodes[id.idx()]
    }

    /// The deterministic child along `label`, if any.
    pub fn child(&self, id: DgNodeId, label: LabelId) -> Option<DgNodeId> {
        self.nodes[id.idx()]
            .edges
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, t)| *t)
    }

    /// Evaluates a *rooted* simple path by walking the guide (the
    /// operation DataGuides are built for). Returns the target set.
    pub fn eval_rooted(&self, path: &[LabelId]) -> &[NodeId] {
        let mut cur = self.root;
        for &l in path {
            match self.child(cur, l) {
                Some(next) => cur = next,
                None => return &[],
            }
        }
        &self.nodes[cur.idx()].extent
    }

    /// Iterates over all node ids.
    pub fn ids(&self) -> impl Iterator<Item = DgNodeId> {
        (0..self.nodes.len() as u32).map(DgNodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlgraph::builder::moviedb;
    use xmlgraph::{GraphBuilder, LabelPath};

    #[test]
    fn tree_guide_has_one_node_per_distinct_path() {
        // <a><b/><b/><c><b/></c></a>: rooted paths: a?, b, c, c.b
        let mut bld = GraphBuilder::new("a");
        let r = bld.root();
        bld.add_child(r, "b");
        bld.add_child(r, "b");
        let c = bld.add_child(r, "c");
        bld.add_child(c, "b");
        let g = bld.finish().unwrap();
        let dg = DataGuide::build(&g);
        // Nodes: {root}, {b,b}, {c}, {c.b} = 4.
        assert_eq!(dg.node_count(), 4);
        assert_eq!(dg.edge_count(), 3);
    }

    #[test]
    fn eval_rooted_matches_direct_eval() {
        let g = moviedb();
        let dg = DataGuide::build(&g);
        for p in [
            "movie.title",
            "director.movie.title",
            "actor.name",
            "director.name",
        ] {
            let path = LabelPath::parse(&g, p).unwrap();
            let expect = xmlgraph::paths::eval_rooted(&g, &path);
            assert_eq!(dg.eval_rooted(path.labels()), expect.as_slice(), "path {p}");
        }
    }

    #[test]
    fn guide_is_deterministic() {
        let g = moviedb();
        let dg = DataGuide::build(&g);
        for id in dg.ids() {
            let mut labels: Vec<LabelId> = dg.node(id).edges.iter().map(|(l, _)| *l).collect();
            let before = labels.len();
            labels.sort_unstable();
            labels.dedup();
            assert_eq!(labels.len(), before, "duplicate label out of node {}", id.0);
        }
    }

    #[test]
    fn target_sets_are_sorted_dedup() {
        let g = moviedb();
        let dg = DataGuide::build(&g);
        for id in dg.ids() {
            let ext = &dg.node(id).extent;
            assert!(ext.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn cyclic_graph_terminates() {
        let mut rb = xmlgraph::builder::RawGraphBuilder::new();
        rb.node(0, "r", None, None);
        rb.node(1, "a", Some(0), None);
        rb.node(2, "a", Some(0), None);
        rb.edge(0, "a", 1);
        rb.edge(0, "a", 2);
        rb.edge(1, "a", 2);
        rb.edge(2, "a", 1);
        let g = rb.finish(&[]);
        let dg = DataGuide::build(&g);
        // Target sets: {0} -a-> {1,2} -a-> {1,2} (self loop).
        assert_eq!(dg.node_count(), 2);
        let a = g.label_id("a").unwrap();
        assert_eq!(dg.eval_rooted(&[a, a, a]).len(), 2);
    }

    #[test]
    fn node_limit_respected() {
        let g = moviedb();
        assert!(DataGuide::build_bounded(&g, 2).is_none());
    }
}
