//! # apex-suite — shared fixtures for integration tests and examples
//!
//! This crate wires the workspace-level `tests/` and `examples/`
//! directories into Cargo and provides the common setup every experiment
//! needs: build a dataset, its data table, all four indexes, and the
//! query processors over them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use apex::{Apex, Workload};
use apex_query::generator::{GeneratorConfig, QuerySets};
use apex_storage::{DataTable, PageModel};
use dataguide::DataGuide;
use fabric::IndexFabric;
use oneindex::OneIndex;
use xmlgraph::XmlGraph;

/// Everything needed to run one experiment on one dataset.
pub struct Fixture {
    /// The data graph.
    pub g: XmlGraph,
    /// Its `nid → value` table.
    pub table: DataTable,
    /// APEX⁰ (before any workload refinement).
    pub apex0: Apex,
    /// The strong DataGuide.
    pub sdg: DataGuide,
    /// The 1-index.
    pub oneindex: OneIndex,
    /// The Index Fabric.
    pub fabric: IndexFabric,
    /// Generated query sets and the tuning workload.
    pub queries: QuerySets,
}

impl Fixture {
    /// Builds the full fixture for `g` with query-generation `cfg`.
    pub fn build(g: XmlGraph, cfg: GeneratorConfig) -> Fixture {
        let table = DataTable::build(&g, PageModel::default());
        let apex0 = Apex::build_initial(&g);
        let sdg = DataGuide::build(&g);
        let oneindex = OneIndex::build(&g);
        let fabric = IndexFabric::build(&g);
        let queries = QuerySets::generate(&g, &table, cfg);
        Fixture {
            table,
            apex0,
            sdg,
            oneindex,
            fabric,
            queries,
            g,
        }
    }

    /// A refined APEX at the given `min_sup`, built from `APEX⁰` with the
    /// fixture's workload.
    pub fn apex_at(&self, min_sup: f64) -> Apex {
        let mut idx = self.apex0.clone();
        idx.refine(&self.g, &self.queries.workload, min_sup);
        idx
    }

    /// A refined APEX using an explicit workload.
    pub fn apex_with(&self, workload: &Workload, min_sup: f64) -> Apex {
        let mut idx = self.apex0.clone();
        idx.refine(&self.g, workload, min_sup);
        idx
    }
}

/// Small dataset variants used by integration tests (fast to build, same
/// structure families as Table 1).
pub mod small {
    use xmlgraph::XmlGraph;

    /// One Shakespeare play (~5k nodes).
    pub fn play() -> XmlGraph {
        datagen::shakespeare(1, 42)
    }

    /// A 30-review FlixML corpus (~2k nodes).
    pub fn flix() -> XmlGraph {
        datagen::flixml(30, 42)
    }

    /// A 40-individual GedML corpus (~1k nodes, dense references).
    pub fn ged() -> XmlGraph {
        datagen::gedml(40, 42)
    }
}
