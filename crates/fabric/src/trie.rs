//! A path-compressed byte trie (Patricia-style radix tree) with DFS block
//! packing and block-read accounting.

use apex_storage::bufmgr::{BufferHandle, ObjectId, Space};
use apex_storage::Cost;

/// One trie node: a compressed byte prefix on its incoming edge, children
/// dispatched by first byte, and payloads of keys ending here.
#[derive(Debug, Clone, Default)]
struct TrieNode {
    prefix: Vec<u8>,
    children: Vec<(u8, u32)>,
    payloads: Vec<u32>,
    block: u32,
}

/// The trie.
#[derive(Debug, Default)]
pub struct Trie {
    nodes: Vec<TrieNode>,
    blocks: u32,
}

impl Trie {
    /// Empty trie with a root node.
    pub fn new() -> Self {
        Trie {
            nodes: vec![TrieNode::default()],
            blocks: 0,
        }
    }

    /// Node count (including the root).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of assigned blocks.
    pub fn block_count(&self) -> usize {
        self.blocks as usize
    }

    // apex-lint: allow(panic-reachability): node ids come from the builder's arena and index it by construction
    fn child(&self, node: u32, byte: u8) -> Option<u32> {
        self.nodes[node as usize]
            .children
            .iter()
            .find(|(b, _)| *b == byte)
            .map(|(_, c)| *c)
    }

    /// Inserts `key` with `payload`. Duplicate keys accumulate payloads.
    pub fn insert(&mut self, key: &[u8], payload: u32) {
        let mut node = 0u32;
        let mut rest = key;
        loop {
            if rest.is_empty() {
                self.nodes[node as usize].payloads.push(payload);
                return;
            }
            match self.child(node, rest[0]) {
                None => {
                    // New leaf consuming all remaining bytes.
                    let leaf = self.alloc(rest.to_vec());
                    self.nodes[leaf as usize].payloads.push(payload);
                    self.nodes[node as usize].children.push((rest[0], leaf));
                    return;
                }
                Some(c) => {
                    let plen = self.nodes[c as usize].prefix.len();
                    let common = common_prefix(&self.nodes[c as usize].prefix, rest);
                    if common == plen {
                        // Full edge consumed: descend.
                        node = c;
                        rest = &rest[common..];
                    } else {
                        // Split the edge at `common`.
                        let tail = self.nodes[c as usize].prefix.split_off(common);
                        // `c` keeps the head prefix; a new node takes the
                        // tail and inherits c's children/payloads.
                        let mid_children = std::mem::take(&mut self.nodes[c as usize].children);
                        let mid_payloads = std::mem::take(&mut self.nodes[c as usize].payloads);
                        let tail_first = tail[0];
                        let mid = self.alloc(tail);
                        self.nodes[mid as usize].children = mid_children;
                        self.nodes[mid as usize].payloads = mid_payloads;
                        self.nodes[c as usize].children.push((tail_first, mid));
                        node = c;
                        rest = &rest[common..];
                    }
                }
            }
        }
    }

    fn alloc(&mut self, prefix: Vec<u8>) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(TrieNode {
            prefix,
            ..TrieNode::default()
        });
        id
    }

    /// Exact key lookup, charging visited trie nodes and distinct blocks.
    pub fn lookup(&self, key: &[u8], cost: &mut Cost) -> &[u32] {
        let mut node = 0u32;
        let mut rest = key;
        let mut last_block = u32::MAX;
        loop {
            cost.trie_nodes += 1;
            let blk = self.nodes[node as usize].block;
            if blk != last_block {
                // apex-lint: allow(cost-io-writes): the trie is its own block store; Fabric I/O is charged here, not in exec
                cost.pages_read += 1;
                last_block = blk;
            }
            if rest.is_empty() {
                return &self.nodes[node as usize].payloads;
            }
            match self.child(node, rest[0]) {
                None => return &[],
                Some(c) => {
                    let prefix = &self.nodes[c as usize].prefix;
                    if rest.len() < prefix.len() || &rest[..prefix.len()] != prefix.as_slice() {
                        return &[];
                    }
                    rest = &rest[prefix.len()..];
                    node = c;
                }
            }
        }
    }

    /// [`Trie::lookup`] through a shared buffer pool: blocks along the
    /// descent are charged only when absent from the pool, so repeated
    /// searches of a hot key region become buffer hits.
    // apex-lint: allow(panic-reachability): node ids index the builder's arena; `rest` slicing is guarded by explicit length checks in the descent loop
    pub fn lookup_buffered(&self, buf: &BufferHandle, key: &[u8], cost: &mut Cost) -> &[u32] {
        let mut node = 0u32;
        let mut rest = key;
        let mut last_block = u32::MAX;
        loop {
            cost.trie_nodes += 1;
            let blk = self.nodes[node as usize].block;
            if blk != last_block {
                // apex-lint: allow(cost-io-writes): the trie is its own block store; Fabric I/O is charged here, not in exec
                cost.pages_read += buf.touch(ObjectId::new(Space::TrieBlock, blk as u64), 0);
                last_block = blk;
            }
            if rest.is_empty() {
                return &self.nodes[node as usize].payloads;
            }
            match self.child(node, rest[0]) {
                None => return &[],
                Some(c) => {
                    let prefix = &self.nodes[c as usize].prefix;
                    if rest.len() < prefix.len() || &rest[..prefix.len()] != prefix.as_slice() {
                        return &[];
                    }
                    rest = &rest[prefix.len()..];
                    node = c;
                }
            }
        }
    }

    /// [`Trie::traverse_all`] through a shared buffer pool: each block
    /// is charged only when absent from the pool.
    pub fn traverse_all_buffered(
        &self,
        buf: &BufferHandle,
        cost: &mut Cost,
        mut visit: impl FnMut(u32),
    ) {
        cost.trie_nodes += self.nodes.len() as u64;
        for b in 0..self.blocks.max(1) as u64 {
            // apex-lint: allow(cost-io-writes): the trie is its own block store; Fabric I/O is charged here, not in exec
            cost.pages_read += buf.touch(ObjectId::new(Space::TrieBlock, b), 0);
        }
        for n in &self.nodes {
            for &p in &n.payloads {
                visit(p);
            }
        }
    }

    /// Visits every payload in the trie (partial-match evaluation),
    /// charging every node and block.
    pub fn traverse_all(&self, cost: &mut Cost, mut visit: impl FnMut(u32)) {
        cost.trie_nodes += self.nodes.len() as u64;
        // apex-lint: allow(cost-io-writes): the trie is its own block store; Fabric I/O is charged here, not in exec
        cost.pages_read += self.blocks.max(1) as u64;
        for n in &self.nodes {
            for &p in &n.payloads {
                visit(p);
            }
        }
    }

    /// Packs nodes into blocks of `block_size` bytes in DFS order
    /// (size model: prefix bytes + 8 bytes per child + 4 per payload +
    /// 16 fixed).
    pub fn assign_blocks(&mut self, block_size: usize) {
        let mut block = 0u32;
        let mut used = 0usize;
        // DFS from root for locality.
        let mut stack = vec![0u32];
        let mut seen = vec![false; self.nodes.len()];
        while let Some(id) = stack.pop() {
            if seen[id as usize] {
                continue;
            }
            seen[id as usize] = true;
            let n = &self.nodes[id as usize];
            let sz = 16 + n.prefix.len() + 8 * n.children.len() + 4 * n.payloads.len();
            if used + sz > block_size && used > 0 {
                block += 1;
                used = 0;
            }
            used += sz.min(block_size);
            for &(_, c) in self.nodes[id as usize].children.iter().rev() {
                stack.push(c);
            }
            self.nodes[id as usize].block = block;
        }
        self.blocks = block + 1;
    }
}

fn common_prefix(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(keys: &[&str]) -> Trie {
        let mut t = Trie::new();
        for (i, k) in keys.iter().enumerate() {
            t.insert(k.as_bytes(), i as u32);
        }
        t.assign_blocks(8192);
        t
    }

    #[test]
    fn insert_and_lookup() {
        let t = build(&["romane", "romanus", "romulus", "rubens", "ruber"]);
        let mut c = Cost::new();
        assert_eq!(t.lookup(b"romane", &mut c), &[0]);
        assert_eq!(t.lookup(b"romulus", &mut c), &[2]);
        assert_eq!(t.lookup(b"ruber", &mut c), &[4]);
        assert!(t.lookup(b"rom", &mut c).is_empty());
        assert!(t.lookup(b"xx", &mut c).is_empty());
        assert!(c.trie_nodes > 0);
    }

    #[test]
    fn duplicate_keys_accumulate() {
        let mut t = Trie::new();
        t.insert(b"abc", 1);
        t.insert(b"abc", 2);
        t.assign_blocks(8192);
        let mut c = Cost::new();
        assert_eq!(t.lookup(b"abc", &mut c), &[1, 2]);
    }

    #[test]
    fn prefix_of_existing_key() {
        let mut t = Trie::new();
        t.insert(b"abcdef", 1);
        t.insert(b"abc", 2);
        t.assign_blocks(8192);
        let mut c = Cost::new();
        assert_eq!(t.lookup(b"abc", &mut c), &[2]);
        assert_eq!(t.lookup(b"abcdef", &mut c), &[1]);
    }

    #[test]
    fn traverse_visits_all_payloads() {
        let t = build(&["a", "b", "ab", "ba"]);
        let mut c = Cost::new();
        let mut seen = Vec::new();
        t.traverse_all(&mut c, |p| seen.push(p));
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert_eq!(c.trie_nodes as usize, t.node_count());
    }

    #[test]
    fn path_compression_keeps_node_count_low() {
        // One long key: root + 1 compressed node.
        let mut t = Trie::new();
        t.insert(&[7u8; 1000], 0);
        assert_eq!(t.node_count(), 2);
    }

    #[test]
    fn blocks_split_large_tries() {
        let mut t = Trie::new();
        for i in 0..20000u32 {
            t.insert(format!("key-{i:08}").as_bytes(), i);
        }
        t.assign_blocks(8192);
        assert!(t.block_count() > 1);
    }
}
