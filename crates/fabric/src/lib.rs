//! # fabric — the Index Fabric baseline
//!
//! The Index Fabric (Cooper et al., VLDB'01) encodes each rooted label
//! path to each XML element *having a data value* as a **designator
//! string**, appends the value, and stores the composed keys in a
//! Patricia trie packed into fixed-size index blocks. Exact (rooted) path
//! + value queries become a single key search; partial-matching queries
//!   must traverse the whole trie and validate each key (§2 and §6.1 of
//!   the APEX paper — the behaviour Figure 15's crossover comes from).
//!
//! Simplifications relative to the original system, documented in
//! DESIGN.md: the layered trie is flattened to a single Patricia trie
//! whose nodes are packed into 8 KiB blocks in DFS order (block reads are
//! counted per distinct block touched), and rooted paths through IDREF
//! reference edges are enumerated up to configurable bounds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod trie;

use apex_storage::Cost;
use xmlgraph::{LabelId, NodeId, XmlGraph};

use trie::Trie;

/// Bounds on key enumeration (graphs with reference cycles have
/// unboundedly many rooted simple paths).
#[derive(Debug, Clone, Copy)]
pub struct FabricLimits {
    /// Maximum rooted path length encoded.
    pub max_path_len: usize,
    /// Maximum number of distinct rooted paths recorded per valued node.
    pub max_paths_per_node: usize,
    /// Global cap on keys.
    pub max_keys: usize,
}

impl Default for FabricLimits {
    fn default() -> Self {
        FabricLimits {
            max_path_len: 12,
            max_paths_per_node: 4096,
            max_keys: 2_000_000,
        }
    }
}

/// The Index Fabric.
#[derive(Debug)]
pub struct IndexFabric {
    trie: Trie,
    /// Per-key decoded form kept for partial-match validation:
    /// (label path, valued node, value). Indexed by the trie payload id.
    keys: Vec<(Vec<LabelId>, NodeId, Box<str>)>,
    /// True if enumeration hit a limit (coverage is then partial).
    pub truncated: bool,
}

/// Encodes `path` + `value` into a designator key. Each label becomes a
/// two-byte designator (labels are interned densely, so 2 bytes suffice
/// for any realistic vocabulary); `0x00 0x00` separates path from value.
fn encode_key(path: &[LabelId], value: &str, out: &mut Vec<u8>) {
    out.clear();
    for l in path {
        // +1 so no designator byte-pair is 0x00 0x00.
        let code = l.0 + 1;
        out.push((code >> 8) as u8);
        out.push((code & 0xff) as u8);
    }
    out.push(0);
    out.push(0);
    out.extend_from_slice(value.as_bytes());
}

impl IndexFabric {
    /// Builds the fabric over `g` with default limits.
    pub fn build(g: &XmlGraph) -> Self {
        Self::build_with(g, FabricLimits::default())
    }

    /// Builds with explicit enumeration limits.
    pub fn build_with(g: &XmlGraph, limits: FabricLimits) -> Self {
        let mut trie = Trie::new();
        let mut keys: Vec<(Vec<LabelId>, NodeId, Box<str>)> = Vec::new();
        let mut truncated = false;

        // DFS over rooted simple data paths; record a key at every valued
        // node. Mirrors the workload generator's path semantics.
        let n = g.node_count();
        let mut on_path = vec![false; n];
        let mut paths_per_node = vec![0u32; n];
        let mut labels: Vec<LabelId> = Vec::new();
        let mut stack: Vec<(NodeId, usize)> = vec![(g.root(), 0)];
        let mut keybuf: Vec<u8> = Vec::new();
        on_path[g.root().idx()] = true;

        while let Some(&(node, next)) = stack.last() {
            if keys.len() >= limits.max_keys {
                truncated = true;
                break;
            }
            let edges = g.out_edges(node);
            if next < edges.len() && labels.len() < limits.max_path_len {
                if let Some(top) = stack.last_mut() {
                    top.1 += 1;
                }
                let e = edges[next];
                if on_path[e.to.idx()] {
                    continue;
                }
                labels.push(e.label);
                let target = e.to;
                if let Some(v) = g.value(target) {
                    if (paths_per_node[target.idx()] as usize) < limits.max_paths_per_node {
                        paths_per_node[target.idx()] += 1;
                        encode_key(&labels, v, &mut keybuf);
                        let payload = keys.len() as u32;
                        keys.push((labels.clone(), target, v.into()));
                        trie.insert(&keybuf, payload);
                    } else {
                        truncated = true;
                    }
                }
                on_path[target.idx()] = true;
                stack.push((target, 0));
            } else {
                if next < edges.len() {
                    truncated = true; // depth limit cut enumeration
                }
                stack.pop();
                on_path[node.idx()] = false;
                labels.pop();
            }
        }

        trie.assign_blocks(apex_storage::pages::DEFAULT_PAGE_SIZE);
        IndexFabric {
            trie,
            keys,
            truncated,
        }
    }

    /// Number of keys stored.
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }

    /// Trie node count (index size diagnostic).
    pub fn trie_nodes(&self) -> usize {
        self.trie.node_count()
    }

    /// Number of 8 KiB index blocks.
    pub fn block_count(&self) -> usize {
        self.trie.block_count()
    }

    /// Exact search: rooted path `path` with value `value` — a single key
    /// lookup (the operation the fabric is optimized for).
    pub fn search_exact(&self, path: &[LabelId], value: &str, cost: &mut Cost) -> Vec<NodeId> {
        let mut key = Vec::with_capacity(path.len() * 2 + 2 + value.len());
        encode_key(path, value, &mut key);
        let payloads = self.trie.lookup(&key, cost);
        let mut out: Vec<NodeId> = payloads.iter().map(|&p| self.keys[p as usize].1).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Partial-matching search: `//l_1/…/l_n[text() = value]`. The whole
    /// trie is traversed and every key validated against the suffix and
    /// value (the §6.1 behaviour that makes the fabric slow on irregular
    /// data).
    pub fn search_partial(&self, suffix: &[LabelId], value: &str, cost: &mut Cost) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = Vec::new();
        self.trie.traverse_all(cost, |payload| {
            let (path, node, v) = &self.keys[payload as usize];
            if path.len() >= suffix.len() && path.ends_with(suffix) && v.as_ref() == value {
                out.push(*node);
            }
        });
        out.sort_unstable();
        out.dedup();
        out
    }

    /// [`IndexFabric::search_exact`] through a shared buffer pool.
    // apex-lint: allow(panic-reachability): trie payloads are indices into `keys`, written together at build time
    pub fn search_exact_buffered(
        &self,
        buf: &apex_storage::BufferHandle,
        path: &[LabelId],
        value: &str,
        cost: &mut Cost,
    ) -> Vec<NodeId> {
        let mut key = Vec::with_capacity(path.len() * 2 + 2 + value.len());
        encode_key(path, value, &mut key);
        let payloads = self.trie.lookup_buffered(buf, &key, cost);
        let mut out: Vec<NodeId> = payloads.iter().map(|&p| self.keys[p as usize].1).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// [`IndexFabric::search_partial`] through a shared buffer pool:
    /// the traversal still visits every trie node, but blocks resident
    /// from earlier queries are buffer hits instead of page reads.
    // apex-lint: allow(panic-reachability): trie payloads are indices into `keys`, written together at build time
    pub fn search_partial_buffered(
        &self,
        buf: &apex_storage::BufferHandle,
        suffix: &[LabelId],
        value: &str,
        cost: &mut Cost,
    ) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = Vec::new();
        self.trie.traverse_all_buffered(buf, cost, |payload| {
            let (path, node, v) = &self.keys[payload as usize];
            if path.len() >= suffix.len() && path.ends_with(suffix) && v.as_ref() == value {
                out.push(*node);
            }
        });
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlgraph::builder::moviedb;
    use xmlgraph::LabelPath;

    #[test]
    fn exact_search_finds_title() {
        let g = moviedb();
        let f = IndexFabric::build(&g);
        let p = LabelPath::parse(&g, "director.movie.title").unwrap();
        let mut c = Cost::new();
        let hits = f.search_exact(p.labels(), "Star Wars", &mut c);
        assert_eq!(hits, vec![NodeId(10)]);
        assert!(c.trie_nodes > 0);
        assert!(c.pages_read > 0);
        // Wrong value misses.
        let miss = f.search_exact(p.labels(), "Jaws", &mut c);
        assert!(miss.is_empty());
    }

    #[test]
    fn partial_search_validates_suffix_and_value() {
        let g = moviedb();
        let f = IndexFabric::build(&g);
        let p = LabelPath::parse(&g, "movie.title").unwrap();
        let mut c = Cost::new();
        let hits = f.search_partial(p.labels(), "Star Wars", &mut c);
        assert_eq!(hits, vec![NodeId(10)]);
        // Partial search touches many more trie nodes than exact.
        let mut c2 = Cost::new();
        let _ = f.search_exact(p.labels(), "Star Wars", &mut c2);
        assert!(c.trie_nodes > c2.trie_nodes);
    }

    #[test]
    fn key_count_reflects_paths_not_nodes() {
        let g = moviedb();
        let f = IndexFabric::build(&g);
        // Valued nodes: 7; several have multiple rooted simple paths.
        assert!(f.key_count() > 7);
        assert!(!f.truncated);
    }
}
