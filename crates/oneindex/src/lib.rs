//! # oneindex — the 1-index baseline
//!
//! The 1-index (Milo & Suciu, ICDT'99) partitions the data nodes by
//! **backward bisimulation**: two nodes are equivalent iff every incoming
//! edge of one can be matched by an equally-labeled incoming edge of the
//! other from an equivalent source (and vice versa). The quotient graph
//! is a sound and complete path index: the set of nodes reached by any
//! rooted label path equals the union of the extents of the index nodes
//! reached by that path. Unlike the strong DataGuide it is
//! non-deterministic (a node may have several equally-labeled out-edges)
//! but at most linear in the data size (§2 of the APEX paper: "the
//! 1-Index can be considered as a non-deterministic version of the strong
//! DataGuide", coinciding with it on tree data).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use xmlgraph::{LabelId, NodeId, XmlGraph};

/// Identifier of a 1-index node (= bisimulation block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    #[inline]
    fn idx(self) -> usize {
        self.0 as usize
    }
}

/// One block of the bisimulation quotient.
#[derive(Debug, Clone)]
pub struct Block {
    /// Data nodes in the block (sorted).
    pub extent: Vec<NodeId>,
    /// Outgoing quotient edges (label, target block), deduplicated; a
    /// label may map to several blocks (non-deterministic).
    pub edges: Vec<(LabelId, BlockId)>,
}

/// The 1-index.
#[derive(Debug, Clone)]
pub struct OneIndex {
    blocks: Vec<Block>,
    root: BlockId,
    edge_count: usize,
    /// Block of each data node.
    node_block: Vec<BlockId>,
}

impl OneIndex {
    /// Builds the 1-index of `g` by iterated signature refinement
    /// (O(m · rounds), deterministic).
    pub fn build(g: &XmlGraph) -> Self {
        let n = g.node_count();
        // Reverse adjacency: incoming (label, source) of each node.
        let mut incoming: Vec<Vec<(LabelId, NodeId)>> = vec![Vec::new(); n];
        for (from, l, to) in g.edges() {
            incoming[to.idx()].push((l, from));
        }

        // Initial partition: root alone; everything else by incoming
        // label multiset (a valid coarsest start since signatures only
        // refine).
        let mut block_of: Vec<u32> = vec![0; n];
        block_of[g.root().idx()] = 0;
        let mut next_block = 1u32;
        {
            let mut seed: HashMap<Vec<LabelId>, u32> = HashMap::new();
            for v in g.nodes() {
                if v == g.root() {
                    continue;
                }
                let mut labels: Vec<LabelId> = incoming[v.idx()].iter().map(|(l, _)| *l).collect();
                labels.sort_unstable();
                labels.dedup();
                let id = *seed.entry(labels).or_insert_with(|| {
                    let id = next_block;
                    next_block += 1;
                    id
                });
                block_of[v.idx()] = id;
            }
        }

        // Refine: signature(v) = sorted dedup {(l, block(u)) : u -l-> v}.
        loop {
            let mut sigs: HashMap<(u32, Vec<(LabelId, u32)>), u32> = HashMap::new();
            let mut new_block_of = vec![0u32; n];
            let mut count = 0u32;
            for v in g.nodes() {
                let mut sig: Vec<(LabelId, u32)> = incoming[v.idx()]
                    .iter()
                    .map(|(l, u)| (*l, block_of[u.idx()]))
                    .collect();
                sig.sort_unstable();
                sig.dedup();
                let key = (block_of[v.idx()], sig);
                let id = *sigs.entry(key).or_insert_with(|| {
                    let id = count;
                    count += 1;
                    id
                });
                new_block_of[v.idx()] = id;
            }
            let stable = count == next_block;
            block_of = new_block_of;
            next_block = count;
            if stable {
                break;
            }
        }

        // Materialize blocks and quotient edges.
        let mut blocks: Vec<Block> = (0..next_block)
            .map(|_| Block {
                extent: Vec::new(),
                edges: Vec::new(),
            })
            .collect();
        for v in g.nodes() {
            blocks[block_of[v.idx()] as usize].extent.push(v);
        }
        let mut edge_set: std::collections::HashSet<(u32, LabelId, u32)> =
            std::collections::HashSet::new();
        for (from, l, to) in g.edges() {
            edge_set.insert((block_of[from.idx()], l, block_of[to.idx()]));
        }
        let mut edge_count = 0usize;
        let mut sorted_edges: Vec<_> = edge_set.into_iter().collect();
        sorted_edges.sort_unstable();
        for (b, l, t) in sorted_edges {
            blocks[b as usize].edges.push((l, BlockId(t)));
            edge_count += 1;
        }
        for b in &mut blocks {
            b.extent.sort_unstable();
        }
        let root = BlockId(block_of[g.root().idx()]);
        let node_block = block_of.into_iter().map(BlockId).collect();
        OneIndex {
            blocks,
            root,
            edge_count,
            node_block,
        }
    }

    /// The block containing the data root.
    #[inline]
    pub fn root(&self) -> BlockId {
        self.root
    }

    /// Number of blocks.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.blocks.len()
    }

    /// Number of quotient edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Access one block.
    #[inline]
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.idx()]
    }

    /// The block of a data node.
    #[inline]
    pub fn block_of(&self, v: NodeId) -> BlockId {
        self.node_block[v.idx()]
    }

    /// Evaluates a rooted simple path over the quotient graph: the union
    /// of extents of all blocks reached by the path.
    pub fn eval_rooted(&self, path: &[LabelId]) -> Vec<NodeId> {
        let mut frontier = vec![self.root];
        for &l in path {
            let mut next: Vec<BlockId> = Vec::new();
            for b in frontier {
                for &(el, t) in &self.blocks[b.idx()].edges {
                    if el == l {
                        next.push(t);
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            frontier = next;
            if frontier.is_empty() {
                return Vec::new();
            }
        }
        let mut out = Vec::new();
        for b in frontier {
            out.extend_from_slice(&self.blocks[b.idx()].extent);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Iterates over block ids.
    pub fn ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlgraph::builder::moviedb;
    use xmlgraph::LabelPath;

    #[test]
    fn rooted_eval_matches_direct() {
        let g = moviedb();
        let oi = OneIndex::build(&g);
        for p in [
            "movie.title",
            "director.movie.title",
            "actor.name",
            "name",
            "director.movie.@director.director.name",
        ] {
            let path = LabelPath::parse(&g, p).unwrap();
            let expect = xmlgraph::paths::eval_rooted(&g, &path);
            assert_eq!(oi.eval_rooted(path.labels()), expect, "path {p}");
        }
    }

    #[test]
    fn coincides_with_dataguide_on_trees() {
        // On tree data the 1-index equals the strong DataGuide (§2).
        let mut b = xmlgraph::GraphBuilder::new("a");
        let r = b.root();
        for _ in 0..3 {
            let c = b.add_child(r, "b");
            b.add_value_child(c, "t", "x");
        }
        let c = b.add_child(r, "c");
        b.add_value_child(c, "t", "y");
        let g = b.finish().unwrap();
        let oi = OneIndex::build(&g);
        let dg = dataguide::DataGuide::build(&g);
        assert_eq!(oi.node_count(), dg.node_count());
        assert_eq!(oi.edge_count(), dg.edge_count());
    }

    #[test]
    fn blocks_partition_nodes() {
        let g = moviedb();
        let oi = OneIndex::build(&g);
        let total: usize = oi.ids().map(|b| oi.block(b).extent.len()).sum();
        assert_eq!(total, g.node_count());
        for v in g.nodes() {
            let b = oi.block_of(v);
            assert!(oi.block(b).extent.binary_search(&v).is_ok());
        }
    }

    #[test]
    fn bisimulation_property_holds() {
        // For every pair in one block, incoming labels must agree.
        let g = moviedb();
        let oi = OneIndex::build(&g);
        let mut incoming: Vec<Vec<(LabelId, BlockId)>> = vec![Vec::new(); g.node_count()];
        for (from, l, to) in g.edges() {
            incoming[to.idx()].push((l, oi.block_of(from)));
        }
        for v in incoming.iter_mut() {
            v.sort_unstable();
            v.dedup();
        }
        for b in oi.ids() {
            let ext = &oi.block(b).extent;
            for w in ext.windows(2) {
                assert_eq!(
                    incoming[w[0].idx()],
                    incoming[w[1].idx()],
                    "nodes {} and {} share a block but differ backward",
                    w[0].0,
                    w[1].0
                );
            }
        }
    }

    #[test]
    fn cycle_terminates() {
        let mut rb = xmlgraph::builder::RawGraphBuilder::new();
        rb.node(0, "r", None, None);
        rb.node(1, "a", Some(0), None);
        rb.node(2, "b", Some(1), None);
        rb.edge(0, "a", 1);
        rb.edge(1, "b", 2);
        rb.edge(2, "a", 1);
        let g = rb.finish(&[]);
        let oi = OneIndex::build(&g);
        assert!(oi.node_count() <= 3);
        let a = g.label_id("a").unwrap();
        let b = g.label_id("b").unwrap();
        assert_eq!(oi.eval_rooted(&[a, b, a]), vec![NodeId(1)]);
    }
}
