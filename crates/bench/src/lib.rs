//! # apex-bench — experiment harness for the paper's evaluation
//!
//! One [`Experiment`] per dataset: the graph, data table, query sets at
//! the paper's counts (scaled down at the `small` scale), `APEX⁰`, and
//! constructors for every other index. The `table1`/`table2`/`fig13`/
//! `fig14`/`fig15`/`ablation` binaries print the corresponding rows; the
//! Criterion benches in `benches/` time the per-query-set batches.
//!
//! ## Scales
//!
//! * `small` — four_tragedy / Flix01 / Ged01 with reduced query counts;
//!   finishes in seconds. The default.
//! * `paper` — all nine datasets of Table 1 with the paper's query
//!   counts (5000 / 500 / 1000); minutes. Select with `--scale paper`
//!   or `APEX_SCALE=paper`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use apex::{Apex, Workload};
use apex_query::generator::{GeneratorConfig, QuerySets};
use apex_storage::{DataTable, PageModel};
use datagen::Dataset;
use dataguide::DataGuide;
use fabric::IndexFabric;
use oneindex::OneIndex;
use xmlgraph::paths::EnumLimits;
use xmlgraph::XmlGraph;

/// The minSup sweep of Table 2 and Figure 13.
pub const MINSUPS: [f64; 5] = [0.002, 0.005, 0.01, 0.03, 0.05];

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small datasets, reduced query counts (seconds).
    Small,
    /// The paper's nine datasets and query counts (minutes).
    Paper,
}

impl Scale {
    /// Parses `--scale <small|paper>` from argv or `APEX_SCALE` from the
    /// environment; defaults to `Small`.
    pub fn from_env() -> Scale {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--scale" {
                if let Some(v) = args.next() {
                    return Scale::parse(&v);
                }
            } else if let Some(v) = a.strip_prefix("--scale=") {
                return Scale::parse(v);
            }
        }
        match std::env::var("APEX_SCALE") {
            Ok(v) => Scale::parse(&v),
            Err(_) => Scale::Small,
        }
    }

    fn parse(v: &str) -> Scale {
        match v {
            "paper" | "full" => Scale::Paper,
            _ => Scale::Small,
        }
    }

    /// Datasets evaluated at this scale.
    pub fn datasets(self) -> Vec<Dataset> {
        match self {
            Scale::Small => vec![Dataset::FourTragedy, Dataset::Flix01, Dataset::Ged01],
            Scale::Paper => Dataset::all().to_vec(),
        }
    }

    /// Datasets for Figures 14/15 (the paper omits the smallest of each
    /// family there).
    pub fn fig14_15_datasets(self) -> Vec<Dataset> {
        match self {
            Scale::Small => vec![Dataset::FourTragedy, Dataset::Flix01, Dataset::Ged01],
            Scale::Paper => vec![
                Dataset::Shakes11,
                Dataset::ShakesAll,
                Dataset::Flix02,
                Dataset::Flix03,
                Dataset::Ged02,
                Dataset::Ged03,
            ],
        }
    }

    /// Query-set sizes `(qtype1, qtype2, qtype3)`.
    pub fn query_counts(self) -> (usize, usize, usize) {
        match self {
            Scale::Small => (1000, 150, 250),
            Scale::Paper => (5000, 500, 1000),
        }
    }
}

/// A fully prepared experiment over one dataset.
pub struct Experiment {
    /// Which dataset.
    pub dataset: Dataset,
    /// The data graph.
    pub g: XmlGraph,
    /// The value table.
    pub table: DataTable,
    /// Generated query sets + tuning workload.
    pub queries: QuerySets,
    /// APEX⁰.
    pub apex0: Apex,
}

impl Experiment {
    /// Builds the experiment for `d` at `scale`.
    pub fn new(d: Dataset, scale: Scale) -> Experiment {
        let g = d.generate();
        let table = DataTable::build(&g, PageModel::default());
        let (q1, q2, q3) = scale.query_counts();
        let cfg = GeneratorConfig {
            qtype1: q1,
            qtype2: q2,
            qtype3: q3,
            workload_fraction: 0.20,
            seed: 0x5EED ^ d.paper_nodes() as u64,
            limits: EnumLimits {
                max_len: 12,
                max_paths: 100_000,
            },
        };
        let queries = QuerySets::generate(&g, &table, cfg);
        let apex0 = Apex::build_initial(&g);
        Experiment {
            dataset: d,
            g,
            table,
            queries,
            apex0,
        }
    }

    /// A refined APEX at `min_sup` (from a clone of `APEX⁰`, using the
    /// 20 % workload sample — the paper's procedure).
    pub fn apex_at(&self, min_sup: f64) -> Apex {
        let mut idx = self.apex0.clone();
        idx.refine(&self.g, &self.queries.workload, min_sup);
        idx
    }

    /// A refined APEX for an explicit workload.
    pub fn apex_with(&self, wl: &Workload, min_sup: f64) -> Apex {
        let mut idx = self.apex0.clone();
        idx.refine(&self.g, wl, min_sup);
        idx
    }

    /// The strong DataGuide.
    pub fn dataguide(&self) -> DataGuide {
        DataGuide::build(&self.g)
    }

    /// The 1-index.
    pub fn oneindex(&self) -> OneIndex {
        OneIndex::build(&self.g)
    }

    /// The Index Fabric.
    pub fn fabric(&self) -> IndexFabric {
        IndexFabric::build(&self.g)
    }
}

/// Prints the standard figure-row header.
pub fn print_row_header() {
    println!(
        "{:<18} {:<12} {:>9} {:>12} {:>12} {:>12} {:>10} {:>10} {:>7}",
        "dataset",
        "index",
        "queries",
        "pages",
        "idx-edges",
        "join-work",
        "results",
        "wall-ms",
        "buf-hit"
    );
}

/// Prints the adaptive-workload table header: one row per index
/// generation served, plus latency and swap columns.
pub fn print_adaptive_header() {
    println!(
        "{:<18} {:>5} {:>9} {:>10} {:>10} {:>9} {:>9} {:>9} {:>7}",
        "dataset", "gen", "queries", "results", "wall-ms", "p50-us", "p99-us", "swap-ms", "buf-hit"
    );
}

/// Prints one adaptive-workload row: the queries served on `row`'s
/// generation, with the run-level latency percentiles and the wall time
/// of the swap that *published* this generation (`-` for generation 0
/// and rows whose swap happened before the run).
pub fn print_adaptive_row(
    dataset: &str,
    row: &apex_query::GenerationRow,
    stats: &apex_query::AdaptiveStats,
    swap_ms: Option<f64>,
) {
    let hit = match &stats.batch.buf {
        Some(b) => format!("{:.1}%", b.hit_rate() * 100.0),
        None => "-".to_string(),
    };
    println!(
        "{:<18} {:>5} {:>9} {:>10} {:>10.1} {:>9.1} {:>9.1} {:>9} {:>7}",
        dataset,
        row.generation,
        row.queries,
        row.result_nodes,
        row.wall.as_secs_f64() * 1e3,
        stats.p50.as_secs_f64() * 1e6,
        stats.p99.as_secs_f64() * 1e6,
        swap_ms.map_or("-".to_string(), |ms| format!("{ms:.2}")),
        hit
    );
}

/// Prints one figure row from a batch result. The `buf-hit` column is
/// the cross-query buffer pool's hit rate over the batch (`-` for
/// processors that do not expose a pool).
pub fn print_row(dataset: &str, index: &str, stats: &apex_query::BatchStats) {
    let hit = match &stats.buf {
        Some(b) => format!("{:.1}%", b.hit_rate() * 100.0),
        None => "-".to_string(),
    };
    println!(
        "{:<18} {:<12} {:>9} {:>12} {:>12} {:>12} {:>10} {:>10.1} {:>7}",
        dataset,
        index,
        stats.queries,
        stats.cost.pages_read,
        stats.cost.index_edges,
        stats.cost.join_work,
        stats.result_nodes,
        stats.wall.as_secs_f64() * 1e3,
        hit
    );
}
