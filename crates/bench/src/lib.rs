//! # apex-bench — experiment harness for the paper's evaluation
//!
//! One [`Experiment`] per dataset: the graph, data table, query sets at
//! the paper's counts (scaled down at the `small` scale), `APEX⁰`, and
//! constructors for every other index. The `table1`/`table2`/`fig13`/
//! `fig14`/`fig15`/`ablation` binaries print the corresponding rows; the
//! Criterion benches in `benches/` time the per-query-set batches.
//!
//! ## Scales
//!
//! * `small` — four_tragedy / Flix01 / Ged01 with reduced query counts;
//!   finishes in seconds. The default.
//! * `paper` — all nine datasets of Table 1 with the paper's query
//!   counts (5000 / 500 / 1000); minutes. Select with `--scale paper`
//!   or `APEX_SCALE=paper`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use apex::{Apex, Workload};
use apex_query::generator::{GeneratorConfig, QuerySets};
use apex_storage::{DataTable, PageModel};
use datagen::Dataset;
use dataguide::DataGuide;
use fabric::IndexFabric;
use oneindex::OneIndex;
use xmlgraph::paths::EnumLimits;
use xmlgraph::XmlGraph;

/// The minSup sweep of Table 2 and Figure 13.
pub const MINSUPS: [f64; 5] = [0.002, 0.005, 0.01, 0.03, 0.05];

/// The default RNG base seed (`--seed` / `APEX_SEED` override it).
pub const DEFAULT_SEED: u64 = 0x5EED;

/// The base RNG seed for this bench run: `--seed <u64>` from argv,
/// else `APEX_SEED` from the environment, else [`DEFAULT_SEED`].
/// Every binary derives its generator seeds from this one value, and
/// every `BENCH_<name>.json` records it (see [`report::BenchReport`]),
/// so any reported row can be reproduced by re-running with the same
/// seed.
pub fn base_seed() -> u64 {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let v = if a == "--seed" {
            args.next()
        } else {
            a.strip_prefix("--seed=").map(str::to_string)
        };
        if let Some(v) = v {
            if let Ok(seed) = v.parse::<u64>() {
                return seed;
            }
        }
    }
    std::env::var("APEX_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small datasets, reduced query counts (seconds).
    Small,
    /// The paper's nine datasets and query counts (minutes).
    Paper,
}

impl Scale {
    /// Parses `--scale <small|paper>` from argv or `APEX_SCALE` from the
    /// environment; defaults to `Small`.
    pub fn from_env() -> Scale {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--scale" {
                if let Some(v) = args.next() {
                    return Scale::parse(&v);
                }
            } else if let Some(v) = a.strip_prefix("--scale=") {
                return Scale::parse(v);
            }
        }
        match std::env::var("APEX_SCALE") {
            Ok(v) => Scale::parse(&v),
            Err(_) => Scale::Small,
        }
    }

    fn parse(v: &str) -> Scale {
        match v {
            "paper" | "full" => Scale::Paper,
            _ => Scale::Small,
        }
    }

    /// Datasets evaluated at this scale.
    pub fn datasets(self) -> Vec<Dataset> {
        match self {
            Scale::Small => vec![Dataset::FourTragedy, Dataset::Flix01, Dataset::Ged01],
            Scale::Paper => Dataset::all().to_vec(),
        }
    }

    /// Datasets for Figures 14/15 (the paper omits the smallest of each
    /// family there).
    pub fn fig14_15_datasets(self) -> Vec<Dataset> {
        match self {
            Scale::Small => vec![Dataset::FourTragedy, Dataset::Flix01, Dataset::Ged01],
            Scale::Paper => vec![
                Dataset::Shakes11,
                Dataset::ShakesAll,
                Dataset::Flix02,
                Dataset::Flix03,
                Dataset::Ged02,
                Dataset::Ged03,
            ],
        }
    }

    /// Query-set sizes `(qtype1, qtype2, qtype3)`.
    pub fn query_counts(self) -> (usize, usize, usize) {
        match self {
            Scale::Small => (1000, 150, 250),
            Scale::Paper => (5000, 500, 1000),
        }
    }
}

/// A fully prepared experiment over one dataset.
pub struct Experiment {
    /// Which dataset.
    pub dataset: Dataset,
    /// The data graph.
    pub g: XmlGraph,
    /// The value table.
    pub table: DataTable,
    /// Generated query sets + tuning workload.
    pub queries: QuerySets,
    /// APEX⁰.
    pub apex0: Apex,
}

impl Experiment {
    /// Builds the experiment for `d` at `scale`.
    pub fn new(d: Dataset, scale: Scale) -> Experiment {
        let g = d.generate();
        let table = DataTable::build(&g, PageModel::default());
        let (q1, q2, q3) = scale.query_counts();
        let cfg = GeneratorConfig {
            qtype1: q1,
            qtype2: q2,
            qtype3: q3,
            workload_fraction: 0.20,
            seed: base_seed() ^ d.paper_nodes() as u64,
            limits: EnumLimits {
                max_len: 12,
                max_paths: 100_000,
            },
        };
        let queries = QuerySets::generate(&g, &table, cfg);
        let apex0 = Apex::build_initial(&g);
        Experiment {
            dataset: d,
            g,
            table,
            queries,
            apex0,
        }
    }

    /// A refined APEX at `min_sup` (from a clone of `APEX⁰`, using the
    /// 20 % workload sample — the paper's procedure).
    pub fn apex_at(&self, min_sup: f64) -> Apex {
        let mut idx = self.apex0.clone();
        idx.refine(&self.g, &self.queries.workload, min_sup);
        idx
    }

    /// A refined APEX for an explicit workload.
    pub fn apex_with(&self, wl: &Workload, min_sup: f64) -> Apex {
        let mut idx = self.apex0.clone();
        idx.refine(&self.g, wl, min_sup);
        idx
    }

    /// The strong DataGuide.
    pub fn dataguide(&self) -> DataGuide {
        DataGuide::build(&self.g)
    }

    /// The 1-index.
    pub fn oneindex(&self) -> OneIndex {
        OneIndex::build(&self.g)
    }

    /// The Index Fabric.
    pub fn fabric(&self) -> IndexFabric {
        IndexFabric::build(&self.g)
    }
}

/// Hand-rolled JSON for the machine-readable companion file every bench
/// binary writes next to its table (`BENCH_<name>.json`). The workspace
/// carries no serde and the reports are flat rows, so a tiny value enum
/// plus a writer suffices.
pub mod report {
    use std::io::Write as _;
    use std::path::PathBuf;

    /// A JSON value (only the shapes the reports need).
    #[derive(Debug, Clone)]
    pub enum Json {
        /// An unsigned integer.
        U64(u64),
        /// A float (rendered with enough digits to round-trip).
        F64(f64),
        /// A string (escaped on render).
        Str(String),
        /// A boolean.
        Bool(bool),
        /// An array.
        Arr(Vec<Json>),
        /// An object with fixed keys.
        Obj(Vec<(&'static str, Json)>),
    }

    impl Json {
        /// Convenience: a string value.
        pub fn str(s: impl Into<String>) -> Json {
            Json::Str(s.into())
        }

        fn render_into(&self, out: &mut String) {
            match self {
                Json::U64(v) => out.push_str(&v.to_string()),
                Json::F64(v) if v.is_finite() => out.push_str(&format!("{v}")),
                Json::F64(_) => out.push_str("null"),
                Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Json::Str(s) => {
                    out.push('"');
                    for c in s.chars() {
                        match c {
                            '"' => out.push_str("\\\""),
                            '\\' => out.push_str("\\\\"),
                            '\n' => out.push_str("\\n"),
                            '\t' => out.push_str("\\t"),
                            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                            c => out.push(c),
                        }
                    }
                    out.push('"');
                }
                Json::Arr(items) => {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        item.render_into(out);
                    }
                    out.push(']');
                }
                Json::Obj(fields) => {
                    out.push('{');
                    for (i, (k, v)) in fields.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push('"');
                        out.push_str(k);
                        out.push_str("\":");
                        v.render_into(out);
                    }
                    out.push('}');
                }
            }
        }

        /// Renders the value as a JSON string.
        pub fn render(&self) -> String {
            let mut s = String::new();
            self.render_into(&mut s);
            s
        }
    }

    /// Accumulates rows for one bench binary and writes
    /// `BENCH_<name>.json` (in the working directory) on
    /// [`BenchReport::write`].
    #[derive(Debug)]
    pub struct BenchReport {
        name: &'static str,
        meta: Vec<(&'static str, Json)>,
        rows: Vec<Json>,
    }

    impl BenchReport {
        /// A fresh report for the binary `name`. The run's base RNG
        /// seed is recorded up front so every report is reproducible.
        pub fn new(name: &'static str) -> Self {
            BenchReport {
                name,
                meta: vec![("seed", Json::U64(crate::base_seed()))],
                rows: Vec::new(),
            }
        }

        /// Attaches a top-level metadata field (scale, thresholds, …).
        pub fn meta(&mut self, key: &'static str, value: Json) {
            self.meta.push((key, value));
        }

        /// Appends one row.
        pub fn push(&mut self, row: Json) {
            self.rows.push(row);
        }

        /// Writes `BENCH_<name>.json` and returns its path.
        pub fn write(self) -> std::io::Result<PathBuf> {
            let mut fields = vec![("bench", Json::str(self.name))];
            fields.extend(self.meta);
            fields.push(("rows", Json::Arr(self.rows)));
            let path = PathBuf::from(format!("BENCH_{}.json", self.name));
            let mut f = std::fs::File::create(&path)?;
            f.write_all(Json::Obj(fields).render().as_bytes())?;
            f.write_all(b"\n")?;
            Ok(path)
        }
    }

    /// The standard figure row as JSON: per-batch pages read, join work,
    /// and the rest of the printed columns.
    pub fn batch_row(dataset: &str, index: &str, stats: &apex_query::BatchStats) -> Json {
        let mut fields = vec![
            ("dataset", Json::str(dataset)),
            ("index", Json::str(index)),
            ("queries", Json::U64(stats.queries as u64)),
            ("pages_read", Json::U64(stats.cost.pages_read)),
            ("index_edges", Json::U64(stats.cost.index_edges)),
            ("extent_pairs", Json::U64(stats.cost.extent_pairs)),
            ("join_work", Json::U64(stats.cost.join_work)),
            ("join_output", Json::U64(stats.cost.join_output)),
            ("result_nodes", Json::U64(stats.result_nodes as u64)),
            ("wall_ms", Json::F64(apex_query::stats::millis(stats.wall))),
        ];
        if let Some(b) = &stats.buf {
            fields.push(("buf_hit_rate", Json::F64(b.hit_rate())));
        }
        Json::Obj(fields)
    }

    /// Index-size row (Table 2): structure counts plus the stored extent
    /// footprint in the compressed block encoding next to its raw size
    /// and the succinct form's queryable resident bytes.
    pub fn index_row(dataset: &str, index: &str, s: &apex::IndexStats) -> Json {
        Json::Obj(vec![
            ("dataset", Json::str(dataset)),
            ("index", Json::str(index)),
            ("nodes", Json::U64(s.nodes as u64)),
            ("edges", Json::U64(s.edges as u64)),
            ("extent_pairs", Json::U64(s.extent_pairs as u64)),
            (
                "extent_encoded_bytes",
                Json::U64(s.extent_encoded_bytes as u64),
            ),
            ("extent_raw_bytes", Json::U64(s.extent_raw_bytes as u64)),
            (
                "extent_resident_bytes",
                Json::U64(s.extent_resident_bytes as u64),
            ),
        ])
    }
}

/// Prints the standard figure-row header.
pub fn print_row_header() {
    println!(
        "{:<18} {:<12} {:>9} {:>12} {:>12} {:>12} {:>10} {:>10} {:>7}",
        "dataset",
        "index",
        "queries",
        "pages",
        "idx-edges",
        "join-work",
        "results",
        "wall-ms",
        "buf-hit"
    );
}

/// Prints the adaptive-workload table header: one row per index
/// generation served, plus latency and swap columns.
pub fn print_adaptive_header() {
    println!(
        "{:<18} {:>5} {:>9} {:>10} {:>10} {:>9} {:>9} {:>9} {:>7}",
        "dataset", "gen", "queries", "results", "wall-ms", "p50-us", "p99-us", "swap-ms", "buf-hit"
    );
}

/// Prints one adaptive-workload row: the queries served on `row`'s
/// generation, with the run-level latency percentiles and the wall time
/// of the swap that *published* this generation (`-` for generation 0
/// and rows whose swap happened before the run).
pub fn print_adaptive_row(
    dataset: &str,
    row: &apex_query::GenerationRow,
    stats: &apex_query::AdaptiveStats,
    swap_ms: Option<f64>,
) {
    let hit = match &stats.batch.buf {
        Some(b) => format!("{:.1}%", b.hit_rate() * 100.0),
        None => "-".to_string(),
    };
    println!(
        "{:<18} {:>5} {:>9} {:>10} {:>10.1} {:>9.1} {:>9.1} {:>9} {:>7}",
        dataset,
        row.generation,
        row.queries,
        row.result_nodes,
        apex_query::stats::millis(row.wall),
        apex_query::stats::micros(stats.p50),
        apex_query::stats::micros(stats.p99),
        swap_ms.map_or("-".to_string(), |ms| format!("{ms:.2}")),
        hit
    );
}

/// Prints one figure row from a batch result. The `buf-hit` column is
/// the cross-query buffer pool's hit rate over the batch (`-` for
/// processors that do not expose a pool).
pub fn print_row(dataset: &str, index: &str, stats: &apex_query::BatchStats) {
    let hit = match &stats.buf {
        Some(b) => format!("{:.1}%", b.hit_rate() * 100.0),
        None => "-".to_string(),
    };
    println!(
        "{:<18} {:<12} {:>9} {:>12} {:>12} {:>12} {:>10} {:>10.1} {:>7}",
        dataset,
        index,
        stats.queries,
        stats.cost.pages_read,
        stats.cost.index_edges,
        stats.cost.join_work,
        stats.result_nodes,
        apex_query::stats::millis(stats.wall),
        hit
    );
}
