//! Cost-based planner benchmark: the planned join order vs both fixed
//! orders (always-forward, always-backward) over generated QTYPE1/3
//! workloads on the three small dataset families (Play / Flix / Ged).
//!
//! The query mix is the generator's QTYPE1/QTYPE3 sets plus a batch of
//! deterministic *stress chains*: uniformly random label paths that —
//! unlike generator queries, which follow paths present in the data —
//! frequently die at a late join boundary. Those are exactly the
//! queries where the backward (reduce-then-forward) order wins, because
//! the reverse semijoin discovers the collapse before paying for the
//! seed union, so the mix makes the two fixed orders disagree the way
//! real ad-hoc workloads do.
//!
//! For each family the same query set runs three times through the APEX
//! processor — once per join-order policy, each against a fresh buffer
//! pool — and the summed logical cost (`Cost::total()`: pages, pairs,
//! comparisons, probes) is compared. The run *asserts* the planner's
//! guarantee: the planned total never exceeds 1.1× the best fixed order
//! on any family, and is strictly cheaper than both fixed orders on at
//! least one family (per-query choice beats any single fixed order as
//! soon as queries disagree on which order is best).
//!
//! Also writes `BENCH_planner.json` with one row per family.
//!
//! (`cargo run -p apex-bench --release --bin planner`)

use apex::Apex;
use apex_bench::report::{BenchReport, Json};
use apex_query::apex_qp::ApexProcessor;
use apex_query::batch::QueryProcessor;
use apex_query::generator::{GeneratorConfig, QuerySets};
use apex_query::{JoinOrderPolicy, Query};
use apex_storage::{BufferHandle, Cost, DataTable, PageModel};
use xmlgraph::paths::EnumLimits;
use xmlgraph::{LabelId, XmlGraph};

const ORDERS: [JoinOrderPolicy; 3] = [
    JoinOrderPolicy::Planned,
    JoinOrderPolicy::ForceForward,
    JoinOrderPolicy::ForceBackward,
];

fn cfg(seed: u64) -> GeneratorConfig {
    GeneratorConfig {
        qtype1: 200,
        qtype2: 0,
        qtype3: 60,
        workload_fraction: 0.2,
        seed,
        limits: EnumLimits {
            max_len: 10,
            max_paths: 30_000,
        },
    }
}

/// Deterministic ad-hoc stress chains: random label paths (xorshift64)
/// of length 2..=5 over the family's label alphabet. Unconstrained by
/// the data's actual paths, many collapse mid-join — the shape where
/// the backward order beats the forward one.
fn stress_chains(g: &XmlGraph, seed: u64, n: usize) -> Vec<Query> {
    let nl = g.label_count() as u64;
    let mut s = 0x9E37_79B9_7F4A_7C15u64 ^ seed;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    (0..n)
        .map(|_| {
            let len = 2 + (next() % 4) as usize;
            let labels = (0..len).map(|_| LabelId((next() % nl) as u32)).collect();
            Query::PartialPath { labels }
        })
        .collect()
}

/// Sums one policy's cost over the whole query set, fresh pool.
fn run_order(
    g: &XmlGraph,
    apex: &Apex,
    table: &DataTable,
    queries: &[&Query],
    order: JoinOrderPolicy,
) -> Cost {
    let p = ApexProcessor::with_buffer(g, apex, table, BufferHandle::unbounded())
        .with_join_order(order);
    let mut total = Cost::new();
    for q in queries {
        total += p.eval(q).cost;
    }
    total
}

fn main() {
    let mut report = BenchReport::new("planner");
    println!("Planner benchmark: planned join order vs fixed orders\n");
    println!(
        "{:<8} {:>8} {:>14} {:>14} {:>14} {:>10}",
        "family", "queries", "planned", "forward", "backward", "vs best"
    );
    let mut strict_wins = 0usize;
    for (family, g, seed) in [
        ("play", datagen::shakespeare(1, 42), 0xA1u64),
        ("flix", datagen::flixml(30, 42), 0xA2),
        ("ged", datagen::gedml(40, 42), 0xA3),
    ] {
        let table = DataTable::build(&g, PageModel::default());
        let sets = QuerySets::generate(&g, &table, cfg(seed));
        let mut apex = Apex::build_initial(&g);
        apex.refine(&g, &sets.workload, 0.01);
        let chains = stress_chains(&g, seed, 100);
        let queries: Vec<&Query> = sets
            .qtype1
            .iter()
            .chain(sets.qtype3.iter())
            .chain(chains.iter())
            .collect();

        let totals: Vec<u64> = ORDERS
            .iter()
            .map(|&o| run_order(&g, &apex, &table, &queries, o).total())
            .collect();
        let (planned, forward, backward) = (totals[0], totals[1], totals[2]);
        let best_fixed = forward.min(backward);
        let ratio = planned as f64 / best_fixed.max(1) as f64;
        println!(
            "{:<8} {:>8} {:>14} {:>14} {:>14} {:>9.4}x",
            family,
            queries.len(),
            planned,
            forward,
            backward,
            ratio
        );
        assert!(
            planned as u128 * 10 <= best_fixed as u128 * 11,
            "{family}: planned total {planned} exceeds 1.1x the best fixed order ({best_fixed})"
        );
        if planned < best_fixed {
            strict_wins += 1;
        }
        report.push(Json::Obj(vec![
            ("family", Json::str(family)),
            ("queries", Json::U64(queries.len() as u64)),
            ("planned_total", Json::U64(planned)),
            ("forward_total", Json::U64(forward)),
            ("backward_total", Json::U64(backward)),
            ("best_fixed_total", Json::U64(best_fixed)),
        ]));
    }
    assert!(
        strict_wins >= 1,
        "planned order never beat both fixed orders on any family"
    );
    match report.write() {
        Ok(p) => println!("\nwrote {}", p.display()),
        Err(e) => eprintln!("could not write report: {e}"),
    }
    println!(
        "planned stayed within 1.1x of the best fixed order everywhere, \
         strictly cheaper on {strict_wins} family(ies)"
    );
}
