//! Networked-serving load generator: drives a real apex-net socket
//! server with closed-loop and open-loop traffic while the background
//! refresher swaps index generations underneath, then drains and
//! checks the accounting.
//!
//! Phases:
//!
//! 1. **closed-loop** — `CLIENTS` threads, one outstanding request
//!    each, `PER_CLIENT` requests per thread. Measures end-to-end
//!    latency (p50/p99) at a sustainable rate and watches response
//!    generations to prove snapshot swaps happened mid-run.
//! 2. **open-loop burst** — one connection pipelines `BURST` requests
//!    against a deliberately small queue, forcing admission control to
//!    shed with explicit `Overloaded` responses; a slice of the burst
//!    carries a 1 ms deadline to exercise `DeadlineExceeded` too.
//! 3. **drain** — graceful shutdown; asserts the no-silent-drop
//!    invariant `accepted == served + shed + timed_out`, the queue
//!    high-water mark ≤ its cap, and that overload really shed.
//!
//! ```bash
//! cargo run --release --bin netload            # small scale
//! cargo run --release --bin netload -- --seed 7
//! ```
//!
//! Writes `BENCH_netload.json` with one row per phase (p50/p99, shed
//! rate, status mix) plus the final server accounting.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use apex::{Apex, IndexCell, RefreshPolicy, Refresher, WorkloadMonitor};
use apex_bench::report::{BenchReport, Json};
use apex_bench::{base_seed, Experiment, Scale};
use apex_net::{Client, Engine, NetStats, Server, ServerConfig, Status};
use apex_query::stats::{micros, millis, percentile};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CLIENTS: usize = 4;
const PER_CLIENT: usize = 200;
const BURST: usize = 600;
const WORKERS: usize = 2;
const QUEUE_CAP: usize = 16;

/// One closed-loop observation.
struct Obs {
    latency: Duration,
    generation: u64,
    status: Status,
}

fn closed_loop_client(
    addr: std::net::SocketAddr,
    queries: &[String],
    seed: u64,
) -> Result<Vec<Obs>, apex_net::WireError> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut c = Client::connect(addr)?;
    let mut out = Vec::with_capacity(PER_CLIENT);
    for _ in 0..PER_CLIENT {
        let q = &queries[rng.gen_range(0..queries.len())];
        let t = Instant::now();
        let resp = c.call(q, 0)?;
        out.push(Obs {
            latency: t.elapsed(),
            generation: resp.generation,
            status: resp.status,
        });
    }
    Ok(out)
}

fn phase_row(phase: &str, sent: usize, latencies: &mut [Duration], statuses: &[Status]) -> Json {
    latencies.sort_unstable();
    let count = |s: Status| statuses.iter().filter(|&&x| x == s).count() as u64;
    let shed = count(Status::Overloaded) + count(Status::Draining);
    Json::Obj(vec![
        ("phase", Json::str(phase)),
        ("requests", Json::U64(sent as u64)),
        ("p50_us", Json::F64(micros(percentile(latencies, 0.50)))),
        ("p99_us", Json::F64(micros(percentile(latencies, 0.99)))),
        ("ok", Json::U64(count(Status::Ok))),
        ("overloaded", Json::U64(count(Status::Overloaded))),
        (
            "deadline_exceeded",
            Json::U64(count(Status::DeadlineExceeded)),
        ),
        ("shed_rate", Json::F64(shed as f64 / sent.max(1) as f64)),
    ])
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_env();
    let seed = base_seed();
    let mut report = BenchReport::new("netload");

    // Serving stack over the first dataset at this scale, with an
    // aggressive periodic refresh policy so generations swap while the
    // socket traffic is live.
    let datasets = scale.datasets();
    let d = datasets[0];
    let e = Experiment::new(d, scale);
    let g = Arc::new(e.g.clone());
    let table = Arc::new(e.table);
    let cell = Arc::new(IndexCell::new(Apex::build_initial(&g)));
    let monitor = Arc::new(Mutex::new(WorkloadMonitor::new(
        200,
        0.01,
        RefreshPolicy::EveryN(50),
    )));
    let refresher = Arc::new(Refresher::spawn(
        Arc::clone(&g),
        Arc::clone(&cell),
        Arc::clone(&monitor),
    )?);
    let engine = Engine::new(
        Arc::clone(&g),
        Arc::clone(&table),
        Arc::clone(&cell),
        Arc::clone(&monitor),
    )
    .with_refresher(Arc::clone(&refresher));
    let mut server = Server::start(
        engine,
        ServerConfig {
            workers: WORKERS,
            queue_cap: QUEUE_CAP,
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )?;
    let addr = server.local_addr();
    println!(
        "netload: {} on {addr} ({WORKERS} workers, queue cap {QUEUE_CAP}, seed {seed})",
        d.name()
    );

    // The query pool: rendered QTYPE1 texts (path-shaped, so every one
    // is recorded by the monitor and steers the refresher).
    let queries: Vec<String> = e
        .queries
        .qtype1
        .iter()
        .take(256)
        .map(|q| q.render(&g))
        .collect();
    assert!(!queries.is_empty(), "no queries generated");

    // Phase 1: closed loop.
    let t_phase = Instant::now();
    let mut observations: Vec<Obs> = Vec::with_capacity(CLIENTS * PER_CLIENT);
    std::thread::scope(|s| -> Result<(), apex_net::WireError> {
        let mut handles = Vec::new();
        for i in 0..CLIENTS {
            let queries = &queries;
            handles.push(s.spawn(move || closed_loop_client(addr, queries, seed ^ (i as u64 + 1))));
        }
        for h in handles {
            match h.join() {
                Ok(obs) => observations.extend(obs?),
                Err(p) => std::panic::resume_unwind(p),
            }
        }
        Ok(())
    })?;
    let closed_wall = t_phase.elapsed();
    let generations: std::collections::BTreeSet<u64> =
        observations.iter().map(|o| o.generation).collect();
    let mut lat: Vec<Duration> = observations.iter().map(|o| o.latency).collect();
    let statuses: Vec<Status> = observations.iter().map(|o| o.status).collect();
    let sent = observations.len();
    report.push(phase_row("closed_loop", sent, &mut lat, &statuses));
    println!(
        "closed loop: {sent} requests over {CLIENTS} clients in {:.1} ms, p50 {:.1} us, p99 {:.1} us, \
         served on {} generation(s) {:?}",
        millis(closed_wall),
        micros(percentile(&lat, 0.50)),
        micros(percentile(&lat, 0.99)),
        generations.len(),
        generations
    );
    assert!(
        statuses.iter().all(|&s| s == Status::Ok),
        "closed loop must not shed at this rate"
    );
    assert!(
        generations.len() >= 2,
        "expected snapshot swaps under live traffic, saw only {generations:?}"
    );

    // Phase 2: open-loop overload burst — pipeline everything, then
    // collect. Every 3rd request carries a 1 ms deadline.
    let mut c = Client::connect(addr)?;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xB0057);
    let t_phase = Instant::now();
    let mut sent_at: Vec<Instant> = Vec::with_capacity(BURST);
    for i in 0..BURST {
        let q = &queries[rng.gen_range(0..queries.len())];
        c.send(q, if i % 3 == 0 { 1 } else { 0 })?;
        sent_at.push(Instant::now());
    }
    let mut burst_statuses = Vec::with_capacity(BURST);
    let mut burst_lat = Vec::with_capacity(BURST);
    for _ in 0..BURST {
        match c.recv()? {
            Some(resp) => {
                // Turnaround from send time, by id (ids are 0..BURST).
                let at = sent_at[resp.id as usize];
                burst_lat.push(at.elapsed());
                burst_statuses.push(resp.status);
            }
            None => return Err("server closed mid-burst".into()),
        }
    }
    let burst_wall = t_phase.elapsed();
    drop(c);
    let overloaded = burst_statuses
        .iter()
        .filter(|&&s| s == Status::Overloaded)
        .count();
    let deadline_exceeded = burst_statuses
        .iter()
        .filter(|&&s| s == Status::DeadlineExceeded)
        .count();
    report.push(phase_row(
        "open_loop_burst",
        BURST,
        &mut burst_lat,
        &burst_statuses,
    ));
    println!(
        "open-loop burst: {BURST} pipelined in {:.1} ms — {overloaded} overloaded, \
         {deadline_exceeded} deadline-exceeded, every request answered",
        millis(burst_wall)
    );
    assert!(
        overloaded > 0,
        "a {BURST}-request burst through a {QUEUE_CAP}-slot queue must shed"
    );

    // Phase 3: drain, then verify the books.
    let stats: NetStats = server.drain();
    drop(server); // releases the engine's refresher handle
    let serve_stats = match Arc::try_unwrap(refresher) {
        Ok(r) => r.shutdown(),
        Err(_) => return Err("refresher still shared after drain".into()),
    };
    println!("drain: {stats}");
    println!(
        "refresher: {} generation(s) published, {} coalesced, swap wall max {:.2} ms",
        serve_stats.refreshes,
        serve_stats.coalesced,
        millis(serve_stats.swap_max())
    );
    assert!(
        stats.balanced(),
        "silent drop: accepted {} != served {} + shed {} + timed-out {}",
        stats.accepted,
        stats.served,
        stats.shed,
        stats.timed_out
    );
    assert_eq!(
        stats.accepted,
        (sent + BURST) as u64,
        "every sent request must have been admitted"
    );
    assert!(
        stats.queue_hwm <= QUEUE_CAP,
        "queue high-water {} exceeded cap {QUEUE_CAP}",
        stats.queue_hwm
    );
    assert!(serve_stats.refreshes >= 1, "no snapshot swap published");

    report.meta("dataset", Json::str(d.name()));
    report.meta("workers", Json::U64(WORKERS as u64));
    report.meta("queue_cap", Json::U64(QUEUE_CAP as u64));
    report.meta("clients", Json::U64(CLIENTS as u64));
    report.meta("generations_observed", Json::U64(generations.len() as u64));
    report.meta("swaps_published", Json::U64(serve_stats.refreshes));
    report.meta(
        "final",
        Json::Obj(vec![
            ("connections", Json::U64(stats.connections)),
            ("accepted", Json::U64(stats.accepted)),
            ("served", Json::U64(stats.served)),
            ("shed", Json::U64(stats.shed)),
            ("timed_out", Json::U64(stats.timed_out)),
            ("queue_hwm", Json::U64(stats.queue_hwm as u64)),
            ("balanced", Json::Bool(stats.balanced())),
        ]),
    );
    let path = report.write()?;
    println!("wrote {}", path.display());
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    run()
}
