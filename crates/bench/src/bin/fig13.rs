//! Figure 13: total execution cost of the QTYPE1 query set
//! (`//l_i/…/l_n`, 5000 queries at paper scale) on the strong DataGuide,
//! APEX⁰, and APEX as minSup varies over {0.002 … 0.05}.
//! Also writes `BENCH_fig13.json` with the same rows.
//! (`cargo run -p apex-bench --release --bin fig13 [--scale paper]`)

use apex_bench::report::{batch_row, BenchReport, Json};
use apex_bench::{print_row, print_row_header, Experiment, Scale, MINSUPS};
use apex_query::apex_qp::ApexProcessor;
use apex_query::guide_qp::GuideProcessor;
use apex_query::run_batch;

fn main() {
    let scale = Scale::from_env();
    let mut report = BenchReport::new("fig13");
    println!("Figure 13: total execution cost of QTYPE1 queries vs minSup\n");
    print_row_header();
    for d in scale.datasets() {
        let ex = Experiment::new(d, scale);
        println!(
            "# {} — {} queries ({:.0}% simple)",
            d.name(),
            ex.queries.qtype1.len(),
            ex.queries.simple_fraction * 100.0
        );

        let sdg = ex.dataguide();
        let stats = run_batch(
            &GuideProcessor::new(&ex.g, &sdg, &ex.table),
            &ex.queries.qtype1,
        );
        print_row(d.name(), "SDG", &stats);
        report.push(batch_row(d.name(), "SDG", &stats));

        let stats = run_batch(
            &ApexProcessor::new(&ex.g, &ex.apex0, &ex.table),
            &ex.queries.qtype1,
        );
        print_row(d.name(), "APEX0", &stats);
        report.push(batch_row(d.name(), "APEX0", &stats));

        for ms in MINSUPS {
            let apex = ex.apex_at(ms);
            let stats = run_batch(
                &ApexProcessor::new(&ex.g, &apex, &ex.table),
                &ex.queries.qtype1,
            );
            let label = format!("APEX({ms})");
            print_row(d.name(), &label, &stats);
            let mut row = batch_row(d.name(), &label, &stats);
            if let Json::Obj(fields) = &mut row {
                fields.push(("min_sup", Json::F64(ms)));
            }
            report.push(row);
        }
        println!();
    }
    match report.write() {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write report: {e}"),
    }
    println!("Expected shape (paper): SDG worst and worsening with irregularity;");
    println!("APEX best around minSup 0.005; APEX0 the upper bound of the APEX family.");
}
