//! Sharded-serving load generator: drives the scatter-gather router
//! over a real `shards × replicas` cluster of socket servers, measures
//! merged-query latency as the shard count grows, then performs a full
//! rolling replica swap under live load and checks that no client ever
//! saw a shed.
//!
//! Phases:
//!
//! 1. **closed-loop scaling** — for each shard count in {1, 2, 4}:
//!    start a cluster (2 replicas per shard) behind a router, drive
//!    `CLIENTS` closed-loop client threads through it, and record
//!    p50/p99 of the merged end-to-end latency. Every run must drain
//!    balanced on both sides of the router.
//! 2. **rolling swap** — a 2×2 cluster serves the same closed-loop
//!    traffic while every replica is drained, replaced and readmitted
//!    one at a time. Asserts the zero-downtime invariant: zero
//!    client-visible sheds, zero client errors, balanced router and
//!    cluster ledgers, and all four retired replicas accounted for.
//!
//! ```bash
//! cargo run --release --bin shardload
//! cargo run --release --bin shardload -- --seed 7
//! ```
//!
//! Writes `BENCH_shardload.json` with one row per shard count plus the
//! rolling-swap verdict.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use apex_bench::report::{BenchReport, Json};
use apex_bench::{base_seed, Experiment, Scale};
use apex_net::{Client, RetryPolicy, Status};
use apex_query::stats::{micros, millis, percentile};
use apex_shard::{rolling_swap, ClusterConfig, Router, RouterConfig, ShardCluster, ShardMap};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CLIENTS: usize = 4;
const PER_CLIENT: usize = 100;
const REPLICAS: usize = 2;
const SHARD_COUNTS: [u16; 3] = [1, 2, 4];

/// One closed-loop client: `PER_CLIENT` merged queries, one
/// outstanding at a time, each retried through the client-side shed
/// policy. Returns (latencies, statuses).
fn closed_loop_client(
    addr: SocketAddr,
    queries: &[String],
    seed: u64,
) -> Result<(Vec<Duration>, Vec<Status>), apex_net::WireError> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let policy = RetryPolicy::default();
    let mut c = Client::connect(addr)?;
    let mut lat = Vec::with_capacity(PER_CLIENT);
    let mut statuses = Vec::with_capacity(PER_CLIENT);
    for _ in 0..PER_CLIENT {
        let q = &queries[rng.gen_range(0..queries.len())];
        let t = Instant::now();
        let resp = c.call_retrying(q, 0, &policy)?;
        lat.push(t.elapsed());
        statuses.push(resp.status);
    }
    Ok((lat, statuses))
}

/// Runs `CLIENTS` closed-loop clients against `addr`; optionally fires
/// `mid` on the driver thread once the clients have ramped.
fn drive(
    addr: SocketAddr,
    queries: &[String],
    seed: u64,
    mut mid: Option<&mut dyn FnMut()>,
) -> Result<(Vec<Duration>, Vec<Status>), apex_net::WireError> {
    let mut lat = Vec::with_capacity(CLIENTS * PER_CLIENT);
    let mut statuses = Vec::with_capacity(CLIENTS * PER_CLIENT);
    std::thread::scope(|s| -> Result<(), apex_net::WireError> {
        let mut handles = Vec::new();
        for i in 0..CLIENTS {
            handles.push(s.spawn(move || closed_loop_client(addr, queries, seed ^ (i as u64 + 1))));
        }
        if let Some(f) = mid.as_mut() {
            std::thread::sleep(Duration::from_millis(10));
            f();
        }
        for h in handles {
            match h.join() {
                Ok(r) => {
                    let (l, s) = r?;
                    lat.extend(l);
                    statuses.extend(s);
                }
                Err(p) => std::panic::resume_unwind(p),
            }
        }
        Ok(())
    })?;
    Ok((lat, statuses))
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_env();
    let seed = base_seed();
    let mut report = BenchReport::new("shardload");

    let datasets = scale.datasets();
    let d = datasets[0];
    let e = Experiment::new(d, scale);
    let g = Arc::new(e.g.clone());
    let queries: Vec<String> = e
        .queries
        .qtype1
        .iter()
        .take(256)
        .map(|q| q.render(&g))
        .collect();
    assert!(!queries.is_empty(), "no queries generated");
    println!(
        "shardload: {} — {} queries, {CLIENTS} clients × {PER_CLIENT} requests, seed {seed}",
        d.name(),
        queries.len()
    );

    // Phase 1: closed-loop latency vs shard count.
    for shards in SHARD_COUNTS {
        let cluster = ShardCluster::start(
            Arc::clone(&g),
            ShardMap::new(shards),
            ClusterConfig {
                replicas: REPLICAS,
                ..ClusterConfig::default()
            },
        )?;
        let mut router = Router::start(
            cluster.map(),
            &cluster.addrs(),
            RouterConfig::default(),
            "127.0.0.1:0",
        )?;
        let t = Instant::now();
        let (mut lat, statuses) = drive(
            router.local_addr(),
            &queries,
            seed ^ u64::from(shards),
            None,
        )?;
        let wall = t.elapsed();
        let stats = router.drain();
        drop(router);
        let cluster_stats = cluster.shutdown();
        let sent = statuses.len();
        let ok = statuses.iter().filter(|&&s| s == Status::Ok).count();
        lat.sort_unstable();
        println!(
            "{shards} shard(s): {sent} merged requests in {:.1} ms — p50 {:.1} us, p99 {:.1} us, {ok} ok",
            millis(wall),
            micros(percentile(&lat, 0.50)),
            micros(percentile(&lat, 0.99)),
        );
        assert_eq!(ok, sent, "closed loop must not shed at this rate");
        assert!(stats.balanced(), "router books must balance: {stats}");
        assert!(
            cluster_stats.balanced(),
            "cluster books must balance: {:?}",
            cluster_stats.net_total()
        );
        assert_eq!(
            stats.hop_delivered(),
            cluster_stats.net_total().accepted,
            "clean-run cross-hop rollup must match the shard servers"
        );
        report.push(Json::Obj(vec![
            ("phase", Json::str("closed_loop")),
            ("shards", Json::U64(u64::from(shards))),
            ("replicas", Json::U64(REPLICAS as u64)),
            ("requests", Json::U64(sent as u64)),
            ("p50_us", Json::F64(micros(percentile(&lat, 0.50)))),
            ("p99_us", Json::F64(micros(percentile(&lat, 0.99)))),
            ("ok", Json::U64(ok as u64)),
            ("wall_ms", Json::F64(millis(wall))),
            (
                "hop_forwarded",
                Json::U64(stats.hops.iter().map(|h| h.forwarded).sum()),
            ),
        ]));
    }

    // Phase 2: rolling swap under load — zero shed or bust.
    let mut cluster = ShardCluster::start(
        Arc::clone(&g),
        ShardMap::new(2),
        ClusterConfig {
            replicas: REPLICAS,
            ..ClusterConfig::default()
        },
    )?;
    let mut router = Router::start(
        cluster.map(),
        &cluster.addrs(),
        RouterConfig::default(),
        "127.0.0.1:0",
    )?;
    let addr = router.local_addr();
    let mut swap: Option<std::io::Result<apex_shard::RolloutReport>> = None;
    let t = Instant::now();
    let (mut lat, statuses) = {
        // Clients touch the router over TCP alone; the swap hook is the
        // only borrow of the cluster while they run.
        let mut hook = || swap = Some(rolling_swap(&mut cluster, &router));
        drive(addr, &queries, seed ^ 0x50AD, Some(&mut hook))?
    };
    let wall = t.elapsed();
    let report_swap = match swap {
        Some(Ok(rep)) => rep,
        Some(Err(e)) => return Err(format!("rolling swap failed: {e}").into()),
        None => return Err("rolling swap never ran".into()),
    };
    let stats = router.drain();
    drop(router);
    let cluster_stats = cluster.shutdown();
    let sent = statuses.len();
    let sheds = statuses.iter().filter(|s| s.is_shed()).count();
    lat.sort_unstable();
    println!(
        "rolling swap: {} replica(s) replaced under {sent} live requests in {:.1} ms — \
         {sheds} client-visible shed(s), {} drain shed(s) absorbed, p99 {:.1} us",
        report_swap.swapped,
        millis(wall),
        report_swap.drained_sheds,
        micros(percentile(&lat, 0.99)),
    );
    assert_eq!(sheds, 0, "a rolling swap must be invisible to clients");
    assert_eq!(report_swap.swapped, 4, "2 shards × 2 replicas");
    assert_eq!(
        cluster_stats.retired.len(),
        4,
        "every retired replica ledgered"
    );
    assert!(stats.balanced(), "router books must balance: {stats}");
    assert!(
        cluster_stats.balanced(),
        "cluster books (swaps included) must balance: {:?}",
        cluster_stats.net_total()
    );
    report.push(Json::Obj(vec![
        ("phase", Json::str("rolling_swap")),
        ("shards", Json::U64(2)),
        ("replicas", Json::U64(REPLICAS as u64)),
        ("requests", Json::U64(sent as u64)),
        ("swapped", Json::U64(report_swap.swapped as u64)),
        ("drained_sheds", Json::U64(report_swap.drained_sheds)),
        ("client_sheds", Json::U64(sheds as u64)),
        ("p50_us", Json::F64(micros(percentile(&lat, 0.50)))),
        ("p99_us", Json::F64(micros(percentile(&lat, 0.99)))),
        ("wall_ms", Json::F64(millis(wall))),
        (
            "balanced",
            Json::Bool(stats.balanced() && cluster_stats.balanced()),
        ),
    ]));

    report.meta("dataset", Json::str(d.name()));
    report.meta("clients", Json::U64(CLIENTS as u64));
    report.meta("per_client", Json::U64(PER_CLIENT as u64));
    report.meta("replicas", Json::U64(REPLICAS as u64));
    let path = report.write()?;
    println!("wrote {}", path.display());
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    run()
}
