//! Figure 15: total evaluation cost of QTYPE3 queries
//! (`//l_1/…/l_n[text() = value]`, 1000 at paper scale) on the Index
//! Fabric, the strong DataGuide, and APEX with minSup = 0.005. The paper
//! plots log scale: the Fabric wins on regular data (answers from the
//! trie alone, no data-table probes) and loses badly on irregular data
//! (whole-trie traversal over exploded key sets).
//! Also writes `BENCH_fig15.json` with the same rows.
//! (`cargo run -p apex-bench --release --bin fig15 [--scale paper]`)

use apex_bench::report::{batch_row, BenchReport};
use apex_bench::{print_row, print_row_header, Experiment, Scale};
use apex_query::apex_qp::ApexProcessor;
use apex_query::fabric_qp::FabricProcessor;
use apex_query::guide_qp::GuideProcessor;
use apex_query::run_batch;

fn main() {
    let scale = Scale::from_env();
    let mut report = BenchReport::new("fig15");
    println!("Figure 15: total evaluation cost of QTYPE3 queries [paper: log scale]\n");
    print_row_header();
    for d in scale.fig14_15_datasets() {
        let ex = Experiment::new(d, scale);

        let fab = ex.fabric();
        let stats = run_batch(&FabricProcessor::new(&ex.g, &fab), &ex.queries.qtype3);
        let trunc = if fab.truncated {
            " (truncated keys)"
        } else {
            ""
        };
        let label = format!("Fabric{trunc}");
        print_row(d.name(), &label, &stats);
        report.push(batch_row(d.name(), &label, &stats));

        let sdg = ex.dataguide();
        let stats = run_batch(
            &GuideProcessor::new(&ex.g, &sdg, &ex.table),
            &ex.queries.qtype3,
        );
        print_row(d.name(), "SDG", &stats);
        report.push(batch_row(d.name(), "SDG", &stats));

        let apex = ex.apex_at(0.005);
        let stats = run_batch(
            &ApexProcessor::new(&ex.g, &apex, &ex.table),
            &ex.queries.qtype3,
        );
        print_row(d.name(), "APEX(0.005)", &stats);
        report.push(batch_row(d.name(), "APEX(0.005)", &stats));
        println!();
    }
    match report.write() {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write report: {e}"),
    }
    println!("Expected shape (paper): Fabric best on Play data, worst on Flix/Ged;");
    println!("APEX best on irregular data.");
}
