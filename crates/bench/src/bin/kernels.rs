//! Semijoin kernel microbenchmark: linear merge vs galloping search vs
//! block-skip probing across end/extent size ratios 1:1 … 1:10⁴, on the
//! edge relation of each small-scale dataset family (Play / Flix / Ged).
//!
//! For every (dataset, ratio) the three fixed kernels run over the same
//! inputs and report their logical `work` (comparisons) and
//! `pairs_read` (pairs materialized from blocks); the adaptive policy
//! then picks a kernel from the size ratio alone. The run *asserts*
//! that the adaptive pick's work never exceeds 1.5× the best fixed
//! kernel (plus a constant slack for degenerate tiny inputs) — the
//! guarantee the query processors rely on when they delegate the access
//! path choice.
//!
//! Also writes `BENCH_kernels.json` with one row per (dataset, ratio).
//!
//! (`cargo run -p apex-bench --release --bin kernels`)

use apex_bench::report::{BenchReport, Json};
use apex_storage::kernels::{semijoin_into, Kernel, KernelPolicy, SemijoinScratch};
use apex_storage::EdgeSet;
use datagen::Dataset;
use xmlgraph::NodeId;

const RATIOS: [usize; 5] = [1, 10, 100, 1_000, 10_000];
const SLACK: usize = 32;

/// The dataset's full edge relation as one extent (every `G_APEX⁰`
/// extent is a subset of it; this is the largest join target the
/// dataset can produce).
fn edge_relation(d: Dataset) -> EdgeSet {
    let g = d.generate();
    let mut raw: Vec<(u32, u32)> = g.edges().map(|(from, _, to)| (from.0, to.0)).collect();
    raw.sort_unstable();
    EdgeSet::from_raw(&raw)
}

/// Every `ratio`-th distinct parent of the extent — sorted, distinct
/// ends that actually hit, shrinking the driving side by `ratio`.
fn sample_ends(extent: &EdgeSet, ratio: usize) -> Vec<NodeId> {
    let mut parents: Vec<NodeId> = extent.iter().map(|p| p.parent).collect();
    parents.dedup();
    parents.into_iter().step_by(ratio).collect()
}

fn main() {
    let mut report = BenchReport::new("kernels");
    println!("Kernel microbench: semijoin work by end:extent ratio\n");
    println!(
        "{:<14} {:>7} {:>9} {:>7} {:>12} {:>12} {:>12} | {:<10} {:>12} {:>11}",
        "dataset",
        "ratio",
        "extent",
        "ends",
        "merge",
        "gallop",
        "block-skip",
        "adaptive",
        "work",
        "pairs-read"
    );
    let mut scratch = SemijoinScratch::new();
    for d in [Dataset::FourTragedy, Dataset::Flix01, Dataset::Ged01] {
        let extent = edge_relation(d);
        for ratio in RATIOS {
            let ends = sample_ends(&extent, ratio);
            let mut works = Vec::new();
            let mut reads = Vec::new();
            for kernel in [Kernel::Merge, Kernel::Gallop, Kernel::BlockSkip] {
                let r = semijoin_into(kernel, &extent, &ends, &mut scratch);
                works.push(r.work);
                reads.push(r.pairs_read);
            }
            let picked = KernelPolicy::Adaptive.choose(ends.len(), &extent);
            let adaptive = semijoin_into(picked, &extent, &ends, &mut scratch);
            let best = works.iter().copied().min().unwrap_or(0);
            println!(
                "{:<14} {:>7} {:>9} {:>7} {:>12} {:>12} {:>12} | {:<10} {:>12} {:>11}",
                d.name(),
                format!("1:{ratio}"),
                extent.len(),
                ends.len(),
                works[0],
                works[1],
                works[2],
                picked.name(),
                adaptive.work,
                adaptive.pairs_read,
            );
            assert!(
                adaptive.work <= best + best / 2 + SLACK,
                "{} ratio 1:{ratio}: adaptive ({}, work {}) worse than 1.5x best fixed kernel (work {best})",
                d.name(),
                picked.name(),
                adaptive.work,
            );
            report.push(Json::Obj(vec![
                ("dataset", Json::str(d.name())),
                ("ratio", Json::U64(ratio as u64)),
                ("extent_pairs", Json::U64(extent.len() as u64)),
                (
                    "extent_blocks",
                    Json::U64(extent.blocks().num_blocks() as u64),
                ),
                (
                    "extent_encoded_bytes",
                    Json::U64(extent.stored_bytes() as u64),
                ),
                ("ends", Json::U64(ends.len() as u64)),
                ("merge_work", Json::U64(works[0] as u64)),
                ("gallop_work", Json::U64(works[1] as u64)),
                ("block_skip_work", Json::U64(works[2] as u64)),
                ("merge_pairs_read", Json::U64(reads[0] as u64)),
                ("gallop_pairs_read", Json::U64(reads[1] as u64)),
                ("block_skip_pairs_read", Json::U64(reads[2] as u64)),
                ("adaptive_kernel", Json::str(picked.name())),
                ("adaptive_work", Json::U64(adaptive.work as u64)),
                ("adaptive_pairs_read", Json::U64(adaptive.pairs_read as u64)),
            ]));
        }
        println!();
    }
    match report.write() {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write report: {e}"),
    }
    println!("adaptive picker stayed within 1.5x of the best fixed kernel on every row");
}
