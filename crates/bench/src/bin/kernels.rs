//! Semijoin kernel microbenchmark: linear merge vs galloping search vs
//! block-skip probing across end/extent size ratios 1:1 … 1:10⁴, on the
//! edge relation of each small-scale dataset family (Play / Flix / Ged).
//!
//! For every (dataset, ratio) the three fixed kernels run over the same
//! inputs and report their logical `work` (comparisons), `pairs_read`
//! (pairs resident in faulted blocks) and `decoded` (pairs actually
//! materialized through the bounded decode window); the adaptive policy
//! then picks a kernel from the size ratio alone. The run *asserts*
//! that the adaptive pick's work never exceeds 1.5× the best fixed
//! kernel (plus a constant slack for degenerate tiny inputs) — the
//! guarantee the query processors rely on when they delegate the access
//! path choice.
//!
//! The same sweep then races the two extent representations on wall
//! clock with the adaptive kernel: the *succinct* path queries the
//! compressed blocks directly (rank/select headers, sampled restarts,
//! batched branch-free varint decode), while the *full-decode* baseline
//! pays a whole-extent decode into a reused `Vec` before running the
//! pre-succinct slice kernel. Asserted per row: the succinct path is
//! strictly faster at every ratio ≥ 1:10, within 5% at 1:1, and its
//! resident bytes stay ≤ 50% of the decoded-`Vec` baseline
//! (8 bytes/pair).
//!
//! Also writes `BENCH_kernels.json` with one row per (dataset, ratio),
//! including `resident_bytes`, `decoded_pairs` and the timed columns.
//!
//! (`cargo run -p apex-bench --release --bin kernels`)

use apex_bench::report::{BenchReport, Json};
use apex_storage::kernels::{decoded, semijoin_into, Kernel, KernelPolicy, SemijoinScratch};
use apex_storage::{EdgePair, EdgeSet};
use datagen::Dataset;
use std::time::Instant;
use xmlgraph::NodeId;

const RATIOS: [usize; 5] = [1, 10, 100, 1_000, 10_000];
const SLACK: usize = 32;
/// Timing samples per measurement; the minimum is reported.
const SAMPLES: usize = 9;
/// Target nanoseconds per sample — inner repetitions scale up until a
/// sample takes at least this long, so tiny inputs still time stably.
const SAMPLE_TARGET_NS: u64 = 400_000;

/// The dataset's full edge relation as one extent (every `G_APEX⁰`
/// extent is a subset of it; this is the largest join target the
/// dataset can produce).
fn edge_relation(d: Dataset) -> EdgeSet {
    let g = d.generate();
    let mut raw: Vec<(u32, u32)> = g.edges().map(|(from, _, to)| (from.0, to.0)).collect();
    raw.sort_unstable();
    EdgeSet::from_raw(&raw)
}

/// Every `ratio`-th distinct parent of the extent — sorted, distinct
/// ends that actually hit, shrinking the driving side by `ratio`.
fn sample_ends(extent: &EdgeSet, ratio: usize) -> Vec<NodeId> {
    let mut parents: Vec<NodeId> = extent.iter().map(|p| p.parent).collect();
    parents.dedup();
    parents.into_iter().step_by(ratio).collect()
}

/// Min-of-`SAMPLES` wall-clock nanoseconds per call of `f`, with inner
/// repetitions auto-scaled so each sample runs at least
/// `SAMPLE_TARGET_NS`.
fn time_ns(mut f: impl FnMut()) -> u64 {
    let t = Instant::now();
    f();
    let once = (t.elapsed().as_nanos() as u64).max(1);
    let reps = (SAMPLE_TARGET_NS / once).clamp(1, 50_000);
    let mut best = u64::MAX;
    for _ in 0..SAMPLES {
        let t = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(t.elapsed().as_nanos() as u64 / reps);
    }
    best
}

fn main() {
    let mut report = BenchReport::new("kernels");
    println!("Kernel microbench: semijoin work by end:extent ratio\n");
    println!(
        "{:<14} {:>7} {:>9} {:>7} {:>12} {:>12} {:>12} | {:<10} {:>12} {:>10} | {:>10} {:>10} {:>8}",
        "dataset",
        "ratio",
        "extent",
        "ends",
        "merge",
        "gallop",
        "block-skip",
        "adaptive",
        "work",
        "decoded",
        "succ-ns",
        "full-ns",
        "resident"
    );
    let mut scratch = SemijoinScratch::new();
    for d in [Dataset::FourTragedy, Dataset::Flix01, Dataset::Ged01] {
        let extent = edge_relation(d);
        let succ = extent.succinct();
        let bx = succ.image();
        let resident = succ.resident_bytes();
        let raw_bytes = extent.len() * std::mem::size_of::<EdgePair>();
        assert!(
            resident * 2 <= raw_bytes,
            "{}: succinct resident {resident} B exceeds 50% of the {raw_bytes} B decoded-Vec baseline",
            d.name(),
        );
        // The full-decode baseline's reusable buffer: the decode cost is
        // paid inside every timed iteration, but the allocation is not.
        let mut decode_buf: Vec<EdgePair> = Vec::with_capacity(extent.len());
        for ratio in RATIOS {
            let ends = sample_ends(&extent, ratio);
            let mut works = Vec::new();
            let mut reads = Vec::new();
            for kernel in [Kernel::Merge, Kernel::Gallop, Kernel::BlockSkip] {
                let r = semijoin_into(kernel, &extent, (&ends[..]).into(), &mut scratch);
                works.push(r.work);
                reads.push(r.pairs_read);
            }
            let picked = KernelPolicy::Adaptive.choose(ends.len(), &extent);
            let adaptive = semijoin_into(picked, &extent, (&ends[..]).into(), &mut scratch);
            let best = works.iter().copied().min().unwrap_or(0);
            assert!(
                adaptive.work <= best + best / 2 + SLACK,
                "{} ratio 1:{ratio}: adaptive ({}, work {}) worse than 1.5x best fixed kernel (work {best})",
                d.name(),
                picked.name(),
                adaptive.work,
            );
            // Race the representations under the adaptive kernel.
            let succ_ns = time_ns(|| {
                let r = semijoin_into(picked, &extent, (&ends[..]).into(), &mut scratch);
                std::hint::black_box(r.work);
            });
            let full_ns = time_ns(|| {
                decode_buf.clear();
                for k in 0..bx.num_blocks() {
                    bx.decode_block_into(k, &mut decode_buf);
                }
                let r = decoded::semijoin_into(picked, &decode_buf, bx, &ends, &mut scratch);
                std::hint::black_box(r.work);
            });
            if ratio >= 10 {
                assert!(
                    succ_ns < full_ns,
                    "{} ratio 1:{ratio}: succinct path ({succ_ns} ns) not faster than full decode ({full_ns} ns)",
                    d.name(),
                );
            } else {
                assert!(
                    succ_ns <= full_ns + full_ns / 20,
                    "{} ratio 1:{ratio}: succinct path ({succ_ns} ns) more than 5% behind full decode ({full_ns} ns)",
                    d.name(),
                );
            }
            println!(
                "{:<14} {:>7} {:>9} {:>7} {:>12} {:>12} {:>12} | {:<10} {:>12} {:>10} | {:>10} {:>10} {:>8}",
                d.name(),
                format!("1:{ratio}"),
                extent.len(),
                ends.len(),
                works[0],
                works[1],
                works[2],
                picked.name(),
                adaptive.work,
                adaptive.decoded,
                succ_ns,
                full_ns,
                resident,
            );
            report.push(Json::Obj(vec![
                ("dataset", Json::str(d.name())),
                ("ratio", Json::U64(ratio as u64)),
                ("extent_pairs", Json::U64(extent.len() as u64)),
                ("extent_blocks", Json::U64(bx.num_blocks() as u64)),
                (
                    "extent_encoded_bytes",
                    Json::U64(extent.stored_bytes() as u64),
                ),
                ("resident_bytes", Json::U64(resident as u64)),
                ("decoded_vec_bytes", Json::U64(raw_bytes as u64)),
                ("ends", Json::U64(ends.len() as u64)),
                ("merge_work", Json::U64(works[0] as u64)),
                ("gallop_work", Json::U64(works[1] as u64)),
                ("block_skip_work", Json::U64(works[2] as u64)),
                ("merge_pairs_read", Json::U64(reads[0] as u64)),
                ("gallop_pairs_read", Json::U64(reads[1] as u64)),
                ("block_skip_pairs_read", Json::U64(reads[2] as u64)),
                ("adaptive_kernel", Json::str(picked.name())),
                ("adaptive_work", Json::U64(adaptive.work as u64)),
                ("adaptive_pairs_read", Json::U64(adaptive.pairs_read as u64)),
                ("decoded_pairs", Json::U64(adaptive.decoded as u64)),
                ("succinct_ns", Json::U64(succ_ns)),
                ("full_decode_ns", Json::U64(full_ns)),
            ]));
        }
        println!();
    }
    match report.write() {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write report: {e}"),
    }
    println!("adaptive picker stayed within 1.5x of the best fixed kernel on every row");
    println!("succinct path beat the full-decode baseline at every ratio >= 1:10 (parity at 1:1)");
}
