//! Table 1: characteristics of the experiment data sets
//! (`cargo run -p apex-bench --release --bin table1 [--scale paper]`).
//! Also writes `BENCH_table1.json` with the same rows.

use apex_bench::report::{BenchReport, Json};
use apex_bench::Scale;
use xmlgraph::paths::EnumLimits;
use xmlgraph::stats::GraphStats;

fn main() {
    let scale = Scale::from_env();
    let mut report = BenchReport::new("table1");
    println!("Table 1: characteristics of the data sets (ours vs paper)\n");
    println!(
        "{:<18} {:>9} {:>9} {:>11} | {:>9} {:>9} {:>11}",
        "Data Set", "nodes", "edges", "labels", "paper-n", "paper-e", "paper-l"
    );
    let limits = EnumLimits {
        max_len: 8,
        max_paths: 50_000,
    };
    for d in scale.datasets() {
        let g = d.generate();
        let s = GraphStats::compute(&g, limits);
        println!(
            "{:<18} {:>9} {:>9} {:>7}({:>2}) | {:>9} {:>9} {:>7}({:>2})",
            d.name(),
            s.nodes,
            s.edges,
            s.labels,
            s.idref_labels,
            d.paper_nodes(),
            d.paper_edges(),
            d.paper_labels(),
            d.paper_idref_labels(),
        );
        report.push(Json::Obj(vec![
            ("dataset", Json::str(d.name())),
            ("nodes", Json::U64(s.nodes as u64)),
            ("edges", Json::U64(s.edges as u64)),
            ("labels", Json::U64(s.labels as u64)),
            ("idref_labels", Json::U64(s.idref_labels as u64)),
            (
                "distinct_rooted_paths",
                Json::U64(s.distinct_rooted_paths as u64),
            ),
            ("max_depth", Json::U64(s.max_depth as u64)),
            ("avg_fanout", Json::F64(s.avg_fanout)),
            ("ref_edges", Json::U64(s.ref_edges as u64)),
        ]));
    }
    println!("\n(irregularity diagnostics)");
    println!(
        "{:<18} {:>14} {:>9} {:>9} {:>10}",
        "Data Set", "rooted-paths", "depth", "fanout", "ref-edges"
    );
    for d in scale.datasets() {
        let g = d.generate();
        let s = GraphStats::compute(&g, limits);
        println!(
            "{:<18} {:>14} {:>9} {:>9.2} {:>10}",
            d.name(),
            s.distinct_rooted_paths,
            s.max_depth,
            s.avg_fanout,
            s.ref_edges
        );
    }
    match report.write() {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write report: {e}"),
    }
}
