//! Table 1: characteristics of the experiment data sets
//! (`cargo run -p apex-bench --release --bin table1 [--scale paper]`).

use apex_bench::Scale;
use xmlgraph::paths::EnumLimits;
use xmlgraph::stats::GraphStats;

fn main() {
    let scale = Scale::from_env();
    println!("Table 1: characteristics of the data sets (ours vs paper)\n");
    println!(
        "{:<18} {:>9} {:>9} {:>11} | {:>9} {:>9} {:>11}",
        "Data Set", "nodes", "edges", "labels", "paper-n", "paper-e", "paper-l"
    );
    for d in scale.datasets() {
        let g = d.generate();
        let s = GraphStats::compute(
            &g,
            EnumLimits {
                max_len: 8,
                max_paths: 50_000,
            },
        );
        println!(
            "{:<18} {:>9} {:>9} {:>7}({:>2}) | {:>9} {:>9} {:>7}({:>2})",
            d.name(),
            s.nodes,
            s.edges,
            s.labels,
            s.idref_labels,
            d.paper_nodes(),
            d.paper_edges(),
            d.paper_labels(),
            d.paper_idref_labels(),
        );
    }
    println!("\n(irregularity diagnostics)");
    println!(
        "{:<18} {:>14} {:>9} {:>9} {:>10}",
        "Data Set", "rooted-paths", "depth", "fanout", "ref-edges"
    );
    for d in scale.datasets() {
        let g = d.generate();
        let s = GraphStats::compute(
            &g,
            EnumLimits {
                max_len: 8,
                max_paths: 50_000,
            },
        );
        println!(
            "{:<18} {:>14} {:>9} {:>9.2} {:>10}",
            d.name(),
            s.distinct_rooted_paths,
            s.max_depth,
            s.avg_fanout,
            s.ref_edges
        );
    }
}
