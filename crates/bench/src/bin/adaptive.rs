//! Adaptive-workload serving demo: queries keep answering while the
//! index adapts underneath them.
//!
//! For each dataset the QTYPE1 set is split into three phases and
//! replayed through `run_adaptive` against an `IndexCell` whose
//! background refresher publishes new generations as the monitor's
//! `EveryN` policy fires. `wait_idle()` between phases makes the
//! generation count deterministic (each phase records a non-empty
//! window and requests at least one refresh, so the run serves queries
//! on at least three generations: 0, 1, 2, …). The table reports the
//! per-generation query counts, run latency percentiles, and the wall
//! time of each snapshot swap.
//!
//! ```bash
//! cargo run --release --bin adaptive            # small scale
//! cargo run --release --bin adaptive -- --scale paper
//! ```
//!
//! Also writes `BENCH_adaptive.json` with the per-generation rows.

use std::sync::{Arc, Mutex};

use apex::{Apex, IndexCell, RefreshPolicy, Refresher, WorkloadMonitor};
use apex_bench::report::{BenchReport, Json};
use apex_bench::{print_adaptive_header, print_adaptive_row, Experiment, Scale};
use apex_query::batch::run_adaptive;
use apex_query::stats::millis;
use apex_query::AdaptiveStats;
use apex_storage::bufmgr::BufferHandle;

fn main() {
    let scale = Scale::from_env();
    let mut report = BenchReport::new("adaptive");
    println!("== adaptive serving: queries across index generations ==");
    print_adaptive_header();
    for d in scale.datasets() {
        let e = Experiment::new(d, scale);
        let g = Arc::new(e.g.clone());
        let cell = Arc::new(IndexCell::new(Apex::build_initial(&g)));
        let phase_len = (e.queries.qtype1.len() / 3).max(1);
        let monitor = Arc::new(Mutex::new(WorkloadMonitor::new(
            phase_len.max(4),
            0.01,
            RefreshPolicy::EveryN((phase_len / 2).max(2)),
        )));
        let refresher =
            match Refresher::spawn(Arc::clone(&g), Arc::clone(&cell), Arc::clone(&monitor)) {
                Ok(r) => r,
                Err(err) => {
                    eprintln!("{}: cannot spawn refresher: {err}", d.name());
                    continue;
                }
            };
        let buf = BufferHandle::unbounded();
        let mut phases: Vec<AdaptiveStats> = Vec::new();
        for chunk in e.queries.qtype1.chunks(phase_len) {
            phases.push(run_adaptive(
                &g, &e.table, &cell, &monitor, &refresher, chunk, &buf,
            ));
            // Let the pending refresh publish before the next phase, so
            // each phase serves (at least partly) on a new generation.
            refresher.wait_idle();
        }
        let serve_stats = refresher.shutdown();
        for stats in &phases {
            for row in &stats.per_generation {
                let swap_ms = serve_stats
                    .records
                    .iter()
                    .find(|r| r.generation == row.generation)
                    .map(|r| millis(r.wall));
                print_adaptive_row(d.name(), row, stats, swap_ms);
                report.push(Json::Obj(vec![
                    ("dataset", Json::str(d.name())),
                    ("generation", Json::U64(row.generation)),
                    ("queries", Json::U64(row.queries as u64)),
                    ("result_nodes", Json::U64(row.result_nodes as u64)),
                    ("phase_pages_read", Json::U64(stats.batch.cost.pages_read)),
                    ("phase_join_work", Json::U64(stats.batch.cost.join_work)),
                    ("wall_ms", Json::F64(millis(row.wall))),
                ]));
            }
        }
        let generations: std::collections::BTreeSet<u64> = phases
            .iter()
            .flat_map(|s| s.per_generation.iter().map(|r| r.generation))
            .collect();
        println!(
            "{:<18} served on {} generation(s), {} swap(s) published ({} coalesced, {} empty), swap wall total {:.2} ms / max {:.2} ms",
            d.name(),
            generations.len(),
            serve_stats.refreshes,
            serve_stats.coalesced,
            serve_stats.empty_windows,
            millis(serve_stats.swap_total()),
            millis(serve_stats.swap_max()),
        );
        assert!(
            generations.len() >= 3,
            "{}: expected queries served across >= 3 generations, saw {:?}",
            d.name(),
            generations
        );
    }
    match report.write() {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write report: {e}"),
    }
}
