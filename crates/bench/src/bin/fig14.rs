//! Figure 14: total evaluation cost of QTYPE2 queries (`//l_i//l_j`,
//! 500 at paper scale) on the strong DataGuide, APEX⁰, and APEX with
//! minSup = 0.005. The paper plots this in log scale — the gap spans
//! orders of magnitude on irregular data.
//! Also writes `BENCH_fig14.json` with the same rows.
//! (`cargo run -p apex-bench --release --bin fig14 [--scale paper]`)

use apex_bench::report::{batch_row, BenchReport};
use apex_bench::{print_row, print_row_header, Experiment, Scale};
use apex_query::apex_qp::ApexProcessor;
use apex_query::guide_qp::GuideProcessor;
use apex_query::run_batch;

fn main() {
    let scale = Scale::from_env();
    let mut report = BenchReport::new("fig14");
    println!("Figure 14: total evaluation cost of QTYPE2 queries [paper: log scale]\n");
    print_row_header();
    for d in scale.fig14_15_datasets() {
        let ex = Experiment::new(d, scale);
        let sdg = ex.dataguide();
        let stats = run_batch(
            &GuideProcessor::new(&ex.g, &sdg, &ex.table),
            &ex.queries.qtype2,
        );
        print_row(d.name(), "SDG", &stats);
        report.push(batch_row(d.name(), "SDG", &stats));

        let stats = run_batch(
            &ApexProcessor::new(&ex.g, &ex.apex0, &ex.table),
            &ex.queries.qtype2,
        );
        print_row(d.name(), "APEX0", &stats);
        report.push(batch_row(d.name(), "APEX0", &stats));

        let apex = ex.apex_at(0.005);
        let stats = run_batch(
            &ApexProcessor::new(&ex.g, &apex, &ex.table),
            &ex.queries.qtype2,
        );
        print_row(d.name(), "APEX(0.005)", &stats);
        report.push(batch_row(d.name(), "APEX(0.005)", &stats));
        println!();
    }
    match report.write() {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write report: {e}"),
    }
    println!("Expected shape (paper): APEX best everywhere (traversal starts at the");
    println!("l_i classes); SDG pays exhaustive navigation from the root; APEX0's");
    println!("compact graph prunes fast but pays more join work.");
}
