//! Recovery microbenchmark: how fast does the durable write path come
//! back, and what does staying durable cost while serving?
//!
//! For each dataset at the current scale, a deterministic driver logs a
//! drifting query workload (with periodic refines, like the serving
//! loop) into a fresh WAL directory and then measures:
//!
//! * **replay** — recovery time with checkpoints disabled, at several
//!   workload lengths: the WAL-tail replay rate in MB/s and records/s,
//!   and how recovery wall time grows with log length.
//! * **checkpointed** — the same workload with generation-tagged
//!   snapshots at a fixed swap cadence: recovery now loads the newest
//!   verified snapshot and replays only the tail, and every checkpoint's
//!   wall time under live traffic is recorded (mean/max).
//!
//! Every recovery is sanity-checked extent-equivalent against the live
//! index the driver ended with before its row is reported.
//!
//! ```bash
//! cargo run --release --bin recovery
//! cargo run --release --bin recovery -- --scale paper --seed 7
//! ```
//!
//! Writes `BENCH_recovery.json`.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use apex::recover::{encode_snapshot, recover, RecoverOptions};
use apex::wal::{CrashPlan, DurabilityConfig, Wal, WalError};
use apex::{extent_equivalent, Apex, RefreshPolicy, WorkloadMonitor};
use apex_bench::report::{BenchReport, Json};
use apex_bench::{base_seed, Scale};
use apex_query::stats::millis;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xmlgraph::{LabelPath, NodeId, XmlGraph};

const CAPACITY: usize = 256;
const MIN_SUP: f64 = 0.05;
const REFRESH_EVERY: usize = 100;
const CHECKPOINT_SWAPS: u64 = 2;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("apex-bench-rec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Random existing label paths (random walks), the crash suite's idiom.
fn walk_pool(g: &XmlGraph, rng: &mut SmallRng, count: usize) -> Vec<LabelPath> {
    let mut out = Vec::with_capacity(count);
    let mut attempts = 0usize;
    while out.len() < count && attempts < count * 20 {
        attempts += 1;
        let mut cur = NodeId(rng.gen_range(0..g.node_count() as u32));
        let mut labels = Vec::new();
        for _ in 0..rng.gen_range(1..=3usize) {
            let edges = g.out_edges(cur);
            if edges.is_empty() {
                break;
            }
            let e = &edges[rng.gen_range(0..edges.len())];
            labels.push(e.label);
            cur = e.to;
        }
        if !labels.is_empty() {
            out.push(LabelPath::new(labels));
        }
    }
    assert!(!out.is_empty(), "no walkable paths in graph");
    out
}

struct DriveOutcome {
    index: Apex,
    generation: u64,
    wal_bytes: u64,
    appended: u64,
    snapshots: u64,
    snapshot_bytes: u64,
    checkpoint_walls: Vec<Duration>,
}

fn one_checkpoint(
    wal: &Wal,
    generation: u64,
    index: &Apex,
    monitor: &WorkloadMonitor,
) -> Result<u64, WalError> {
    let token = wal.begin_checkpoint()?;
    let image = encode_snapshot(token.seq(), generation, index, &monitor.durable_state())
        .map_err(WalError::Io)?;
    wal.commit_checkpoint(token, &image)
}

/// Logs `queries` drifting queries with a refine every `REFRESH_EVERY`,
/// checkpointing every `CHECKPOINT_SWAPS` swaps when `checkpoints` is
/// on. Single-threaded, so the append path (not lock contention) is
/// what's being charged.
fn drive(
    g: &XmlGraph,
    dir: &Path,
    seed: u64,
    queries: usize,
    checkpoints: bool,
) -> Result<DriveOutcome, Box<dyn std::error::Error>> {
    let wal = Arc::new(Wal::open(
        dir,
        DurabilityConfig {
            group_commit: 32,
            checkpoint_every: 0, // cadence is driven here, not by the wal
            retain: 0,
        },
        CrashPlan::none(),
    )?);
    let mut monitor = WorkloadMonitor::new(CAPACITY, MIN_SUP, RefreshPolicy::Manual);
    monitor.attach_wal(Arc::clone(&wal));
    let mut index = Apex::build_initial(g);
    let mut generation = 0u64;
    let mut swaps_since = 0u64;
    let mut rng = SmallRng::seed_from_u64(seed);
    let pool = walk_pool(g, &mut rng, 24);
    let mut checkpoint_walls = Vec::new();

    for i in 0..queries {
        let hot = (i * pool.len()) / queries.max(1);
        let pick = if rng.gen_range(0..100) < 70 {
            hot % pool.len()
        } else {
            rng.gen_range(0..pool.len())
        };
        monitor.record(pool[pick].clone());
        if (i + 1) % REFRESH_EVERY == 0 {
            let (wl, min_sup) = monitor.drain_for_refresh();
            if !wl.is_empty() {
                index.refine(g, &wl, min_sup);
                generation += 1;
                swaps_since += 1;
            }
            if checkpoints && swaps_since >= CHECKPOINT_SWAPS {
                swaps_since = 0;
                let t = Instant::now();
                one_checkpoint(&wal, generation, &index, &monitor)?;
                checkpoint_walls.push(t.elapsed());
            }
        }
    }
    wal.sync()?;
    let stats = wal.stats();
    let snaps = apex::wal::list_snapshots(dir)?;
    let snapshot_bytes = snaps
        .iter()
        .map(|(_, p)| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0))
        .sum();
    Ok(DriveOutcome {
        index,
        generation,
        wal_bytes: stats.bytes_appended,
        appended: stats.appended,
        snapshots: snaps.len() as u64,
        snapshot_bytes,
        checkpoint_walls,
    })
}

fn recover_opts() -> RecoverOptions {
    RecoverOptions {
        capacity: CAPACITY,
        min_sup: MIN_SUP,
        ..RecoverOptions::default()
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_env();
    let seed = base_seed();
    let mut report = BenchReport::new("recovery");
    report.meta(
        "scale",
        Json::str(if scale == Scale::Paper {
            "paper"
        } else {
            "small"
        }),
    );
    report.meta("refresh_every", Json::U64(REFRESH_EVERY as u64));
    report.meta("checkpoint_swaps", Json::U64(CHECKPOINT_SWAPS));

    let lengths: &[usize] = if scale == Scale::Paper {
        &[2_000, 8_000, 32_000]
    } else {
        &[500, 2_000, 8_000]
    };

    println!(
        "{:<18} {:<13} {:>8} {:>10} {:>9} {:>11} {:>11} {:>9} {:>9}",
        "dataset",
        "mode",
        "queries",
        "wal-KiB",
        "snaps",
        "recover-ms",
        "replay-MB/s",
        "krec/s",
        "ckpt-ms"
    );

    for d in scale.datasets() {
        let g = d.generate();
        for &n in lengths {
            for checkpoints in [false, true] {
                let mode = if checkpoints {
                    "checkpointed"
                } else {
                    "replay"
                };
                let dir = tmpdir(&format!("{}-{n}-{mode}", d.name()));
                let out = drive(&g, &dir, seed ^ n as u64, n, checkpoints)?;

                let t = Instant::now();
                let rec = recover(&dir, &g, &recover_opts())?;
                let wall = t.elapsed();

                // Sanity: recovery agrees with the live state it mirrors.
                extent_equivalent(&g, &rec.index, &out.index)
                    .map_err(|why| format!("{} {mode} n={n}: diverged: {why}", d.name()))?;
                assert_eq!(rec.generation, out.generation);
                if checkpoints {
                    assert!(
                        rec.report.snapshot_seq.is_some(),
                        "checkpointed run must recover from a snapshot"
                    );
                    assert!(rec.report.applied < out.appended);
                }

                let secs = wall.as_secs_f64().max(1e-9);
                let replay_mbps = (out.wal_bytes as f64 / (1024.0 * 1024.0)) / secs;
                let krec_s = (rec.report.replayed as f64 / 1_000.0) / secs;
                let ckpt_mean = if out.checkpoint_walls.is_empty() {
                    0.0
                } else {
                    millis(out.checkpoint_walls.iter().sum::<Duration>())
                        / out.checkpoint_walls.len() as f64
                };
                let ckpt_max = out
                    .checkpoint_walls
                    .iter()
                    .max()
                    .map_or(0.0, |d| millis(*d));

                println!(
                    "{:<18} {:<13} {:>8} {:>10.1} {:>9} {:>11.2} {:>11.1} {:>9.1} {:>9}",
                    d.name(),
                    mode,
                    n,
                    out.wal_bytes as f64 / 1024.0,
                    out.snapshots,
                    millis(wall),
                    replay_mbps,
                    krec_s,
                    if checkpoints {
                        format!("{ckpt_mean:.2}")
                    } else {
                        "-".to_string()
                    }
                );

                report.push(Json::Obj(vec![
                    ("dataset", Json::str(d.name())),
                    ("mode", Json::str(mode)),
                    ("queries", Json::U64(n as u64)),
                    ("appended", Json::U64(out.appended)),
                    ("wal_bytes", Json::U64(out.wal_bytes)),
                    ("snapshots", Json::U64(out.snapshots)),
                    ("snapshot_bytes", Json::U64(out.snapshot_bytes)),
                    ("generation", Json::U64(out.generation)),
                    ("replayed", Json::U64(rec.report.replayed)),
                    ("applied", Json::U64(rec.report.applied)),
                    ("recover_ms", Json::F64(millis(wall))),
                    ("replay_mb_per_s", Json::F64(replay_mbps)),
                    ("replay_krec_per_s", Json::F64(krec_s)),
                    ("checkpoints", Json::U64(out.checkpoint_walls.len() as u64)),
                    ("checkpoint_ms_mean", Json::F64(ckpt_mean)),
                    ("checkpoint_ms_max", Json::F64(ckpt_max)),
                ]));
                std::fs::remove_dir_all(&dir)?;
            }
        }
    }

    let path = report.write()?;
    println!("wrote {}", path.display());
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    run()
}
