//! Table 2: statistics of index structures — nodes/edges of the strong
//! DataGuide, APEX⁰, and APEX at minSup ∈ {0.002, 0.005, 0.01, 0.03,
//! 0.05}, plus (our extension) the 1-index and the stored extent
//! footprint of each APEX in the compressed block encoding.
//! Also writes `BENCH_table2.json` with the same rows.
//! (`cargo run -p apex-bench --release --bin table2 [--scale paper]`)

use apex_bench::report::{index_row, BenchReport, Json};
use apex_bench::{Experiment, Scale, MINSUPS};

fn main() {
    let scale = Scale::from_env();
    let mut report = BenchReport::new("table2");
    println!("Table 2: statistics of index structures\n");
    println!(
        "{:<18} {:<8} {:>9} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9}",
        "dataset", "", "SDG", "1-index", "APEX0", "0.002", "0.005", "0.01", "0.03", "0.05"
    );
    let mut encoded_total = 0u64;
    let mut raw_total = 0u64;
    let mut resident_total = 0u64;
    for d in scale.datasets() {
        let ex = Experiment::new(d, scale);
        let sdg = ex.dataguide();
        let oneidx = ex.oneindex();
        let apexes: Vec<_> = MINSUPS.iter().map(|&ms| ex.apex_at(ms)).collect();
        let s0 = ex.apex0.stats();
        print!(
            "{:<18} {:<8} {:>9} {:>9} {:>8}",
            d.name(),
            "nodes",
            sdg.node_count(),
            oneidx.node_count(),
            s0.nodes
        );
        for a in &apexes {
            print!(" {:>8}", a.stats().nodes);
        }
        println!();
        print!(
            "{:<18} {:<8} {:>9} {:>9} {:>8}",
            "",
            "edges",
            sdg.edge_count(),
            oneidx.edge_count(),
            s0.edges
        );
        for a in &apexes {
            print!(" {:>8}", a.stats().edges);
        }
        println!();
        // Stored extent footprint: compressed blocks vs 8 bytes/pair.
        print!(
            "{:<18} {:<8} {:>9} {:>9} {:>8}",
            "",
            "enc-KiB",
            "-",
            "-",
            s0.extent_encoded_bytes / 1024
        );
        for a in &apexes {
            print!(" {:>8}", a.stats().extent_encoded_bytes / 1024);
        }
        println!();
        print!(
            "{:<18} {:<8} {:>9} {:>9} {:>7}%",
            "",
            "enc/raw",
            "-",
            "-",
            100 * s0.extent_encoded_bytes / s0.extent_raw_bytes.max(1)
        );
        for a in &apexes {
            let s = a.stats();
            print!(
                " {:>7}%",
                100 * s.extent_encoded_bytes / s.extent_raw_bytes.max(1)
            );
        }
        println!();
        // Queryable in-memory footprint of the succinct form (payload +
        // headers + rank/select directory + decode-restart samples).
        print!(
            "{:<18} {:<8} {:>9} {:>9} {:>8}",
            "",
            "res-KiB",
            "-",
            "-",
            s0.extent_resident_bytes / 1024
        );
        for a in &apexes {
            print!(" {:>8}", a.stats().extent_resident_bytes / 1024);
        }
        println!();

        report.push(Json::Obj(vec![
            ("dataset", Json::str(d.name())),
            ("index", Json::str("SDG")),
            ("nodes", Json::U64(sdg.node_count() as u64)),
            ("edges", Json::U64(sdg.edge_count() as u64)),
        ]));
        report.push(Json::Obj(vec![
            ("dataset", Json::str(d.name())),
            ("index", Json::str("1-index")),
            ("nodes", Json::U64(oneidx.node_count() as u64)),
            ("edges", Json::U64(oneidx.edge_count() as u64)),
        ]));
        report.push(index_row(d.name(), "APEX0", &s0));
        encoded_total += s0.extent_encoded_bytes as u64;
        raw_total += s0.extent_raw_bytes as u64;
        resident_total += s0.extent_resident_bytes as u64;
        for (ms, a) in MINSUPS.iter().zip(&apexes) {
            let s = a.stats();
            let mut row = index_row(d.name(), &format!("APEX({ms})"), &s);
            if let Json::Obj(fields) = &mut row {
                fields.push(("min_sup", Json::F64(*ms)));
            }
            report.push(row);
            encoded_total += s.extent_encoded_bytes as u64;
            raw_total += s.extent_raw_bytes as u64;
            resident_total += s.extent_resident_bytes as u64;
        }
    }
    println!(
        "\ntotal APEX extent bytes: {encoded_total} encoded / {raw_total} raw ({}%), {resident_total} resident",
        100 * encoded_total / raw_total.max(1)
    );
    report.meta("extent_encoded_bytes_total", Json::U64(encoded_total));
    report.meta("extent_raw_bytes_total", Json::U64(raw_total));
    report.meta("extent_resident_bytes_total", Json::U64(resident_total));
    match report.write() {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write report: {e}"),
    }
    println!("(APEX columns are minSup values, built from the 20% QTYPE1 workload sample)");
}
