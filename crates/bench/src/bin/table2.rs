//! Table 2: statistics of index structures — nodes/edges of the strong
//! DataGuide, APEX⁰, and APEX at minSup ∈ {0.002, 0.005, 0.01, 0.03,
//! 0.05}, plus (our extension) the 1-index.
//! (`cargo run -p apex-bench --release --bin table2 [--scale paper]`)

use apex_bench::{Experiment, Scale, MINSUPS};

fn main() {
    let scale = Scale::from_env();
    println!("Table 2: statistics of index structures\n");
    println!(
        "{:<18} {:<7} {:>9} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9}",
        "dataset", "", "SDG", "1-index", "APEX0", "0.002", "0.005", "0.01", "0.03", "0.05"
    );
    for d in scale.datasets() {
        let ex = Experiment::new(d, scale);
        let sdg = ex.dataguide();
        let oneidx = ex.oneindex();
        let apexes: Vec<_> = MINSUPS.iter().map(|&ms| ex.apex_at(ms)).collect();
        let s0 = ex.apex0.stats();
        print!(
            "{:<18} {:<7} {:>9} {:>9} {:>8}",
            d.name(),
            "nodes",
            sdg.node_count(),
            oneidx.node_count(),
            s0.nodes
        );
        for a in &apexes {
            print!(" {:>8}", a.stats().nodes);
        }
        println!();
        print!(
            "{:<18} {:<7} {:>9} {:>9} {:>8}",
            "",
            "edges",
            sdg.edge_count(),
            oneidx.edge_count(),
            s0.edges
        );
        for a in &apexes {
            print!(" {:>8}", a.stats().edges);
        }
        println!();
    }
    println!("\n(APEX columns are minSup values, built from the 20% QTYPE1 workload sample)");
}
