//! Ablations and extensions beyond the paper's evaluation:
//!
//! 1. **1-index as a query structure** — the paper discusses it (§2) but
//!    does not measure it; we run the QTYPE1 set over it.
//! 2. **No index (naive traversal)** — the floor every index must beat.
//! 3. **Incremental update vs full rebuild** — update steps and wall
//!    time for `refine` on a drifted workload, against building a fresh
//!    APEX⁰ and refining from scratch (§5.3's motivation).
//! 4. **minSup sensitivity of the hash tree** — required-path counts and
//!    maximum required length per minSup.
//! 5. **Page-model validation** — replays a QTYPE1 batch against a real
//!    file-backed extent store and compares genuine page I/O with the
//!    cost model's prediction.
//!
//! Also writes `BENCH_ablation.json` with the same rows.
//!
//! (`cargo run -p apex-bench --release --bin ablation [--scale paper]`)

use std::time::Instant;

use apex_bench::report::{batch_row, BenchReport, Json};
use apex_bench::{print_row, print_row_header, Experiment, Scale, MINSUPS};
use apex_query::apex_qp::ApexProcessor;
use apex_query::guide_qp::GuideProcessor;
use apex_query::naive::NaiveProcessor;
use apex_query::run_batch;

/// Dumps the refined index's extents into a real file-backed store,
/// replays the QTYPE1 batch reading every touched extent from disk with
/// a per-query cache (mirroring the cost model's buffer pool), and
/// returns `(model_pages, real_pages)`.
fn validate_page_model(ex: &Experiment, apex: &apex::Apex) -> std::io::Result<(u64, u64)> {
    use apex_storage::{ExtentStore, PageModel};
    use std::collections::HashMap;

    // Model-side: run the (capped) batch through the normal processor.
    let qp = ApexProcessor::new(&ex.g, apex, &ex.table);
    let cap = ex.queries.qtype1.len().min(500);
    let model = run_batch(&qp, &ex.queries.qtype1[..cap]).cost.pages_read;

    // Real-side: write extents to disk, replay the segment/extent access
    // pattern with genuine reads.
    let mut path = std::env::temp_dir();
    path.push(format!(
        "apex-validate-{}-{}",
        ex.dataset.name(),
        std::process::id()
    ));
    let mut store = ExtentStore::create(&path, PageModel::default())?;
    let mut ids: HashMap<u32, apex_storage::ExtentId> = HashMap::new();
    for x in apex.graph().reachable(apex.xroot()) {
        let id = store.append(apex.extent(x))?;
        ids.insert(x.0, id);
    }
    for q in ex.queries.qtype1.iter().take(500) {
        let Some(labels) = q.labels() else { continue };
        let mut touched: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for j in (1..=labels.len()).rev() {
            let seg = apex.segment_nodes(&labels[..j]);
            for x in &seg.xnodes {
                if touched.insert(x.0) {
                    store.read(ids[&x.0])?;
                }
            }
            if seg.exact {
                break;
            }
        }
    }
    let real = store.pages_read();
    let _ = std::fs::remove_file(&path);
    Ok((model, real))
}

fn main() -> std::io::Result<()> {
    let scale = Scale::from_env();
    let mut report = BenchReport::new("ablation");

    println!("Ablation 1+2: QTYPE1 over 1-index and naive traversal");
    println!("(capped at 1000 queries per batch — the 1-index product on the");
    println!(" largest quotient graphs costs like the SDG's; fig13 covers that)\n");
    print_row_header();
    for d in scale.datasets() {
        let ex = Experiment::new(d, scale);
        let cap = ex.queries.qtype1.len().min(1000);
        let queries = &ex.queries.qtype1[..cap];
        let oneidx = ex.oneindex();
        let stats = run_batch(&GuideProcessor::new(&ex.g, &oneidx, &ex.table), queries);
        print_row(d.name(), "1-index", &stats);
        report.push(batch_row(d.name(), "1-index", &stats));
        let stats = run_batch(&NaiveProcessor::new(&ex.g, &ex.table), queries);
        print_row(d.name(), "naive", &stats);
        report.push(batch_row(d.name(), "naive", &stats));
        let apex = ex.apex_at(0.005);
        let stats = run_batch(&ApexProcessor::new(&ex.g, &apex, &ex.table), queries);
        print_row(d.name(), "APEX(0.005)", &stats);
        report.push(batch_row(d.name(), "APEX(0.005)", &stats));
        println!();
    }

    println!("\nAblation 3: incremental update vs rebuild (workload drift)\n");
    println!(
        "{:<18} {:>12} {:>12} {:>14} {:>14}",
        "dataset", "incr-steps", "incr-ms", "rebuild-steps", "rebuild-ms"
    );
    for d in scale.datasets() {
        let ex = Experiment::new(d, scale);
        // Split the workload in two halves: tune to the first, then
        // drift to the second.
        let all: Vec<_> = ex.queries.workload.iter().cloned().collect();
        let (w1, w2) = all.split_at(all.len() / 2);
        let wl1 = apex::Workload::from_paths(w1.to_vec());
        let wl2 = apex::Workload::from_paths(w2.to_vec());

        let mut incr = ex.apex0.clone();
        incr.refine(&ex.g, &wl1, 0.005);
        let t = Instant::now();
        let steps_incr = incr.refine(&ex.g, &wl2, 0.005);
        let incr_ms = apex_query::stats::millis(t.elapsed());

        let t = Instant::now();
        let mut fresh = apex::Apex::build_initial(&ex.g);
        let steps_fresh = fresh.refine(&ex.g, &wl2, 0.005);
        let fresh_ms = apex_query::stats::millis(t.elapsed());

        println!(
            "{:<18} {:>12} {:>12.1} {:>14} {:>14.1}",
            d.name(),
            steps_incr,
            incr_ms,
            steps_fresh,
            fresh_ms
        );
        report.push(Json::Obj(vec![
            ("dataset", Json::str(d.name())),
            ("ablation", Json::str("update-vs-rebuild")),
            ("incr_steps", Json::U64(steps_incr as u64)),
            ("incr_ms", Json::F64(incr_ms)),
            ("rebuild_steps", Json::U64(steps_fresh as u64)),
            ("rebuild_ms", Json::F64(fresh_ms)),
        ]));
        assert_eq!(
            incr.required_paths(&ex.g),
            fresh.required_paths(&ex.g),
            "incremental and rebuilt indexes must encode the same paths"
        );
    }

    println!("\nAblation 5: page-model validation against real file I/O\n");
    println!(
        "{:<18} {:>14} {:>14} {:>8}",
        "dataset", "model-pages", "real-pages", "ratio"
    );
    for d in scale.datasets() {
        let ex = Experiment::new(d, scale);
        let apex = ex.apex_at(0.005);
        let (model, real) = validate_page_model(&ex, &apex)?;
        println!(
            "{:<18} {:>14} {:>14} {:>8.2}",
            d.name(),
            model,
            real,
            real as f64 / model.max(1) as f64
        );
        report.push(Json::Obj(vec![
            ("dataset", Json::str(d.name())),
            ("ablation", Json::str("page-model-validation")),
            ("model_pages", Json::U64(model)),
            ("real_pages", Json::U64(real)),
        ]));
    }

    println!("\nAblation 4: hash-tree shape per minSup\n");
    println!(
        "{:<18} {:>8} {:>16} {:>16}",
        "dataset", "minSup", "required-paths", "max-length"
    );
    for d in scale.datasets() {
        let ex = Experiment::new(d, scale);
        for ms in MINSUPS {
            let apex = ex.apex_at(ms);
            let s = apex.stats();
            println!(
                "{:<18} {:>8} {:>16} {:>16}",
                d.name(),
                ms,
                s.hash_entries,
                s.max_required_len
            );
            report.push(Json::Obj(vec![
                ("dataset", Json::str(d.name())),
                ("ablation", Json::str("hash-tree-shape")),
                ("min_sup", Json::F64(ms)),
                ("required_paths", Json::U64(s.hash_entries as u64)),
                ("max_required_len", Json::U64(s.max_required_len as u64)),
            ]));
        }
    }

    match report.write() {
        Ok(p) => println!("\nwrote {}", p.display()),
        Err(e) => eprintln!("could not write report: {e}"),
    }
    Ok(())
}
