//! Criterion bench: index construction and refinement costs (supports
//! Table 2 and the §5.3 incremental-update claims).

use apex_bench::{Experiment, Scale};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    group.sample_size(10);
    for d in Scale::Small.datasets() {
        let ex = Experiment::new(d, Scale::Small);
        group.bench_function(format!("{}/APEX0", d.name()), |b| {
            b.iter(|| apex::Apex::build_initial(&ex.g))
        });
        group.bench_function(format!("{}/refine-0.005", d.name()), |b| {
            b.iter(|| ex.apex_at(0.005))
        });
        group.bench_function(format!("{}/DataGuide", d.name()), |b| {
            b.iter(|| dataguide::DataGuide::build(&ex.g))
        });
        group.bench_function(format!("{}/1-index", d.name()), |b| {
            b.iter(|| oneindex::OneIndex::build(&ex.g))
        });
        group.bench_function(format!("{}/Fabric", d.name()), |b| {
            b.iter(|| fabric::IndexFabric::build(&ex.g))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
