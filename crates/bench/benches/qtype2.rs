//! Criterion bench: the Figure 14 batches (QTYPE2 query set per index).

use apex_bench::{Experiment, Scale};
use apex_query::apex_qp::ApexProcessor;
use apex_query::guide_qp::GuideProcessor;
use apex_query::run_batch;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_qtype2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_qtype2");
    group.sample_size(10);
    for d in Scale::Small.datasets() {
        let ex = Experiment::new(d, Scale::Small);
        let sdg = ex.dataguide();
        let apex = ex.apex_at(0.005);
        group.bench_function(format!("{}/SDG", d.name()), |b| {
            let p = GuideProcessor::new(&ex.g, &sdg, &ex.table);
            b.iter(|| run_batch(&p, &ex.queries.qtype2))
        });
        group.bench_function(format!("{}/APEX0", d.name()), |b| {
            let p = ApexProcessor::new(&ex.g, &ex.apex0, &ex.table);
            b.iter(|| run_batch(&p, &ex.queries.qtype2))
        });
        group.bench_function(format!("{}/APEX-0.005", d.name()), |b| {
            let p = ApexProcessor::new(&ex.g, &apex, &ex.table);
            b.iter(|| run_batch(&p, &ex.queries.qtype2))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_qtype2);
criterion_main!(benches);
