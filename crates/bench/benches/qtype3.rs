//! Criterion bench: the Figure 15 batches (QTYPE3 query set per index,
//! including the Index Fabric).

use apex_bench::{Experiment, Scale};
use apex_query::apex_qp::ApexProcessor;
use apex_query::fabric_qp::FabricProcessor;
use apex_query::guide_qp::GuideProcessor;
use apex_query::run_batch;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_qtype3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15_qtype3");
    group.sample_size(10);
    for d in Scale::Small.datasets() {
        let ex = Experiment::new(d, Scale::Small);
        let sdg = ex.dataguide();
        let apex = ex.apex_at(0.005);
        let fab = ex.fabric();
        group.bench_function(format!("{}/Fabric", d.name()), |b| {
            let p = FabricProcessor::new(&ex.g, &fab);
            b.iter(|| run_batch(&p, &ex.queries.qtype3))
        });
        group.bench_function(format!("{}/SDG", d.name()), |b| {
            let p = GuideProcessor::new(&ex.g, &sdg, &ex.table);
            b.iter(|| run_batch(&p, &ex.queries.qtype3))
        });
        group.bench_function(format!("{}/APEX-0.005", d.name()), |b| {
            let p = ApexProcessor::new(&ex.g, &apex, &ex.table);
            b.iter(|| run_batch(&p, &ex.queries.qtype3))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_qtype3);
criterion_main!(benches);
