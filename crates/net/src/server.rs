//! The admission-controlled TCP server with graceful drain.
//!
//! Thread anatomy:
//!
//! * one **acceptor** blocks in `accept`, registers each connection and
//!   spawns its reader; at drain it is woken by a self-connection;
//! * one **reader per connection** decodes request frames (with a
//!   short read timeout so it can poll the drain flag), counts each
//!   well-formed frame as *accepted*, and either enqueues it or sheds
//!   it with an explicit [`Status::Overloaded`] / [`Status::Draining`]
//!   response — a refusal is always a response, never a silent drop;
//! * `workers` **executors** pop the bounded queue, enforce the
//!   deadline at dequeue and (through the engine's checkpoints)
//!   mid-execution, and write the response through the connection's
//!   writer lock.
//!
//! Admission states for one request:
//!
//! ```text
//! frame read ──► accepted ──┬─ closing? ──────────► shed (Draining)
//!                           ├─ queue full? ───────► shed (Overloaded)
//!                           └─ enqueued ──► dequeue ─┬─ deadline past? ─► timed_out
//!                                                    └─ execute ─┬─ interrupted ─► timed_out
//!                                                                └─ done ───────► served
//! ```
//!
//! The accounting invariant — checked by [`NetStats::balanced`] and the
//! drain tests — is `accepted == served + shed + timed_out`: every
//! frame the server ever read gets exactly one disposition, drain
//! included. Malformed frames are protocol errors, not requests; the
//! reader closes the connection without touching the counters.
//!
//! Drain (`Server::drain`) runs: set `closing` → stop the refresher
//! taking new rebuilds → wake and join the acceptor → join readers
//! (each notices `closing` within one poll interval; partial frames
//! are dropped *un-accepted*) → close the queue → workers finish the
//! queued backlog deterministically (execute, or time out if the
//! deadline passed — queued work was accepted, so it is never
//! discarded) → join workers → snapshot [`NetStats`]. Joining the
//! last worker drops the last handle to each connection, so peers see
//! EOF only after every accepted request has been answered.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::engine::Engine;
use crate::wire::{write_message, Message, Request, Response, ShardGen, Status, DEFAULT_MAX_FRAME};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Executor threads popping the request queue.
    pub workers: usize,
    /// Bounded request-queue capacity; admission sheds beyond it.
    pub queue_cap: usize,
    /// Deadline applied to requests that carry none (`deadline_ms` 0).
    pub default_deadline: Option<Duration>,
    /// Per-frame payload cap handed to the codec.
    pub max_frame: usize,
    /// Reader poll interval: the latency bound on noticing drain.
    pub poll: Duration,
    /// Bound on one response write; a peer that stops reading forfeits
    /// delivery (its dispositions still count) instead of wedging a
    /// worker — and with it, drain.
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            queue_cap: 64,
            default_deadline: None,
            max_frame: DEFAULT_MAX_FRAME,
            poll: Duration::from_millis(20),
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// Monotonic disposition counters; one set server-wide, one per
/// connection. Counters record *dispositions decided*, not delivery —
/// a response written to a peer that already vanished still counts.
#[derive(Debug, Default)]
struct Counters {
    accepted: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    timed_out: AtomicU64,
}

impl Counters {
    fn count(&self, status: Status) {
        match status {
            Status::Ok | Status::ParseError => &self.served,
            Status::Overloaded | Status::Draining => &self.shed,
            Status::DeadlineExceeded => &self.timed_out,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> ConnStats {
        ConnStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of one connection's request accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Well-formed request frames read off this connection.
    pub accepted: u64,
    /// Requests answered `Ok` or `ParseError`.
    pub served: u64,
    /// Requests refused at admission (`Overloaded` / `Draining`).
    pub shed: u64,
    /// Requests whose deadline passed before or during execution.
    pub timed_out: u64,
}

/// Server-wide accounting, reported live and at drain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections the acceptor handed to readers.
    pub connections: u64,
    /// Well-formed request frames read (every one gets a disposition).
    pub accepted: u64,
    /// Requests answered `Ok` or `ParseError`.
    pub served: u64,
    /// Requests refused at admission with an explicit shed response.
    pub shed: u64,
    /// Requests that crossed their deadline at dequeue or mid-query.
    pub timed_out: u64,
    /// Highest queue depth observed; ≤ `queue_cap` by construction.
    pub queue_hwm: usize,
}

impl NetStats {
    /// The no-silent-drops invariant: every accepted request was
    /// disposed exactly once.
    pub fn balanced(&self) -> bool {
        self.accepted == self.served + self.shed + self.timed_out
    }
}

impl std::fmt::Display for NetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "conns {}  accepted {}  served {}  shed {}  timed-out {}  queue-hwm {}",
            self.connections, self.accepted, self.served, self.shed, self.timed_out, self.queue_hwm
        )
    }
}

/// Per-connection shared state: the response path (writer half behind
/// a lock, shared by the admission path and the workers) plus counters.
/// The registry keeps only the counters; when the reader exits and the
/// last queued job is disposed, the final `Arc<Conn>` drops and the
/// socket closes — so a drained peer sees EOF only after its last
/// response.
struct Conn {
    writer: Mutex<TcpStream>,
    stats: Arc<Counters>,
}

impl Conn {
    /// Writes `resp` and records its disposition on both counter sets.
    /// Write failures are ignored: the disposition stands even when the
    /// peer is gone, so accounting never depends on delivery.
    fn respond(&self, server: &Counters, resp: &Response) {
        self.stats.count(resp.status);
        server.count(resp.status);
        let mut w = self.writer.lock().unwrap_or_else(|p| p.into_inner());
        let _ = write_message(&mut *w, &Message::Response(resp.clone()));
    }
}

/// One admitted request waiting for an executor.
struct Job {
    req: Request,
    conn: Arc<Conn>,
    deadline: Option<Instant>,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
    hwm: usize,
}

/// Bounded Mutex+Condvar job queue. `try_push` never blocks (admission
/// control decides, it doesn't wait); `pop` blocks until a job arrives
/// or the queue is closed *and* empty — closing therefore drains the
/// backlog instead of discarding it.
struct JobQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
    cap: usize,
}

enum Admission {
    Enqueued,
    Full(Job),
    Closed(Job),
}

impl JobQueue {
    fn new(cap: usize) -> JobQueue {
        JobQueue {
            state: Mutex::new(QueueState::default()),
            cv: Condvar::new(),
            cap: cap.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn try_push(&self, job: Job) -> Admission {
        let mut st = self.lock();
        if st.closed {
            return Admission::Closed(job);
        }
        if st.jobs.len() >= self.cap {
            return Admission::Full(job);
        }
        st.jobs.push_back(job);
        st.hwm = st.hwm.max(st.jobs.len());
        self.cv.notify_one();
        Admission::Enqueued
    }

    fn pop(&self) -> Option<Job> {
        let mut st = self.lock();
        loop {
            if let Some(job) = st.jobs.pop_front() {
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn close(&self) {
        self.lock().closed = true;
        self.cv.notify_all();
    }

    fn hwm(&self) -> usize {
        self.lock().hwm
    }
}

struct Shared {
    cfg: ServerConfig,
    engine: Engine,
    queue: JobQueue,
    closing: AtomicBool,
    counters: Counters,
    connections: AtomicU64,
    conn_stats: Mutex<Vec<Arc<Counters>>>,
}

/// The running server. Dropping it without [`Server::drain`] still
/// joins every thread (via `Drop`), but `drain` is the intended exit:
/// it returns the final accounting.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr`, spawns the acceptor and the worker pool, and
    /// starts serving. Bind `"127.0.0.1:0"` for an ephemeral port and
    /// read it back with [`Server::local_addr`].
    pub fn start(
        engine: Engine,
        cfg: ServerConfig,
        addr: impl ToSocketAddrs,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: JobQueue::new(cfg.queue_cap),
            cfg,
            engine,
            closing: AtomicBool::new(false),
            counters: Counters::default(),
            connections: AtomicU64::new(0),
            conn_stats: Mutex::new(Vec::new()),
        });

        let mut workers = Vec::with_capacity(shared.cfg.workers.max(1));
        for i in 0..shared.cfg.workers.max(1) {
            let s = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("apex-net-worker-{i}"))
                    .spawn(move || worker_loop(&s))?,
            );
        }

        let readers = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let s = Arc::clone(&shared);
            let r = Arc::clone(&readers);
            std::thread::Builder::new()
                .name("apex-net-acceptor".into())
                .spawn(move || accept_loop(&listener, &s, &r))?
        };

        Ok(Server {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            readers,
            workers,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live server-wide accounting.
    pub fn stats(&self) -> NetStats {
        NetStats {
            connections: self.shared.connections.load(Ordering::Relaxed),
            accepted: self.shared.counters.accepted.load(Ordering::Relaxed),
            served: self.shared.counters.served.load(Ordering::Relaxed),
            shed: self.shared.counters.shed.load(Ordering::Relaxed),
            timed_out: self.shared.counters.timed_out.load(Ordering::Relaxed),
            queue_hwm: self.shared.queue.hwm(),
        }
    }

    /// Per-connection accounting, in accept order. Closed connections
    /// keep their final counts; usable during serving and after drain.
    pub fn connection_stats(&self) -> Vec<ConnStats> {
        let conns = self
            .shared
            .conn_stats
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        conns.iter().map(|c| c.snapshot()).collect()
    }

    /// Graceful drain: stop accepting, dispose of every accepted
    /// request (execute, shed, or time out — never discard), join all
    /// threads, and return the final accounting. See the module docs
    /// for the exact sequence. The server stays usable for
    /// [`Server::stats`] and [`Server::connection_stats`] afterwards;
    /// draining twice is a no-op.
    pub fn drain(&mut self) -> NetStats {
        self.drain_in_place();
        self.stats()
    }

    fn drain_in_place(&mut self) {
        self.shared.closing.store(true, Ordering::SeqCst);
        self.shared.engine.begin_drain();
        // Wake the acceptor out of its blocking accept; the connection
        // is refused once `closing` is observed.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.acceptor.take() {
            join_thread(h);
        }
        // Readers exit within one poll interval; joining them first
        // guarantees nothing is pushed after the queue closes.
        let readers = {
            let mut r = self.readers.lock().unwrap_or_else(|p| p.into_inner());
            std::mem::take(&mut *r)
        };
        for h in readers {
            join_thread(h);
        }
        self.shared.queue.close();
        for h in std::mem::take(&mut self.workers) {
            join_thread(h);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.acceptor.is_some() || !self.workers.is_empty() {
            self.drain_in_place();
        }
    }
}

fn join_thread(h: JoinHandle<()>) {
    if let Err(e) = h.join() {
        std::panic::resume_unwind(e);
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, readers: &Mutex<Vec<JoinHandle<()>>>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            // Accept errors are transient (peer reset during the
            // handshake); give up only when asked to stop.
            Err(_) => {
                if shared.closing.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.closing.load(Ordering::SeqCst) {
            // The drain wake-up connection (or a late client): refuse
            // by closing without ever reading — nothing was accepted.
            return;
        }
        // Timeouts are socket-wide, so they cover the writer clone too.
        if stream.set_read_timeout(Some(shared.cfg.poll)).is_err()
            || stream
                .set_write_timeout(Some(shared.cfg.write_timeout))
                .is_err()
        {
            continue;
        }
        let writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => continue,
        };
        shared.connections.fetch_add(1, Ordering::Relaxed);
        let stats = Arc::new(Counters::default());
        {
            let mut cs = shared.conn_stats.lock().unwrap_or_else(|p| p.into_inner());
            cs.push(Arc::clone(&stats));
        }
        let conn = Arc::new(Conn {
            writer: Mutex::new(writer),
            stats,
        });
        let s = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("apex-net-conn".into())
            .spawn(move || reader_loop(stream, &conn, &s));
        if let Ok(h) = spawned {
            let mut r = readers.lock().unwrap_or_else(|p| p.into_inner());
            r.push(h);
        }
    }
}

/// What one polling read produced.
enum Frame {
    Message(Message),
    /// Clean EOF, malformed input, or drain — the reader exits either
    /// way, so they collapse; protocol errors never touch counters.
    Done,
}

/// Reads one message, tolerating read-timeout polls so the drain flag
/// is observed within `cfg.poll` even on an idle connection. A partial
/// frame interrupted by drain is dropped *un-accepted*: `accepted` is
/// only counted once a frame fully decodes.
fn read_polling(stream: &mut TcpStream, shared: &Shared) -> Frame {
    // A read timeout can split a frame, so accumulate raw bytes across
    // polls and decode only once the frame is complete.
    let mut buf: Vec<u8> = Vec::new();
    let mut need = 4usize; // length prefix first
    let mut have_len = false;
    loop {
        if buf.len() >= need {
            if !have_len {
                let head: [u8; 4] = match buf.get(..4).and_then(|b| b.try_into().ok()) {
                    Some(h) => h,
                    None => return Frame::Done, // can't occur: buf.len() >= need == 4
                };
                let len = u32::from_le_bytes(head) as usize;
                if len > shared.cfg.max_frame {
                    return Frame::Done; // oversized: close the connection
                }
                need = 4 + len;
                have_len = true;
                continue;
            }
            let Some(body) = buf.get(4..need) else {
                return Frame::Done; // can't occur: buf.len() >= need
            };
            return match Message::decode(body) {
                Ok(msg) => Frame::Message(msg),
                Err(_) => Frame::Done,
            };
        }
        let mut chunk = [0u8; 4096];
        let want = (need - buf.len()).min(chunk.len());
        let Some(dst) = chunk.get_mut(..want) else {
            return Frame::Done; // can't occur: want ≤ chunk.len()
        };
        match io::Read::read(stream, dst) {
            Ok(0) => return Frame::Done, // EOF (mid-frame ⇒ truncated; same exit)
            Ok(n) => match chunk.get(..n) {
                Some(read) => buf.extend_from_slice(read),
                None => return Frame::Done, // can't occur: n ≤ want
            },
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shared.closing.load(Ordering::SeqCst) {
                    return Frame::Done;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Frame::Done,
        }
    }
}

fn reader_loop(mut stream: TcpStream, conn: &Arc<Conn>, shared: &Arc<Shared>) {
    loop {
        let req = match read_polling(&mut stream, shared) {
            Frame::Message(Message::Request(req)) => req,
            // A client sending us *responses* is a protocol error.
            Frame::Message(Message::Response(_)) | Frame::Done => return,
        };
        let admitted = Instant::now();
        conn.stats.accepted.fetch_add(1, Ordering::Relaxed);
        shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
        let deadline = if req.deadline_ms > 0 {
            admitted.checked_add(Duration::from_millis(u64::from(req.deadline_ms)))
        } else {
            shared
                .cfg
                .default_deadline
                .and_then(|d| admitted.checked_add(d))
        };
        if shared.closing.load(Ordering::SeqCst) {
            conn.respond(&shared.counters, &shed(&req, Status::Draining, shared));
            continue;
        }
        let job = Job {
            req,
            conn: Arc::clone(conn),
            deadline,
        };
        match shared.queue.try_push(job) {
            Admission::Enqueued => {}
            Admission::Full(job) => {
                job.conn.respond(
                    &shared.counters,
                    &shed(&job.req, Status::Overloaded, shared),
                );
            }
            Admission::Closed(job) => {
                job.conn
                    .respond(&shared.counters, &shed(&job.req, Status::Draining, shared));
            }
        }
    }
}

/// The response's generation vector: shard-tagged engines stamp their
/// `(shard, generation)` entry so routers can audit consistency;
/// untagged single-process servers leave it empty.
fn shard_gens(engine: &Engine, generation: u64) -> Vec<ShardGen> {
    match engine.shard_tag() {
        Some(shard) => vec![ShardGen { shard, generation }],
        None => Vec::new(),
    }
}

/// A rows-free refusal response.
fn shed(req: &Request, status: Status, shared: &Shared) -> Response {
    let generation = shared.engine.generation();
    Response {
        id: req.id,
        status,
        generation,
        total_rows: 0,
        rows: Vec::new(),
        pages_read: 0,
        join_work: 0,
        server_us: 0,
        plan_digest: 0,
        gens: shard_gens(&shared.engine, generation),
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        let start = Instant::now();
        // Deadline check at dequeue: queue wait already spent the
        // budget, so don't burn an execution on a dead request.
        if job.deadline.is_some_and(|d| start >= d) {
            let generation = shared.engine.generation();
            job.conn.respond(
                &shared.counters,
                &Response {
                    id: job.req.id,
                    status: Status::DeadlineExceeded,
                    generation,
                    total_rows: 0,
                    rows: Vec::new(),
                    pages_read: 0,
                    join_work: 0,
                    server_us: 0,
                    plan_digest: 0,
                    gens: shard_gens(&shared.engine, generation),
                },
            );
            continue;
        }
        let out = shared.engine.execute(&job.req.query, job.deadline);
        let server_us = (start.elapsed().as_micros()).min(u128::from(u64::MAX)) as u64;
        job.conn.respond(
            &shared.counters,
            &Response {
                id: job.req.id,
                status: out.status,
                generation: out.generation,
                total_rows: out.total_rows,
                rows: out.rows,
                pages_read: out.pages_read,
                join_work: out.join_work,
                server_us,
                plan_digest: out.plan_digest,
                gens: shard_gens(&shared.engine, out.generation),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use apex::{Apex, IndexCell, RefreshPolicy, WorkloadMonitor};
    use apex_storage::{DataTable, PageModel};
    use xmlgraph::builder::moviedb;

    fn test_engine() -> Engine {
        let g = Arc::new(moviedb());
        let table = Arc::new(DataTable::build(&g, PageModel::default()));
        let cell = Arc::new(IndexCell::new(Apex::build_initial(&g)));
        let monitor = Arc::new(Mutex::new(WorkloadMonitor::new(
            100,
            0.3,
            RefreshPolicy::Manual,
        )));
        Engine::new(g, table, cell, monitor)
    }

    fn start(cfg: ServerConfig) -> Server {
        Server::start(test_engine(), cfg, "127.0.0.1:0").expect("bind")
    }

    #[test]
    fn serves_queries_over_a_real_socket() {
        let mut server = start(ServerConfig::default());
        let mut c = Client::connect(server.local_addr()).expect("connect");
        let ok = c.call("//actor/name", 0).expect("call");
        assert_eq!(ok.status, Status::Ok);
        assert!(ok.total_rows > 0);
        assert!(!ok.rows.is_empty());
        assert!(ok.pages_read > 0);
        let bad = c.call("actor", 0).expect("call");
        assert_eq!(bad.status, Status::ParseError);
        drop(c);
        let stats = server.drain();
        assert_eq!(stats.accepted, 2);
        assert_eq!(stats.served, 2);
        assert_eq!(stats.connections, 1);
        assert!(stats.balanced(), "{stats}");
    }

    #[test]
    fn zero_default_deadline_times_every_request_out() {
        let mut server = start(ServerConfig {
            default_deadline: Some(Duration::ZERO),
            ..ServerConfig::default()
        });
        let mut c = Client::connect(server.local_addr()).expect("connect");
        let r = c.call("//actor/name", 0).expect("call");
        assert_eq!(r.status, Status::DeadlineExceeded);
        drop(c);
        let stats = server.drain();
        assert_eq!(stats.timed_out, 1);
        assert!(stats.balanced(), "{stats}");
    }

    #[test]
    fn overload_sheds_explicitly_and_balances() {
        // 1 worker, tiny queue, a pipelined burst: some requests must
        // come back Overloaded, none may vanish.
        let mut server = start(ServerConfig {
            workers: 1,
            queue_cap: 2,
            ..ServerConfig::default()
        });
        let mut c = Client::connect(server.local_addr()).expect("connect");
        const N: u64 = 200;
        for _ in 0..N {
            c.send("//actor/name", 0).expect("send");
        }
        let mut got = 0u64;
        let mut shed = 0u64;
        while got < N {
            let r = c.recv().expect("recv").expect("open");
            if r.status == Status::Overloaded {
                shed += 1;
            } else {
                assert_eq!(r.status, Status::Ok);
            }
            got += 1;
        }
        drop(c);
        let stats = server.drain();
        assert_eq!(stats.accepted, N);
        assert!(stats.balanced(), "{stats}");
        assert_eq!(stats.shed, shed);
        assert!(stats.queue_hwm <= 2, "hwm {} over cap", stats.queue_hwm);
        // The reader admits far faster than the single worker can
        // evaluate, and the client pipelines all N before reading any,
        // so the 2-slot queue must overflow.
        assert!(shed > 0, "burst of {N} through queue_cap=2 never shed");
    }

    #[test]
    fn drain_disposes_every_accepted_request() {
        let mut server = start(ServerConfig {
            workers: 1,
            queue_cap: 64,
            ..ServerConfig::default()
        });
        let mut c = Client::connect(server.local_addr()).expect("connect");
        const N: u64 = 50;
        for _ in 0..N {
            c.send("//actor/name", 0).expect("send");
        }
        // Wait until every frame is admitted, then drain with the
        // backlog still queued (the single worker lags the reader):
        // queued work must be answered, never discarded.
        while server.stats().accepted < N {
            std::thread::sleep(Duration::from_millis(1));
        }
        let stats = server.drain();
        assert_eq!(stats.accepted, N);
        assert!(stats.balanced(), "{stats}");
        // Every disposition reached the wire too: responses first,
        // then a clean EOF once the server released the connection.
        let mut answered = 0u64;
        while let Some(r) = c.recv().expect("recv") {
            assert!(matches!(r.status, Status::Ok | Status::Overloaded));
            answered += 1;
        }
        assert_eq!(answered, N);
    }

    #[test]
    fn per_connection_stats_partition_the_totals() {
        let mut server = start(ServerConfig::default());
        let mut a = Client::connect(server.local_addr()).expect("connect");
        let mut b = Client::connect(server.local_addr()).expect("connect");
        for _ in 0..3 {
            a.call("//actor/name", 0).expect("a");
        }
        b.call("//movie/title", 0).expect("b");
        let per = server.connection_stats();
        assert_eq!(per.len(), 2);
        let total: u64 = per.iter().map(|c| c.accepted).sum();
        assert_eq!(total, 4);
        assert!(per.iter().any(|c| c.accepted == 3));
        assert!(per.iter().any(|c| c.accepted == 1));
        drop((a, b));
        let stats = server.drain();
        assert_eq!(stats.connections, 2);
        assert!(stats.balanced(), "{stats}");
    }

    #[test]
    fn drop_without_drain_still_joins_cleanly() {
        let server = start(ServerConfig::default());
        let mut c = Client::connect(server.local_addr()).expect("connect");
        c.call("//actor/name", 0).expect("call");
        drop(server); // Drop runs the drain path; must not hang or panic
    }
}
