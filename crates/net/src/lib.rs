//! # apex-net — networked query serving for the APEX index
//!
//! A std-only TCP serving subsystem layered on [`apex::IndexCell`]:
//! remote clients submit path queries over a framed binary protocol and
//! the server answers them against the *current* index snapshot while
//! the background [`apex::Refresher`] keeps swapping refined
//! generations underneath — the paper's "incremental update without
//! blocking queries" property, extended across a socket.
//!
//! * [`wire`] — the length-prefixed, versioned wire protocol: request
//!   (id, deadline, query text) and response (id, status, rows, cost
//!   summary) frames with total, panic-free decoding;
//! * [`engine`] — the serving bridge: parse → snapshot → evaluate via
//!   the shared `apex_query` operators → record into the workload
//!   monitor → nudge the refresher;
//! * [`server`] — listener + fixed worker pool with admission control
//!   (bounded queue, explicit [`Status::Overloaded`] /
//!   [`Status::Draining`] sheds, never silent drops), per-request
//!   deadlines enforced at dequeue and mid-execution checkpoints, and
//!   graceful drain accounted by [`NetStats`];
//! * [`client`] — a small blocking client library (with bounded
//!   reconnect + shed-retry fault tolerance) used by the CLI, the load
//!   generator, the scatter-gather router and the tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod engine;
pub mod server;
pub mod wire;

pub use client::{Client, ClientStats, RetryPolicy};
pub use engine::{Engine, ExecOutcome};
pub use server::{ConnStats, NetStats, Server, ServerConfig};
pub use wire::{Message, Request, Response, ShardGen, Status, WireError};
