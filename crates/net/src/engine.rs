//! The serving bridge between the wire protocol and the query layer.
//!
//! An [`Engine`] owns shared handles to everything one query needs —
//! graph, data table, [`IndexCell`], workload monitor, optional
//! refresher — and exposes a single [`Engine::execute`] that mirrors
//! one iteration of `apex_query::batch::run_adaptive`: snapshot the
//! cell, evaluate through the shared operators against that snapshot's
//! generation-tagged buffer identity, record the query into the
//! monitor, and nudge the refresher when the policy says a refine is
//! due. Workers on different threads share one `Engine` through the
//! server's `Arc`; every handle inside is `Sync` or internally locked.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use apex::{IndexCell, Refresher, WorkloadMonitor};
use apex_query::apex_qp::ApexProcessor;
use apex_query::batch::recordable_path;
use apex_query::{Query, QueryProcessor};
use apex_storage::{BufferHandle, DataTable};
use xmlgraph::XmlGraph;

use crate::wire::{Status, MAX_ROW_SAMPLE};

/// What one execution produced, before the server stamps transport
/// fields (request id, service time) onto the wire response.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// Disposition: `Ok`, `DeadlineExceeded` (interrupted at a
    /// checkpoint) or `ParseError`. Admission sheds never reach here.
    pub status: Status,
    /// The generation that served (or refused) the query.
    pub generation: u64,
    /// Total result rows (0 on parse errors; partial on interrupts).
    pub total_rows: u32,
    /// Prefix sample of result node ids, ≤ [`MAX_ROW_SAMPLE`].
    pub rows: Vec<u32>,
    /// Pages read by this query (logical cost model).
    pub pages_read: u64,
    /// Join work charged to this query (logical cost model).
    pub join_work: u64,
    /// Digest of the cost-based plan that served the query (0 when no
    /// planner ran — parse errors, unplanned query shapes).
    pub plan_digest: u64,
}

/// Shared query-serving state behind the TCP server.
#[derive(Debug, Clone)]
pub struct Engine {
    g: Arc<XmlGraph>,
    table: Arc<DataTable>,
    cell: Arc<IndexCell>,
    monitor: Arc<Mutex<WorkloadMonitor>>,
    refresher: Option<Arc<Refresher>>,
    /// When true, the refresher outlives this engine's server (replicas
    /// of one shard share it), so `begin_drain` leaves it running.
    refresher_shared: bool,
    buf: BufferHandle,
    /// Shard-local serving: this engine's shard id, stamped into every
    /// response's generation vector.
    shard_tag: Option<u16>,
    /// Shard-local serving: sorted node ids this shard owns. Query
    /// results are filtered to this set, so the union over a cluster's
    /// shards is exactly the single-process result, disjointly.
    owned: Option<Arc<Vec<u32>>>,
}

impl Engine {
    /// Builds an engine over shared serving state. The cross-query
    /// buffer pool is unbounded, like the batch layer's adaptive runs.
    pub fn new(
        g: Arc<XmlGraph>,
        table: Arc<DataTable>,
        cell: Arc<IndexCell>,
        monitor: Arc<Mutex<WorkloadMonitor>>,
    ) -> Engine {
        Engine {
            g,
            table,
            cell,
            monitor,
            refresher: None,
            refresher_shared: false,
            buf: BufferHandle::unbounded(),
            shard_tag: None,
            owned: None,
        }
    }

    /// Attaches the background refresher so recorded workload drift
    /// triggers snapshot swaps under live traffic. Without one, queries
    /// are still recorded but nothing rebuilds.
    pub fn with_refresher(mut self, refresher: Arc<Refresher>) -> Engine {
        self.refresher = Some(refresher);
        self.refresher_shared = false;
        self
    }

    /// Attaches a refresher that this engine's server does *not* own:
    /// draining the server leaves it running. Replicated shards use
    /// this — every replica of a shard nudges the same refresher, and
    /// one replica draining for a rolling swap must not stop the
    /// shard's adaptation (the shard runtime shuts it down last).
    pub fn with_shared_refresher(mut self, refresher: Arc<Refresher>) -> Engine {
        self.refresher = Some(refresher);
        self.refresher_shared = true;
        self
    }

    /// Tags this engine as serving shard `shard` of a cluster: the
    /// server stamps `(shard, generation)` into every response's
    /// generation vector so a scatter-gather router can enforce the
    /// no-mixed-generations invariant.
    pub fn with_shard_tag(mut self, shard: u16) -> Engine {
        self.shard_tag = Some(shard);
        self
    }

    /// Restricts results to the shard's owned node set (`owned` must be
    /// sorted ascending). Evaluation still runs over the full graph —
    /// the filter is what makes per-shard results disjoint, so the
    /// router's merge of every shard's rows reproduces the
    /// single-process answer exactly.
    pub fn with_owned_nodes(mut self, owned: Arc<Vec<u32>>) -> Engine {
        self.owned = Some(owned);
        self
    }

    /// The shard id stamped into responses, when shard-tagged.
    pub fn shard_tag(&self) -> Option<u16> {
        self.shard_tag
    }

    /// The current published generation.
    pub fn generation(&self) -> u64 {
        self.cell.generation()
    }

    /// Drain hook: stops the attached refresher accepting new rebuild
    /// requests (its in-flight cycle still completes). The owner of the
    /// `Refresher` joins it after the server has drained. A *shared*
    /// refresher ([`Engine::with_shared_refresher`]) is left running —
    /// sibling replicas still depend on it.
    pub fn begin_drain(&self) {
        if self.refresher_shared {
            return;
        }
        if let Some(r) = &self.refresher {
            r.begin_shutdown();
        }
    }

    /// Parses and executes one query against the current snapshot.
    ///
    /// `deadline` arms mid-execution checkpoints: evaluation that
    /// crosses it stops early and reports `DeadlineExceeded` with the
    /// partial rows collected so far. Expiry *before* execution is the
    /// server's dequeue check, not this method's concern.
    pub fn execute(&self, query_text: &str, deadline: Option<Instant>) -> ExecOutcome {
        let snap = self.cell.snapshot();
        let generation = snap.generation();
        let q = match Query::parse(&self.g, query_text) {
            Ok(q) => q,
            Err(_) => {
                return ExecOutcome {
                    status: Status::ParseError,
                    generation,
                    total_rows: 0,
                    rows: Vec::new(),
                    pages_read: 0,
                    join_work: 0,
                    plan_digest: 0,
                }
            }
        };
        let mut p = ApexProcessor::with_buffer_tagged(
            &self.g,
            snap.index(),
            &self.table,
            self.buf.clone(),
            generation,
        )
        .with_plan_stats(snap.stats());
        if let Some(d) = deadline {
            p = p.with_deadline(d);
        }
        let out = p.eval(&q);

        // Record the query and nudge the refresher exactly like the
        // batch layer's adaptive driver: monitoring is part of serving,
        // so remote workloads steer the index too. Plan feedback
        // (predicted vs actual per operator) rides the same lock.
        //
        // Durability (log-before-ack): when the monitor has a WAL
        // attached (`WorkloadMonitor::attach_wal`), `record` appends
        // the query to the log under this same monitor lock — before
        // `execute` returns and therefore before the server writes the
        // response bytes. Every acknowledged query is in the log (or
        // was never acknowledged), and the log order is the monitor's
        // serialization order, which is what replay reapplies.
        let path = recordable_path(&q);
        if path.is_some() || out.plan.is_some() {
            let due = {
                let mut m = self.monitor.lock().unwrap_or_else(|p| p.into_inner());
                if let Some(rep) = &out.plan {
                    m.record_plan(rep.feedback());
                }
                if let Some(path) = path {
                    m.record(path);
                    m.refresh_due(&self.g, snap.index())
                } else {
                    false
                }
            };
            if due {
                if let Some(r) = &self.refresher {
                    r.request_refresh();
                }
            }
        }

        let status = if out.interrupted {
            Status::DeadlineExceeded
        } else {
            Status::Ok
        };
        let mut nodes = out.nodes;
        if let Some(owned) = &self.owned {
            filter_owned(&mut nodes, owned);
        }
        ExecOutcome {
            status,
            generation,
            total_rows: nodes.len().min(u32::MAX as usize) as u32,
            rows: nodes.iter().take(MAX_ROW_SAMPLE).map(|n| n.0).collect(),
            pages_read: out.cost.pages_read,
            join_work: out.cost.join_work,
            plan_digest: out.plan.as_ref().map_or(0, |r| r.digest),
        }
    }
}

/// Retains exactly the nodes in `owned` (both inputs sorted ascending
/// by node id — document order), by a linear merge intersect.
fn filter_owned(nodes: &mut Vec<xmlgraph::NodeId>, owned: &[u32]) {
    let mut oi = 0usize;
    nodes.retain(|n| {
        while owned.get(oi).is_some_and(|&o| o < n.0) {
            oi += 1;
        }
        owned.get(oi).copied() == Some(n.0)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex::{Apex, RefreshPolicy};
    use apex_storage::PageModel;
    use xmlgraph::builder::moviedb;

    fn engine() -> Engine {
        let g = Arc::new(moviedb());
        let table = Arc::new(DataTable::build(&g, PageModel::default()));
        let cell = Arc::new(IndexCell::new(Apex::build_initial(&g)));
        let monitor = Arc::new(Mutex::new(WorkloadMonitor::new(
            100,
            0.3,
            RefreshPolicy::Manual,
        )));
        Engine::new(g, table, cell, monitor)
    }

    #[test]
    fn executes_and_reports_cost() {
        let e = engine();
        let out = e.execute("//actor/name", None);
        assert_eq!(out.status, Status::Ok);
        assert!(out.total_rows > 0);
        assert_eq!(out.rows.len() as u32, out.total_rows.min(64));
        assert!(out.pages_read > 0, "extent scans must charge pages");
        assert_eq!(out.generation, 0);
        assert_ne!(out.plan_digest, 0, "path queries carry a plan digest");
    }

    #[test]
    fn plan_feedback_reaches_the_monitor() {
        let e = engine();
        e.execute("//director/movie/title", None);
        let m = e.monitor.lock().expect("monitor");
        let fb = m.plan_feedback();
        assert!(
            fb.plans() > 0 && fb.actual_total() > 0,
            "executed plans must report predicted-vs-actual cost"
        );
    }

    #[test]
    fn parse_errors_are_a_status_not_a_panic() {
        let e = engine();
        let out = e.execute("actor/name", None); // missing leading //
        assert_eq!(out.status, Status::ParseError);
        assert_eq!(out.total_rows, 0);
        let out = e.execute("//no_such_label_anywhere", None);
        // Unknown labels parse to an error too (labels are interned).
        assert_eq!(out.status, Status::ParseError);
    }

    #[test]
    fn expired_deadline_interrupts_mid_execution() {
        let e = engine();
        // A deadline already in the past trips the first checkpoint.
        let out = e.execute("//actor/name", Some(Instant::now()));
        assert_eq!(out.status, Status::DeadlineExceeded);
    }

    #[test]
    fn owned_filter_partitions_results_disjointly() {
        let full = engine().execute("//actor/name", None);
        assert_eq!(full.status, Status::Ok);
        // Split the id space in two by parity; the halves must tile the
        // full result exactly.
        let g = Arc::new(moviedb());
        let evens: Vec<u32> = (0..g.node_count() as u32).filter(|n| n % 2 == 0).collect();
        let odds: Vec<u32> = (0..g.node_count() as u32).filter(|n| n % 2 == 1).collect();
        let e0 = engine().with_owned_nodes(Arc::new(evens));
        let e1 = engine().with_owned_nodes(Arc::new(odds));
        let a = e0.execute("//actor/name", None);
        let b = e1.execute("//actor/name", None);
        assert_eq!(a.total_rows + b.total_rows, full.total_rows);
        let mut union: Vec<u32> = a.rows.iter().chain(b.rows.iter()).copied().collect();
        union.sort_unstable();
        assert_eq!(union, full.rows, "shard halves must tile the full rows");
    }

    #[test]
    fn shard_tag_is_exposed() {
        let e = engine().with_shard_tag(3);
        assert_eq!(e.shard_tag(), Some(3));
        assert_eq!(engine().shard_tag(), None);
    }

    #[test]
    fn queries_are_recorded_into_the_monitor() {
        let e = engine();
        let before = e.monitor.lock().expect("monitor").total_recorded();
        e.execute("//actor/name", None);
        e.execute("//movie/title", None);
        let after = e.monitor.lock().expect("monitor").total_recorded();
        assert_eq!(after - before, 2);
    }
}
