//! A small blocking client for the apex-net protocol.
//!
//! Two usage styles:
//!
//! * **closed loop** — [`Client::call`] sends one request and blocks
//!   for its response (one outstanding request at a time);
//! * **open loop / pipelined** — [`Client::send`] many requests, then
//!   [`Client::recv`] responses as they arrive; ids correlate them
//!   (workers race, so responses may be reordered).
//!
//! The load generator and the CLI both sit on this type, as do the
//! server's own end-to-end tests.

use std::net::{TcpStream, ToSocketAddrs};

use crate::wire::{
    read_message, write_message, Message, Request, Response, WireError, DEFAULT_MAX_FRAME,
};

/// A blocking connection to an apex-net server.
pub struct Client {
    reader: TcpStream,
    writer: TcpStream,
    next_id: u64,
    max_frame: usize,
}

impl Client {
    /// Connects to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, WireError> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = writer.try_clone()?;
        Ok(Client {
            reader,
            writer,
            next_id: 0,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Sends one request without waiting; returns its id.
    /// `deadline_ms` 0 means "no client deadline" (the server may still
    /// apply its configured default).
    pub fn send(&mut self, query: &str, deadline_ms: u32) -> Result<u64, WireError> {
        let id = self.next_id;
        self.next_id += 1;
        write_message(
            &mut self.writer,
            &Message::Request(Request {
                id,
                deadline_ms,
                query: query.to_string(),
            }),
        )?;
        Ok(id)
    }

    /// Receives the next response in arrival order. `Ok(None)` means
    /// the server closed the connection cleanly (drain finished).
    pub fn recv(&mut self) -> Result<Option<Response>, WireError> {
        match read_message(&mut self.reader, self.max_frame)? {
            None => Ok(None),
            Some(Message::Response(resp)) => Ok(Some(resp)),
            // A server sending *requests* is a protocol error.
            Some(Message::Request(_)) => Err(WireError::Malformed("server sent a request frame")),
        }
    }

    /// Closed-loop convenience: send one request, block for *its*
    /// response. Assumes no other requests are outstanding on this
    /// connection (stray earlier responses are skipped by id).
    pub fn call(&mut self, query: &str, deadline_ms: u32) -> Result<Response, WireError> {
        let id = self.send(query, deadline_ms)?;
        loop {
            match self.recv()? {
                None => return Err(WireError::ConnectionClosed),
                Some(resp) if resp.id == id => return Ok(resp),
                Some(_) => {}
            }
        }
    }
}
