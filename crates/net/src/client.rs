//! A small blocking client for the apex-net protocol.
//!
//! Two usage styles:
//!
//! * **closed loop** — [`Client::call`] sends one request and blocks
//!   for its response (one outstanding request at a time);
//! * **open loop / pipelined** — [`Client::send`] many requests, then
//!   [`Client::recv`] responses as they arrive; ids correlate them
//!   (workers race, so responses may be reordered).
//!
//! [`Client::call_retrying`] layers fault tolerance on the closed loop:
//! a broken connection is transparently re-dialed (the resolved peer
//! addresses are kept from `connect`), and an explicit shed response
//! (`Overloaded` / `Draining`) is retried after a jittered exponential
//! backoff, up to a bounded attempt budget. Every recovery action is
//! surfaced in [`ClientStats`] so load generators can report how much
//! resilience the run actually consumed.
//!
//! The load generator and the CLI both sit on this type, as do the
//! server's own end-to-end tests and the scatter-gather router's
//! per-replica connections.

use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::wire::{
    read_message, write_message, Message, Request, Response, WireError, DEFAULT_MAX_FRAME,
};

/// Bounds for [`Client::call_retrying`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, the first call included (min 1).
    pub attempts: u32,
    /// Base backoff slept before retrying a shed response; doubles per
    /// retry up to `backoff_cap`. The actual sleep is jittered to
    /// between half and all of the current backoff.
    pub backoff: Duration,
    /// Upper bound on one backoff sleep.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            backoff: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(20),
        }
    }
}

/// Monotonic counters for the client's recovery actions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Successful re-dials after a broken connection.
    pub reconnects: u64,
    /// Shed responses (`Overloaded` / `Draining`) absorbed by a
    /// backoff-and-retry instead of being returned to the caller.
    pub retried_sheds: u64,
    /// Calls that exhausted the attempt budget and returned the final
    /// shed response to the caller anyway.
    pub retry_give_ups: u64,
}

/// A blocking connection to an apex-net server.
pub struct Client {
    reader: TcpStream,
    writer: TcpStream,
    next_id: u64,
    max_frame: usize,
    /// Resolved peer addresses, kept for reconnects.
    peers: Vec<SocketAddr>,
    stats: ClientStats,
    /// xorshift64 state for backoff jitter (no RNG dependency here).
    jitter: u64,
}

/// Dials the first reachable peer.
fn open(peers: &[SocketAddr]) -> Result<(TcpStream, TcpStream), WireError> {
    let mut last: Option<io::Error> = None;
    for addr in peers {
        match TcpStream::connect(addr) {
            Ok(writer) => {
                writer.set_nodelay(true)?;
                let reader = writer.try_clone()?;
                return Ok((reader, writer));
            }
            Err(e) => last = Some(e),
        }
    }
    Err(match last {
        Some(e) => WireError::Io(e),
        None => WireError::Io(io::Error::new(
            io::ErrorKind::InvalidInput,
            "address resolved to no peers",
        )),
    })
}

impl Client {
    /// Connects to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, WireError> {
        let peers: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let (reader, writer) = open(&peers)?;
        let port = peers.first().map_or(0, |a| u64::from(a.port()));
        Ok(Client {
            reader,
            writer,
            next_id: 0,
            max_frame: DEFAULT_MAX_FRAME,
            peers,
            stats: ClientStats::default(),
            // Any nonzero seed works; mix the port so two clients of
            // different servers don't sleep in lockstep.
            jitter: 0x9E37_79B9_7F4A_7C15 ^ (port << 32) | 1,
        })
    }

    /// Drops the current connection and dials the peers again. Request
    /// ids keep counting up, so responses never collide across the two
    /// connection lives.
    pub fn reconnect(&mut self) -> Result<(), WireError> {
        let (reader, writer) = open(&self.peers)?;
        self.reader = reader;
        self.writer = writer;
        self.stats.reconnects += 1;
        Ok(())
    }

    /// Recovery counters accumulated so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Bounds one blocking [`Client::recv`] (and therefore
    /// [`Client::call`]): `None` blocks forever (the default). A read
    /// that trips the timeout surfaces as [`WireError::Io`] and leaves
    /// the stream mid-frame — callers should [`Client::reconnect`].
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), WireError> {
        self.reader.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends one request without waiting; returns its id.
    /// `deadline_ms` 0 means "no client deadline" (the server may still
    /// apply its configured default).
    pub fn send(&mut self, query: &str, deadline_ms: u32) -> Result<u64, WireError> {
        let id = self.next_id;
        self.next_id += 1;
        write_message(
            &mut self.writer,
            &Message::Request(Request {
                id,
                deadline_ms,
                query: query.to_string(),
            }),
        )?;
        Ok(id)
    }

    /// Receives the next response in arrival order. `Ok(None)` means
    /// the server closed the connection cleanly (drain finished).
    pub fn recv(&mut self) -> Result<Option<Response>, WireError> {
        match read_message(&mut self.reader, self.max_frame)? {
            None => Ok(None),
            Some(Message::Response(resp)) => Ok(Some(resp)),
            // A server sending *requests* is a protocol error.
            Some(Message::Request(_)) => Err(WireError::Malformed("server sent a request frame")),
        }
    }

    /// Closed-loop convenience: send one request, block for *its*
    /// response. Assumes no other requests are outstanding on this
    /// connection (stray earlier responses are skipped by id).
    pub fn call(&mut self, query: &str, deadline_ms: u32) -> Result<Response, WireError> {
        let id = self.send(query, deadline_ms)?;
        loop {
            match self.recv()? {
                None => return Err(WireError::ConnectionClosed),
                Some(resp) if resp.id == id => return Ok(resp),
                Some(_) => {}
            }
        }
    }

    /// [`Client::call`] with bounded fault tolerance: transport
    /// failures (broken pipe, truncated frame, clean close mid-call)
    /// trigger a reconnect and a resend; shed responses trigger a
    /// jittered-backoff retry. After `policy.attempts` total tries the
    /// last response or error is returned as-is — bounded, never an
    /// infinite loop. Protocol errors (`BadVersion`, `Malformed`, …)
    /// are returned immediately: retrying cannot fix a peer speaking a
    /// different protocol.
    pub fn call_retrying(
        &mut self,
        query: &str,
        deadline_ms: u32,
        policy: &RetryPolicy,
    ) -> Result<Response, WireError> {
        let attempts = policy.attempts.max(1);
        let mut backoff = policy.backoff;
        let mut result = self.call(query, deadline_ms);
        for _ in 1..attempts {
            match &result {
                Ok(resp) if resp.status.is_shed() => {
                    self.stats.retried_sheds += 1;
                    std::thread::sleep(self.jittered(backoff, policy.backoff_cap));
                    backoff = backoff.saturating_mul(2).min(policy.backoff_cap);
                }
                Ok(_) => return result,
                Err(WireError::Io(_) | WireError::ConnectionClosed | WireError::Truncated) => {
                    // A dead connection: re-dial before resending. A
                    // failed reconnect is terminal (the peers are gone).
                    self.reconnect()?;
                }
                Err(_) => return result,
            }
            result = self.call(query, deadline_ms);
        }
        if matches!(&result, Ok(resp) if resp.status.is_shed()) {
            self.stats.retry_give_ups += 1;
        }
        result
    }

    /// A sleep between `d/2` and `d` (capped), decorrelating retry
    /// storms across clients without an RNG dependency.
    fn jittered(&mut self, d: Duration, cap: Duration) -> Duration {
        let mut x = self.jitter;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter = x;
        let d = d.min(cap);
        let half = d / 2;
        let span = half.as_micros().min(u128::from(u64::MAX)) as u64;
        let extra = if span == 0 { 0 } else { x % (span + 1) };
        half + Duration::from_micros(extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{Status, DEFAULT_MAX_FRAME};
    use std::net::TcpListener;

    /// A scripted one-connection-at-a-time responder: for each accepted
    /// connection it answers `per_conn` requests with the scripted
    /// statuses (then drops the connection, mid-script or not).
    fn scripted_server(script: Vec<Vec<Option<Status>>>) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            for conn_script in script {
                let (mut stream, _) = match listener.accept() {
                    Ok(s) => s,
                    Err(_) => return,
                };
                for action in conn_script {
                    let req = match read_message(&mut stream, DEFAULT_MAX_FRAME) {
                        Ok(Some(Message::Request(r))) => r,
                        _ => break,
                    };
                    let Some(status) = action else {
                        break; // scripted connection drop: no response
                    };
                    let resp = Response {
                        id: req.id,
                        status,
                        generation: 1,
                        total_rows: 0,
                        rows: vec![],
                        pages_read: 0,
                        join_work: 0,
                        server_us: 0,
                        plan_digest: 0,
                        gens: vec![],
                    };
                    if write_message(&mut stream, &Message::Response(resp)).is_err() {
                        break;
                    }
                }
            }
        });
        addr
    }

    #[test]
    fn retries_sheds_with_backoff_until_served() {
        let addr = scripted_server(vec![vec![
            Some(Status::Overloaded),
            Some(Status::Draining),
            Some(Status::Ok),
        ]]);
        let mut c = Client::connect(addr).expect("connect");
        let resp = c
            .call_retrying("//a", 0, &RetryPolicy::default())
            .expect("call");
        assert_eq!(resp.status, Status::Ok);
        let stats = c.stats();
        assert_eq!(stats.retried_sheds, 2);
        assert_eq!(stats.retry_give_ups, 0);
        assert_eq!(stats.reconnects, 0);
    }

    #[test]
    fn bounded_attempts_surface_the_final_shed() {
        let addr = scripted_server(vec![vec![Some(Status::Overloaded); 8]]);
        let mut c = Client::connect(addr).expect("connect");
        let policy = RetryPolicy {
            attempts: 3,
            ..RetryPolicy::default()
        };
        let resp = c.call_retrying("//a", 0, &policy).expect("call");
        assert_eq!(resp.status, Status::Overloaded, "give-up returns the shed");
        let stats = c.stats();
        assert_eq!(stats.retried_sheds, 2, "attempts are bounded");
        assert_eq!(stats.retry_give_ups, 1);
    }

    #[test]
    fn reconnects_across_a_dropped_connection() {
        // First connection dies without answering; the second serves.
        let addr = scripted_server(vec![vec![None], vec![Some(Status::Ok)]]);
        let mut c = Client::connect(addr).expect("connect");
        let resp = c
            .call_retrying("//a", 0, &RetryPolicy::default())
            .expect("call");
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(c.stats().reconnects, 1);
    }

    #[test]
    fn plain_call_still_errors_through() {
        let addr = scripted_server(vec![vec![None]]);
        let mut c = Client::connect(addr).expect("connect");
        assert!(c.call("//a", 0).is_err(), "call has no retry semantics");
    }
}
