//! The framed binary wire protocol.
//!
//! Every message travels as one *frame*: a little-endian `u32` payload
//! length followed by the payload. The payload starts with a versioned
//! two-byte header, then the body:
//!
//! | bytes | field | notes |
//! |---|---|---|
//! | 4 | frame length | payload bytes that follow; bounded by the peer's max-frame cap |
//! | 1 | protocol version | [`PROTOCOL_VERSION`]; anything else is rejected |
//! | 1 | kind | 0 = request, 1 = response |
//!
//! Request body (kind 0):
//!
//! | bytes | field |
//! |---|---|
//! | 8 | request id (echoed verbatim in the response) |
//! | 4 | deadline budget in ms (0 = no deadline) |
//! | 4 | query length `n` (≤ [`MAX_QUERY_BYTES`]) |
//! | n | query text, UTF-8, in the paper's `//a/b` notation |
//!
//! Response body (kind 1):
//!
//! | bytes | field |
//! |---|---|
//! | 8 | request id |
//! | 1 | status ([`Status`]) |
//! | 8 | index generation that served (or would have served) the query |
//! | 4 | total result rows |
//! | 4 | sampled row count `k` (≤ [`MAX_ROW_SAMPLE`], ≤ total) |
//! | 4k | sampled result node ids |
//! | 8 | pages read (cost summary) |
//! | 8 | join work (cost summary) |
//! | 8 | server-side service time in µs |
//! | 8 | plan digest (0 = no cost-based plan ran) |
//! | 2 | generation-vector entry count `g` (≤ [`MAX_GEN_ENTRIES`]) |
//! | 10g | per-shard entries: `u16` shard id + `u64` generation |
//!
//! The generation vector is what makes scatter-gather auditable: a
//! shard-local server stamps its own `(shard, generation)` entry, the
//! router merges the entries of every sub-response it combined, and a
//! client can therefore check that no response mixes two generations
//! of the same shard. Single-process servers leave it empty (protocol
//! version 2 introduced the field; version 1 peers are rejected).
//!
//! Decoding is total: every malformed input maps to a [`WireError`]
//! (truncated frame, oversized length prefix, unknown version or kind,
//! short or trailing body bytes, invalid UTF-8) and never panics — the
//! robustness suite and a proptest roundtrip in this module pin that.

use std::fmt;
use std::io::{self, Read, Write};

/// The only protocol version this build speaks (2 = the generation
/// vector joined the response body).
pub const PROTOCOL_VERSION: u8 = 2;

/// Default cap on one frame's payload size (1 MiB).
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Cap on the query text inside one request.
pub const MAX_QUERY_BYTES: usize = 1 << 16;

/// Cap on the result-row sample a response carries (the full count is
/// always reported; the ids are a prefix sample, like a `LIMIT`).
pub const MAX_ROW_SAMPLE: usize = 64;

/// Cap on the per-shard generation vector a response carries — far
/// above any real topology, low enough that a hostile count cannot
/// balloon an allocation.
pub const MAX_GEN_ENTRIES: usize = 1024;

const KIND_REQUEST: u8 = 0;
const KIND_RESPONSE: u8 = 1;

/// How the server disposed of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// Executed to completion; rows and cost are authoritative.
    Ok,
    /// Shed at admission: the bounded request queue was full.
    Overloaded,
    /// The deadline passed — at dequeue, or at a mid-execution
    /// checkpoint (rows are then a partial sample, never complete).
    DeadlineExceeded,
    /// The query text did not parse; nothing executed.
    ParseError,
    /// Shed because the server is draining and no longer admits work.
    Draining,
}

impl Status {
    /// The wire byte.
    pub fn code(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::Overloaded => 1,
            Status::DeadlineExceeded => 2,
            Status::ParseError => 3,
            Status::Draining => 4,
        }
    }

    /// Parses the wire byte.
    pub fn from_code(code: u8) -> Result<Status, WireError> {
        match code {
            0 => Ok(Status::Ok),
            1 => Ok(Status::Overloaded),
            2 => Ok(Status::DeadlineExceeded),
            3 => Ok(Status::ParseError),
            4 => Ok(Status::Draining),
            _ => Err(WireError::Malformed("unknown status code")),
        }
    }

    /// True for the two admission-shed statuses (`Overloaded`,
    /// `Draining`) — the explicit refusals that replace silent drops.
    pub fn is_shed(self) -> bool {
        matches!(self, Status::Overloaded | Status::Draining)
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Status::Ok => "ok",
            Status::Overloaded => "overloaded",
            Status::DeadlineExceeded => "deadline-exceeded",
            Status::ParseError => "parse-error",
            Status::Draining => "draining",
        };
        f.write_str(s)
    }
}

/// One entry of a response's per-shard generation vector: which index
/// generation of shard `shard` contributed rows to the response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardGen {
    /// Shard id, as assigned by the cluster's `ShardMap`.
    pub shard: u16,
    /// The shard's published index generation that served the query.
    pub generation: u64,
}

/// One query request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Deadline budget in milliseconds from server admission
    /// (0 = none; the server may still apply its configured default).
    pub deadline_ms: u32,
    /// The query in the paper's notation (`//a/b`, `//a//b`,
    /// `//a/b[text() = "v"]`).
    pub query: String,
}

/// One response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The request id this answers.
    pub id: u64,
    /// Disposition.
    pub status: Status,
    /// The index generation that served the request — load generators
    /// watch this to observe snapshot swaps under live traffic.
    pub generation: u64,
    /// Total result rows the query produced.
    pub total_rows: u32,
    /// A prefix sample of result node ids (≤ [`MAX_ROW_SAMPLE`]).
    pub rows: Vec<u32>,
    /// Pages read, from the logical cost model.
    pub pages_read: u64,
    /// Join work, from the logical cost model.
    pub join_work: u64,
    /// Server-side service time in microseconds (queue wait excluded).
    pub server_us: u64,
    /// Digest of the cost-based plan that served the query (0 when no
    /// planner ran — sheds, parse errors). Load generators correlate
    /// this with tail latency to attribute slow requests to planning
    /// choices across generations.
    pub plan_digest: u64,
    /// Per-shard generation vector (≤ [`MAX_GEN_ENTRIES`] entries).
    /// Empty on single-process servers; a shard-local server stamps
    /// exactly one entry; a scatter-gather router stamps one entry per
    /// shard it merged. At most one entry per shard id — the "no mixed
    /// generations" consistency invariant.
    pub gens: Vec<ShardGen>,
}

/// Either message kind, as decoded off a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// A request frame.
    Request(Request),
    /// A response frame.
    Response(Response),
}

/// Every way a frame can fail to travel or parse.
#[derive(Debug)]
pub enum WireError {
    /// Transport failure.
    Io(io::Error),
    /// The stream ended inside a frame (mid-request disconnect).
    Truncated,
    /// The length prefix exceeds the configured frame cap.
    Oversized {
        /// The advertised payload length.
        len: u64,
        /// The cap it violated.
        max: usize,
    },
    /// The payload's version byte is not [`PROTOCOL_VERSION`].
    BadVersion(u8),
    /// The payload's kind byte is neither request nor response.
    BadKind(u8),
    /// The stream closed cleanly where a message was still expected.
    ConnectionClosed,
    /// A structurally invalid body (short fields, trailing bytes,
    /// invalid UTF-8, out-of-range counts).
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o: {e}"),
            WireError::Truncated => write!(f, "stream ended inside a frame"),
            WireError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte cap")
            }
            WireError::BadVersion(v) => {
                write!(
                    f,
                    "protocol version {v} (this build speaks {PROTOCOL_VERSION})"
                )
            }
            WireError::BadKind(k) => write!(f, "unknown message kind {k}"),
            WireError::ConnectionClosed => write!(f, "connection closed before a full message"),
            WireError::Malformed(why) => write!(f, "malformed body: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> WireError {
        WireError::Io(e)
    }
}

/// Bounds-checked little-endian reader over one payload.
struct Cursor<'a> {
    buf: &'a [u8],
    off: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, off: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        let end = self.off.checked_add(n).ok_or(WireError::Malformed(what))?;
        let s = self
            .buf
            .get(self.off..end)
            .ok_or(WireError::Malformed(what))?;
        self.off = end;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        let b = self.take(1, what)?;
        b.first().copied().ok_or(WireError::Malformed(what))
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        let b: [u8; 2] = self
            .take(2, what)?
            .try_into()
            .map_err(|_| WireError::Malformed(what))?;
        Ok(u16::from_le_bytes(b))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let b: [u8; 4] = self
            .take(4, what)?
            .try_into()
            .map_err(|_| WireError::Malformed(what))?;
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b: [u8; 8] = self
            .take(8, what)?
            .try_into()
            .map_err(|_| WireError::Malformed(what))?;
        Ok(u64::from_le_bytes(b))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.off == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after body"))
        }
    }
}

impl Request {
    fn encode_body(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        if self.query.len() > MAX_QUERY_BYTES {
            return Err(WireError::Malformed("query text exceeds MAX_QUERY_BYTES"));
        }
        out.extend_from_slice(&self.id.to_le_bytes());
        out.extend_from_slice(&self.deadline_ms.to_le_bytes());
        out.extend_from_slice(&(self.query.len() as u32).to_le_bytes());
        out.extend_from_slice(self.query.as_bytes());
        Ok(())
    }

    fn decode_body(cur: &mut Cursor<'_>) -> Result<Request, WireError> {
        let id = cur.u64("request id")?;
        let deadline_ms = cur.u32("deadline")?;
        let qlen = cur.u32("query length")? as usize;
        if qlen > MAX_QUERY_BYTES {
            return Err(WireError::Malformed("query text exceeds MAX_QUERY_BYTES"));
        }
        let bytes = cur.take(qlen, "query text")?;
        let query = std::str::from_utf8(bytes)
            .map_err(|_| WireError::Malformed("query text is not UTF-8"))?
            .to_string();
        Ok(Request {
            id,
            deadline_ms,
            query,
        })
    }
}

impl Response {
    fn encode_body(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        if self.rows.len() > MAX_ROW_SAMPLE || self.rows.len() as u64 > self.total_rows as u64 {
            return Err(WireError::Malformed("row sample exceeds bounds"));
        }
        out.extend_from_slice(&self.id.to_le_bytes());
        out.push(self.status.code());
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&self.total_rows.to_le_bytes());
        out.extend_from_slice(&(self.rows.len() as u32).to_le_bytes());
        for r in &self.rows {
            out.extend_from_slice(&r.to_le_bytes());
        }
        out.extend_from_slice(&self.pages_read.to_le_bytes());
        out.extend_from_slice(&self.join_work.to_le_bytes());
        out.extend_from_slice(&self.server_us.to_le_bytes());
        out.extend_from_slice(&self.plan_digest.to_le_bytes());
        if self.gens.len() > MAX_GEN_ENTRIES {
            return Err(WireError::Malformed(
                "generation vector exceeds MAX_GEN_ENTRIES",
            ));
        }
        out.extend_from_slice(&(self.gens.len() as u16).to_le_bytes());
        for e in &self.gens {
            out.extend_from_slice(&e.shard.to_le_bytes());
            out.extend_from_slice(&e.generation.to_le_bytes());
        }
        Ok(())
    }

    fn decode_body(cur: &mut Cursor<'_>) -> Result<Response, WireError> {
        let id = cur.u64("response id")?;
        let status = Status::from_code(cur.u8("status")?)?;
        let generation = cur.u64("generation")?;
        let total_rows = cur.u32("total rows")?;
        let k = cur.u32("sample count")? as usize;
        if k > MAX_ROW_SAMPLE || k as u64 > total_rows as u64 {
            return Err(WireError::Malformed("row sample exceeds bounds"));
        }
        let mut rows = Vec::with_capacity(k);
        for _ in 0..k {
            rows.push(cur.u32("row id")?);
        }
        let pages_read = cur.u64("pages_read")?;
        let join_work = cur.u64("join_work")?;
        let server_us = cur.u64("server_us")?;
        let plan_digest = cur.u64("plan_digest")?;
        let gen_count = cur.u16("generation count")? as usize;
        if gen_count > MAX_GEN_ENTRIES {
            return Err(WireError::Malformed(
                "generation vector exceeds MAX_GEN_ENTRIES",
            ));
        }
        let mut gens = Vec::with_capacity(gen_count);
        for _ in 0..gen_count {
            gens.push(ShardGen {
                shard: cur.u16("gen shard id")?,
                generation: cur.u64("gen generation")?,
            });
        }
        Ok(Response {
            id,
            status,
            generation,
            total_rows,
            rows,
            pages_read,
            join_work,
            server_us,
            plan_digest,
            gens,
        })
    }
}

impl Message {
    /// Encodes the versioned payload (without the length prefix).
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut out = vec![PROTOCOL_VERSION];
        match self {
            Message::Request(r) => {
                out.push(KIND_REQUEST);
                r.encode_body(&mut out)?;
            }
            Message::Response(r) => {
                out.push(KIND_RESPONSE);
                r.encode_body(&mut out)?;
            }
        }
        Ok(out)
    }

    /// Decodes one payload (a frame's contents, without the length
    /// prefix). Total: every non-conforming input maps to a
    /// [`WireError`].
    pub fn decode(payload: &[u8]) -> Result<Message, WireError> {
        let mut cur = Cursor::new(payload);
        let version = cur.u8("version byte")?;
        if version != PROTOCOL_VERSION {
            return Err(WireError::BadVersion(version));
        }
        let kind = cur.u8("kind byte")?;
        let msg = match kind {
            KIND_REQUEST => Message::Request(Request::decode_body(&mut cur)?),
            KIND_RESPONSE => Message::Response(Response::decode_body(&mut cur)?),
            other => return Err(WireError::BadKind(other)),
        };
        cur.finish()?;
        Ok(msg)
    }
}

/// Reads exactly `buf.len()` bytes, retrying on `Interrupted`. Returns
/// the bytes read before EOF (so callers can tell "clean EOF" from
/// "EOF inside a frame").
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> Result<usize, WireError> {
    let mut got = 0;
    while got < buf.len() {
        let Some(rest) = buf.get_mut(got..) else {
            break; // can't occur: got < buf.len()
        };
        match r.read(rest) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(got)
}

/// Reads one frame's payload (blocking). `Ok(None)` is a clean EOF at a
/// frame boundary; EOF anywhere else is [`WireError::Truncated`]; a
/// length prefix above `max_frame` is [`WireError::Oversized`] and the
/// frame is *not* consumed (callers should close the connection).
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> Result<Option<Vec<u8>>, WireError> {
    let mut hdr = [0u8; 4];
    match read_full(r, &mut hdr)? {
        0 => return Ok(None),
        4 => {}
        _ => return Err(WireError::Truncated),
    }
    let len = u32::from_le_bytes(hdr) as usize;
    if len > max_frame {
        return Err(WireError::Oversized {
            len: len as u64,
            max: max_frame,
        });
    }
    let mut payload = vec![0u8; len];
    if read_full(r, &mut payload)? != len {
        return Err(WireError::Truncated);
    }
    Ok(Some(payload))
}

/// Reads and decodes one message (blocking). `Ok(None)` on clean EOF.
pub fn read_message(r: &mut impl Read, max_frame: usize) -> Result<Option<Message>, WireError> {
    match read_frame(r, max_frame)? {
        None => Ok(None),
        Some(payload) => Ok(Some(Message::decode(&payload)?)),
    }
}

/// Frames and writes one message.
pub fn write_message(w: &mut impl Write, msg: &Message) -> Result<(), WireError> {
    let payload = msg.encode()?;
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(msg: &Message) -> Message {
        let payload = msg.encode().expect("encode");
        Message::decode(&payload).expect("decode")
    }

    #[test]
    fn request_roundtrip() {
        let m = Message::Request(Request {
            id: 42,
            deadline_ms: 250,
            query: "//actor/name".into(),
        });
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn response_roundtrip() {
        let m = Message::Response(Response {
            id: u64::MAX,
            status: Status::DeadlineExceeded,
            generation: 7,
            total_rows: 1000,
            rows: vec![1, 5, 9],
            pages_read: 123,
            join_work: 456,
            server_us: 789,
            plan_digest: 0xfeed_beef,
            gens: vec![
                ShardGen {
                    shard: 0,
                    generation: 7,
                },
                ShardGen {
                    shard: 2,
                    generation: 9,
                },
            ],
        });
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn stream_roundtrip_and_clean_eof() {
        let a = Message::Request(Request {
            id: 1,
            deadline_ms: 0,
            query: "//a".into(),
        });
        let b = Message::Response(Response {
            id: 1,
            status: Status::Ok,
            generation: 0,
            total_rows: 0,
            rows: vec![],
            pages_read: 0,
            join_work: 0,
            server_us: 0,
            plan_digest: 0,
            gens: vec![],
        });
        let mut wire = Vec::new();
        write_message(&mut wire, &a).expect("write a");
        write_message(&mut wire, &b).expect("write b");
        let mut r = &wire[..];
        assert_eq!(read_message(&mut r, DEFAULT_MAX_FRAME).expect("a"), Some(a));
        assert_eq!(read_message(&mut r, DEFAULT_MAX_FRAME).expect("b"), Some(b));
        assert_eq!(read_message(&mut r, DEFAULT_MAX_FRAME).expect("eof"), None);
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_panic() {
        let m = Message::Request(Request {
            id: 9,
            deadline_ms: 0,
            query: "//actor/name".into(),
        });
        let mut wire = Vec::new();
        write_message(&mut wire, &m).expect("write");
        // Every proper prefix must fail cleanly (clean EOF only at 0).
        for cut in 1..wire.len() {
            let mut r = &wire[..cut];
            assert!(
                matches!(
                    read_message(&mut r, DEFAULT_MAX_FRAME),
                    Err(WireError::Truncated)
                ),
                "prefix of {cut} bytes"
            );
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        let mut r = &wire[..];
        assert!(matches!(
            read_message(&mut r, DEFAULT_MAX_FRAME),
            Err(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn unknown_version_and_kind_are_rejected() {
        let m = Message::Request(Request {
            id: 1,
            deadline_ms: 0,
            query: "//a".into(),
        });
        let mut payload = m.encode().expect("encode");
        payload[0] = 99;
        assert!(matches!(
            Message::decode(&payload),
            Err(WireError::BadVersion(99))
        ));
        payload[0] = PROTOCOL_VERSION;
        payload[1] = 7;
        assert!(matches!(
            Message::decode(&payload),
            Err(WireError::BadKind(7))
        ));
    }

    #[test]
    fn short_and_trailing_bodies_are_rejected() {
        let m = Message::Request(Request {
            id: 1,
            deadline_ms: 0,
            query: "//a/b".into(),
        });
        let payload = m.encode().expect("encode");
        for cut in 2..payload.len() {
            assert!(
                Message::decode(&payload[..cut]).is_err(),
                "short body at {cut}"
            );
        }
        let mut long = payload.clone();
        long.push(0);
        assert!(matches!(
            Message::decode(&long),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_generation_vector_refuses_to_encode() {
        let m = Message::Response(Response {
            id: 1,
            status: Status::Ok,
            generation: 0,
            total_rows: 0,
            rows: vec![],
            pages_read: 0,
            join_work: 0,
            server_us: 0,
            plan_digest: 0,
            gens: vec![
                ShardGen {
                    shard: 0,
                    generation: 0,
                };
                MAX_GEN_ENTRIES + 1
            ],
        });
        assert!(matches!(m.encode(), Err(WireError::Malformed(_))));
    }

    #[test]
    fn response_body_truncations_are_rejected() {
        let m = Message::Response(Response {
            id: 7,
            status: Status::Ok,
            generation: 3,
            total_rows: 2,
            rows: vec![4, 9],
            pages_read: 1,
            join_work: 2,
            server_us: 3,
            plan_digest: 4,
            gens: vec![
                ShardGen {
                    shard: 0,
                    generation: 3,
                },
                ShardGen {
                    shard: 1,
                    generation: 5,
                },
            ],
        });
        let payload = m.encode().expect("encode");
        for cut in 2..payload.len() {
            assert!(
                Message::decode(&payload[..cut]).is_err(),
                "short response body at {cut}"
            );
        }
    }

    #[test]
    fn invalid_utf8_query_is_rejected() {
        let m = Message::Request(Request {
            id: 1,
            deadline_ms: 0,
            query: "//ab".into(),
        });
        let mut payload = m.encode().expect("encode");
        let n = payload.len();
        payload[n - 1] = 0xFF; // orphan continuation byte
        assert!(matches!(
            Message::decode(&payload),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_query_text_refuses_to_encode() {
        let m = Message::Request(Request {
            id: 1,
            deadline_ms: 0,
            query: "x".repeat(MAX_QUERY_BYTES + 1),
        });
        assert!(matches!(m.encode(), Err(WireError::Malformed(_))));
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_decoder() {
        // A deterministic fuzz sweep: mutate a valid payload byte by
        // byte and decode; any result is fine, a panic is not.
        let m = Message::Response(Response {
            id: 3,
            status: Status::Ok,
            generation: 1,
            total_rows: 2,
            rows: vec![10, 20],
            pages_read: 5,
            join_work: 6,
            server_us: 7,
            plan_digest: 8,
            gens: vec![ShardGen {
                shard: 1,
                generation: 4,
            }],
        });
        let payload = m.encode().expect("encode");
        for i in 0..payload.len() {
            for bit in 0..8 {
                let mut mutated = payload.clone();
                mutated[i] ^= 1 << bit;
                let _ = Message::decode(&mutated);
            }
        }
    }

    fn query_strategy() -> impl Strategy<Value = String> {
        proptest::collection::vec(0u8..128, 0..200).prop_map(|bytes| {
            bytes
                .into_iter()
                .map(|b| (b' ' + (b % 94)) as char)
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

        #[test]
        fn request_codec_roundtrips(
            id in 0u64..=u64::MAX,
            deadline_ms in 0u32..=u32::MAX,
            query in query_strategy(),
        ) {
            let m = Message::Request(Request { id, deadline_ms, query: query.clone() });
            let payload = m.encode().expect("encode");
            prop_assert_eq!(Message::decode(&payload).expect("decode"), m);
        }

        #[test]
        fn response_codec_roundtrips(
            id in 0u64..=u64::MAX,
            code in 0u8..5,
            generation in 0u64..1_000_000,
            extra_rows in 0u32..10_000,
            rows in proptest::collection::vec(0u32..=u32::MAX, 0..MAX_ROW_SAMPLE),
            pages_read in 0u64..=u64::MAX,
            join_work in 0u64..=u64::MAX,
            server_us in 0u64..=u64::MAX,
            plan_digest in 0u64..=u64::MAX,
            gens in proptest::collection::vec((0u16..=u16::MAX, 0u64..=u64::MAX), 0..16),
        ) {
            let status = Status::from_code(code).expect("valid code range");
            let total_rows = rows.len() as u32 + extra_rows;
            let gens: Vec<ShardGen> = gens
                .iter()
                .map(|&(shard, generation)| ShardGen { shard, generation })
                .collect();
            let m = Message::Response(Response {
                id, status, generation, total_rows,
                rows: rows.clone(), pages_read, join_work, server_us, plan_digest,
                gens,
            });
            let payload = m.encode().expect("encode");
            prop_assert_eq!(Message::decode(&payload).expect("decode"), m);
        }

        #[test]
        fn random_payloads_never_panic(payload in proptest::collection::vec(0u8..=u8::MAX, 0..300)) {
            let _ = Message::decode(&payload);
        }
    }
}
