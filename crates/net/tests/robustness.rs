//! Wire-protocol robustness: hostile and broken peers must produce
//! clean errors or connection closes — never a panic, never a stuck
//! server, never an accounting hole. Each scenario attacks a live
//! server on a loopback socket, then proves the server still serves a
//! well-behaved client and drains balanced.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use apex::{Apex, IndexCell, RefreshPolicy, WorkloadMonitor};
use apex_net::{Client, Engine, Server, ServerConfig, Status};
use apex_storage::{DataTable, PageModel};
use xmlgraph::builder::moviedb;

fn start_server() -> Server {
    let g = Arc::new(moviedb());
    let table = Arc::new(DataTable::build(&g, PageModel::default()));
    let cell = Arc::new(IndexCell::new(Apex::build_initial(&g)));
    let monitor = Arc::new(Mutex::new(WorkloadMonitor::new(
        100,
        0.3,
        RefreshPolicy::Manual,
    )));
    let engine = Engine::new(g, table, cell, monitor);
    Server::start(engine, ServerConfig::default(), "127.0.0.1:0").expect("bind")
}

/// The server must close a misbehaving connection; reads on our side
/// then see EOF (or a reset, if the kernel turned unread bytes into an
/// RST). Either way it must happen promptly.
fn assert_closed(mut stream: TcpStream) {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut buf = [0u8; 64];
    loop {
        match std::io::Read::read(&mut stream, &mut buf) {
            Ok(0) => return,   // clean close
            Ok(_) => continue, // drain any pending response bytes
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => return,
            Err(e) => panic!("expected close, got {e}"),
        }
    }
}

/// After an attack, a fresh client must still be served correctly.
fn assert_still_serving(addr: SocketAddr) {
    let mut c = Client::connect(addr).expect("connect after attack");
    let r = c.call("//actor/name", 0).expect("call after attack");
    assert_eq!(r.status, Status::Ok);
    assert!(r.total_rows > 0);
}

#[test]
fn oversized_length_prefix_closes_the_connection() {
    let mut server = start_server();
    let addr = server.local_addr();
    let mut s = TcpStream::connect(addr).expect("connect");
    // 512 MiB advertised payload: far over the 1 MiB cap.
    s.write_all(&(512u32 << 20).to_le_bytes()).expect("write");
    s.write_all(&[0u8; 32]).expect("write");
    assert_closed(s);
    assert_still_serving(addr);
    let stats = server.drain();
    // The garbage never became a request; only the probe client counts.
    assert_eq!(stats.accepted, 1);
    assert!(stats.balanced(), "{stats}");
}

#[test]
fn unknown_protocol_version_closes_the_connection() {
    let mut server = start_server();
    let addr = server.local_addr();
    let mut s = TcpStream::connect(addr).expect("connect");
    // A structurally plausible frame with version byte 9.
    let payload = [9u8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
    s.write_all(&(payload.len() as u32).to_le_bytes())
        .expect("write");
    s.write_all(&payload).expect("write");
    assert_closed(s);
    assert_still_serving(addr);
    let stats = server.drain();
    assert_eq!(stats.accepted, 1);
    assert!(stats.balanced(), "{stats}");
}

#[test]
fn garbage_body_closes_the_connection() {
    let mut server = start_server();
    let addr = server.local_addr();
    let mut s = TcpStream::connect(addr).expect("connect");
    // Valid header, then a request body whose query length points past
    // the end of the frame.
    let mut payload = vec![1u8, 0]; // version 1, kind request
    payload.extend_from_slice(&7u64.to_le_bytes()); // id
    payload.extend_from_slice(&0u32.to_le_bytes()); // deadline
    payload.extend_from_slice(&10_000u32.to_le_bytes()); // query len: lies
    payload.extend_from_slice(b"//a");
    s.write_all(&(payload.len() as u32).to_le_bytes())
        .expect("write");
    s.write_all(&payload).expect("write");
    assert_closed(s);
    assert_still_serving(addr);
    let stats = server.drain();
    assert_eq!(stats.accepted, 1);
    assert!(stats.balanced(), "{stats}");
}

#[test]
fn mid_request_disconnect_is_dropped_unaccepted() {
    let mut server = start_server();
    let addr = server.local_addr();
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        // Announce a 100-byte frame, send 10, vanish.
        s.write_all(&100u32.to_le_bytes()).expect("write");
        s.write_all(&[1u8; 10]).expect("write");
        // Dropping the stream closes it mid-frame.
    }
    assert_still_serving(addr);
    let stats = server.drain();
    assert_eq!(stats.accepted, 1, "partial frame must not count");
    assert!(stats.balanced(), "{stats}");
}

#[test]
fn disconnect_before_reading_responses_never_wedges_the_server() {
    let mut server = start_server();
    let addr = server.local_addr();
    {
        let mut c = Client::connect(addr).expect("connect");
        for _ in 0..20 {
            c.send("//actor/name", 0).expect("send");
        }
        // Vanish without reading a single response.
    }
    assert_still_serving(addr);
    let stats = server.drain();
    // Dispositions count even though delivery failed mid-way.
    assert!(stats.balanced(), "{stats}");
    assert!(stats.accepted >= 1);
}

#[test]
fn interleaved_attacks_and_queries_balance() {
    let mut server = start_server();
    let addr = server.local_addr();
    let mut good = Client::connect(addr).expect("connect");
    for round in 0..5 {
        let r = good.call("//movie/title", 0).expect("good call");
        assert_eq!(r.status, Status::Ok, "round {round}");
        // One attacker per round, alternating flavors.
        let mut s = TcpStream::connect(addr).expect("attacker");
        if round % 2 == 0 {
            let _ = s.write_all(&u32::MAX.to_le_bytes());
        } else {
            let _ = s.write_all(&[0xAB; 7]); // torn header + partial body
        }
        drop(s);
    }
    drop(good);
    let stats = server.drain();
    assert_eq!(stats.accepted, 5);
    assert_eq!(stats.served, 5);
    assert!(stats.balanced(), "{stats}");
}
