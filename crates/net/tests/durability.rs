//! Durability across the wire: queries served over a real loopback
//! socket must be in the WAL by the time their response is read
//! (log-before-ack), and a recovery from that directory must rebuild
//! the same adapted index the server was serving.

use std::sync::{Arc, Mutex};

use apex::recover::{recover, RecoverOptions};
use apex::wal::{CrashPlan, DurabilityConfig, Wal};
use apex::{Apex, IndexCell, RefreshPolicy, Refresher, WorkloadMonitor};
use apex_net::{Client, Engine, Server, ServerConfig, Status};
use apex_storage::{DataTable, PageModel};
use xmlgraph::builder::moviedb;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("apex-net-dur-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn acked_queries_are_in_the_log_and_survive_recovery() {
    let dir = tmpdir("ack");
    let g = Arc::new(moviedb());
    let table = Arc::new(DataTable::build(&g, PageModel::default()));
    let cell = Arc::new(IndexCell::new(Apex::build_initial(&g)));
    let wal = Arc::new(
        Wal::open(
            &dir,
            DurabilityConfig {
                group_commit: 1, // fsync every append: ack ⇒ durable
                checkpoint_every: 0,
                retain: 0,
            },
            CrashPlan::none(),
        )
        .expect("open wal"),
    );
    let monitor = Arc::new(Mutex::new(WorkloadMonitor::new(
        100,
        0.3,
        RefreshPolicy::EveryN(4),
    )));
    monitor.lock().unwrap().attach_wal(Arc::clone(&wal));
    let refresher = Arc::new(
        Refresher::spawn_durable(
            Arc::clone(&g),
            Arc::clone(&cell),
            Arc::clone(&monitor),
            Arc::clone(&wal),
        )
        .expect("spawn refresher"),
    );
    let engine = Engine::new(
        Arc::clone(&g),
        table,
        Arc::clone(&cell),
        Arc::clone(&monitor),
    )
    .with_refresher(Arc::clone(&refresher));
    let mut server = Server::start(engine, ServerConfig::default(), "127.0.0.1:0").expect("bind");

    let mut c = Client::connect(server.local_addr()).expect("connect");
    for i in 0..12u64 {
        let q = if i % 3 == 0 {
            "//movie/title"
        } else {
            "//actor/name"
        };
        let r = c.call(q, 0).expect("call");
        assert_eq!(r.status, Status::Ok);
        // Log-before-ack: the append for this query happened before the
        // response bytes were written, so it is visible here.
        assert!(wal.stats().appended > i, "query {i} acked but not logged");
    }
    drop(c);
    server.drain();
    drop(server); // releases the engine's clone of the refresher Arc

    // Wind the refresher down; its final checkpoint makes the stop clean.
    let refresher = Arc::into_inner(refresher).expect("sole refresher owner");
    let stats = refresher.shutdown();
    assert!(stats.checkpoints >= 1, "shutdown writes a final checkpoint");

    let st = wal.stats();
    assert!(st.appended >= 12, "12 queries plus any swaps: {st:?}");
    drop(wal);

    // Recovery rebuilds exactly what the server ended up serving, and a
    // clean shutdown needs no replayed records.
    let rec = recover(&dir, &g, &RecoverOptions::default()).expect("recover");
    assert_eq!(rec.report.applied, 0, "clean shutdown ⇒ empty replay tail");
    let live = cell.snapshot();
    assert_eq!(rec.generation, live.generation());
    assert!(apex::extent_equivalent(&g, &rec.index, live.index()).is_ok());

    // The oracle (pure replay of the socket workload, snapshots
    // ignored) converges to the same index: the log alone carries the
    // adaptation the remote clients drove.
    let oracle = recover(
        &dir,
        &g,
        &RecoverOptions {
            use_snapshots: false,
            ..RecoverOptions::default()
        },
    )
    .expect("oracle");
    assert_eq!(oracle.generation, live.generation());
    assert!(apex::extent_equivalent(&g, &oracle.index, live.index()).is_ok());
    std::fs::remove_dir_all(&dir).unwrap();
}
