//! Block-structured compressed extent encoding.
//!
//! Extents are stored as a sequence of *blocks*: runs of delta+varint
//! compressed `<parent, node>` pairs, each at most one page
//! ([`BLOCK_TARGET_BYTES`]) of encoded payload so a block maps onto a
//! page of the cost model. Every block carries a [`BlockHeader`] with
//! the parent range it covers (`min_parent ..= max_parent`) and the
//! pair count, forming a skip index: a semijoin whose probe ends fall
//! outside a block's parent range never decodes — or faults — that
//! block.
//!
//! ## Encoding
//!
//! Pairs are sorted by `(parent, node)`. Within a block the first pair
//! stores both components as raw LEB128 varints; every later pair
//! stores `dp = parent − prev_parent` and, when `dp == 0` (same
//! parent), `dn = node − prev_node` (strictly positive since extents
//! are duplicate-free), otherwise the node id raw:
//!
//! ```text
//! block payload := varint(parent₀) varint(node₀)
//!                  { varint(dp) (dp == 0 ? varint(node−prev) : varint(node)) }*
//! ```
//!
//! `NULL_NODE` parents (the root pair) encode as the raw `u32::MAX`
//! value and sort last, so delta encoding needs no special case. The
//! typical cost is 2–3 bytes per pair against 8 raw.

use xmlgraph::{NodeId, NULL_NODE};

use crate::edgeset::EdgePair;

/// Target encoded payload bytes per block — one page of the default
/// cost model, so "skip a block" means "skip a page".
pub const BLOCK_TARGET_BYTES: usize = crate::pages::DEFAULT_PAGE_SIZE;

/// Serialized bytes per [`BlockHeader`] in the on-disk format.
pub const HEADER_BYTES: usize = 16;

/// Skip-index entry of one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockHeader {
    /// Smallest parent id in the block (`u32::MAX` for `NULL_NODE`).
    pub min_parent: u32,
    /// Largest parent id in the block.
    pub max_parent: u32,
    /// Number of pairs in the block.
    pub count: u32,
    /// Index of the block's first pair within the extent.
    pub first: u32,
    /// Byte offset of the block's payload.
    pub offset: u32,
    /// Encoded payload length in bytes.
    pub len: u32,
}

/// A compressed, block-structured extent image: the skip index plus the
/// concatenated block payloads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlockExtent {
    headers: Vec<BlockHeader>,
    bytes: Vec<u8>,
}

#[inline]
fn raw_parent(p: NodeId) -> u32 {
    p.0
}

fn push_varint(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    let mut v: u32 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        if shift >= 32 {
            return None;
        }
        v |= ((byte & 0x7f) as u32) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

impl BlockExtent {
    /// Encodes sorted, duplicate-free `pairs` into page-sized blocks.
    pub fn encode(pairs: &[EdgePair]) -> BlockExtent {
        let mut bx = BlockExtent {
            headers: Vec::new(),
            bytes: Vec::new(),
        };
        if pairs.is_empty() {
            return bx;
        }
        // A pair encodes to at most 10 varint bytes; closing the block
        // before that keeps every payload within one page.
        let close_at = BLOCK_TARGET_BYTES - 10;
        let mut start = 0usize; // byte offset of the open block
        let mut first = 0usize; // pair index of the open block
        let mut prev: Option<EdgePair> = None;
        for (i, p) in pairs.iter().enumerate() {
            if i > first && bx.bytes.len() - start >= close_at {
                bx.close_block(pairs, first, i, start);
                start = bx.bytes.len();
                first = i;
                prev = None;
            }
            match prev {
                None => {
                    push_varint(&mut bx.bytes, raw_parent(p.parent));
                    push_varint(&mut bx.bytes, p.node.0);
                }
                Some(q) => {
                    let dp = raw_parent(p.parent).wrapping_sub(raw_parent(q.parent));
                    push_varint(&mut bx.bytes, dp);
                    if dp == 0 {
                        push_varint(&mut bx.bytes, p.node.0.wrapping_sub(q.node.0));
                    } else {
                        push_varint(&mut bx.bytes, p.node.0);
                    }
                }
            }
            prev = Some(*p);
        }
        bx.close_block(pairs, first, pairs.len(), start);
        bx
    }

    // apex-lint: allow(panic-reachability): first < end <= pairs.len() by the encoder's block walk
    fn close_block(&mut self, pairs: &[EdgePair], first: usize, end: usize, start: usize) {
        debug_assert!(end > first);
        self.headers.push(BlockHeader {
            min_parent: raw_parent(pairs[first].parent),
            max_parent: raw_parent(pairs[end - 1].parent),
            count: (end - first) as u32,
            first: first as u32,
            offset: start as u32,
            len: (self.bytes.len() - start) as u32,
        });
    }

    /// Number of blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.headers.len()
    }

    /// The skip index.
    #[inline]
    pub fn headers(&self) -> &[BlockHeader] {
        &self.headers
    }

    /// Header of block `k`.
    #[inline]
    pub fn header(&self, k: usize) -> &BlockHeader {
        &self.headers[k]
    }

    /// Encoded payload bytes of block `k`.
    #[inline]
    pub fn block_bytes(&self, k: usize) -> usize {
        self.headers[k].len as usize
    }

    /// Raw encoded payload of block `k`, `None` out of range — the
    /// byte window the succinct decode cursors run over.
    #[inline]
    pub fn block_payload(&self, k: usize) -> Option<&[u8]> {
        let h = self.headers.get(k)?;
        self.bytes
            .get(h.offset as usize..(h.offset + h.len) as usize)
    }

    /// Total encoded payload bytes (headers excluded).
    #[inline]
    pub fn payload_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Total stored size: payload plus the serialized skip index.
    pub fn encoded_bytes(&self) -> usize {
        self.bytes.len() + self.headers.len() * HEADER_BYTES
    }

    /// Total pairs across all blocks.
    pub fn num_pairs(&self) -> usize {
        self.headers.iter().map(|h| h.count as usize).sum()
    }

    /// Decodes block `k`'s pairs into `out` (appended). Returns `None`
    /// on a corrupt payload.
    pub fn decode_block_into(&self, k: usize, out: &mut Vec<EdgePair>) -> Option<()> {
        let h = self.headers.get(k)?;
        let payload = self
            .bytes
            .get(h.offset as usize..(h.offset + h.len) as usize)?;
        let mut pos = 0usize;
        let mut parent = read_varint(payload, &mut pos)?;
        let mut node = read_varint(payload, &mut pos)?;
        out.push(decoded_pair(parent, node));
        for _ in 1..h.count {
            let dp = read_varint(payload, &mut pos)?;
            let v = read_varint(payload, &mut pos)?;
            parent = parent.wrapping_add(dp);
            node = if dp == 0 { node.wrapping_add(v) } else { v };
            out.push(decoded_pair(parent, node));
        }
        if pos == payload.len() {
            Some(())
        } else {
            None
        }
    }

    /// Decodes the whole extent back to its sorted pairs.
    pub fn decode(&self) -> Option<Vec<EdgePair>> {
        let mut out = Vec::with_capacity(self.num_pairs());
        for k in 0..self.headers.len() {
            self.decode_block_into(k, &mut out)?;
        }
        Some(out)
    }

    /// Serializes the image (headers then payload) for the disk store.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.encoded_bytes());
        out.extend_from_slice(&(self.headers.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.bytes.len() as u32).to_le_bytes());
        for h in &self.headers {
            out.extend_from_slice(&h.min_parent.to_le_bytes());
            out.extend_from_slice(&h.max_parent.to_le_bytes());
            out.extend_from_slice(&h.count.to_le_bytes());
            out.extend_from_slice(&h.len.to_le_bytes());
        }
        out.extend_from_slice(&self.bytes);
        out
    }

    /// Deserializes an image written by [`BlockExtent::to_bytes`].
    /// `first`/`offset` fields are rebuilt from the counts and lengths.
    pub fn from_bytes(data: &[u8]) -> Option<BlockExtent> {
        let n = u32::from_le_bytes(data.get(0..4)?.try_into().ok()?) as usize;
        let payload_len = u32::from_le_bytes(data.get(4..8)?.try_into().ok()?) as usize;
        let mut headers = Vec::with_capacity(n);
        let mut pos = 8usize;
        let (mut first, mut offset) = (0u32, 0u32);
        for _ in 0..n {
            let f = |r: std::ops::Range<usize>| -> Option<u32> {
                Some(u32::from_le_bytes(data.get(r)?.try_into().ok()?))
            };
            let h = BlockHeader {
                min_parent: f(pos..pos + 4)?,
                max_parent: f(pos + 4..pos + 8)?,
                count: f(pos + 8..pos + 12)?,
                len: f(pos + 12..pos + 16)?,
                first,
                offset,
            };
            first = first.checked_add(h.count)?;
            offset = offset.checked_add(h.len)?;
            pos += HEADER_BYTES;
            headers.push(h);
        }
        if offset as usize != payload_len {
            return None;
        }
        let bytes = data.get(pos..pos + payload_len)?.to_vec();
        if pos + payload_len != data.len() {
            return None;
        }
        Some(BlockExtent { headers, bytes })
    }
}

#[inline]
fn decoded_pair(parent: u32, node: u32) -> EdgePair {
    let p = if parent == u32::MAX {
        NULL_NODE
    } else {
        NodeId(parent)
    };
    EdgePair::new(p, NodeId(node))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgeset::EdgeSet;

    fn roundtrip(pairs: &[(u32, u32)]) {
        let set = EdgeSet::from_raw(pairs);
        let bx = BlockExtent::encode(set.pairs());
        assert_eq!(bx.decode().as_deref(), Some(set.pairs()));
        let wire = BlockExtent::from_bytes(&bx.to_bytes());
        assert_eq!(wire.as_ref(), Some(&bx));
    }

    #[test]
    fn empty_extent_has_no_blocks() {
        let bx = BlockExtent::encode(&[]);
        assert_eq!(bx.num_blocks(), 0);
        assert_eq!(bx.encoded_bytes(), 0);
        assert_eq!(bx.decode(), Some(vec![]));
        assert_eq!(BlockExtent::from_bytes(&bx.to_bytes()), Some(bx));
    }

    #[test]
    fn small_extent_roundtrips() {
        roundtrip(&[(1, 2), (1, 9), (3, 4), (700, 701)]);
    }

    #[test]
    fn root_pair_roundtrips() {
        let set = EdgeSet::from_pairs(vec![EdgePair::root(NodeId(0))]);
        let bx = BlockExtent::encode(set.pairs());
        assert_eq!(bx.decode().as_deref(), Some(set.pairs()));
        assert_eq!(bx.header(0).min_parent, u32::MAX);
    }

    #[test]
    fn large_extent_splits_into_page_blocks() {
        let pairs: Vec<EdgePair> = (0..20_000u32)
            .map(|i| EdgePair::new(NodeId(i / 3), NodeId(i)))
            .collect();
        let bx = BlockExtent::encode(&pairs);
        assert!(bx.num_blocks() > 1, "20k pairs must span several blocks");
        for h in bx.headers() {
            assert!((h.len as usize) <= BLOCK_TARGET_BYTES);
            assert!(h.min_parent <= h.max_parent);
        }
        // Headers partition the pair sequence and cover all parents.
        assert_eq!(bx.num_pairs(), pairs.len());
        assert_eq!(bx.decode().as_deref(), Some(&pairs[..]));
        // Delta+varint beats the raw 8-byte layout comfortably here.
        assert!(bx.encoded_bytes() * 2 < pairs.len() * 8);
        let wire = BlockExtent::from_bytes(&bx.to_bytes());
        assert_eq!(wire, Some(bx));
    }

    #[test]
    fn sparse_ids_still_roundtrip() {
        roundtrip(&[
            (0, u32::MAX - 1),
            (5, 0),
            (1 << 20, 1 << 30),
            (u32::MAX - 2, 3),
        ]);
    }

    #[test]
    fn corrupt_images_are_rejected() {
        let set = EdgeSet::from_raw(&[(1, 2), (3, 4)]);
        let bx = BlockExtent::encode(set.pairs());
        let mut wire = bx.to_bytes();
        wire.pop();
        assert_eq!(BlockExtent::from_bytes(&wire), None);
        wire.clear();
        assert_eq!(BlockExtent::from_bytes(&wire), None);
    }
}
