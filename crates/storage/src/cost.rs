//! Logical cost counters.
//!
//! The paper's figures report elapsed seconds on 2002 hardware. To compare
//! *shapes* robustly, every query processor in this reproduction
//! accumulates machine-independent counters alongside wall time.

use std::fmt;
use std::ops::AddAssign;

/// Counters accumulated while evaluating queries.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Cost {
    /// Edges of an *index* structure traversed (the paper's "edge lookup"
    /// during pruning/rewriting, e.g. 14 for q1 on the strong DataGuide).
    pub index_edges: u64,
    /// Hash-table lookups (H_APEX probes, DataGuide child lookups).
    pub hash_lookups: u64,
    /// Extent pairs scanned (read out of storage).
    pub extent_pairs: u64,
    /// Pair comparisons performed by joins.
    pub join_work: u64,
    /// Pairs produced by joins.
    pub join_output: u64,
    /// 8 KiB pages read (extent scans, data-table probes, trie blocks).
    pub pages_read: u64,
    /// Data-table probes (QTYPE3 value checks).
    pub table_probes: u64,
    /// Patricia-trie / index-block node visits (Index Fabric).
    pub trie_nodes: u64,
}

impl Cost {
    /// Zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sum of all counters — a crude single-number "logical cost" used for
    /// quick comparisons; figures report individual counters too.
    pub fn total(&self) -> u64 {
        self.index_edges
            + self.hash_lookups
            + self.extent_pairs
            + self.join_work
            + self.join_output
            + self.pages_read
            + self.table_probes
            + self.trie_nodes
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Self) {
        self.index_edges += rhs.index_edges;
        self.hash_lookups += rhs.hash_lookups;
        self.extent_pairs += rhs.extent_pairs;
        self.join_work += rhs.join_work;
        self.join_output += rhs.join_output;
        self.pages_read += rhs.pages_read;
        self.table_probes += rhs.table_probes;
        self.trie_nodes += rhs.trie_nodes;
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "idx_edges={} hash={} extent={} join_work={} join_out={} pages={} probes={} trie={}",
            self.index_edges,
            self.hash_lookups,
            self.extent_pairs,
            self.join_work,
            self.join_output,
            self.pages_read,
            self.table_probes,
            self.trie_nodes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_accumulates() {
        let mut a = Cost { index_edges: 1, pages_read: 2, ..Cost::new() };
        let b = Cost { index_edges: 10, join_work: 5, ..Cost::new() };
        a += b;
        assert_eq!(a.index_edges, 11);
        assert_eq!(a.join_work, 5);
        assert_eq!(a.pages_read, 2);
    }

    #[test]
    fn total_sums_everything() {
        let c = Cost {
            index_edges: 1,
            hash_lookups: 2,
            extent_pairs: 3,
            join_work: 4,
            join_output: 5,
            pages_read: 6,
            table_probes: 7,
            trie_nodes: 8,
        };
        assert_eq!(c.total(), 36);
        let mut c2 = c;
        c2.reset();
        assert_eq!(c2.total(), 0);
    }
}
