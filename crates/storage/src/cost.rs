//! Logical cost counters.
//!
//! The paper's figures report elapsed seconds on 2002 hardware. To compare
//! *shapes* robustly, every query processor in this reproduction
//! accumulates machine-independent counters alongside wall time.

use std::fmt;
use std::ops::AddAssign;

/// The physical operators of the shared execution layer, used as keys
/// of the per-operator cost breakdown (see `apex-query`'s `exec`
/// module for the operator semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Materializing one stored extent.
    ExtentScan,
    /// Scanning and merging several extents into one edge set.
    ExtentUnion,
    /// Semijoin via a linear merge with a sorted extent.
    SemijoinMerge,
    /// Semijoin via galloping (exponential + binary) searches into a
    /// sorted extent.
    SemijoinGallop,
    /// Semijoin that skips whole blocks via the extent's skip-index
    /// headers, galloping within the surviving blocks.
    SemijoinSkip,
    /// The QTYPE1 join chain (composite; inner work attributes to the
    /// union/semijoin operators it drives).
    MultiwayJoin,
    /// One data-table value probe (QTYPE3).
    DataProbe,
    /// Index-graph navigation (automaton products, dataflow fixpoints).
    IndexNav,
    /// Patricia-trie key search / traversal (Index Fabric).
    TrieSearch,
    /// Right-to-left semijoin reduction: keeps the pairs of a stage
    /// whose *end node* parents some pair of the already-reduced stage
    /// to its right (planner-chosen backward pass).
    SemijoinReverse,
}

impl OpKind {
    /// Every operator, in display order.
    pub const ALL: [OpKind; 10] = [
        OpKind::ExtentScan,
        OpKind::ExtentUnion,
        OpKind::SemijoinMerge,
        OpKind::SemijoinGallop,
        OpKind::SemijoinSkip,
        OpKind::MultiwayJoin,
        OpKind::DataProbe,
        OpKind::IndexNav,
        OpKind::TrieSearch,
        OpKind::SemijoinReverse,
    ];

    /// Operator name as shown by `explain` and the shell.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::ExtentScan => "ExtentScan",
            OpKind::ExtentUnion => "ExtentUnion",
            OpKind::SemijoinMerge => "SemijoinMerge",
            OpKind::SemijoinGallop => "SemijoinGallop",
            OpKind::SemijoinSkip => "SemijoinSkip",
            OpKind::MultiwayJoin => "MultiwayJoin",
            OpKind::DataProbe => "DataProbe",
            OpKind::IndexNav => "IndexNav",
            OpKind::TrieSearch => "TrieSearch",
            OpKind::SemijoinReverse => "SemijoinReverse",
        }
    }

    /// Stable dense index of this kind — its position in
    /// [`OpKind::ALL`]. Lets aggregators (the workload monitor's plan
    /// feedback, the per-operator breakdown) keep flat arrays.
    #[inline]
    pub fn idx(self) -> usize {
        match self {
            OpKind::ExtentScan => 0,
            OpKind::ExtentUnion => 1,
            OpKind::SemijoinMerge => 2,
            OpKind::SemijoinGallop => 3,
            OpKind::SemijoinSkip => 4,
            OpKind::MultiwayJoin => 5,
            OpKind::DataProbe => 6,
            OpKind::IndexNav => 7,
            OpKind::TrieSearch => 8,
            OpKind::SemijoinReverse => 9,
        }
    }
}

/// Counter deltas attributed to one operator kind.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OpCost {
    /// Operator invocations.
    pub invocations: u64,
    /// Scalar counter deltas, in [`Cost::scalars`] order.
    pub scalars: [u64; 8],
}

impl OpCost {
    /// Pages read by this operator.
    pub fn pages_read(&self) -> u64 {
        self.scalars[5]
    }

    /// Join comparisons performed by this operator.
    pub fn join_work(&self) -> u64 {
        self.scalars[3]
    }

    /// Extent pairs read by this operator.
    pub fn extent_pairs(&self) -> u64 {
        self.scalars[2]
    }
}

/// Per-operator attribution of the scalar counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OpBreakdown {
    per_op: [OpCost; 10],
}

impl OpBreakdown {
    /// Records `delta` (and one invocation if `invoked`) against `kind`.
    // apex-lint: allow(panic-reachability): kind.idx() enumerates the 10 OpKind variants; per_op is sized to match
    pub fn record(&mut self, kind: OpKind, invoked: bool, delta: [u64; 8]) {
        let slot = &mut self.per_op[kind.idx()];
        if invoked {
            slot.invocations += 1;
        }
        for (acc, d) in slot.scalars.iter_mut().zip(delta) {
            *acc += d;
        }
    }

    /// The accumulated cost of one operator kind.
    // apex-lint: allow(panic-reachability): kind.idx() enumerates the 10 OpKind variants; per_op is sized to match
    pub fn get(&self, kind: OpKind) -> &OpCost {
        &self.per_op[kind.idx()]
    }

    /// Iterates `(kind, cost)` over operators that did any work.
    pub fn active(&self) -> impl Iterator<Item = (OpKind, &OpCost)> {
        OpKind::ALL
            .iter()
            .map(|&k| (k, &self.per_op[k.idx()]))
            .filter(|(_, c)| c.invocations != 0 || c.scalars.iter().any(|&s| s != 0))
    }

    /// Multi-line table of the active operators, for `explain`/shell
    /// output. Empty string when no operator ran.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for (kind, c) in self.active() {
            s.push_str(&format!(
                "  {:<14} calls={:<6} pages={:<8} pairs={:<10} join_work={:<10} join_out={:<8} probes={}\n",
                kind.name(),
                c.invocations,
                c.scalars[5],
                c.scalars[2],
                c.scalars[3],
                c.scalars[4],
                c.scalars[6],
            ));
        }
        s
    }
}

impl AddAssign for OpBreakdown {
    fn add_assign(&mut self, rhs: Self) {
        for (a, b) in self.per_op.iter_mut().zip(rhs.per_op) {
            a.invocations += b.invocations;
            for (x, y) in a.scalars.iter_mut().zip(b.scalars) {
                *x += y;
            }
        }
    }
}

/// Counters accumulated while evaluating queries.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Cost {
    /// Edges of an *index* structure traversed (the paper's "edge lookup"
    /// during pruning/rewriting, e.g. 14 for q1 on the strong DataGuide).
    pub index_edges: u64,
    /// Hash-table lookups (H_APEX probes, DataGuide child lookups).
    pub hash_lookups: u64,
    /// Extent pairs scanned (read out of storage).
    pub extent_pairs: u64,
    /// Pair comparisons performed by joins.
    pub join_work: u64,
    /// Pairs produced by joins.
    pub join_output: u64,
    /// 8 KiB pages read (extent scans, data-table probes, trie blocks).
    pub pages_read: u64,
    /// Data-table probes (QTYPE3 value checks).
    pub table_probes: u64,
    /// Patricia-trie / index-block node visits (Index Fabric).
    pub trie_nodes: u64,
    /// Per-operator attribution of the scalar counters above (filled by
    /// the execution layer; excluded from [`Cost::total`]).
    pub ops: OpBreakdown,
}

impl Cost {
    /// Zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// The scalar counters as an array, in the documented order:
    /// `[index_edges, hash_lookups, extent_pairs, join_work,
    /// join_output, pages_read, table_probes, trie_nodes]`. Used to
    /// diff snapshots for per-operator attribution.
    pub fn scalars(&self) -> [u64; 8] {
        [
            self.index_edges,
            self.hash_lookups,
            self.extent_pairs,
            self.join_work,
            self.join_output,
            self.pages_read,
            self.table_probes,
            self.trie_nodes,
        ]
    }

    /// Sum of all counters — a crude single-number "logical cost" used for
    /// quick comparisons; figures report individual counters too.
    pub fn total(&self) -> u64 {
        self.index_edges
            + self.hash_lookups
            + self.extent_pairs
            + self.join_work
            + self.join_output
            + self.pages_read
            + self.table_probes
            + self.trie_nodes
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Self) {
        self.index_edges += rhs.index_edges;
        self.hash_lookups += rhs.hash_lookups;
        self.extent_pairs += rhs.extent_pairs;
        self.join_work += rhs.join_work;
        self.join_output += rhs.join_output;
        self.pages_read += rhs.pages_read;
        self.table_probes += rhs.table_probes;
        self.trie_nodes += rhs.trie_nodes;
        self.ops += rhs.ops;
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "idx_edges={} hash={} extent={} join_work={} join_out={} pages={} probes={} trie={}",
            self.index_edges,
            self.hash_lookups,
            self.extent_pairs,
            self.join_work,
            self.join_output,
            self.pages_read,
            self.table_probes,
            self.trie_nodes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_accumulates() {
        let mut a = Cost {
            index_edges: 1,
            pages_read: 2,
            ..Cost::new()
        };
        let b = Cost {
            index_edges: 10,
            join_work: 5,
            ..Cost::new()
        };
        a += b;
        assert_eq!(a.index_edges, 11);
        assert_eq!(a.join_work, 5);
        assert_eq!(a.pages_read, 2);
    }

    #[test]
    fn total_sums_everything() {
        let c = Cost {
            index_edges: 1,
            hash_lookups: 2,
            extent_pairs: 3,
            join_work: 4,
            join_output: 5,
            pages_read: 6,
            table_probes: 7,
            trie_nodes: 8,
            ..Cost::new()
        };
        assert_eq!(c.total(), 36);
        let mut c2 = c;
        c2.reset();
        assert_eq!(c2.total(), 0);
    }

    #[test]
    fn breakdown_records_and_accumulates() {
        let mut a = Cost::new();
        a.ops
            .record(OpKind::SemijoinGallop, true, [0, 0, 10, 4, 2, 1, 0, 0]);
        a.ops
            .record(OpKind::SemijoinGallop, true, [0, 0, 5, 1, 1, 0, 0, 0]);
        let mut b = Cost::new();
        b.ops
            .record(OpKind::DataProbe, true, [0, 0, 0, 0, 0, 2, 1, 0]);
        a += b;
        let sj = a.ops.get(OpKind::SemijoinGallop);
        assert_eq!(sj.invocations, 2);
        assert_eq!(sj.extent_pairs(), 15);
        assert_eq!(sj.join_work(), 5);
        assert_eq!(sj.pages_read(), 1);
        assert_eq!(a.ops.get(OpKind::DataProbe).invocations, 1);
        assert_eq!(a.ops.active().count(), 2);
        let table = a.ops.render();
        assert!(table.contains("SemijoinGallop"));
        assert!(table.contains("DataProbe"));
        assert!(!table.contains("TrieSearch"));
        // The breakdown never leaks into the scalar total.
        assert_eq!(a.total(), 0);
    }
}
