//! Extents: sets of `<parent, node>` edge pairs (Definition 7).

use std::sync::OnceLock;

use xmlgraph::{NodeId, NULL_NODE};

use crate::block::BlockExtent;
use crate::succinct::{EndIndex, Ends, SuccinctExtent};

/// One element of an extent: the incoming edge `<parent, node>` of a node
/// reachable by some label path. The root's pair is `<NULL, root>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgePair {
    /// Starting node of the edge (`NULL_NODE` for the root pair).
    pub parent: NodeId,
    /// Ending node of the edge.
    pub node: NodeId,
}

impl EdgePair {
    /// Convenience constructor.
    #[inline]
    pub fn new(parent: NodeId, node: NodeId) -> Self {
        EdgePair { parent, node }
    }

    /// The `<NULL, root>` pair.
    #[inline]
    pub fn root(root: NodeId) -> Self {
        EdgePair {
            parent: NULL_NODE,
            node: root,
        }
    }
}

/// A sorted, duplicate-free set of [`EdgePair`]s.
///
/// Extents are the unit of storage in every index here; all operations
/// preserve sortedness (by `(parent, node)`) so unions and semijoins are
/// linear merges, per the allocation-conscious style of the Rust
/// Performance Book (buffers are reusable via the `*_into` variants).
///
/// Two derived views are computed lazily and cached (`OnceLock`, so a
/// set shared across query threads stays `Sync`), and both are
/// *succinct* rather than second materialized copies: the distinct
/// [`end_nodes`](EdgeSet::end_nodes) as a delta+varint [`EndIndex`]
/// and the compressed [`succinct`](EdgeSet::succinct) extent (block
/// image + rank/select directory + decode samples) the adaptive
/// semijoin kernels run over directly. Mutation (`insert`,
/// `union_in_place`) invalidates both.
#[derive(Debug, Default)]
pub struct EdgeSet {
    pairs: Vec<EdgePair>,
    ends: OnceLock<EndIndex>,
    succ: OnceLock<SuccinctExtent>,
}

impl Clone for EdgeSet {
    fn clone(&self) -> Self {
        // Caches are cheap to rebuild; clones (index refinement) start
        // cold.
        EdgeSet {
            pairs: self.pairs.clone(),
            ends: OnceLock::new(),
            succ: OnceLock::new(),
        }
    }
}

impl PartialEq for EdgeSet {
    fn eq(&self, other: &Self) -> bool {
        self.pairs == other.pairs
    }
}

impl Eq for EdgeSet {}

impl EdgeSet {
    /// Empty set.
    pub fn new() -> Self {
        EdgeSet::default()
    }

    /// Builds from arbitrary pairs (sorts and dedups).
    pub fn from_pairs(mut pairs: Vec<EdgePair>) -> Self {
        pairs.sort_unstable();
        pairs.dedup();
        EdgeSet {
            pairs,
            ..EdgeSet::default()
        }
    }

    /// Builds from pairs already sorted by `(parent, node)` and
    /// duplicate-free — the output contract of the semijoin kernels.
    pub fn from_sorted(pairs: Vec<EdgePair>) -> Self {
        debug_assert!(pairs.windows(2).all(|w| w[0] < w[1]));
        EdgeSet {
            pairs,
            ..EdgeSet::default()
        }
    }

    /// Drops the cached derived views; must follow every mutation of
    /// `pairs`.
    fn invalidate(&mut self) {
        self.ends = OnceLock::new();
        self.succ = OnceLock::new();
    }

    /// Builds from `(parent, node)` raw u32 pairs — test convenience.
    pub fn from_raw(pairs: &[(u32, u32)]) -> Self {
        Self::from_pairs(
            pairs
                .iter()
                .map(|&(p, n)| EdgePair::new(NodeId(p), NodeId(n)))
                .collect(),
        )
    }

    /// Number of pairs.
    #[inline]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The pairs, sorted by `(parent, node)`.
    #[inline]
    pub fn pairs(&self) -> &[EdgePair] {
        &self.pairs
    }

    /// Membership test (binary search).
    pub fn contains(&self, pair: EdgePair) -> bool {
        self.pairs.binary_search(&pair).is_ok()
    }

    /// Inserts one pair, keeping order. O(n) worst case; used only on the
    /// incremental-update path where deltas are small.
    pub fn insert(&mut self, pair: EdgePair) -> bool {
        match self.pairs.binary_search(&pair) {
            Ok(_) => false,
            Err(i) => {
                self.pairs.insert(i, pair);
                self.invalidate();
                true
            }
        }
    }

    /// `self ∪ other` as a new set (linear merge).
    pub fn union(&self, other: &EdgeSet) -> EdgeSet {
        let mut out = Vec::with_capacity(self.len() + other.len());
        merge_union(&self.pairs, &other.pairs, &mut out);
        EdgeSet::from_sorted(out)
    }

    /// Extends `self` with `other` in place (merge through a scratch
    /// buffer provided by the caller to avoid repeated allocation).
    pub fn union_in_place(&mut self, other: &EdgeSet, scratch: &mut Vec<EdgePair>) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            self.pairs.extend_from_slice(&other.pairs);
            self.invalidate();
            return;
        }
        scratch.clear();
        scratch.reserve(self.len() + other.len());
        merge_union(&self.pairs, &other.pairs, scratch);
        std::mem::swap(&mut self.pairs, scratch);
        self.invalidate();
    }

    /// `self \ other` as a new set.
    // apex-lint: allow(panic-reachability): i and j are bounds-checked by the loop and branch conditions before every index
    pub fn difference(&self, other: &EdgeSet) -> EdgeSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.pairs.len() {
            if j >= other.pairs.len() {
                out.extend_from_slice(&self.pairs[i..]);
                break;
            }
            match self.pairs[i].cmp(&other.pairs[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.pairs[i]);
                    i += 1;
                }
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Greater => j += 1,
            }
        }
        EdgeSet::from_sorted(out)
    }

    /// True if every pair of `self` is in `other`.
    pub fn is_subset_of(&self, other: &EdgeSet) -> bool {
        self.pairs.iter().all(|p| other.contains(*p))
    }

    /// The cached succinct end-node index, **if already computed** —
    /// `None` otherwise. Never computes: statistics assembly (the
    /// planner's `PlanStats`) must stay O(1) per extent and must not
    /// fault work into cold sets.
    #[inline]
    pub fn cached_ends(&self) -> Option<&EndIndex> {
        self.ends.get()
    }

    /// The cached block image, **if already encoded** — `None`
    /// otherwise. Never encodes (see [`EdgeSet::cached_ends`]).
    #[inline]
    pub fn cached_blocks(&self) -> Option<&BlockExtent> {
        self.succ.get().map(|s| s.image())
    }

    /// Distinct end-node count when the cache is warm, else the pair
    /// count as an upper bound. O(1); never forces the cache.
    #[inline]
    pub fn ends_len_hint(&self) -> usize {
        self.ends.get().map_or(self.pairs.len(), |v| v.len())
    }

    /// Stored-block count when the encoding cache is warm, else an
    /// estimate from the raw pair count (≈4 encoded bytes per pair
    /// against the one-page block target). O(1); never encodes.
    #[inline]
    pub fn blocks_hint(&self) -> usize {
        match self.succ.get() {
            Some(s) => s.num_blocks().max(1),
            None => 1 + self.pairs.len() * 4 / crate::block::BLOCK_TARGET_BYTES,
        }
    }

    /// Bytes this extent keeps resident to answer queries (compressed
    /// payload + directory + samples + the end index when warm), or an
    /// estimate at the same ≈4 bytes/pair the [`EdgeSet::blocks_hint`]
    /// uses when the succinct cache is cold. O(1); never encodes — the
    /// statistics assembly path.
    #[inline]
    pub fn resident_bytes_hint(&self) -> usize {
        let extent = match self.succ.get() {
            Some(s) => s.resident_bytes(),
            None => self.pairs.len() * 4,
        };
        extent + self.ends.get().map_or(0, |e| e.resident_bytes())
    }

    /// Exact resident bytes of the succinct form (forces the encoding;
    /// reporting paths only — see [`EdgeSet::resident_bytes_hint`] for
    /// the planner's O(1) variant). The end index is counted only when
    /// some query has already materialized it.
    pub fn resident_bytes(&self) -> usize {
        self.succinct().resident_bytes() + self.ends.get().map_or(0, |e| e.resident_bytes())
    }

    /// Smallest and largest parent of the set — O(1) because pairs are
    /// sorted by `(parent, node)`. `None` when empty.
    #[inline]
    pub fn parent_bounds(&self) -> Option<(NodeId, NodeId)> {
        Some((self.pairs.first()?.parent, self.pairs.last()?.parent))
    }

    /// Smallest and largest *end node* of the set. Uses the end-node
    /// cache when warm (O(1)); otherwise one linear min/max scan of the
    /// in-memory pairs — never decodes blocks. `None` when empty.
    pub fn node_bounds(&self) -> Option<(NodeId, NodeId)> {
        if let Some(ends) = self.ends.get() {
            return Some((ends.first()?, ends.last()?));
        }
        let mut it = self.pairs.iter().map(|p| p.node);
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for n in it {
            lo = lo.min(n);
            hi = hi.max(n);
        }
        Some((lo, hi))
    }

    /// Number of pairs whose parent lies in `lo..=hi` (two binary
    /// searches — the selectivity probe `PlanStats` uses to size a
    /// semijoin against a candidate frontier without touching blocks).
    pub fn pairs_in_parent_range(&self, lo: NodeId, hi: NodeId) -> usize {
        if lo > hi {
            return 0;
        }
        let a = self.pairs.partition_point(|p| p.parent < lo);
        let b = self.pairs.partition_point(|p| p.parent <= hi);
        b - a
    }

    /// Distinct end nodes, sorted, as a succinct [`EndIndex`] view —
    /// not a second materialized `Vec`. Computed once and cached;
    /// mutation invalidates the cache. Iterate with
    /// [`EndIndex::iter`]/[`EndIndex::cursor`], or pass straight to the
    /// kernels as [`Ends`].
    pub fn end_nodes(&self) -> &EndIndex {
        self.ends.get_or_init(|| {
            let mut v: Vec<NodeId> = self.pairs.iter().map(|p| p.node).collect();
            v.sort_unstable();
            v.dedup();
            EndIndex::from_sorted(&v)
        })
    }

    /// The succinct queryable form of this extent (lazy, cached): the
    /// compressed block image wrapped in a rank/select directory and
    /// decode-restart samples. This is what the adaptive kernels run
    /// over directly.
    pub fn succinct(&self) -> &SuccinctExtent {
        self.succ
            .get_or_init(|| SuccinctExtent::build(BlockExtent::encode(&self.pairs)))
    }

    /// The compressed block image of this extent (lazy, cached): the
    /// skip index the adaptive kernels consult and the encoded bytes
    /// the page model charges.
    pub fn blocks(&self) -> &BlockExtent {
        self.succinct().image()
    }

    /// The join kernel of QTYPE1 evaluation: keeps the pairs of `next`
    /// whose `parent` is an end node of `self` — i.e. extends every data
    /// path ending in `self` by one edge drawn from `next`.
    ///
    /// Both inputs are sorted by `(parent, node)`, and `end_nodes` of
    /// `self` is sorted (and cached — this used to rebuild the end-node
    /// vector on every call), so this is a merge. Returns the number of
    /// pair comparisons as join work for cost accounting.
    pub fn semijoin_next(&self, next: &EdgeSet) -> (EdgeSet, usize) {
        let mut cur = self.end_nodes().cursor();
        let mut out = Vec::new();
        let mut work = 0usize;
        for p in &next.pairs {
            work += 1;
            // Advance the end cursor while it trails p.parent (both sorted).
            while let Some(e) = cur.peek() {
                if e < p.parent {
                    cur.advance();
                } else {
                    break;
                }
            }
            if cur.peek() == Some(p.parent) {
                out.push(*p);
            }
        }
        (EdgeSet::from_sorted(out), work)
    }

    /// Merge semijoin: pairs of `self` whose `parent` is in `ends`
    /// (sorted, distinct — slice or succinct [`Ends`] form) via a
    /// linear merge — optimal when `ends` is of the same order as the
    /// extent. Returns matches and comparisons.
    pub fn semijoin_ends(&self, ends: Ends<'_>) -> (EdgeSet, usize) {
        let mut cur = ends.cursor();
        let mut out = Vec::new();
        let mut work = 0usize;
        for p in &self.pairs {
            work += 1;
            while let Some(e) = cur.peek() {
                if e < p.parent {
                    cur.advance();
                } else {
                    break;
                }
            }
            match cur.peek() {
                None => break,
                Some(e) if e == p.parent => out.push(*p),
                Some(_) => {}
            }
        }
        (EdgeSet::from_sorted(out), work)
    }

    /// Indexed semijoin: pairs of `self` whose `parent` is in `ends`
    /// (sorted, distinct — slice or succinct [`Ends`] form). Because
    /// extents are stored sorted by `(parent, node)`, each end is
    /// located by a galloping search from the previous match — the
    /// clustered-index access path a real extent store provides (see
    /// [`crate::kernels`] for the block-aware variants). Returns the
    /// matched pairs and the number of probes performed.
    pub fn probe_by_parents(&self, ends: Ends<'_>) -> (EdgeSet, usize) {
        let mut out = Vec::new();
        let mut probes = 0usize;
        let mut lo = 0usize;
        let mut cur = ends.cursor();
        while let Some(e) = cur.peek() {
            if lo >= self.pairs.len() {
                break;
            }
            probes += 1;
            // Gallop to the start of the `parent == e` range.
            let mut step = 1usize;
            let mut hi = lo;
            while hi < self.pairs.len() && self.pairs[hi].parent < e {
                lo = hi + 1;
                hi += step;
                step *= 2;
            }
            let hi = hi.min(self.pairs.len());
            let start = lo + self.pairs[lo..hi].partition_point(|p| p.parent < e);
            let mut i = start;
            while i < self.pairs.len() && self.pairs[i].parent == e {
                out.push(self.pairs[i]);
                i += 1;
            }
            lo = i;
            cur.advance();
        }
        (EdgeSet::from_sorted(out), probes)
    }

    /// Iterates over pairs.
    pub fn iter(&self) -> impl Iterator<Item = EdgePair> + '_ {
        self.pairs.iter().copied()
    }

    /// Byte size when stored: the delta+varint block encoding (payload
    /// plus skip-index headers), as the page model charges it.
    pub fn stored_bytes(&self) -> usize {
        self.blocks().encoded_bytes()
    }

    /// Byte size of the uncompressed 8-bytes-per-pair layout, for
    /// compression-ratio reporting.
    pub fn raw_bytes(&self) -> usize {
        self.pairs.len() * std::mem::size_of::<(u32, u32)>()
    }
}

impl FromIterator<EdgePair> for EdgeSet {
    fn from_iter<T: IntoIterator<Item = EdgePair>>(iter: T) -> Self {
        EdgeSet::from_pairs(iter.into_iter().collect())
    }
}

// apex-lint: allow(panic-reachability): i and j are bounded by the merge loop's own length guards
fn merge_union(a: &[EdgePair], b: &[EdgePair], out: &mut Vec<EdgePair>) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_sorts_and_dedups() {
        let s = EdgeSet::from_raw(&[(2, 3), (1, 2), (2, 3)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.pairs()[0], EdgePair::new(NodeId(1), NodeId(2)));
    }

    #[test]
    fn union_and_difference() {
        let a = EdgeSet::from_raw(&[(1, 2), (3, 4)]);
        let b = EdgeSet::from_raw(&[(3, 4), (5, 6)]);
        let u = a.union(&b);
        assert_eq!(u.len(), 3);
        let d = u.difference(&a);
        assert_eq!(d, EdgeSet::from_raw(&[(5, 6)]));
        assert!(a.is_subset_of(&u));
        assert!(!u.is_subset_of(&a));
    }

    #[test]
    fn union_in_place_reuses_scratch() {
        let mut a = EdgeSet::from_raw(&[(1, 2)]);
        let b = EdgeSet::from_raw(&[(0, 1), (2, 3)]);
        let mut scratch = Vec::new();
        a.union_in_place(&b, &mut scratch);
        assert_eq!(a, EdgeSet::from_raw(&[(0, 1), (1, 2), (2, 3)]));
    }

    #[test]
    fn insert_keeps_sorted() {
        let mut s = EdgeSet::new();
        assert!(s.insert(EdgePair::new(NodeId(5), NodeId(6))));
        assert!(s.insert(EdgePair::new(NodeId(1), NodeId(2))));
        assert!(!s.insert(EdgePair::new(NodeId(5), NodeId(6))));
        assert_eq!(s.pairs()[0].parent, NodeId(1));
    }

    #[test]
    fn semijoin_follows_paths() {
        // a: edges ending at nodes 2 and 4; next: edges from 2 and from 9.
        let a = EdgeSet::from_raw(&[(1, 2), (3, 4)]);
        let next = EdgeSet::from_raw(&[(2, 7), (2, 8), (9, 10), (4, 11)]);
        let (j, work) = a.semijoin_next(&next);
        assert_eq!(j, EdgeSet::from_raw(&[(2, 7), (2, 8), (4, 11)]));
        assert_eq!(work, 4);
    }

    #[test]
    fn probe_by_parents_matches_scan_semijoin() {
        let a = EdgeSet::from_raw(&[(1, 2), (3, 4), (9, 9)]);
        let next = EdgeSet::from_raw(&[(2, 7), (2, 8), (9, 10), (4, 11), (5, 5)]);
        let ends = a.end_nodes();
        let (probed, probes) = next.probe_by_parents(ends.into());
        let (scanned, _) = a.semijoin_next(&next);
        assert_eq!(probed, scanned);
        assert_eq!(probes, 3);
        // The slice form of the same ends agrees with the packed form.
        let slice = ends.to_vec();
        assert_eq!(next.probe_by_parents((&slice).into()).0, probed);
        // Empty ends and empty extent.
        assert!(next.probe_by_parents([].as_slice().into()).0.is_empty());
        assert!(EdgeSet::new().probe_by_parents(ends.into()).0.is_empty());
    }

    #[test]
    fn root_pair_uses_null_parent() {
        let p = EdgePair::root(NodeId(0));
        assert!(p.parent.is_null());
        let s = EdgeSet::from_pairs(vec![p]);
        assert_eq!(s.end_nodes().to_vec(), vec![NodeId(0)]);
    }

    #[test]
    fn end_nodes_dedup() {
        let s = EdgeSet::from_raw(&[(1, 5), (2, 5), (3, 6)]);
        assert_eq!(s.end_nodes().to_vec(), vec![NodeId(5), NodeId(6)]);
    }

    #[test]
    fn cached_views_invalidate_on_mutation() {
        let mut s = EdgeSet::from_raw(&[(1, 5)]);
        assert_eq!(s.end_nodes().to_vec(), vec![NodeId(5)]);
        let stored = s.stored_bytes();
        assert!(stored > 0 && stored <= s.raw_bytes() + crate::block::HEADER_BYTES);
        assert!(s.insert(EdgePair::new(NodeId(2), NodeId(9))));
        assert_eq!(s.end_nodes().to_vec(), vec![NodeId(5), NodeId(9)]);
        assert_eq!(s.blocks().num_pairs(), 2);
        let mut scratch = Vec::new();
        s.union_in_place(&EdgeSet::from_raw(&[(3, 11)]), &mut scratch);
        assert_eq!(
            s.end_nodes().to_vec(),
            vec![NodeId(5), NodeId(9), NodeId(11)]
        );
        assert_eq!(s.blocks().num_pairs(), 3);
        // A failed insert (duplicate) keeps the caches valid.
        assert!(!s.insert(EdgePair::new(NodeId(3), NodeId(11))));
        assert_eq!(s.end_nodes().len(), 3);
    }

    #[test]
    fn cheap_accessors_never_force_caches() {
        let s = EdgeSet::from_raw(&[(1, 5), (2, 5), (3, 6), (7, 8)]);
        // Cold: nothing cached, hints fall back to bounds.
        assert!(s.cached_ends().is_none());
        assert!(s.cached_blocks().is_none());
        assert_eq!(s.ends_len_hint(), 4);
        assert!(s.blocks_hint() >= 1);
        assert_eq!(s.parent_bounds(), Some((NodeId(1), NodeId(7))));
        assert_eq!(s.node_bounds(), Some((NodeId(5), NodeId(8))));
        assert_eq!(s.pairs_in_parent_range(NodeId(2), NodeId(3)), 2);
        assert_eq!(s.pairs_in_parent_range(NodeId(4), NodeId(6)), 0);
        assert_eq!(s.pairs_in_parent_range(NodeId(9), NodeId(1)), 0);
        // The probes above must not have materialized either cache.
        assert!(s.cached_ends().is_none());
        assert!(s.cached_blocks().is_none());
        // Warm: hints become exact.
        let _ = s.end_nodes();
        let _ = s.blocks();
        assert_eq!(s.cached_ends().unwrap().len(), 3);
        assert_eq!(s.ends_len_hint(), 3);
        assert_eq!(s.blocks_hint(), s.blocks().num_blocks());
        assert!(EdgeSet::new().parent_bounds().is_none());
        assert_eq!(EdgeSet::new().ends_len_hint(), 0);
    }

    #[test]
    fn clone_and_eq_ignore_caches() {
        let a = EdgeSet::from_raw(&[(1, 2), (3, 4)]);
        let _ = a.end_nodes();
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.end_nodes(), a.end_nodes());
    }
}
