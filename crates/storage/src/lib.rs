//! # apex-storage — extents, data table, page model, cost accounting
//!
//! The paper stores index extents and a `nid → value` data table "on a
//! local disk" and reports query *times*. This crate gives the
//! reproduction a deterministic analogue:
//!
//! * [`edgeset::EdgeSet`] — the extent representation (sets of
//!   `<parent, node>` edge pairs, Definition 7), with the merge/union/
//!   semijoin kernels every query processor uses;
//! * [`block::BlockExtent`] — the compressed storage image of an
//!   extent: page-sized blocks of delta+varint encoded pairs under a
//!   `(min_parent, max_parent, count)` skip index;
//! * [`kernels`] — the adaptive semijoin kernels (linear merge,
//!   galloping search, block-skip probing) and the
//!   [`kernels::KernelPolicy`] that picks between them;
//! * [`cost::Cost`] — logical cost counters (edges scanned, hash lookups,
//!   index edges navigated, join output, pages read) accumulated by each
//!   processor so experiments can report machine-independent costs next to
//!   wall-clock times;
//! * [`pages::PageModel`] — an 8 KiB page model that converts extent scans
//!   and data-table probes into page reads (the Index Fabric block size
//!   used in §6.1);
//! * [`bufmgr::BufferManager`] — a cross-query LRU buffer pool over
//!   extents, node-record pages, data-table pages and trie blocks, with
//!   hit/miss/eviction counters ([`pages::PageCache`] is its degenerate
//!   per-query policy);
//! * [`datatable::DataTable`] — the `nid → value` table used by QTYPE3
//!   queries;
//! * [`diskstore::ExtentStore`] — a real file-backed, page-aligned
//!   extent store validating the page model against genuine I/O.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod bufmgr;
pub mod cost;
pub mod datatable;
pub mod diskstore;
pub mod edgeset;
pub mod kernels;
pub mod pages;
pub mod succinct;

pub use block::{BlockExtent, BlockHeader};
pub use bufmgr::{BufferHandle, BufferManager, BufferStats, ObjectId, Space};
pub use cost::{Cost, OpBreakdown, OpCost, OpKind};
pub use datatable::DataTable;
pub use diskstore::{ExtentId, ExtentStore};
pub use edgeset::{EdgePair, EdgeSet};
pub use kernels::{
    merge_sorted_into, Kernel, KernelPolicy, KernelReport, MergeScratch, SemijoinScratch,
};
pub use pages::PageModel;
pub use succinct::{EndCursor, EndIndex, Ends, SuccinctExtent};
